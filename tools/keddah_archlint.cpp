// keddah-archlint: architecture-layering + hot-path-allocation checker.
// Walks the given files/directories, checks the #include graph against the
// declared layer DAG (cycles, upward edges, .cpp includes, fan-in budget),
// and scans `// keddah:hot` regions for allocation-prone constructs. See
// src/lint/archlint.h for the rules and the
// `// archlint:allow(<rule>): <justification>` escape hatch.
//
//   keddah-archlint [--report=json] [--strict-modules] [--layers=FILE] src/ [more paths...]
#include <cstring>
#include <iostream>

#include "lint/archlint.h"
#include "lint/diagnostic.h"

namespace kl = keddah::lint;

namespace {

int usage(int code) {
  std::cerr << "usage: keddah-archlint [options] <file-or-dir> [more paths...]\n"
            << "Checks module layering and hot-path allocation behaviour. Options:\n"
            << "  --report=json     print the full machine-readable report to stdout\n"
            << "  --strict-modules  every scanned module must be in the layer table\n"
            << "  --layers=FILE     load the layer table from FILE instead of the\n"
            << "                    built-in one (a layers.json directly inside a\n"
            << "                    scanned directory is picked up automatically)\n"
            << "Rules:\n";
  for (const auto& rule : kl::archlint_rule_ids()) std::cerr << "  " << rule << "\n";
  std::cerr << "Suppress a justified finding with\n"
            << "  // archlint:allow(<rule>): <justification>\n"
            << "Exits 1 if any unsuppressed finding remains.\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  bool report_json = false;
  bool strict = false;
  std::string layers_file;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--report=json") {
      report_json = true;
    } else if (arg == "--strict-modules") {
      strict = true;
    } else if (arg.rfind("--layers=", 0) == 0) {
      layers_file = arg.substr(9);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown flag " << arg << "\n";
      return usage(2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(2);

  kl::ArchlintReport report;
  try {
    if (!layers_file.empty()) {
      kl::LayerSpec spec =
          kl::layer_spec_from_json(keddah::util::Json::load_file(layers_file));
      spec.strict_modules = spec.strict_modules || strict;
      report = kl::archlint_paths(paths, &spec);
    } else if (strict) {
      kl::LayerSpec spec = kl::default_layer_spec();
      spec.strict_modules = true;
      report = kl::archlint_paths(paths, &spec);
    } else {
      report = kl::archlint_paths(paths);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  if (report_json) {
    std::cout << report.to_json().dump(2) << "\n";
  } else {
    for (const auto& d : report.diagnostics) {
      kl::print_diagnostic_line(std::cout, /*is_error=*/true, d.to_string());
    }
  }
  std::cerr << report.files_scanned << " file(s) scanned, " << report.diagnostics.size()
            << " finding(s), " << report.suppressions_used << " suppression(s), "
            << report.hot_regions.size() << " hot region(s)\n";
  return report.ok() ? 0 : 1;
}
