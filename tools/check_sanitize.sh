#!/usr/bin/env bash
# Build with a sanitizer and run the parallel-subsystem tests under it.
#
# Usage: tools/check_sanitize.sh [thread|address]   (default: thread)
#
# ThreadSanitizer is the one that matters for this repo: the SweepRunner /
# ThreadPool layer promises bit-identical parallel results, and TSan is how
# we know that promise isn't resting on a benign-looking data race. The
# build goes into build-<san>san/ so it never disturbs the primary build/.
set -euo pipefail

SAN="${1:-thread}"
case "${SAN}" in
  thread|address) ;;
  *) echo "usage: $0 [thread|address]" >&2; exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-${SAN}san"

cmake -B "${BUILD}" -S "${ROOT}" -DKEDDAH_SANITIZE="${SAN}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" --target parallel_test net_network_test -j"$(nproc)"

# The parallel subsystem plus the network layer it drives concurrently.
ctest --test-dir "${BUILD}" --output-on-failure \
      -R 'ThreadPool|SweepRunner|ParallelDeterminism|DeriveSeed|ResolvedThreads|Network'

echo "OK: ${SAN} sanitizer run clean"
