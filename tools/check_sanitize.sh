#!/usr/bin/env bash
# Build with a sanitizer and run the parallel-subsystem and fault-injection
# tests under it.
#
# Usage: tools/check_sanitize.sh [thread|address|undefined]   (default: thread)
#
# ThreadSanitizer is the one that matters most for this repo: the
# SweepRunner / ThreadPool layer promises bit-identical parallel results,
# and TSan is how we know that promise isn't resting on a benign-looking
# data race. ASan/UBSan cover the fault-injection paths, which tear down
# in-flight flows and re-enter callbacks — exactly where lifetime and UB
# bugs hide. The build goes into build-<san>san/ so it never disturbs the
# primary build/.
set -euo pipefail

SAN="${1:-thread}"
case "${SAN}" in
  thread|address|undefined) ;;
  *) echo "usage: $0 [thread|address|undefined]" >&2; exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-${SAN}san"

# Route every TSan-instrumented process (tests, benches, the serve smoke)
# through the shared suppressions file. The file is kept empty of engine
# code — see the policy comment inside it — and halt_on_error makes the
# first report fail fast instead of drowning in follow-on noise.
if [ "${SAN}" = "thread" ]; then
  export TSAN_OPTIONS="suppressions=${ROOT}/tools/tsan.suppressions:halt_on_error=1${TSAN_OPTIONS:+:${TSAN_OPTIONS}}"
fi

# KEDDAH_CHECK compiles the byte-conservation / fault-stats / sim-clock
# audits into the sanitized build, so every audited seam is exercised with
# the checks live while the sanitizer watches.
cmake -B "${BUILD}" -S "${ROOT}" -DKEDDAH_SANITIZE="${SAN}" -DKEDDAH_CHECK=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" \
      --target parallel_test net_network_test fault_injection_test \
               hadoop_faults_test scenario_test invariant_audit_test \
               net_differential_test golden_trace_test net_property_test \
               spill_test api_test serve_test serve_chaos_test keddah \
               perf_scheduler perf_serve perf_scale perf_overload -j"$(nproc)"

# The parallel subsystem, the network layer it drives concurrently, and the
# fault-injection/recovery machinery (aborts, retries, node churn). The
# ParallelDeterminism tests double as the determinism gate: a faulted
# scenario must replay bit-identically at any thread count, under the
# sanitizer too. SchedulerDifferential locks the incremental fair-share
# fast path to the reference recompute, and GoldenTrace pins end-to-end
# scenario output byte-for-byte — both with the KEDDAH_CHECK audits live.
ctest --test-dir "${BUILD}" --output-on-failure \
      -R 'ThreadPool|SweepRunner|ParallelDeterminism|DeriveSeed|ResolvedThreads|Network|NodeFailure|TransientOutage|DegradedLink|SlowNode|FaultPlan|Scenario|InvariantAudit|SchedulerDifferential|GoldenTrace|SpecApi|SpecError|Serve|Chaos|Spill|ArenaChurn'

# A quick pass of the scheduler benchmark under the sanitizer: exercises
# the incremental and reference schedulers back to back on all the
# shapes. Results land in the sanitized build dir, not the repo root.
"${BUILD}/bench/perf_scheduler" --quick --out "${BUILD}/BENCH_scheduler.json"

# Scale smoke under the sanitizer: a shrunken fat-tree (432 hosts) driven
# through the columnar flow arena and the mmap'd spill path, with the
# flows/sec and peak-RSS gates live (the RSS gate uses the quick-mode
# ceiling, which has headroom for sanitizer overhead on the arena columns).
"${BUILD}/bench/perf_scale" --quick --out "${BUILD}/BENCH_scale.json" \
      --spill-dir "${BUILD}/perf_scale_spill"

# The serve benchmark doubles as a concurrency smoke for the daemon: eight
# in-process clients hammer Server::handle() while the response cache and
# resident-model LRU are shared state — exactly what TSan should watch.
"${BUILD}/bench/perf_serve" --quick --out "${BUILD}/BENCH_serve.json"

# Overload chaos smoke: a 4x burst of cold what-if work over real sockets
# with admission, shedding, and deadline counters all hot. The bench gates
# on zero crashes and a bounded cached-request p99 and exits non-zero when
# a gate fails, so this line is the assertion. The chaos *tests* (hostile
# clients: slow-loris, torn frames, stalled readers) already ran in the
# ctest pass above; this adds the sustained-burst shape.
"${BUILD}/bench/perf_overload" --quick --out "${BUILD}/BENCH_serve.json"

# End-to-end serve smoke over real HTTP: boot the daemon on an ephemeral
# port, ask one what-if from the example corpus, and shut it down cleanly
# through the /v1/shutdown endpoint (so the sanitizer sees the teardown
# path too, not a SIGKILL).
"${BUILD}/tools/keddah" serve --port 0 >"${BUILD}/serve.log" 2>&1 &
SERVE_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's#^keddah serve listening on http://127\.0\.0\.1:##p' "${BUILD}/serve.log")"
  [ -n "${PORT}" ] && break
  sleep 0.1
done
if [ -z "${PORT}" ]; then
  echo "keddah serve did not come up; log follows" >&2
  cat "${BUILD}/serve.log" >&2
  kill "${SERVE_PID}" 2>/dev/null || true
  exit 1
fi
BODY="$(curl -sf -X POST --data-binary @"${ROOT}/examples/scenarios/clean.json" \
        "http://127.0.0.1:${PORT}/v1/whatif")"
if [ -z "${BODY}" ]; then
  echo "empty /v1/whatif response from keddah serve" >&2
  kill "${SERVE_PID}" 2>/dev/null || true
  exit 1
fi
curl -sf -X POST "http://127.0.0.1:${PORT}/v1/shutdown" >/dev/null
wait "${SERVE_PID}"

echo "OK: ${SAN} sanitizer run clean"
