#!/usr/bin/env bash
# One-command static gate for the repo. Runs, in order:
#
#   1. A warnings-as-errors build (-Wall -Wextra -Werror via KEDDAH_WERROR)
#      with KEDDAH_CHECK audits compiled in — the configuration every
#      commit must keep clean.
#   2. keddah-lint over the shipped example scenarios (must pass) and over
#      the seeded-defect fixtures in tests/fixtures/lint (every one must
#      FAIL — a fixture that lints clean means a diagnostic regressed).
#   3. keddah-detlint over src/ (zero unsuppressed determinism hazards)
#      and over the seeded-hazard fixtures in tests/fixtures/detlint
#      (every one must fail with exactly the rule its `// expect:` header
#      names; the `expect: clean` fixture must pass).
#   4. keddah-archlint over src/ in --strict-modules mode (the module graph
#      must match the DESIGN.md layer DAG, and every hot-path allocation
#      hazard must be fixed or carry a justified allow), and over the
#      seeded-violation fixture directories in tests/fixtures/archlint
#      (every declared `// expect:` rule must reproduce; `clean` fixtures
#      must pass).
#   5. clang-tidy over src/, if available (config in .clang-tidy).
#   6. cppcheck over src/, if available (suppressions in
#      tools/cppcheck.suppress).
#
# Stages 1-4 need only the baked-in toolchain and always run; the script
# fails if any executed stage fails. Stages 5-6 skip with a note when the
# tool is not installed — unless KEDDAH_STATIC_STRICT=1 (set in CI, where
# the tools are pinned), which turns a missing tool into a failure so the
# gate cannot silently thin out. CLANG_TIDY / CPPCHECK override the binary
# names (e.g. CLANG_TIDY=clang-tidy-18). Builds go into build-static/ so
# the primary build/ is never disturbed.
set -euo pipefail

STRICT="${KEDDAH_STATIC_STRICT:-0}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
CPPCHECK="${CPPCHECK:-cppcheck}"

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-static"

echo "== stage 1: warnings-as-errors build (KEDDAH_WERROR + KEDDAH_CHECK) =="
cmake -B "${BUILD}" -S "${ROOT}" -DKEDDAH_WERROR=ON -DKEDDAH_CHECK=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build "${BUILD}" -j"$(nproc)"

LINT="${BUILD}/tools/keddah-lint"

echo "== stage 2a: keddah-lint on shipped example scenarios (must pass) =="
"${LINT}" "${ROOT}"/examples/scenarios/*.json

echo "== stage 2b: keddah-lint on seeded-defect fixtures (each must fail) =="
for fixture in "${ROOT}"/tests/fixtures/lint/*.json; do
  if "${LINT}" "${fixture}" >/dev/null 2>&1; then
    echo "FAIL: ${fixture} lints clean but seeds a defect" >&2
    exit 1
  fi
done
echo "all $(ls "${ROOT}"/tests/fixtures/lint/*.json | wc -l) fixtures flagged"

DETLINT="${BUILD}/tools/keddah-detlint"

echo "== stage 3a: keddah-detlint on src/ (zero unsuppressed hazards) =="
"${DETLINT}" "${ROOT}/src"

echo "== stage 3b: keddah-detlint on seeded-hazard fixtures =="
for fixture in "${ROOT}"/tests/fixtures/detlint/*.cpp; do
  expected="$(sed -n '1s#^// expect: ##p' "${fixture}")"
  if [ -z "${expected}" ]; then
    echo "FAIL: ${fixture} has no '// expect: <rule>' header" >&2
    exit 1
  fi
  if [ "${expected}" = "clean" ]; then
    if ! "${DETLINT}" "${fixture}" >/dev/null 2>&1; then
      echo "FAIL: ${fixture} expects a clean scan but was flagged" >&2
      exit 1
    fi
    continue
  fi
  # Scan the fixture together with its paired header, if any, so member
  # declarations resolve the same way they do in the test suite.
  header="${fixture%.cpp}.h"
  paths=("${fixture}")
  [ -f "${header}" ] && paths+=("${header}")
  out="$("${DETLINT}" "${paths[@]}" 2>&1)" && {
    echo "FAIL: ${fixture} scans clean but seeds hazard '${expected}'" >&2
    exit 1
  }
  if ! grep -q "\[${expected}\]" <<<"${out}"; then
    echo "FAIL: ${fixture} expected rule '${expected}' but got:" >&2
    echo "${out}" >&2
    exit 1
  fi
done
echo "all $(ls "${ROOT}"/tests/fixtures/detlint/*.cpp | wc -l) fixtures behaved as declared"

ARCHLINT="${BUILD}/tools/keddah-archlint"

echo "== stage 4a: keddah-archlint on src/ (layer DAG + hot-path hazards) =="
"${ARCHLINT}" --strict-modules "${ROOT}/src"

echo "== stage 4b: keddah-archlint on seeded-violation fixtures =="
for fixture in "${ROOT}"/tests/fixtures/archlint/*/; do
  expected="$(grep -rh '^// expect: ' "${fixture}" | sed 's#^// expect: ##' | sort -u)"
  if [ -z "${expected}" ]; then
    echo "FAIL: ${fixture} has no '// expect: <rule>' declaration" >&2
    exit 1
  fi
  if [ "${expected}" = "clean" ]; then
    if ! "${ARCHLINT}" "${fixture}" >/dev/null 2>&1; then
      echo "FAIL: ${fixture} expects a clean scan but was flagged" >&2
      exit 1
    fi
    continue
  fi
  out="$("${ARCHLINT}" "${fixture}" 2>&1)" && {
    echo "FAIL: ${fixture} scans clean but seeds '${expected}'" >&2
    exit 1
  }
  while IFS= read -r rule; do
    if ! grep -q "\[${rule}\]" <<<"${out}"; then
      echo "FAIL: ${fixture} expected rule '${rule}' but got:" >&2
      echo "${out}" >&2
      exit 1
    fi
  done <<<"${expected}"
done
echo "all $(ls -d "${ROOT}"/tests/fixtures/archlint/*/ | wc -l) fixture dirs behaved as declared"

if command -v "${CLANG_TIDY}" >/dev/null 2>&1; then
  echo "== stage 5: clang-tidy (${CLANG_TIDY}) =="
  find "${ROOT}/src" -name '*.cpp' -print0 |
    xargs -0 -P "$(nproc)" -n 4 "${CLANG_TIDY}" -p "${BUILD}" --quiet
elif [ "${STRICT}" = "1" ]; then
  echo "FAIL: ${CLANG_TIDY} not installed but KEDDAH_STATIC_STRICT=1" >&2
  exit 1
else
  echo "== stage 5: ${CLANG_TIDY} not installed, skipped =="
fi

if command -v "${CPPCHECK}" >/dev/null 2>&1; then
  echo "== stage 6: cppcheck (${CPPCHECK}) =="
  "${CPPCHECK}" --enable=warning,performance,portability --error-exitcode=1 \
           --inline-suppr --suppressions-list="${ROOT}/tools/cppcheck.suppress" \
           --std=c++20 --quiet -I "${ROOT}/src" "${ROOT}/src"
elif [ "${STRICT}" = "1" ]; then
  echo "FAIL: ${CPPCHECK} not installed but KEDDAH_STATIC_STRICT=1" >&2
  exit 1
else
  echo "== stage 6: ${CPPCHECK} not installed, skipped =="
fi

echo "OK: static checks clean"
