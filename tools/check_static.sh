#!/usr/bin/env bash
# One-command static gate for the repo. Runs, in order:
#
#   1. A warnings-as-errors build (-Wall -Wextra -Werror via KEDDAH_WERROR)
#      with KEDDAH_CHECK audits compiled in — the configuration every
#      commit must keep clean.
#   2. keddah-lint over the shipped example scenarios (must pass) and over
#      the seeded-defect fixtures in tests/fixtures/lint (every one must
#      FAIL — a fixture that lints clean means a diagnostic regressed).
#   3. clang-tidy over src/, if clang-tidy is installed (skipped with a
#      note otherwise; config in .clang-tidy).
#   4. cppcheck over src/, if cppcheck is installed (skipped with a note
#      otherwise; suppressions in tools/cppcheck.suppress).
#
# Stages 1-2 need only the baked-in toolchain and always run; the script
# fails if any executed stage fails. Builds go into build-static/ so the
# primary build/ is never disturbed.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-static"

echo "== stage 1: warnings-as-errors build (KEDDAH_WERROR + KEDDAH_CHECK) =="
cmake -B "${BUILD}" -S "${ROOT}" -DKEDDAH_WERROR=ON -DKEDDAH_CHECK=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build "${BUILD}" -j"$(nproc)"

LINT="${BUILD}/tools/keddah-lint"

echo "== stage 2a: keddah-lint on shipped example scenarios (must pass) =="
"${LINT}" "${ROOT}"/examples/scenarios/*.json

echo "== stage 2b: keddah-lint on seeded-defect fixtures (each must fail) =="
for fixture in "${ROOT}"/tests/fixtures/lint/*.json; do
  if "${LINT}" "${fixture}" >/dev/null 2>&1; then
    echo "FAIL: ${fixture} lints clean but seeds a defect" >&2
    exit 1
  fi
done
echo "all $(ls "${ROOT}"/tests/fixtures/lint/*.json | wc -l) fixtures flagged"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== stage 3: clang-tidy =="
  find "${ROOT}/src" -name '*.cpp' -print0 |
    xargs -0 -P "$(nproc)" -n 4 clang-tidy -p "${BUILD}" --quiet
else
  echo "== stage 3: clang-tidy not installed, skipped =="
fi

if command -v cppcheck >/dev/null 2>&1; then
  echo "== stage 4: cppcheck =="
  cppcheck --enable=warning,performance,portability --error-exitcode=1 \
           --inline-suppr --suppressions-list="${ROOT}/tools/cppcheck.suppress" \
           --std=c++20 --quiet -I "${ROOT}/src" "${ROOT}/src"
else
  echo "== stage 4: cppcheck not installed, skipped =="
fi

echo "OK: static checks clean"
