#!/usr/bin/env bash
# One-command static gate for the repo. Runs, in order:
#
#   1. A warnings-as-errors build (-Wall -Wextra -Werror via KEDDAH_WERROR)
#      with KEDDAH_CHECK audits compiled in — the configuration every
#      commit must keep clean.
#   2. keddah-lint over the shipped example scenarios (must pass) and over
#      the seeded-defect fixtures in tests/fixtures/lint (every one must
#      FAIL — a fixture that lints clean means a diagnostic regressed).
#   3. keddah-detlint over src/ (zero unsuppressed determinism hazards)
#      and over the seeded-hazard fixtures in tests/fixtures/detlint
#      (every one must fail with exactly the rule its `// expect:` header
#      names; the `expect: clean` fixture must pass).
#   4. clang-tidy over src/, if clang-tidy is installed (skipped with a
#      note otherwise; config in .clang-tidy).
#   5. cppcheck over src/, if cppcheck is installed (skipped with a note
#      otherwise; suppressions in tools/cppcheck.suppress).
#
# Stages 1-2 need only the baked-in toolchain and always run; the script
# fails if any executed stage fails. Builds go into build-static/ so the
# primary build/ is never disturbed.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-static"

echo "== stage 1: warnings-as-errors build (KEDDAH_WERROR + KEDDAH_CHECK) =="
cmake -B "${BUILD}" -S "${ROOT}" -DKEDDAH_WERROR=ON -DKEDDAH_CHECK=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build "${BUILD}" -j"$(nproc)"

LINT="${BUILD}/tools/keddah-lint"

echo "== stage 2a: keddah-lint on shipped example scenarios (must pass) =="
"${LINT}" "${ROOT}"/examples/scenarios/*.json

echo "== stage 2b: keddah-lint on seeded-defect fixtures (each must fail) =="
for fixture in "${ROOT}"/tests/fixtures/lint/*.json; do
  if "${LINT}" "${fixture}" >/dev/null 2>&1; then
    echo "FAIL: ${fixture} lints clean but seeds a defect" >&2
    exit 1
  fi
done
echo "all $(ls "${ROOT}"/tests/fixtures/lint/*.json | wc -l) fixtures flagged"

DETLINT="${BUILD}/tools/keddah-detlint"

echo "== stage 3a: keddah-detlint on src/ (zero unsuppressed hazards) =="
"${DETLINT}" "${ROOT}/src"

echo "== stage 3b: keddah-detlint on seeded-hazard fixtures =="
for fixture in "${ROOT}"/tests/fixtures/detlint/*.cpp; do
  expected="$(sed -n '1s#^// expect: ##p' "${fixture}")"
  if [ -z "${expected}" ]; then
    echo "FAIL: ${fixture} has no '// expect: <rule>' header" >&2
    exit 1
  fi
  if [ "${expected}" = "clean" ]; then
    if ! "${DETLINT}" "${fixture}" >/dev/null 2>&1; then
      echo "FAIL: ${fixture} expects a clean scan but was flagged" >&2
      exit 1
    fi
    continue
  fi
  # Scan the fixture together with its paired header, if any, so member
  # declarations resolve the same way they do in the test suite.
  header="${fixture%.cpp}.h"
  paths=("${fixture}")
  [ -f "${header}" ] && paths+=("${header}")
  out="$("${DETLINT}" "${paths[@]}" 2>&1)" && {
    echo "FAIL: ${fixture} scans clean but seeds hazard '${expected}'" >&2
    exit 1
  }
  if ! grep -q "\[${expected}\]" <<<"${out}"; then
    echo "FAIL: ${fixture} expected rule '${expected}' but got:" >&2
    echo "${out}" >&2
    exit 1
  fi
done
echo "all $(ls "${ROOT}"/tests/fixtures/detlint/*.cpp | wc -l) fixtures behaved as declared"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== stage 4: clang-tidy =="
  find "${ROOT}/src" -name '*.cpp' -print0 |
    xargs -0 -P "$(nproc)" -n 4 clang-tidy -p "${BUILD}" --quiet
else
  echo "== stage 4: clang-tidy not installed, skipped =="
fi

if command -v cppcheck >/dev/null 2>&1; then
  echo "== stage 5: cppcheck =="
  cppcheck --enable=warning,performance,portability --error-exitcode=1 \
           --inline-suppr --suppressions-list="${ROOT}/tools/cppcheck.suppress" \
           --std=c++20 --quiet -I "${ROOT}/src" "${ROOT}/src"
else
  echo "== stage 5: cppcheck not installed, skipped =="
fi

echo "OK: static checks clean"
