// keddah-lint: static validation of scenario, fault-plan, model, and
// model-bank JSON files. Prints every defect with file, key path, and a fix
// hint; exits 1 if any file has errors (warnings alone pass).
//
//   keddah-lint scenario.json faults.json model.json ...
#include <cstring>
#include <iostream>

#include "lint/lint.h"

namespace kl = keddah::lint;

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    std::cerr << "usage: keddah-lint <file.json> [more files...]\n"
              << "Statically validates Keddah JSON artifacts: scenarios, fault plans,\n"
              << "fitted models, and model banks. The document kind is detected from\n"
              << "its shape. Exits 1 if any file has errors.\n";
    return argc < 2 ? 2 : 0;
  }
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (int i = 1; i < argc; ++i) {
    const kl::LintReport report = kl::lint_file(argv[i]);
    kl::print_report(report, std::cout);
    if (report.diagnostics.empty()) {
      std::cout << argv[i] << ": ok (" << kl::file_kind_name(report.kind) << ")\n";
    }
    errors += report.num_errors();
    warnings += report.num_warnings();
  }
  if (errors != 0 || warnings != 0) {
    std::cout << errors << " error(s), " << warnings << " warning(s)\n";
  }
  return errors == 0 ? 0 : 1;
}
