// The keddah toolchain binary; all logic lives in src/keddah/cli.cpp so the
// test suite can exercise subcommands in-process.
#include "cli/cli.h"

int main(int argc, char** argv) { return keddah::cli::run_main(argc, argv); }
