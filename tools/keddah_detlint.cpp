// keddah-detlint: determinism-hazard checker for the C++ sources. Walks
// the given files/directories and flags constructs that smuggle
// nondeterminism into the engine (unordered-container iteration, pointer
// -keyed ordering, std::random_device, wall-clock reads, bare std::mutex
// outside the annotated wrappers). See src/lint/detlint.h for the rules
// and the `// detlint:allow(<rule>)` escape hatch.
//
//   keddah-detlint src/ [more paths...]
#include <cstring>
#include <iostream>

#include "lint/detlint.h"
#include "lint/diagnostic.h"

namespace kl = keddah::lint;

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    std::cerr << "usage: keddah-detlint <file-or-dir> [more paths...]\n"
              << "Flags determinism hazards in C++ sources. Rules:\n";
    for (const auto& rule : kl::detlint_rule_ids()) std::cerr << "  " << rule << "\n";
    std::cerr << "Suppress a justified finding with // detlint:allow(<rule>).\n"
              << "Exits 1 if any unsuppressed finding remains.\n";
    return argc < 2 ? 2 : 0;
  }
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) paths.emplace_back(argv[i]);
  kl::DetlintReport report;
  try {
    report = kl::detlint_paths(paths);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  for (const auto& d : report.diagnostics) {
    kl::print_diagnostic_line(std::cout, /*is_error=*/true, d.to_string());
  }
  std::cout << report.files_scanned << " file(s) scanned, " << report.diagnostics.size()
            << " finding(s), " << report.suppressions_used << " suppression(s)\n";
  return report.ok() ? 0 : 1;
}
