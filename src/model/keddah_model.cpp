#include "model/keddah_model.h"

#include <algorithm>
#include <stdexcept>

namespace keddah::model {

util::Json TrainingContext::to_json() const {
  util::Json doc = util::Json::object();
  doc["block_size"] = util::Json(static_cast<std::uint64_t>(block_size));
  doc["replication"] = util::Json(static_cast<std::uint64_t>(replication));
  doc["cluster_nodes"] = util::Json(static_cast<std::uint64_t>(cluster_nodes));
  doc["num_runs"] = util::Json(static_cast<std::uint64_t>(num_runs));
  doc["min_input_bytes"] = util::Json(min_input_bytes);
  doc["max_input_bytes"] = util::Json(max_input_bytes);
  return doc;
}

TrainingContext TrainingContext::from_json(const util::Json& doc) {
  TrainingContext ctx;
  ctx.block_size = static_cast<std::uint64_t>(doc.get_number("block_size", 0.0));
  ctx.replication = static_cast<std::uint32_t>(doc.get_number("replication", 0.0));
  ctx.cluster_nodes = static_cast<std::size_t>(doc.get_number("cluster_nodes", 0.0));
  ctx.num_runs = static_cast<std::size_t>(doc.get_number("num_runs", 0.0));
  ctx.min_input_bytes = doc.get_number("min_input_bytes", 0.0);
  ctx.max_input_bytes = doc.get_number("max_input_bytes", 0.0);
  return ctx;
}

std::size_t KeddahModel::class_index(net::FlowKind kind) {
  for (std::size_t i = 0; i < kModelledClasses.size(); ++i) {
    if (kModelledClasses[i] == kind) return i;
  }
  throw std::out_of_range("keddah model: class not modelled");
}

ClassModel& KeddahModel::class_model(net::FlowKind kind) { return classes_[class_index(kind)]; }

const ClassModel& KeddahModel::class_model(net::FlowKind kind) const {
  return classes_[class_index(kind)];
}

stats::LinearFit& KeddahModel::volume_model(net::FlowKind kind) {
  return volume_vs_input_[class_index(kind)];
}

const stats::LinearFit& KeddahModel::volume_model(net::FlowKind kind) const {
  return volume_vs_input_[class_index(kind)];
}

double KeddahModel::predict_duration(double input_bytes) const {
  return std::max(0.0, duration_vs_input_.predict(input_bytes));
}

double KeddahModel::predict_volume(net::FlowKind kind, double input_bytes) const {
  return std::max(0.0, volume_model(kind).predict(input_bytes));
}

util::Json KeddahModel::to_json() const {
  util::Json doc = util::Json::object();
  doc["job_name"] = util::Json(job_name_);
  doc["context"] = context_.to_json();
  doc["duration_vs_input"] = duration_vs_input_.to_json();
  util::Json classes = util::Json::object();
  util::Json volumes = util::Json::object();
  for (std::size_t i = 0; i < kModelledClasses.size(); ++i) {
    const char* key = net::flow_kind_name(kModelledClasses[i]);
    classes[key] = classes_[i].to_json();
    volumes[key] = volume_vs_input_[i].to_json();
  }
  doc["classes"] = classes;
  doc["volume_vs_input"] = volumes;
  return doc;
}

KeddahModel KeddahModel::from_json(const util::Json& doc) {
  KeddahModel m;
  m.job_name_ = doc.get_string("job_name", "");
  if (doc.contains("context")) m.context_ = TrainingContext::from_json(doc.at("context"));
  if (doc.contains("duration_vs_input")) {
    m.duration_vs_input_ = stats::LinearFit::from_json(doc.at("duration_vs_input"));
  }
  for (std::size_t i = 0; i < kModelledClasses.size(); ++i) {
    const char* key = net::flow_kind_name(kModelledClasses[i]);
    if (doc.contains("classes") && doc.at("classes").contains(key)) {
      m.classes_[i] = ClassModel::from_json(doc.at("classes").at(key));
    }
    if (doc.contains("volume_vs_input") && doc.at("volume_vs_input").contains(key)) {
      m.volume_vs_input_[i] = stats::LinearFit::from_json(doc.at("volume_vs_input").at(key));
    }
  }
  return m;
}

void KeddahModel::save(const std::string& path) const { to_json().save_file(path); }

KeddahModel KeddahModel::load(const std::string& path) {
  return from_json(util::Json::load_file(path));
}

}  // namespace keddah::model
