// ModelBank: a registry of trained KeddahModels across job families and
// cluster configurations. The paper's models are per-(job, configuration);
// downstream users hold a bank of them and pick the closest match for the
// scenario they want to generate — this class implements that selection
// plus one-file persistence.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/keddah_model.h"

namespace keddah::model {

/// An owning collection of models with nearest-configuration lookup.
class ModelBank {
 public:
  ModelBank() = default;

  /// Adds a model (job name + training context identify it).
  void add(KeddahModel model);

  std::size_t size() const { return models_.size(); }
  bool empty() const { return models_.empty(); }

  /// Distinct job names present, sorted.
  std::vector<std::string> job_names() const;

  /// All models for a job family.
  std::vector<const KeddahModel*> models_for(const std::string& job_name) const;

  /// Exact configuration match (block size, replication, cluster nodes);
  /// nullptr when absent.
  const KeddahModel* find_exact(const std::string& job_name, std::uint64_t block_size,
                                std::uint32_t replication, std::size_t cluster_nodes) const;

  /// Closest-configuration model of the given job family, by a log-scaled
  /// distance over (block size, replication, cluster size). Returns
  /// nullptr when no model of that family exists.
  const KeddahModel* select(const std::string& job_name, std::uint64_t block_size,
                            std::uint32_t replication, std::size_t cluster_nodes) const;

  /// Configuration distance used by select() (exposed for tests): sum of
  /// |log2| ratios of block size and cluster nodes plus the replication
  /// difference.
  static double config_distance(const TrainingContext& a, std::uint64_t block_size,
                                std::uint32_t replication, std::size_t cluster_nodes);

  util::Json to_json() const;
  static ModelBank from_json(const util::Json& doc);
  void save(const std::string& path) const;
  static ModelBank load(const std::string& path);

 private:
  // unique_ptr keeps pointers returned by select()/find_exact() stable
  // across add() calls.
  std::vector<std::unique_ptr<KeddahModel>> models_;
};

}  // namespace keddah::model
