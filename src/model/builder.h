// ModelBuilder: Keddah's training stage. Takes captured (trace, job
// metadata) pairs for one job family and produces a KeddahModel:
//   - pooled per-class flow sizes -> MLE distribution fit + empirical CDF,
//   - per-run per-class flow counts -> through-origin regression against a
//     class-specific structural regressor,
//   - per-run flow start times -> phase-anchored temporal model,
//   - job duration and per-class volume scaling laws vs input size.
#pragma once

#include <span>
#include <string>

#include "capture/trace.h"
#include "model/keddah_model.h"
#include "stats/fitting.h"

namespace keddah::model {

/// One captured job run plus the job-log metadata Keddah correlates with.
struct TrainingRun {
  capture::Trace trace;
  double input_bytes = 0.0;
  std::size_t num_maps = 0;
  std::size_t num_reducers = 0;
  double job_start = 0.0;
  double job_end = 0.0;

  double duration() const { return job_end - job_start; }
};

/// Trainer knobs.
struct BuilderOptions {
  /// Criterion for picking the winning size-distribution family.
  stats::SelectBy criterion = stats::SelectBy::kKs;
  /// Preferred size representation at generation time.
  SizeModelKind size_kind = SizeModelKind::kParametric;
  /// When the best parametric fit's KS distance exceeds this, the size
  /// model falls back to the empirical CDF regardless of size_kind.
  double parametric_ks_threshold = 0.10;
  /// Training-context metadata recorded in the model.
  std::uint64_t block_size = 0;
  std::uint32_t replication = 0;
  std::size_t cluster_nodes = 0;
};

/// The structural regressor value for a traffic class in one run:
///   HDFS read -> num_maps; shuffle -> maps x reducers;
///   HDFS write -> input bytes; control -> job duration (seconds).
double class_regressor(net::FlowKind kind, const TrainingRun& run);

/// Human-readable regressor name for reports.
const char* class_regressor_name(net::FlowKind kind);

/// Trains a model from one or more runs of the same job family. Throws
/// std::invalid_argument when `runs` is empty.
KeddahModel build_model(const std::string& job_name, std::span<const TrainingRun> runs,
                        const BuilderOptions& options = {});

}  // namespace keddah::model
