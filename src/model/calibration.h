// Profile calibration: the inverse of the emulator's workload profiles.
// Given a captured run (trace + job metadata), estimate the JobProfile
// parameters that produced it — map/reduce selectivity and partition skew.
// This is how a user of the toolchain calibrates synthetic job profiles
// against captures from a REAL cluster, closing the loop between
// measurement and emulation.
#pragma once

#include "capture/trace.h"
#include "model/builder.h"

namespace keddah::model {

/// Estimated workload shape, with the observables it was derived from.
struct CalibratedProfile {
  /// Map output bytes per input byte, inferred from shuffle volume
  /// corrected for the host-local (invisible) fetch fraction.
  double map_selectivity = 0.0;
  /// Final output bytes per shuffled byte, inferred from HDFS-write volume
  /// corrected for the replication pipeline's off-node copies.
  double reduce_selectivity = 0.0;
  /// Zipf exponent fitted to per-reducer shuffle shares (0 = balanced).
  double partition_skew = 0.0;

  // Raw observables (for reports):
  double shuffle_bytes = 0.0;
  double write_bytes = 0.0;
  double estimated_map_output = 0.0;
  double estimated_job_output = 0.0;
};

/// Calibration inputs beyond the run itself.
struct CalibrationContext {
  /// Worker count (determines the invisible local-fetch fraction 1/N).
  std::size_t cluster_nodes = 16;
  /// HDFS replication factor (off-node write copies = replication - 1).
  std::uint32_t replication = 3;
  /// Wire-compression ratio applied to shuffle payloads (1.0 = off).
  double map_output_compress_ratio = 1.0;
};

/// Estimates the profile behind a captured run. Throws
/// std::invalid_argument when the context is degenerate (zero nodes,
/// replication < 2 leaves write volume unobservable and yields
/// reduce_selectivity = 0 with estimated_job_output = 0).
CalibratedProfile calibrate_profile(const TrainingRun& run, const CalibrationContext& context);

}  // namespace keddah::model
