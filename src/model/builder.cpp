#include "model/builder.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/log.h"

namespace keddah::model {

double class_regressor(net::FlowKind kind, const TrainingRun& run) {
  switch (kind) {
    case net::FlowKind::kHdfsRead:
      return static_cast<double>(run.num_maps);
    case net::FlowKind::kShuffle:
      return static_cast<double>(run.num_maps) * static_cast<double>(run.num_reducers);
    case net::FlowKind::kHdfsWrite:
      return run.input_bytes;
    case net::FlowKind::kControl:
      return run.duration();
    default:
      return 0.0;
  }
}

const char* class_regressor_name(net::FlowKind kind) {
  switch (kind) {
    case net::FlowKind::kHdfsRead:
      return "num_maps";
    case net::FlowKind::kShuffle:
      return "maps_x_reducers";
    case net::FlowKind::kHdfsWrite:
      return "input_bytes";
    case net::FlowKind::kControl:
      return "job_duration_s";
    default:
      return "x";
  }
}

namespace {

SizeModel train_size_model(std::span<const double> sizes, const BuilderOptions& options) {
  SizeModel model;
  if (sizes.empty()) return model;
  model.empirical = stats::Ecdf(sizes);
  const auto best = stats::fit_best(sizes, options.criterion);
  if (best.has_value()) {
    model.parametric = best->dist;
    model.ks = best->ks;
    model.ks_pvalue = best->ks_pvalue;
  }
  model.kind = options.size_kind;
  if (!model.parametric.has_value() || model.ks > options.parametric_ks_threshold) {
    model.kind = SizeModelKind::kEmpirical;
  }
  return model;
}

CountModel train_count_model(net::FlowKind kind, std::span<const TrainingRun> runs,
                             const std::vector<std::size_t>& counts) {
  CountModel model;
  model.regressor = class_regressor_name(kind);
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    xs.push_back(class_regressor(kind, runs[i]));
    ys.push_back(static_cast<double>(counts[i]));
  }
  const bool any_positive_x = std::any_of(xs.begin(), xs.end(), [](double x) { return x > 0.0; });
  if (!any_positive_x) {
    model.fit = stats::LinearFit{};  // degenerate: predicts zero flows
    return model;
  }
  model.fit = stats::fit_linear_through_origin(xs, ys);
  return model;
}

TemporalModel train_temporal_model(net::FlowKind kind, std::span<const TrainingRun> runs) {
  TemporalModel model;
  std::vector<double> offsets;
  double start_frac_sum = 0.0;
  double end_frac_sum = 0.0;
  std::size_t runs_with_flows = 0;
  for (const auto& run : runs) {
    const auto class_trace = run.trace.filter_kind(kind);
    if (class_trace.empty() || run.duration() <= 0.0) continue;
    ++runs_with_flows;
    const auto starts = class_trace.start_times();
    const double phase_start = *std::min_element(starts.begin(), starts.end());
    const double phase_end = *std::max_element(starts.begin(), starts.end());
    const double span = phase_end - phase_start;
    for (const double s : starts) {
      offsets.push_back(span > 0.0 ? (s - phase_start) / span : 0.0);
    }
    start_frac_sum += (phase_start - run.job_start) / run.duration();
    end_frac_sum += (phase_end - run.job_start) / run.duration();
  }
  if (runs_with_flows == 0) return model;
  model.normalized_offsets = stats::Ecdf(offsets);
  model.phase_start_frac =
      std::clamp(start_frac_sum / static_cast<double>(runs_with_flows), 0.0, 1.0);
  model.phase_end_frac = std::clamp(end_frac_sum / static_cast<double>(runs_with_flows),
                                    model.phase_start_frac, 1.0);
  return model;
}

}  // namespace

KeddahModel build_model(const std::string& job_name, std::span<const TrainingRun> runs,
                        const BuilderOptions& options) {
  if (runs.empty()) throw std::invalid_argument("builder: no training runs");
  KeddahModel model;
  model.set_job_name(job_name);

  TrainingContext& ctx = model.context();
  ctx.block_size = options.block_size;
  ctx.replication = options.replication;
  ctx.cluster_nodes = options.cluster_nodes;
  ctx.num_runs = runs.size();
  ctx.min_input_bytes = runs[0].input_bytes;
  ctx.max_input_bytes = runs[0].input_bytes;
  for (const auto& run : runs) {
    ctx.min_input_bytes = std::min(ctx.min_input_bytes, run.input_bytes);
    ctx.max_input_bytes = std::max(ctx.max_input_bytes, run.input_bytes);
  }

  for (const net::FlowKind kind : kModelledClasses) {
    ClassModel& cm = model.class_model(kind);

    // Pool sizes across runs; count per run.
    std::vector<double> sizes;
    std::vector<std::size_t> counts;
    counts.reserve(runs.size());
    for (const auto& run : runs) {
      const auto class_trace = run.trace.filter_kind(kind);
      counts.push_back(class_trace.size());
      for (const auto& r : class_trace.records()) sizes.push_back(r.bytes);
      cm.training_bytes += class_trace.total_bytes();
    }
    cm.training_flows = sizes.size();
    cm.size = train_size_model(sizes, options);
    cm.count = train_count_model(kind, runs, counts);
    cm.temporal = train_temporal_model(kind, runs);

    // Volume scaling law vs input bytes (through origin).
    std::vector<double> xs;
    std::vector<double> ys;
    for (const auto& run : runs) {
      xs.push_back(run.input_bytes);
      ys.push_back(run.trace.filter_kind(kind).total_bytes());
    }
    if (std::any_of(xs.begin(), xs.end(), [](double x) { return x > 0.0; })) {
      model.volume_model(kind) = stats::fit_linear_through_origin(xs, ys);
    }
    KLOG_DEBUG << job_name << "/" << net::flow_kind_name(kind) << ": " << cm.training_flows
               << " flows, size model "
               << (cm.size.parametric ? cm.size.parametric->describe() : std::string("none"))
               << " ks=" << cm.size.ks;
  }

  // Duration scaling: a proper line needs two distinct input sizes; with a
  // single size the model degrades to a constant (slope 0).
  std::set<double> distinct_inputs;
  for (const auto& run : runs) distinct_inputs.insert(run.input_bytes);
  if (distinct_inputs.size() >= 2) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const auto& run : runs) {
      xs.push_back(run.input_bytes);
      ys.push_back(run.duration());
    }
    model.duration_model() = stats::fit_linear(xs, ys);
  } else {
    double total = 0.0;
    for (const auto& run : runs) total += run.duration();
    stats::LinearFit constant;
    constant.slope = 0.0;
    constant.intercept = total / static_cast<double>(runs.size());
    constant.n = runs.size();
    model.duration_model() = constant;
  }
  return model;
}

}  // namespace keddah::model
