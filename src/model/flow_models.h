// Per-traffic-class component models: how many flows, how big, and when.
//
// A ClassModel is Keddah's statistical abstraction of one traffic class of
// one job type. It is trained from captured traces (model/builder.h) and
// sampled by the generator (gen/generator.h). Size models keep both the
// best parametric fit and the empirical CDF so generation can use either.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "stats/distributions.h"
#include "stats/ecdf.h"
#include "stats/regression.h"
#include "util/json.h"
#include "util/rng.h"

namespace keddah::model {

/// How flow sizes are drawn at generation time.
enum class SizeModelKind { kParametric, kEmpirical };

/// Flow-size model: best-fit parametric distribution + empirical fallback.
struct SizeModel {
  /// Winning family (by KS distance) and its goodness of fit.
  std::optional<stats::Distribution> parametric;
  double ks = 1.0;
  double ks_pvalue = 0.0;
  /// Empirical CDF of the training sizes (always present when trained).
  stats::Ecdf empirical;
  /// Which representation sample() uses.
  SizeModelKind kind = SizeModelKind::kParametric;

  /// Draws one flow size (bytes, clamped non-negative).
  double sample(util::Rng& rng) const;

  /// Mean flow size under the active representation.
  double mean() const;

  bool trained() const { return !empirical.empty(); }

  util::Json to_json() const;
  static SizeModel from_json(const util::Json& doc);
};

/// Flow-count model: a structural law calibrated by regression.
///
/// The regressor x depends on the class:
///   HDFS read  : number of map tasks          (locality-miss fraction)
///   Shuffle    : maps x reducers              (off-host fetch fraction)
///   HDFS write : output bytes estimate        (pipeline stages per block)
///   Control    : job wall-clock seconds       (heartbeat rates)
/// Counts are fit through the origin: zero work means zero flows.
struct CountModel {
  stats::LinearFit fit;
  /// Human-readable regressor description (for reports).
  std::string regressor = "x";

  /// Expected flow count at regressor value x (>= 0, rounded).
  std::size_t predict(double x) const;

  util::Json to_json() const;
  static CountModel from_json(const util::Json& doc);
};

/// Flow arrival model. Each traffic class is active during a phase of the
/// job (reads during maps, shuffle between slow-start and last fetch, writes
/// at the tail). The model stores where that phase sits as a fraction of
/// job wall-clock, plus the empirical distribution of "fraction through the
/// phase at which a flow starts".
struct TemporalModel {
  /// Normalized flow-start offsets within the class phase, in [0, 1].
  stats::Ecdf normalized_offsets;
  /// Phase boundaries as fractions of job duration (means over training).
  double phase_start_frac = 0.0;
  double phase_end_frac = 1.0;

  /// Draws an absolute start time for a job lasting `job_duration_s`.
  double sample_start(util::Rng& rng, double job_duration_s) const;

  bool trained() const { return !normalized_offsets.empty(); }

  util::Json to_json() const;
  static TemporalModel from_json(const util::Json& doc);
};

/// The full per-class model.
struct ClassModel {
  SizeModel size;
  CountModel count;
  TemporalModel temporal;
  /// Training metadata.
  std::size_t training_flows = 0;
  double training_bytes = 0.0;

  util::Json to_json() const;
  static ClassModel from_json(const util::Json& doc);
};

}  // namespace keddah::model
