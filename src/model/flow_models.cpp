#include "model/flow_models.h"

#include <algorithm>
#include <cmath>

namespace keddah::model {

namespace {

/// Serializes an ECDF as at most `cap` evenly spaced quantiles — enough to
/// reproduce the curve while keeping model files small.
util::Json ecdf_to_json(const stats::Ecdf& ecdf, std::size_t cap = 512) {
  util::Json arr = util::Json::array();
  const auto& values = ecdf.values();
  if (values.size() <= cap) {
    for (const double v : values) arr.push_back(util::Json(v));
  } else {
    for (std::size_t i = 0; i < cap; ++i) {
      const double q = static_cast<double>(i) / static_cast<double>(cap - 1);
      arr.push_back(util::Json(ecdf.quantile(q)));
    }
  }
  return arr;
}

stats::Ecdf ecdf_from_json(const util::Json& arr) {
  std::vector<double> values;
  values.reserve(arr.size());
  for (const auto& v : arr.as_array()) values.push_back(v.as_number());
  return stats::Ecdf(values);
}

}  // namespace

double SizeModel::sample(util::Rng& rng) const {
  double value = 0.0;
  if (kind == SizeModelKind::kParametric && parametric.has_value()) {
    value = parametric->sample(rng);
  } else if (!empirical.empty()) {
    value = empirical.sample(rng);
  }
  return std::max(0.0, value);
}

double SizeModel::mean() const {
  if (kind == SizeModelKind::kParametric && parametric.has_value()) {
    const double m = parametric->mean();
    if (std::isfinite(m)) return std::max(0.0, m);
  }
  if (empirical.empty()) return 0.0;
  double total = 0.0;
  for (const double v : empirical.values()) total += v;
  return total / static_cast<double>(empirical.size());
}

util::Json SizeModel::to_json() const {
  util::Json doc = util::Json::object();
  if (parametric.has_value()) doc["parametric"] = parametric->to_json();
  doc["ks"] = util::Json(ks);
  doc["ks_pvalue"] = util::Json(ks_pvalue);
  doc["kind"] = util::Json(kind == SizeModelKind::kParametric ? "parametric" : "empirical");
  doc["empirical"] = ecdf_to_json(empirical);
  return doc;
}

SizeModel SizeModel::from_json(const util::Json& doc) {
  SizeModel m;
  if (doc.contains("parametric")) {
    m.parametric = stats::Distribution::from_json(doc.at("parametric"));
  }
  m.ks = doc.get_number("ks", 1.0);
  m.ks_pvalue = doc.get_number("ks_pvalue", 0.0);
  m.kind = doc.get_string("kind", "parametric") == "empirical" ? SizeModelKind::kEmpirical
                                                               : SizeModelKind::kParametric;
  if (doc.contains("empirical")) m.empirical = ecdf_from_json(doc.at("empirical"));
  return m;
}

std::size_t CountModel::predict(double x) const {
  const double y = fit.predict(x);
  return y <= 0.0 ? 0 : static_cast<std::size_t>(std::llround(y));
}

util::Json CountModel::to_json() const {
  util::Json doc = util::Json::object();
  doc["fit"] = fit.to_json();
  doc["regressor"] = util::Json(regressor);
  return doc;
}

CountModel CountModel::from_json(const util::Json& doc) {
  CountModel m;
  m.fit = stats::LinearFit::from_json(doc.at("fit"));
  m.regressor = doc.get_string("regressor", "x");
  return m;
}

double TemporalModel::sample_start(util::Rng& rng, double job_duration_s) const {
  const double start = phase_start_frac * job_duration_s;
  const double span = std::max(0.0, (phase_end_frac - phase_start_frac) * job_duration_s);
  const double offset = normalized_offsets.empty() ? rng.uniform() : normalized_offsets.sample(rng);
  return start + std::clamp(offset, 0.0, 1.0) * span;
}

util::Json TemporalModel::to_json() const {
  util::Json doc = util::Json::object();
  doc["offsets"] = ecdf_to_json(normalized_offsets, 256);
  doc["phase_start_frac"] = util::Json(phase_start_frac);
  doc["phase_end_frac"] = util::Json(phase_end_frac);
  return doc;
}

TemporalModel TemporalModel::from_json(const util::Json& doc) {
  TemporalModel m;
  if (doc.contains("offsets")) m.normalized_offsets = ecdf_from_json(doc.at("offsets"));
  m.phase_start_frac = doc.get_number("phase_start_frac", 0.0);
  m.phase_end_frac = doc.get_number("phase_end_frac", 1.0);
  return m;
}

util::Json ClassModel::to_json() const {
  util::Json doc = util::Json::object();
  doc["size"] = size.to_json();
  doc["count"] = count.to_json();
  doc["temporal"] = temporal.to_json();
  doc["training_flows"] = util::Json(static_cast<std::uint64_t>(training_flows));
  doc["training_bytes"] = util::Json(training_bytes);
  return doc;
}

ClassModel ClassModel::from_json(const util::Json& doc) {
  ClassModel m;
  m.size = SizeModel::from_json(doc.at("size"));
  m.count = CountModel::from_json(doc.at("count"));
  m.temporal = TemporalModel::from_json(doc.at("temporal"));
  m.training_flows = static_cast<std::size_t>(doc.get_number("training_flows", 0.0));
  m.training_bytes = doc.get_number("training_bytes", 0.0);
  return m;
}

}  // namespace keddah::model
