// KeddahModel: the trained traffic model of one MapReduce job family under
// one cluster configuration — Keddah's primary artefact. It bundles the
// four per-class component models with job-level scaling laws, and can be
// persisted to JSON for use by separate replay/what-if tools.
#pragma once

#include <array>
#include <string>

#include "model/flow_models.h"
#include "net/flow.h"
#include "stats/regression.h"
#include "util/json.h"

namespace keddah::model {

/// Traffic classes Keddah models (control is modelled, "other" is not).
inline constexpr std::array<net::FlowKind, 4> kModelledClasses = {
    net::FlowKind::kHdfsRead, net::FlowKind::kShuffle, net::FlowKind::kHdfsWrite,
    net::FlowKind::kControl};

/// Summary of the configuration the model was trained under; generation for
/// materially different configurations is extrapolation and is reported as
/// such.
struct TrainingContext {
  std::uint64_t block_size = 0;
  std::uint32_t replication = 0;
  std::size_t cluster_nodes = 0;
  std::size_t num_runs = 0;
  double min_input_bytes = 0.0;
  double max_input_bytes = 0.0;

  util::Json to_json() const;
  static TrainingContext from_json(const util::Json& doc);
};

/// The full per-job-type traffic model.
class KeddahModel {
 public:
  KeddahModel() = default;

  const std::string& job_name() const { return job_name_; }
  void set_job_name(std::string name) { job_name_ = std::move(name); }

  TrainingContext& context() { return context_; }
  const TrainingContext& context() const { return context_; }

  /// Per-class component model access; throws std::out_of_range for
  /// classes outside kModelledClasses.
  ClassModel& class_model(net::FlowKind kind);
  const ClassModel& class_model(net::FlowKind kind) const;

  /// Job wall-clock seconds as a function of input bytes.
  stats::LinearFit& duration_model() { return duration_vs_input_; }
  const stats::LinearFit& duration_model() const { return duration_vs_input_; }

  /// Per-class network bytes as a function of input bytes (through origin).
  stats::LinearFit& volume_model(net::FlowKind kind);
  const stats::LinearFit& volume_model(net::FlowKind kind) const;

  /// Predicted job duration for an input size (clamped positive).
  double predict_duration(double input_bytes) const;

  /// Predicted per-class traffic volume for an input size.
  double predict_volume(net::FlowKind kind, double input_bytes) const;

  util::Json to_json() const;
  static KeddahModel from_json(const util::Json& doc);
  void save(const std::string& path) const;
  static KeddahModel load(const std::string& path);

 private:
  static std::size_t class_index(net::FlowKind kind);

  std::string job_name_;
  TrainingContext context_;
  std::array<ClassModel, kModelledClasses.size()> classes_;
  std::array<stats::LinearFit, kModelledClasses.size()> volume_vs_input_;
  stats::LinearFit duration_vs_input_;
};

}  // namespace keddah::model
