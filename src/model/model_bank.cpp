#include "model/model_bank.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace keddah::model {

void ModelBank::add(KeddahModel model) {
  models_.push_back(std::make_unique<KeddahModel>(std::move(model)));
}

std::vector<std::string> ModelBank::job_names() const {
  std::set<std::string> names;
  for (const auto& m : models_) names.insert(m->job_name());
  return {names.begin(), names.end()};
}

std::vector<const KeddahModel*> ModelBank::models_for(const std::string& job_name) const {
  std::vector<const KeddahModel*> out;
  for (const auto& m : models_) {
    if (m->job_name() == job_name) out.push_back(m.get());
  }
  return out;
}

const KeddahModel* ModelBank::find_exact(const std::string& job_name, std::uint64_t block_size,
                                         std::uint32_t replication,
                                         std::size_t cluster_nodes) const {
  for (const auto& m : models_) {
    const auto& ctx = m->context();
    if (m->job_name() == job_name && ctx.block_size == block_size &&
        ctx.replication == replication && ctx.cluster_nodes == cluster_nodes) {
      return m.get();
    }
  }
  return nullptr;
}

double ModelBank::config_distance(const TrainingContext& a, std::uint64_t block_size,
                                  std::uint32_t replication, std::size_t cluster_nodes) {
  auto log_ratio = [](double x, double y) {
    if (x <= 0.0 || y <= 0.0) return x == y ? 0.0 : 10.0;  // unknown dims are distant
    return std::fabs(std::log2(x / y));
  };
  return log_ratio(static_cast<double>(a.block_size), static_cast<double>(block_size)) +
         std::fabs(static_cast<double>(a.replication) - static_cast<double>(replication)) +
         log_ratio(static_cast<double>(a.cluster_nodes), static_cast<double>(cluster_nodes));
}

const KeddahModel* ModelBank::select(const std::string& job_name, std::uint64_t block_size,
                                     std::uint32_t replication,
                                     std::size_t cluster_nodes) const {
  const KeddahModel* best = nullptr;
  double best_distance = 0.0;
  for (const auto& m : models_) {
    if (m->job_name() != job_name) continue;
    const double d = config_distance(m->context(), block_size, replication, cluster_nodes);
    if (best == nullptr || d < best_distance) {
      best = m.get();
      best_distance = d;
    }
  }
  return best;
}

util::Json ModelBank::to_json() const {
  util::Json arr = util::Json::array();
  for (const auto& m : models_) arr.push_back(m->to_json());
  util::Json doc = util::Json::object();
  doc["models"] = std::move(arr);
  return doc;
}

ModelBank ModelBank::from_json(const util::Json& doc) {
  ModelBank bank;
  for (const auto& entry : doc.at("models").as_array()) {
    bank.add(KeddahModel::from_json(entry));
  }
  return bank;
}

void ModelBank::save(const std::string& path) const { to_json().save_file(path); }

ModelBank ModelBank::load(const std::string& path) {
  return from_json(util::Json::load_file(path));
}

}  // namespace keddah::model
