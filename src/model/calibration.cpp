#include "model/calibration.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "stats/regression.h"

namespace keddah::model {

CalibratedProfile calibrate_profile(const TrainingRun& run,
                                    const CalibrationContext& context) {
  if (context.cluster_nodes < 2) {
    throw std::invalid_argument("calibration: need >= 2 cluster nodes");
  }
  CalibratedProfile profile;

  const auto shuffle = run.trace.filter_kind(net::FlowKind::kShuffle);
  const auto writes = run.trace.filter_kind(net::FlowKind::kHdfsWrite);
  profile.shuffle_bytes = shuffle.total_bytes();
  profile.write_bytes = writes.total_bytes();

  // Captured shuffle bytes miss the ~1/N host-local fetches and shrink
  // under wire compression; invert both effects.
  const double visible_fraction =
      1.0 - 1.0 / static_cast<double>(context.cluster_nodes);
  const double compress =
      context.map_output_compress_ratio > 0.0 ? context.map_output_compress_ratio : 1.0;
  profile.estimated_map_output =
      profile.shuffle_bytes / (visible_fraction * compress);
  if (run.input_bytes > 0.0) {
    profile.map_selectivity = profile.estimated_map_output / run.input_bytes;
  }

  // Captured write bytes are the off-node pipeline copies: (replication-1)
  // per output byte. Replication 1 writes locally and is unobservable.
  if (context.replication >= 2) {
    profile.estimated_job_output =
        profile.write_bytes / static_cast<double>(context.replication - 1);
    if (profile.estimated_map_output > 0.0) {
      profile.reduce_selectivity = profile.estimated_job_output / profile.estimated_map_output;
    }
  }

  // Partition skew: per-reducer-host shuffle shares, sorted descending,
  // fitted to share ~ rank^-s in log-log space.
  std::map<net::NodeId, double> per_dst;
  for (const auto& r : shuffle.records()) per_dst[r.dst_id] += r.bytes;
  std::vector<double> shares;
  for (const auto& [dst, bytes] : per_dst) {
    (void)dst;
    if (bytes > 0.0) shares.push_back(bytes);
  }
  std::sort(shares.begin(), shares.end(), std::greater<>());
  if (shares.size() >= 3) {
    std::vector<double> ranks(shares.size());
    for (std::size_t i = 0; i < shares.size(); ++i) ranks[i] = static_cast<double>(i + 1);
    const auto fit = stats::fit_power_law(ranks, shares);
    profile.partition_skew = std::max(0.0, -fit.slope);
  }
  return profile;
}

}  // namespace keddah::model
