// Parallel sweep engine: deterministic index-ordered fan-out.
//
// Every Keddah experiment is a sweep of independent deterministic
// simulations (workloads x input sizes x repetitions x configs). Each task
// builds its own Simulator/Network/cluster, so tasks share no mutable state
// and can fan out across cores. SweepRunner provides that fan-out with the
// hard guarantee that MATTERS for a reproduction: results are bit-identical
// to serial execution at any thread count, because
//   - every task's randomness derives only from util::derive_seed(base, i)
//     (callers seed per task, never from a shared stream), and
//   - results land in index-ordered slots, never in completion order.
//
// Exceptions thrown by tasks are captured and the lowest-indexed one is
// rethrown after the sweep drains (a parallel sweep runs every task; a
// serial sweep stops at the throwing task — same exception either way).
//
// This header is the whole module: core sits just above util in the layer
// DAG (DESIGN.md "Layer DAG") so low layers (workloads::run_grid) can use
// the runner while linking only against keddah_util. The scenario-file
// fan-out helper run_scenarios() lives in keddah/sweep.h (keddah_core).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_pool.h"

namespace keddah::core {

/// Progress callback: (completed tasks, total tasks). Invoked after every
/// task completes, possibly from a worker thread but never concurrently
/// (the runner serializes invocations). Must not re-enter the runner.
using SweepProgress = std::function<void(std::size_t done, std::size_t total)>;

struct SweepOptions {
  /// Worker threads for the sweep; 0 = hardware concurrency.
  std::size_t threads = 0;
  SweepProgress progress;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {})
      : options_(std::move(options)), threads_(util::resolved_threads(options_.threads)) {}

  /// Effective worker count (after resolving 0 to hardware concurrency).
  std::size_t threads() const { return threads_; }

  /// Runs fn(0), fn(1), ..., fn(count-1) across the workers and returns the
  /// results ordered by task index. Serial (threads()==1) and parallel runs
  /// produce identical vectors for deterministic fn.
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn) -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
    using Result = std::decay_t<decltype(fn(std::size_t{0}))>;
    std::vector<Result> out;
    out.reserve(count);
    if (count == 0) return out;

    const std::size_t workers = threads_ < count ? threads_ : count;
    if (workers <= 1) {
      for (std::size_t i = 0; i < count; ++i) {
        out.push_back(fn(i));
        report_progress(i + 1, count);
      }
      return out;
    }

    // `slots` and `errors` need no lock: each worker writes only its own
    // index. `progress_mutex` guards `done` and serializes the progress
    // callback (GUARDED_BY is member/global-only, hence this comment).
    std::vector<std::optional<Result>> slots(count);
    std::vector<std::exception_ptr> errors(count);
    util::Mutex progress_mutex;
    std::size_t done = 0;
    {
      util::ThreadPool pool(workers);
      for (std::size_t i = 0; i < count; ++i) {
        pool.submit([&, i] {
          try {
            slots[i].emplace(fn(i));
          } catch (...) {
            errors[i] = std::current_exception();
          }
          util::MutexLock lock(&progress_mutex);
          report_progress(++done, count);
        });
      }
      pool.wait_idle();
    }
    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

  /// map() over an input span: fn(item) per item, results in item order.
  template <typename T, typename Fn>
  auto map_items(std::span<const T> items, Fn&& fn)
      -> std::vector<std::decay_t<decltype(fn(items[0]))>> {
    return map(items.size(), [&](std::size_t i) { return fn(items[i]); });
  }

 private:
  void report_progress(std::size_t done, std::size_t total) {
    if (options_.progress) options_.progress(done, total);
  }

  SweepOptions options_;
  std::size_t threads_;
};

}  // namespace keddah::core
