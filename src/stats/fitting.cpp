#include "stats/fitting.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/kstest.h"
#include "stats/special.h"
#include "stats/summary.h"

namespace keddah::stats {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool all_positive(std::span<const double> xs) {
  return std::all_of(xs.begin(), xs.end(), [](double x) { return x > 0.0; });
}

bool all_equal(std::span<const double> xs) {
  return std::all_of(xs.begin(), xs.end(), [&](double x) { return x == xs.front(); });
}

std::optional<Distribution> mle(DistFamily family, std::span<const double> xs) {
  const std::size_t n = xs.size();
  switch (family) {
    case DistFamily::kExponential: {
      const double m = mean(xs);
      if (m <= 0.0) return std::nullopt;
      return Distribution::exponential(1.0 / m);
    }
    case DistFamily::kNormal: {
      const double m = mean(xs);
      // MLE variance uses the n denominator.
      double acc = 0.0;
      for (const double x : xs) acc += (x - m) * (x - m);
      const double sd = std::sqrt(acc / static_cast<double>(n));
      if (sd <= 0.0) return std::nullopt;
      return Distribution::normal(m, sd);
    }
    case DistFamily::kLognormal: {
      if (!all_positive(xs)) return std::nullopt;
      double mu = 0.0;
      for (const double x : xs) mu += std::log(x);
      mu /= static_cast<double>(n);
      double acc = 0.0;
      for (const double x : xs) {
        const double d = std::log(x) - mu;
        acc += d * d;
      }
      const double sigma = std::sqrt(acc / static_cast<double>(n));
      if (sigma <= 0.0) return std::nullopt;
      return Distribution::lognormal(mu, sigma);
    }
    case DistFamily::kWeibull: {
      if (!all_positive(xs) || all_equal(xs)) return std::nullopt;
      // Solve g(k) = sum x^k ln x / sum x^k - 1/k - mean(ln x) = 0.
      double mean_ln = 0.0;
      for (const double x : xs) mean_ln += std::log(x);
      mean_ln /= static_cast<double>(n);
      auto g = [&](double k) {
        double num = 0.0;
        double den = 0.0;
        for (const double x : xs) {
          const double xk = std::pow(x, k);
          num += xk * std::log(x);
          den += xk;
        }
        return num / den - 1.0 / k - mean_ln;
      };
      // Bracket then bisect: g is increasing in k.
      double lo = 1e-3;
      double hi = 1.0;
      while (g(hi) < 0.0 && hi < 1e3) hi *= 2.0;
      if (g(hi) < 0.0) return std::nullopt;
      for (int i = 0; i < 100; ++i) {
        const double mid = 0.5 * (lo + hi);
        (g(mid) < 0.0 ? lo : hi) = mid;
      }
      const double k = 0.5 * (lo + hi);
      double sum_xk = 0.0;
      for (const double x : xs) sum_xk += std::pow(x, k);
      const double lambda = std::pow(sum_xk / static_cast<double>(n), 1.0 / k);
      if (!(k > 0.0) || !(lambda > 0.0)) return std::nullopt;
      return Distribution::weibull(k, lambda);
    }
    case DistFamily::kGamma: {
      if (!all_positive(xs) || all_equal(xs)) return std::nullopt;
      const double m = mean(xs);
      double mean_ln = 0.0;
      for (const double x : xs) mean_ln += std::log(x);
      mean_ln /= static_cast<double>(n);
      const double s = std::log(m) - mean_ln;
      if (s <= 0.0) return std::nullopt;
      // Minka's closed-form initializer then Newton on ln k - psi(k) = s.
      double k = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) / (12.0 * s);
      for (int i = 0; i < 50; ++i) {
        const double f = std::log(k) - digamma(k) - s;
        const double fp = 1.0 / k - trigamma(k);
        const double step = f / fp;
        k -= step;
        if (k <= 0.0) k = 1e-6;
        if (std::fabs(step) < 1e-12 * k) break;
      }
      if (!(k > 0.0) || !std::isfinite(k)) return std::nullopt;
      return Distribution::gamma_dist(k, m / k);
    }
    case DistFamily::kPareto: {
      if (!all_positive(xs) || all_equal(xs)) return std::nullopt;
      const double xm = *std::min_element(xs.begin(), xs.end());
      double acc = 0.0;
      for (const double x : xs) acc += std::log(x / xm);
      if (acc <= 0.0) return std::nullopt;
      const double alpha = static_cast<double>(n) / acc;
      return Distribution::pareto(xm, alpha);
    }
    case DistFamily::kUniform: {
      const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
      if (*hi <= *lo) return std::nullopt;
      return Distribution::uniform(*lo, *hi);
    }
    case DistFamily::kConstant: {
      if (!all_equal(xs)) return std::nullopt;
      return Distribution::constant(xs.front());
    }
  }
  return std::nullopt;
}

double criterion_value(const FitResult& r, SelectBy criterion) {
  switch (criterion) {
    case SelectBy::kKs:
      return r.ks;
    case SelectBy::kAic:
      return r.aic;
    case SelectBy::kLogLikelihood:
      return -r.log_likelihood;
  }
  return r.ks;
}

}  // namespace

std::optional<FitResult> fit_family(DistFamily family, std::span<const double> xs) {
  if (xs.empty()) return std::nullopt;
  const auto dist = mle(family, xs);
  if (!dist) return std::nullopt;
  FitResult result;
  result.dist = *dist;
  result.log_likelihood = dist->log_likelihood(xs);
  if (family == DistFamily::kConstant) {
    // Degenerate family: likelihood is a point mass; KS distance is zero by
    // construction when all samples equal the constant.
    result.ks = 0.0;
    result.ks_pvalue = 1.0;
    result.log_likelihood = 0.0;
    result.aic = 2.0;
    return result;
  }
  result.ks = ks_statistic(xs, *dist);
  result.ks_pvalue = ks_pvalue(result.ks, xs.size());
  result.aic = 2.0 * dist->num_params() - 2.0 * result.log_likelihood;
  if (!std::isfinite(result.log_likelihood)) result.aic = kInf;
  return result;
}

std::vector<FitResult> fit_all(std::span<const double> xs, SelectBy criterion) {
  std::vector<FitResult> results;
  for (const DistFamily family : all_families()) {
    if (auto r = fit_family(family, xs)) results.push_back(*r);
  }
  std::sort(results.begin(), results.end(), [criterion](const FitResult& a, const FitResult& b) {
    return criterion_value(a, criterion) < criterion_value(b, criterion);
  });
  return results;
}

std::optional<FitResult> fit_best(std::span<const double> xs, SelectBy criterion) {
  auto results = fit_all(xs, criterion);
  if (results.empty()) return std::nullopt;
  return results.front();
}

}  // namespace keddah::stats
