#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.h"

namespace keddah::stats {

Histogram Histogram::linear(std::span<const double> xs, double lo, double hi, std::size_t bins) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("histogram: bad bin spec");
  Histogram h;
  h.counts_.assign(bins, 0);
  h.edges_.resize(bins + 1);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t i = 0; i <= bins; ++i) h.edges_[i] = lo + width * static_cast<double>(i);
  for (const double x : xs) {
    auto bin = static_cast<std::ptrdiff_t>((x - lo) / width);
    bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(bins) - 1);
    ++h.counts_[static_cast<std::size_t>(bin)];
    ++h.total_;
  }
  return h;
}

Histogram Histogram::log10(std::span<const double> xs, double lo, double hi, std::size_t bins) {
  if (lo <= 0.0 || hi <= lo || bins == 0) throw std::invalid_argument("histogram: bad log spec");
  Histogram h;
  h.log_scale_ = true;
  h.counts_.assign(bins, 0);
  h.edges_.resize(bins + 1);
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  const double width = (lhi - llo) / static_cast<double>(bins);
  for (std::size_t i = 0; i <= bins; ++i) {
    h.edges_[i] = std::pow(10.0, llo + width * static_cast<double>(i));
  }
  for (const double x : xs) {
    const double lx = std::log10(std::max(x, lo));
    auto bin = static_cast<std::ptrdiff_t>((lx - llo) / width);
    bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(bins) - 1);
    ++h.counts_[static_cast<std::size_t>(bin)];
    ++h.total_;
  }
  return h;
}

double Histogram::fraction(std::size_t bin) const {
  return total_ == 0 ? 0.0 : static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t max_count = 1;
  for (const auto c : counts_) max_count = std::max(max_count, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / max_count;
    out += util::format("%12.3g | %s %zu\n", edges_[i], std::string(bar, '#').c_str(), counts_[i]);
  }
  return out;
}

}  // namespace keddah::stats
