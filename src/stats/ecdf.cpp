#include "stats/ecdf.h"

#include <algorithm>
#include <stdexcept>

#include "stats/summary.h"

namespace keddah::stats {

Ecdf::Ecdf(std::span<const double> xs) : sorted_(xs.begin(), xs.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::cdf(double x) const {
  if (sorted_.empty()) throw std::logic_error("ecdf: empty sample");
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  if (sorted_.empty()) throw std::logic_error("ecdf: empty sample");
  return quantile_sorted(sorted_, q);
}

double Ecdf::sample(util::Rng& rng) const {
  if (sorted_.empty()) throw std::logic_error("ecdf: empty sample");
  return quantile_sorted(sorted_, rng.uniform());
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1 == 0 ? 1 : points - 1);
    const double x = quantile_sorted(sorted_, q);
    out.emplace_back(x, cdf(x));
  }
  return out;
}

}  // namespace keddah::stats
