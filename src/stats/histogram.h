// Fixed-width and logarithmic histograms for traffic summaries.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace keddah::stats {

/// A binned view of a sample.
class Histogram {
 public:
  /// Linear bins over [lo, hi); out-of-range samples clamp to edge bins.
  static Histogram linear(std::span<const double> xs, double lo, double hi, std::size_t bins);

  /// Log10 bins spanning [lo, hi); lo must be > 0. Good for flow sizes that
  /// span B..GB.
  static Histogram log10(std::span<const double> xs, double lo, double hi, std::size_t bins);

  std::size_t num_bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }

  /// Lower edge of a bin.
  double edge(std::size_t bin) const { return edges_.at(bin); }

  /// Fraction of samples in a bin.
  double fraction(std::size_t bin) const;

  /// ASCII rendition (for examples / debugging).
  std::string ascii(std::size_t width = 40) const;

 private:
  Histogram() = default;
  std::vector<std::size_t> counts_;
  std::vector<double> edges_;  // size num_bins + 1
  std::size_t total_ = 0;
  bool log_scale_ = false;
};

}  // namespace keddah::stats
