// Maximum-likelihood fitting and model selection over the candidate
// distribution families. This is Keddah's "modelling" step for flow sizes.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "stats/distributions.h"

namespace keddah::stats {

/// Result of fitting one family to a sample.
struct FitResult {
  Distribution dist;
  /// Sum log-likelihood at the fitted parameters (-inf when the family
  /// cannot produce the data, e.g. Pareto on zeros).
  double log_likelihood = 0.0;
  /// One-sample KS distance between the data and the fitted CDF.
  double ks = 1.0;
  /// KS p-value (asymptotic, Stephens-corrected).
  double ks_pvalue = 0.0;
  /// Akaike information criterion: 2k - 2 lnL.
  double aic = 0.0;
};

/// Criterion for picking the winning family.
enum class SelectBy { kKs, kAic, kLogLikelihood };

/// Fits one family by MLE. Returns nullopt when the family is inapplicable
/// (e.g. lognormal on non-positive data, degenerate samples).
std::optional<FitResult> fit_family(DistFamily family, std::span<const double> xs);

/// Fits every applicable family; results sorted best-first by `criterion`.
std::vector<FitResult> fit_all(std::span<const double> xs, SelectBy criterion = SelectBy::kKs);

/// Fits all families and returns the winner by `criterion`; nullopt when no
/// family is applicable (e.g. empty sample).
std::optional<FitResult> fit_best(std::span<const double> xs, SelectBy criterion = SelectBy::kKs);

}  // namespace keddah::stats
