// Descriptive statistics over samples.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/rng.h"

namespace keddah::stats {

/// Moments and order statistics of a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;  // unbiased (n-1 denominator); 0 for n < 2
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double sum = 0.0;
};

/// Computes a Summary; empty input yields a zeroed struct.
Summary summarize(std::span<const double> xs);

/// Linear-interpolated quantile of a *sorted* sample, q in [0, 1].
double quantile_sorted(std::span<const double> sorted, double q);

/// Convenience: copies, sorts, takes quantile.
double quantile(std::span<const double> xs, double q);

/// Mean; 0 for empty input.
double mean(std::span<const double> xs);

/// Unbiased sample variance; 0 for n < 2.
double variance(std::span<const double> xs);

/// A two-sided confidence interval.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;
};

/// Percentile-bootstrap confidence interval for an arbitrary statistic of
/// the sample (e.g. the mean, a quantile): resamples with replacement
/// `resamples` times and takes the (alpha/2, 1-alpha/2) percentiles of the
/// statistic's distribution. Used to put error bars on validation metrics.
/// Throws std::invalid_argument on empty input or alpha outside (0, 1).
ConfidenceInterval bootstrap_ci(std::span<const double> xs,
                                const std::function<double(std::span<const double>)>& statistic,
                                util::Rng& rng, std::size_t resamples = 1000,
                                double alpha = 0.05);

}  // namespace keddah::stats
