// Parametric distribution families used by Keddah flow-size models.
//
// A Distribution is a small value type (family tag + two parameters) with
// pdf/cdf/quantile/sampling and JSON round-tripping, so trained models can be
// persisted and replayed.
#pragma once

#include <span>
#include <string>

#include "util/json.h"
#include "util/rng.h"

namespace keddah::stats {

/// Candidate families Keddah considers when fitting flow sizes.
enum class DistFamily {
  kExponential,  // p1 = rate lambda
  kNormal,       // p1 = mean, p2 = stddev
  kLognormal,    // p1 = mu, p2 = sigma (parameters of log X)
  kWeibull,      // p1 = shape k, p2 = scale lambda
  kGamma,        // p1 = shape k, p2 = scale theta
  kPareto,       // p1 = minimum xm, p2 = tail index alpha
  kUniform,      // p1 = lo, p2 = hi
  kConstant,     // p1 = value (degenerate; exact-size flows e.g. full blocks)
};

/// All fittable families, in fitting order.
std::span<const DistFamily> all_families();

/// "exponential", "lognormal", ... (stable identifiers used in JSON).
const char* family_name(DistFamily family);

/// Inverse of family_name; throws std::invalid_argument on unknown names.
DistFamily family_from_name(const std::string& name);

/// A parameterized distribution.
class Distribution {
 public:
  /// Constructs a constant-zero distribution (useful default).
  Distribution() : family_(DistFamily::kConstant), p1_(0.0), p2_(0.0) {}

  static Distribution exponential(double lambda);
  static Distribution normal(double mean, double stddev);
  static Distribution lognormal(double mu, double sigma);
  static Distribution weibull(double shape, double scale);
  static Distribution gamma_dist(double shape, double scale);
  static Distribution pareto(double xm, double alpha);
  static Distribution uniform(double lo, double hi);
  static Distribution constant(double value);

  DistFamily family() const { return family_; }
  double param1() const { return p1_; }
  double param2() const { return p2_; }

  /// Probability density at x (mass 1 at the point for kConstant).
  double pdf(double x) const;

  /// Cumulative distribution function.
  double cdf(double x) const;

  /// Inverse CDF, q in [0, 1]; clamps at support boundaries.
  double quantile(double q) const;

  /// Theoretical mean (may be infinite for heavy-tailed Pareto).
  double mean() const;

  /// Draws one sample.
  double sample(util::Rng& rng) const;

  /// Sum of log pdf over the data; -inf when any point has zero density.
  double log_likelihood(std::span<const double> xs) const;

  /// Number of free parameters (for AIC).
  int num_params() const;

  /// Human-readable description, e.g. "lognormal(mu=13.2, sigma=0.8)".
  std::string describe() const;

  util::Json to_json() const;
  static Distribution from_json(const util::Json& doc);

 private:
  Distribution(DistFamily family, double p1, double p2) : family_(family), p1_(p1), p2_(p2) {}

  DistFamily family_;
  double p1_;
  double p2_;
};

}  // namespace keddah::stats
