// Special functions needed by maximum-likelihood fitting and
// goodness-of-fit testing. Implementations follow standard numerical
// recipes; accuracy is ample for model selection purposes (~1e-10).
#pragma once

namespace keddah::stats {

/// Digamma function psi(x) = d/dx ln Gamma(x), x > 0.
double digamma(double x);

/// Trigamma function psi'(x), x > 0.
double trigamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a),
/// a > 0, x >= 0. This is the CDF of a Gamma(shape=a, scale=1) variate.
double reg_lower_incomplete_gamma(double a, double x);

/// Kolmogorov distribution tail Q_KS(lambda) = 2 * sum (-1)^{j-1}
/// exp(-2 j^2 lambda^2); the asymptotic p-value machinery of the KS test.
double kolmogorov_q(double lambda);

/// Standard normal CDF.
double normal_cdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Halley step); |error| < 1e-9 on (0, 1).
double normal_quantile(double p);

}  // namespace keddah::stats
