#include "stats/distributions.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/special.h"
#include "util/strings.h"

namespace keddah::stats {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("distribution: ") + what);
}
}  // namespace

std::span<const DistFamily> all_families() {
  static constexpr std::array<DistFamily, 8> kAll = {
      DistFamily::kExponential, DistFamily::kNormal, DistFamily::kLognormal,
      DistFamily::kWeibull,     DistFamily::kGamma,  DistFamily::kPareto,
      DistFamily::kUniform,     DistFamily::kConstant};
  return kAll;
}

const char* family_name(DistFamily family) {
  switch (family) {
    case DistFamily::kExponential:
      return "exponential";
    case DistFamily::kNormal:
      return "normal";
    case DistFamily::kLognormal:
      return "lognormal";
    case DistFamily::kWeibull:
      return "weibull";
    case DistFamily::kGamma:
      return "gamma";
    case DistFamily::kPareto:
      return "pareto";
    case DistFamily::kUniform:
      return "uniform";
    case DistFamily::kConstant:
      return "constant";
  }
  return "unknown";
}

DistFamily family_from_name(const std::string& name) {
  for (const DistFamily f : all_families()) {
    if (name == family_name(f)) return f;
  }
  throw std::invalid_argument("distribution: unknown family '" + name + "'");
}

Distribution Distribution::exponential(double lambda) {
  require(lambda > 0.0, "exponential rate must be positive");
  return {DistFamily::kExponential, lambda, 0.0};
}

Distribution Distribution::normal(double mean, double stddev) {
  require(stddev >= 0.0, "normal stddev must be non-negative");
  return {DistFamily::kNormal, mean, stddev};
}

Distribution Distribution::lognormal(double mu, double sigma) {
  require(sigma >= 0.0, "lognormal sigma must be non-negative");
  return {DistFamily::kLognormal, mu, sigma};
}

Distribution Distribution::weibull(double shape, double scale) {
  require(shape > 0.0 && scale > 0.0, "weibull params must be positive");
  return {DistFamily::kWeibull, shape, scale};
}

Distribution Distribution::gamma_dist(double shape, double scale) {
  require(shape > 0.0 && scale > 0.0, "gamma params must be positive");
  return {DistFamily::kGamma, shape, scale};
}

Distribution Distribution::pareto(double xm, double alpha) {
  require(xm > 0.0 && alpha > 0.0, "pareto params must be positive");
  return {DistFamily::kPareto, xm, alpha};
}

Distribution Distribution::uniform(double lo, double hi) {
  require(hi >= lo, "uniform needs hi >= lo");
  return {DistFamily::kUniform, lo, hi};
}

Distribution Distribution::constant(double value) { return {DistFamily::kConstant, value, 0.0}; }

double Distribution::pdf(double x) const {
  switch (family_) {
    case DistFamily::kExponential:
      return x < 0.0 ? 0.0 : p1_ * std::exp(-p1_ * x);
    case DistFamily::kNormal: {
      if (p2_ <= 0.0) return x == p1_ ? kInf : 0.0;
      const double z = (x - p1_) / p2_;
      return std::exp(-0.5 * z * z) / (p2_ * std::sqrt(2.0 * M_PI));
    }
    case DistFamily::kLognormal: {
      if (x <= 0.0) return 0.0;
      if (p2_ <= 0.0) return std::log(x) == p1_ ? kInf : 0.0;
      const double z = (std::log(x) - p1_) / p2_;
      return std::exp(-0.5 * z * z) / (x * p2_ * std::sqrt(2.0 * M_PI));
    }
    case DistFamily::kWeibull: {
      if (x < 0.0) return 0.0;
      const double k = p1_;
      const double lam = p2_;
      if (x == 0.0) return k < 1.0 ? kInf : (k == 1.0 ? 1.0 / lam : 0.0);
      const double r = x / lam;
      return (k / lam) * std::pow(r, k - 1.0) * std::exp(-std::pow(r, k));
    }
    case DistFamily::kGamma: {
      if (x < 0.0) return 0.0;
      const double k = p1_;
      const double theta = p2_;
      if (x == 0.0) return k < 1.0 ? kInf : (k == 1.0 ? 1.0 / theta : 0.0);
      return std::exp((k - 1.0) * std::log(x) - x / theta - std::lgamma(k) - k * std::log(theta));
    }
    case DistFamily::kPareto:
      if (x < p1_) return 0.0;
      return p2_ * std::pow(p1_, p2_) / std::pow(x, p2_ + 1.0);
    case DistFamily::kUniform:
      if (x < p1_ || x > p2_) return 0.0;
      return p2_ > p1_ ? 1.0 / (p2_ - p1_) : kInf;
    case DistFamily::kConstant:
      return x == p1_ ? kInf : 0.0;
  }
  return 0.0;
}

double Distribution::cdf(double x) const {
  switch (family_) {
    case DistFamily::kExponential:
      return x < 0.0 ? 0.0 : 1.0 - std::exp(-p1_ * x);
    case DistFamily::kNormal:
      if (p2_ <= 0.0) return x >= p1_ ? 1.0 : 0.0;
      return normal_cdf((x - p1_) / p2_);
    case DistFamily::kLognormal:
      if (x <= 0.0) return 0.0;
      if (p2_ <= 0.0) return std::log(x) >= p1_ ? 1.0 : 0.0;
      return normal_cdf((std::log(x) - p1_) / p2_);
    case DistFamily::kWeibull:
      return x < 0.0 ? 0.0 : 1.0 - std::exp(-std::pow(x / p2_, p1_));
    case DistFamily::kGamma:
      return x <= 0.0 ? 0.0 : reg_lower_incomplete_gamma(p1_, x / p2_);
    case DistFamily::kPareto:
      return x < p1_ ? 0.0 : 1.0 - std::pow(p1_ / x, p2_);
    case DistFamily::kUniform:
      if (x < p1_) return 0.0;
      if (x >= p2_) return 1.0;
      return (x - p1_) / (p2_ - p1_);
    case DistFamily::kConstant:
      return x >= p1_ ? 1.0 : 0.0;
  }
  return 0.0;
}

double Distribution::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  switch (family_) {
    case DistFamily::kExponential:
      return q >= 1.0 ? kInf : -std::log(1.0 - q) / p1_;
    case DistFamily::kNormal:
      if (p2_ <= 0.0) return p1_;
      if (q <= 0.0) return -kInf;
      if (q >= 1.0) return kInf;
      return p1_ + p2_ * normal_quantile(q);
    case DistFamily::kLognormal:
      if (p2_ <= 0.0) return std::exp(p1_);
      if (q <= 0.0) return 0.0;
      if (q >= 1.0) return kInf;
      return std::exp(p1_ + p2_ * normal_quantile(q));
    case DistFamily::kWeibull:
      return q >= 1.0 ? kInf : p2_ * std::pow(-std::log(1.0 - q), 1.0 / p1_);
    case DistFamily::kGamma: {
      if (q <= 0.0) return 0.0;
      if (q >= 1.0) return kInf;
      // Bisection on the CDF; monotone, so robust if slow. Bounds grow until
      // they bracket the target.
      double lo = 0.0;
      double hi = p1_ * p2_ + 1.0;
      while (cdf(hi) < q) hi *= 2.0;
      for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        (cdf(mid) < q ? lo : hi) = mid;
      }
      return 0.5 * (lo + hi);
    }
    case DistFamily::kPareto:
      return q >= 1.0 ? kInf : p1_ / std::pow(1.0 - q, 1.0 / p2_);
    case DistFamily::kUniform:
      return p1_ + q * (p2_ - p1_);
    case DistFamily::kConstant:
      return p1_;
  }
  return 0.0;
}

double Distribution::mean() const {
  switch (family_) {
    case DistFamily::kExponential:
      return 1.0 / p1_;
    case DistFamily::kNormal:
      return p1_;
    case DistFamily::kLognormal:
      return std::exp(p1_ + 0.5 * p2_ * p2_);
    case DistFamily::kWeibull:
      return p2_ * std::tgamma(1.0 + 1.0 / p1_);
    case DistFamily::kGamma:
      return p1_ * p2_;
    case DistFamily::kPareto:
      return p2_ > 1.0 ? p2_ * p1_ / (p2_ - 1.0) : kInf;
    case DistFamily::kUniform:
      return 0.5 * (p1_ + p2_);
    case DistFamily::kConstant:
      return p1_;
  }
  return 0.0;
}

double Distribution::sample(util::Rng& rng) const {
  switch (family_) {
    case DistFamily::kExponential:
      return rng.exponential(p1_);
    case DistFamily::kNormal:
      return rng.normal(p1_, p2_);
    case DistFamily::kLognormal:
      return rng.lognormal(p1_, p2_);
    case DistFamily::kWeibull:
      return rng.weibull(p1_, p2_);
    case DistFamily::kGamma:
      return rng.gamma(p1_, p2_);
    case DistFamily::kPareto:
      return rng.pareto(p1_, p2_);
    case DistFamily::kUniform:
      return rng.uniform(p1_, p2_);
    case DistFamily::kConstant:
      return p1_;
  }
  return 0.0;
}

double Distribution::log_likelihood(std::span<const double> xs) const {
  double total = 0.0;
  for (const double x : xs) {
    const double d = pdf(x);
    if (d <= 0.0 || !std::isfinite(d)) return -kInf;
    total += std::log(d);
  }
  return total;
}

int Distribution::num_params() const {
  switch (family_) {
    case DistFamily::kExponential:
    case DistFamily::kConstant:
      return 1;
    default:
      return 2;
  }
}

std::string Distribution::describe() const {
  switch (family_) {
    case DistFamily::kExponential:
      return util::format("exponential(lambda=%.4g)", p1_);
    case DistFamily::kNormal:
      return util::format("normal(mean=%.4g, sd=%.4g)", p1_, p2_);
    case DistFamily::kLognormal:
      return util::format("lognormal(mu=%.4g, sigma=%.4g)", p1_, p2_);
    case DistFamily::kWeibull:
      return util::format("weibull(k=%.4g, lambda=%.4g)", p1_, p2_);
    case DistFamily::kGamma:
      return util::format("gamma(k=%.4g, theta=%.4g)", p1_, p2_);
    case DistFamily::kPareto:
      return util::format("pareto(xm=%.4g, alpha=%.4g)", p1_, p2_);
    case DistFamily::kUniform:
      return util::format("uniform(%.4g, %.4g)", p1_, p2_);
    case DistFamily::kConstant:
      return util::format("constant(%.4g)", p1_);
  }
  return "?";
}

util::Json Distribution::to_json() const {
  util::Json doc = util::Json::object();
  doc["family"] = util::Json(family_name(family_));
  doc["p1"] = util::Json(p1_);
  doc["p2"] = util::Json(p2_);
  return doc;
}

Distribution Distribution::from_json(const util::Json& doc) {
  const DistFamily family = family_from_name(doc.at("family").as_string());
  const double p1 = doc.at("p1").as_number();
  const double p2 = doc.at("p2").as_number();
  switch (family) {
    case DistFamily::kExponential:
      return exponential(p1);
    case DistFamily::kNormal:
      return normal(p1, p2);
    case DistFamily::kLognormal:
      return lognormal(p1, p2);
    case DistFamily::kWeibull:
      return weibull(p1, p2);
    case DistFamily::kGamma:
      return gamma_dist(p1, p2);
    case DistFamily::kPareto:
      return pareto(p1, p2);
    case DistFamily::kUniform:
      return uniform(p1, p2);
    case DistFamily::kConstant:
      return constant(p1);
  }
  throw std::invalid_argument("distribution: bad family");
}

}  // namespace keddah::stats
