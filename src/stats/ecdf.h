// Empirical cumulative distribution function.
//
// The empirical CDF is both the non-parametric fallback size model in Keddah
// and the object the KS goodness-of-fit machinery compares against.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace keddah::stats {

/// Immutable empirical distribution over a sample.
class Ecdf {
 public:
  Ecdf() = default;

  /// Copies and sorts the sample. Empty samples are allowed but cdf()/
  /// quantile() then throw.
  explicit Ecdf(std::span<const double> xs);

  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

  /// F(x) = (#samples <= x) / n.
  double cdf(double x) const;

  /// Inverse CDF with linear interpolation between order statistics.
  double quantile(double q) const;

  /// Draws by inverse-transform over the sample (smoothed bootstrap with
  /// interpolation between adjacent order statistics).
  double sample(util::Rng& rng) const;

  /// The sorted sample.
  const std::vector<double>& values() const { return sorted_; }

  /// (x, F(x)) pairs at `points` evenly spaced quantiles; used for printing
  /// figure series.
  std::vector<std::pair<double, double>> curve(std::size_t points = 50) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace keddah::stats
