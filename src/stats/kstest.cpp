#include "stats/kstest.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/distributions.h"
#include "stats/special.h"

namespace keddah::stats {

double ks_statistic(std::span<const double> xs, const std::function<double(double)>& cdf) {
  if (xs.empty()) throw std::invalid_argument("ks: empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(f - lo), std::fabs(hi - f)});
  }
  return d;
}

double ks_statistic(std::span<const double> xs, const Distribution& dist) {
  return ks_statistic(xs, [&dist](double x) { return dist.cdf(x); });
}

double ks_statistic_two_sample(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) throw std::invalid_argument("ks: empty sample");
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    d = std::max(d, std::fabs(static_cast<double>(ia) / na - static_cast<double>(ib) / nb));
  }
  return d;
}

double ks_pvalue(double d, std::size_t n) {
  if (n == 0) throw std::invalid_argument("ks: n must be positive");
  const double sqn = std::sqrt(static_cast<double>(n));
  // Stephens' correction improves the asymptotic formula for moderate n.
  const double lambda = (sqn + 0.12 + 0.11 / sqn) * d;
  return kolmogorov_q(lambda);
}

double ad_statistic(std::span<const double> xs, const Distribution& dist) {
  if (xs.empty()) throw std::invalid_argument("ad: empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double fi = dist.cdf(sorted[i]);
    const double fj = dist.cdf(sorted[sorted.size() - 1 - i]);
    if (fi <= 0.0 || fi >= 1.0 || fj <= 0.0 || fj >= 1.0) {
      return std::numeric_limits<double>::infinity();
    }
    sum += (2.0 * static_cast<double>(i) + 1.0) * (std::log(fi) + std::log(1.0 - fj));
  }
  return -n - sum / n;
}

double ks_pvalue_two_sample(double d, std::size_t n, std::size_t m) {
  if (n == 0 || m == 0) throw std::invalid_argument("ks: sizes must be positive");
  const double ne = static_cast<double>(n) * static_cast<double>(m) /
                    (static_cast<double>(n) + static_cast<double>(m));
  const double sqn = std::sqrt(ne);
  const double lambda = (sqn + 0.12 + 0.11 / sqn) * d;
  return kolmogorov_q(lambda);
}

}  // namespace keddah::stats
