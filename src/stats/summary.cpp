#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace keddah::stats {

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

ConfidenceInterval bootstrap_ci(std::span<const double> xs,
                                const std::function<double(std::span<const double>)>& statistic,
                                util::Rng& rng, std::size_t resamples, double alpha) {
  if (xs.empty()) throw std::invalid_argument("bootstrap: empty sample");
  if (alpha <= 0.0 || alpha >= 1.0) throw std::invalid_argument("bootstrap: bad alpha");
  ConfidenceInterval ci;
  ci.point = statistic(xs);
  std::vector<double> resample(xs.size());
  std::vector<double> stats;
  stats.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& value : resample) {
      value = xs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(xs.size()) - 1))];
    }
    stats.push_back(statistic(resample));
  }
  std::sort(stats.begin(), stats.end());
  ci.lo = quantile_sorted(stats, alpha / 2.0);
  ci.hi = quantile_sorted(stats, 1.0 - alpha / 2.0);
  return ci;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.n = xs.size();
  for (const double x : sorted) s.sum += x;
  s.mean = s.sum / static_cast<double>(s.n);
  double acc = 0.0;
  for (const double x : sorted) acc += (x - s.mean) * (x - s.mean);
  s.variance = s.n > 1 ? acc / static_cast<double>(s.n - 1) : 0.0;
  s.stddev = std::sqrt(s.variance);
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = quantile_sorted(sorted, 0.5);
  s.p25 = quantile_sorted(sorted, 0.25);
  s.p75 = quantile_sorted(sorted, 0.75);
  s.p95 = quantile_sorted(sorted, 0.95);
  s.p99 = quantile_sorted(sorted, 0.99);
  return s;
}

}  // namespace keddah::stats
