#include "stats/special.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace keddah::stats {

double digamma(double x) {
  if (x <= 0.0) throw std::domain_error("digamma: x must be positive");
  double result = 0.0;
  // Recurrence to push the argument above 10 where the asymptotic series
  // converges to full double precision.
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // Asymptotic expansion: ln x - 1/(2x) - sum B_2n/(2n x^{2n}).
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))));
  return result;
}

double trigamma(double x) {
  if (x <= 0.0) throw std::domain_error("trigamma: x must be positive");
  double result = 0.0;
  while (x < 10.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += inv * (1.0 + 0.5 * inv +
                   inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0 - inv2 / 30.0))));
  return result;
}

namespace {

/// Series expansion of P(a, x), valid for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Continued fraction for Q(a, x) = 1 - P(a, x), valid for x >= a + 1.
double gamma_q_contfrac(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double reg_lower_incomplete_gamma(double a, double x) {
  if (a <= 0.0) throw std::domain_error("incomplete gamma: a must be positive");
  if (x < 0.0) throw std::domain_error("incomplete gamma: x must be non-negative");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_contfrac(a, x);
}

double kolmogorov_q(double lambda) {
  if (lambda <= 0.0) return 1.0;
  const double l2 = lambda * lambda;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = sign * std::exp(-2.0 * j * j * l2);
    sum += term;
    if (std::fabs(term) < 1e-12) break;
    sign = -sign;
  }
  return std::min(1.0, std::max(0.0, 2.0 * sum));
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0) throw std::domain_error("normal_quantile: p in (0,1) required");
  // Acklam's approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

}  // namespace keddah::stats
