// Kolmogorov-Smirnov goodness-of-fit machinery.
//
// Keddah selects flow-size models by KS distance between the empirical CDF
// and each fitted candidate, and validates generated traffic with the
// two-sample KS statistic between captured and synthetic flow sizes.
#pragma once

#include <functional>
#include <span>

namespace keddah::stats {

class Distribution;

/// One-sample KS statistic D = sup_x |F_n(x) - F(x)| against an arbitrary
/// CDF. Data need not be sorted.
double ks_statistic(std::span<const double> xs, const std::function<double(double)>& cdf);

/// One-sample KS statistic against a parametric distribution.
double ks_statistic(std::span<const double> xs, const Distribution& dist);

/// Two-sample KS statistic D = sup_x |F_a(x) - F_b(x)|.
double ks_statistic_two_sample(std::span<const double> a, std::span<const double> b);

/// Asymptotic one-sample p-value for statistic d with sample size n
/// (Stephens' small-sample correction).
double ks_pvalue(double d, std::size_t n);

/// Asymptotic two-sample p-value with sizes n and m.
double ks_pvalue_two_sample(double d, std::size_t n, std::size_t m);

/// One-sample Anderson-Darling statistic A^2 against a parametric CDF.
/// More tail-sensitive than KS; used as a secondary goodness-of-fit view
/// on heavy-tailed flow-size fits. Requires 0 < F(x) < 1 on the sample
/// (returns +inf when a point sits at probability 0 or 1).
double ad_statistic(std::span<const double> xs, const Distribution& dist);

}  // namespace keddah::stats
