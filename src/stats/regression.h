// Least-squares regression used by Keddah's flow-count and traffic-volume
// scaling models (count/volume as a function of input size or of M x R).
#pragma once

#include <span>

#include "util/json.h"

namespace keddah::stats {

/// y = intercept + slope * x with fit quality.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1] (0 when variance of y is zero).
  double r2 = 0.0;
  std::size_t n = 0;

  double predict(double x) const { return intercept + slope * x; }

  util::Json to_json() const;
  static LinearFit from_json(const util::Json& doc);
};

/// Ordinary least squares. Requires xs.size() == ys.size() >= 2 with
/// non-constant xs; throws std::invalid_argument otherwise.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Least squares through the origin (y = slope * x), appropriate when the
/// quantity must vanish at zero input (e.g. shuffle bytes at zero input).
LinearFit fit_linear_through_origin(std::span<const double> xs, std::span<const double> ys);

/// Power-law fit y = a * x^b via least squares in log-log space. All inputs
/// must be positive. Returned LinearFit holds slope = b, intercept = ln a;
/// use predict_power().
LinearFit fit_power_law(std::span<const double> xs, std::span<const double> ys);

/// Evaluates a fit_power_law() result at x.
double predict_power(const LinearFit& fit, double x);

}  // namespace keddah::stats
