#include "stats/regression.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace keddah::stats {

namespace {
void check_sizes(std::span<const double> xs, std::span<const double> ys, std::size_t min_n) {
  if (xs.size() != ys.size()) throw std::invalid_argument("regression: size mismatch");
  if (xs.size() < min_n) throw std::invalid_argument("regression: too few points");
}

double r_squared(std::span<const double> xs, std::span<const double> ys, const LinearFit& fit) {
  double mean_y = 0.0;
  for (const double y : ys) mean_y += y;
  mean_y /= static_cast<double>(ys.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double resid = ys[i] - fit.predict(xs[i]);
    ss_res += resid * resid;
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  if (ss_tot <= 0.0) return ss_res <= 1e-12 ? 1.0 : 0.0;
  return std::max(0.0, 1.0 - ss_res / ss_tot);
}
}  // namespace

util::Json LinearFit::to_json() const {
  util::Json doc = util::Json::object();
  doc["slope"] = util::Json(slope);
  doc["intercept"] = util::Json(intercept);
  doc["r2"] = util::Json(r2);
  doc["n"] = util::Json(static_cast<std::uint64_t>(n));
  return doc;
}

LinearFit LinearFit::from_json(const util::Json& doc) {
  LinearFit fit;
  fit.slope = doc.at("slope").as_number();
  fit.intercept = doc.at("intercept").as_number();
  fit.r2 = doc.get_number("r2", 0.0);
  fit.n = static_cast<std::size_t>(doc.get_number("n", 0.0));
  return fit;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  check_sizes(xs, ys, 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12 * std::max(1.0, sxx)) {
    throw std::invalid_argument("regression: xs are (nearly) constant");
  }
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  fit.n = xs.size();
  fit.r2 = r_squared(xs, ys, fit);
  return fit;
}

LinearFit fit_linear_through_origin(std::span<const double> xs, std::span<const double> ys) {
  check_sizes(xs, ys, 1);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  if (sxx <= 0.0) throw std::invalid_argument("regression: xs are all zero");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = 0.0;
  fit.n = xs.size();
  // Uncentered R^2 (1 - SS_res / sum y^2): the conventional quality metric
  // for through-origin regression, and meaningful even when every x is the
  // same (centered R^2 degenerates to 0 there).
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double resid = ys[i] - fit.predict(xs[i]);
    ss_res += resid * resid;
    ss_tot += ys[i] * ys[i];
  }
  fit.r2 = ss_tot > 0.0 ? std::max(0.0, 1.0 - ss_res / ss_tot) : (ss_res <= 0.0 ? 1.0 : 0.0);
  return fit;
}

LinearFit fit_power_law(std::span<const double> xs, std::span<const double> ys) {
  check_sizes(xs, ys, 2);
  std::vector<double> lx(xs.size());
  std::vector<double> ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0.0 || ys[i] <= 0.0) {
      throw std::invalid_argument("regression: power law needs positive data");
    }
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return fit_linear(lx, ly);
}

double predict_power(const LinearFit& fit, double x) {
  if (x <= 0.0) throw std::invalid_argument("regression: power law needs positive x");
  return std::exp(fit.intercept + fit.slope * std::log(x));
}

}  // namespace keddah::stats
