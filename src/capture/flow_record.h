// Captured flow records: the observable Keddah's capture stage extracts from
// tcpdump on every cluster node. Our records are produced by network taps
// but carry the same fields a pcap-derived flow table would.
#pragma once

#include <cstdint>
#include <string>

#include "net/flow.h"

namespace keddah::capture {

/// One completed flow, as seen by the capture layer.
struct FlowRecord {
  /// Endpoint node names (hostnames in a real capture).
  std::string src;
  std::string dst;
  net::NodeId src_id = net::kInvalidNode;
  net::NodeId dst_id = net::kInvalidNode;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  /// Payload bytes transferred (data direction: src sent them).
  double bytes = 0.0;
  /// First-byte and last-byte timestamps, seconds.
  double start = 0.0;
  double end = 0.0;
  /// Job correlation (the paper correlates flows with job logs); 0 = none.
  std::uint32_t job_id = 0;
  /// Ground-truth class stamped by the emulator. The port classifier does
  /// NOT read this; it exists so tests can score the classifier.
  net::FlowKind truth = net::FlowKind::kOther;

  double duration() const { return end - start; }
};

/// Port-based traffic classification, mirroring the paper's methodology:
/// Hadoop services listen on well-known ports, so the traffic class of a
/// flow is recoverable from its 5-tuple alone.
///
///   src_port 50010 -> DataNode serving data  -> HDFS read
///   dst_port 50010 -> writing into pipeline  -> HDFS write
///   src_port 13562 -> ShuffleHandler reply   -> shuffle
///   8020/8030/8031 on either side            -> control RPC / heartbeats
net::FlowKind classify_by_ports(const FlowRecord& record);

}  // namespace keddah::capture
