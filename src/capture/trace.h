// A Trace is the unit the modelling stage consumes: the set of flow records
// captured during one job run (or a concatenation of runs), with filtering
// and aggregation helpers, and CSV persistence.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "capture/flow_record.h"
#include "util/csv.h"

namespace keddah::capture {

/// Per-traffic-class aggregate counters.
struct ClassStats {
  std::size_t flows = 0;
  double bytes = 0.0;
};

/// An ordered collection of captured flows.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<FlowRecord> records) : records_(std::move(records)) {}

  void add(FlowRecord record) { records_.push_back(std::move(record)); }
  void append(const Trace& other);

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const std::vector<FlowRecord>& records() const { return records_; }
  const FlowRecord& operator[](std::size_t i) const { return records_.at(i); }

  /// Subset with the given *classified* traffic class (port classifier).
  Trace filter_kind(net::FlowKind kind) const;

  /// Subset belonging to one job.
  Trace filter_job(std::uint32_t job_id) const;

  /// Subset with start time in [t0, t1).
  Trace filter_window(double t0, double t1) const;

  /// Flow sizes in bytes, in record order.
  std::vector<double> sizes() const;

  /// Flow start times, in record order.
  std::vector<double> start_times() const;

  /// Flow durations.
  std::vector<double> durations() const;

  double total_bytes() const;

  /// Earliest start / latest end over the trace (0/0 when empty).
  double first_start() const;
  double last_end() const;

  /// Aggregate counters per classified class, indexed by FlowKind.
  std::array<ClassStats, net::kNumFlowKinds> class_stats() const;

  /// Aggregate throughput time series: bytes transferred per `bin_s` bucket
  /// between first_start() and last_end(), assuming each flow transfers at
  /// uniform rate over its lifetime (the standard flow-to-timeseries
  /// smearing). Returns bytes per bin.
  std::vector<double> throughput_series(double bin_s) const;

  /// CSV persistence (columns match FlowRecord fields).
  util::CsvTable to_csv() const;
  static Trace from_csv(const util::CsvTable& table);
  void save(const std::string& path) const;
  static Trace load(const std::string& path);

  /// Compact binary persistence ("KDTR" format: header + node-name string
  /// table + 56-byte fixed-width records; smaller than CSV, parse-free to
  /// load, and lossless for doubles). Throws std::runtime_error on I/O
  /// errors or on malformed/mismatched files when loading.
  void save_binary(const std::string& path) const;
  static Trace load_binary(const std::string& path);

 private:
  std::vector<FlowRecord> records_;
};

}  // namespace keddah::capture
