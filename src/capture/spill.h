// Append-only, versioned, memory-mapped spill file for FlowRecords ("KSPL"
// format). The collector streams completed flows here instead of growing an
// in-memory Trace, so capture volume is bounded by disk, not RAM (the
// 10k-host scale scenarios produce millions of records).
//
// On-disk layout (all integers little-endian host order, doubles raw IEEE —
// a round trip is bit-exact):
//
//   offset  0  char[4]  magic "KSPL"
//   offset  4  u32      version (kSpillVersion)
//   offset  8  u32      record size in bytes (sizeof(SpillRecord), pinned)
//   offset 12  u32      flags (bit 0: finalized)
//   offset 16  u64      record count
//   offset 24  u64      name-table offset (0 until finalize)
//   offset 32  u8[32]   reserved (zero)
//   offset 64  records  record_count x SpillRecord
//   name table          u32 count, then per name: u32 length + bytes
//
// Crash semantics: the header's count/name-table fields are back-patched by
// finalize(); a file whose name-table offset is still 0 was abandoned
// mid-write and the reader rejects it (naming the offset) rather than
// guessing at a record count. Node names are interned in insertion order,
// matching the KDTR trace format's string table.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "capture/flow_record.h"
#include "capture/trace.h"
#include "util/mmap_arena.h"

namespace keddah::capture {

inline constexpr char kSpillMagic[4] = {'K', 'S', 'P', 'L'};
inline constexpr std::uint32_t kSpillVersion = 1;
inline constexpr std::size_t kSpillHeaderBytes = 64;

/// Fixed-width on-disk flow record (node names live in the name table).
/// Field-for-field the KDTR BinaryRecord layout, so the two formats stay
/// mutually convertible without precision loss.
struct SpillRecord {
  std::uint32_t src_name;
  std::uint32_t dst_name;
  std::uint32_t src_id;
  std::uint32_t dst_id;
  std::uint16_t src_port;
  std::uint16_t dst_port;
  std::uint32_t job_id;
  std::uint8_t truth;
  std::uint8_t pad[3];
  double bytes;
  double start;
  double end;
};
static_assert(sizeof(SpillRecord) == 56, "spill record layout drifted");

/// Streams FlowRecords into a KSPL file through a growable mmap. finalize()
/// (also run by the destructor) writes the name table and back-patches the
/// header; until then the file on disk is marked unfinalized.
class SpillWriter {
 public:
  explicit SpillWriter(const std::string& path, std::size_t initial_capacity = 1u << 20);
  ~SpillWriter();
  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  void add(const FlowRecord& record);

  std::uint64_t records() const { return count_; }
  /// Bytes appended so far (header + records; name table lands at finalize).
  std::uint64_t bytes() const { return arena_.size(); }
  const std::string& path() const { return path_; }

  /// Writes the name table, patches the header, shrinks the file to its
  /// exact size, and closes. Idempotent.
  void finalize();

 private:
  std::string path_;
  util::MmapArena arena_;
  std::uint64_t count_ = 0;
  /// Insertion-ordered intern table (ids assigned first-seen, like KDTR).
  std::map<std::string, std::uint32_t> name_ids_;
  std::vector<const std::string*> names_;
  bool finalized_ = false;
};

/// Maps a finalized KSPL file read-only and decodes records on demand.
/// Every validation error names the byte offset of the defect.
class SpillReader {
 public:
  explicit SpillReader(const std::string& path);

  std::uint64_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Decodes record `i` (bounds-checked; throws std::out_of_range).
  FlowRecord record(std::uint64_t i) const;

  /// Materializes the whole spill as an in-memory Trace, in record order.
  /// The result is bit-exact against the records the writer was fed.
  Trace to_trace() const;

  const std::vector<std::string>& names() const { return names_; }

 private:
  const SpillRecord* raw(std::uint64_t i) const;

  util::MmapArena arena_;
  std::uint64_t count_ = 0;
  std::size_t records_offset_ = kSpillHeaderBytes;
  std::vector<std::string> names_;
};

}  // namespace keddah::capture
