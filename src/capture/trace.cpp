#include "capture/trace.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>

#include "util/strings.h"

namespace keddah::capture {

net::FlowKind classify_by_ports(const FlowRecord& record) {
  using net::FlowKind;
  namespace ports = net::ports;
  if (record.src_port == ports::kDataNodeXfer) return FlowKind::kHdfsRead;
  if (record.dst_port == ports::kDataNodeXfer) return FlowKind::kHdfsWrite;
  if (record.src_port == ports::kShuffle || record.dst_port == ports::kShuffle) {
    return FlowKind::kShuffle;
  }
  for (const std::uint16_t p : {record.src_port, record.dst_port}) {
    if (p == ports::kNameNodeRpc || p == ports::kRmScheduler || p == ports::kRmTracker) {
      return FlowKind::kControl;
    }
  }
  return FlowKind::kOther;
}

void Trace::append(const Trace& other) {
  records_.insert(records_.end(), other.records_.begin(), other.records_.end());
}

Trace Trace::filter_kind(net::FlowKind kind) const {
  Trace out;
  for (const auto& r : records_) {
    if (classify_by_ports(r) == kind) out.add(r);
  }
  return out;
}

Trace Trace::filter_job(std::uint32_t job_id) const {
  Trace out;
  for (const auto& r : records_) {
    if (r.job_id == job_id) out.add(r);
  }
  return out;
}

Trace Trace::filter_window(double t0, double t1) const {
  Trace out;
  for (const auto& r : records_) {
    if (r.start >= t0 && r.start < t1) out.add(r);
  }
  return out;
}

std::vector<double> Trace::sizes() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.bytes);
  return out;
}

std::vector<double> Trace::start_times() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.start);
  return out;
}

std::vector<double> Trace::durations() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.duration());
  return out;
}

double Trace::total_bytes() const {
  double total = 0.0;
  for (const auto& r : records_) total += r.bytes;
  return total;
}

double Trace::first_start() const {
  double t = 0.0;
  bool first = true;
  for (const auto& r : records_) {
    if (first || r.start < t) t = r.start;
    first = false;
  }
  return t;
}

double Trace::last_end() const {
  double t = 0.0;
  for (const auto& r : records_) t = std::max(t, r.end);
  return t;
}

std::array<ClassStats, net::kNumFlowKinds> Trace::class_stats() const {
  std::array<ClassStats, net::kNumFlowKinds> out{};
  for (const auto& r : records_) {
    auto& s = out[static_cast<std::size_t>(classify_by_ports(r))];
    ++s.flows;
    s.bytes += r.bytes;
  }
  return out;
}

std::vector<double> Trace::throughput_series(double bin_s) const {
  std::vector<double> bins;
  if (records_.empty() || bin_s <= 0.0) return bins;
  const double t0 = first_start();
  const double t1 = last_end();
  const auto nbins = static_cast<std::size_t>(std::ceil((t1 - t0) / bin_s)) + 1;
  bins.assign(nbins, 0.0);
  for (const auto& r : records_) {
    const double dur = r.duration();
    if (dur <= 0.0) {
      const auto b = static_cast<std::size_t>((r.start - t0) / bin_s);
      bins[std::min(b, nbins - 1)] += r.bytes;
      continue;
    }
    const double rate = r.bytes / dur;  // bytes per second, uniform smear
    double t = r.start;
    while (t < r.end) {
      const auto b = static_cast<std::size_t>((t - t0) / bin_s);
      const double bin_end = t0 + (static_cast<double>(b) + 1.0) * bin_s;
      const double seg = std::min(bin_end, r.end) - t;
      bins[std::min(b, nbins - 1)] += rate * seg;
      t += seg;
      if (seg <= 0.0) break;  // numerical guard
    }
  }
  return bins;
}

util::CsvTable Trace::to_csv() const {
  util::CsvTable table({"src", "dst", "src_id", "dst_id", "src_port", "dst_port", "bytes", "start",
                        "end", "job_id", "truth"});
  for (const auto& r : records_) {
    table.add_row({r.src, r.dst, std::to_string(r.src_id), std::to_string(r.dst_id),
                   std::to_string(r.src_port), std::to_string(r.dst_port),
                   util::format("%.3f", r.bytes), util::format("%.9f", r.start),
                   util::format("%.9f", r.end), std::to_string(r.job_id),
                   net::flow_kind_name(r.truth)});
  }
  return table;
}

namespace {
net::FlowKind kind_from_name(const std::string& name) {
  for (std::size_t i = 0; i < net::kNumFlowKinds; ++i) {
    const auto kind = static_cast<net::FlowKind>(i);
    if (name == net::flow_kind_name(kind)) return kind;
  }
  return net::FlowKind::kOther;
}
}  // namespace

Trace Trace::from_csv(const util::CsvTable& table) {
  Trace out;
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    FlowRecord r;
    r.src = table.cell(i, "src");
    r.dst = table.cell(i, "dst");
    r.src_id = static_cast<net::NodeId>(table.cell_int(i, "src_id"));
    r.dst_id = static_cast<net::NodeId>(table.cell_int(i, "dst_id"));
    r.src_port = static_cast<std::uint16_t>(table.cell_int(i, "src_port"));
    r.dst_port = static_cast<std::uint16_t>(table.cell_int(i, "dst_port"));
    r.bytes = table.cell_double(i, "bytes");
    r.start = table.cell_double(i, "start");
    r.end = table.cell_double(i, "end");
    r.job_id = static_cast<std::uint32_t>(table.cell_int(i, "job_id"));
    r.truth = kind_from_name(table.cell(i, "truth"));
    out.add(std::move(r));
  }
  return out;
}

void Trace::save(const std::string& path) const { to_csv().save(path); }

Trace Trace::load(const std::string& path) { return from_csv(util::CsvTable::load(path)); }

namespace {

constexpr char kBinaryMagic[4] = {'K', 'D', 'T', 'R'};
constexpr std::uint32_t kBinaryVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::runtime_error("trace: truncated binary file");
  return value;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const auto len = read_pod<std::uint32_t>(in);
  if (len > (1u << 20)) throw std::runtime_error("trace: implausible string length");
  std::string s(len, '\0');
  in.read(s.data(), len);
  if (!in) throw std::runtime_error("trace: truncated binary file");
  return s;
}

/// Fixed-width on-disk record (node names live in the string table).
struct BinaryRecord {
  std::uint32_t src_name;
  std::uint32_t dst_name;
  std::uint32_t src_id;
  std::uint32_t dst_id;
  std::uint16_t src_port;
  std::uint16_t dst_port;
  std::uint32_t job_id;
  std::uint8_t truth;
  std::uint8_t pad[3];
  double bytes;
  double start;
  double end;
};
static_assert(sizeof(BinaryRecord) == 56, "binary record layout drifted");

}  // namespace

void Trace::save_binary(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace: cannot write " + path);
  out.write(kBinaryMagic, sizeof kBinaryMagic);
  write_pod(out, kBinaryVersion);

  // String table of unique node names.
  std::map<std::string, std::uint32_t> name_ids;
  std::vector<const std::string*> names;
  auto intern = [&](const std::string& name) {
    const auto [it, inserted] = name_ids.emplace(name, static_cast<std::uint32_t>(names.size()));
    if (inserted) names.push_back(&it->first);
    return it->second;
  };
  std::vector<BinaryRecord> records;
  records.reserve(records_.size());
  for (const auto& r : records_) {
    BinaryRecord b{};
    b.src_name = intern(r.src);
    b.dst_name = intern(r.dst);
    b.src_id = r.src_id;
    b.dst_id = r.dst_id;
    b.src_port = r.src_port;
    b.dst_port = r.dst_port;
    b.job_id = r.job_id;
    b.truth = static_cast<std::uint8_t>(r.truth);
    b.bytes = r.bytes;
    b.start = r.start;
    b.end = r.end;
    records.push_back(b);
  }
  write_pod(out, static_cast<std::uint32_t>(names.size()));
  for (const auto* name : names) write_string(out, *name);
  write_pod(out, static_cast<std::uint64_t>(records.size()));
  out.write(reinterpret_cast<const char*>(records.data()),
            static_cast<std::streamsize>(records.size() * sizeof(BinaryRecord)));
  if (!out) throw std::runtime_error("trace: write failed for " + path);
}

Trace Trace::load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof magic) != 0) {
    throw std::runtime_error("trace: not a KDTR file: " + path);
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kBinaryVersion) {
    throw std::runtime_error("trace: unsupported KDTR version " + std::to_string(version));
  }
  const auto num_names = read_pod<std::uint32_t>(in);
  std::vector<std::string> names(num_names);
  for (auto& name : names) name = read_string(in);
  const auto count = read_pod<std::uint64_t>(in);
  Trace trace;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto b = read_pod<BinaryRecord>(in);
    if (b.src_name >= names.size() || b.dst_name >= names.size()) {
      throw std::runtime_error("trace: corrupt string reference");
    }
    FlowRecord r;
    r.src = names[b.src_name];
    r.dst = names[b.dst_name];
    r.src_id = net::NodeId(b.src_id);
    r.dst_id = net::NodeId(b.dst_id);
    r.src_port = b.src_port;
    r.dst_port = b.dst_port;
    r.job_id = b.job_id;
    r.truth = static_cast<net::FlowKind>(b.truth);
    r.bytes = b.bytes;
    r.start = b.start;
    r.end = b.end;
    trace.add(std::move(r));
  }
  return trace;
}

}  // namespace keddah::capture
