// Node-pair traffic matrices: who talks to whom, and how unevenly.
//
// The paper's measurement sections examine where Hadoop traffic
// concentrates (reducer hot spots, rack crossings); this is the aggregation
// that supports those views over captured or replayed traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capture/trace.h"
#include "net/topology.h"

namespace keddah::capture {

/// Dense bytes[src][dst] aggregation of a trace.
class TrafficMatrix {
 public:
  /// Builds from a trace; `num_nodes` must cover every node id that
  /// appears (records with larger ids throw std::out_of_range).
  static TrafficMatrix from_trace(const Trace& trace, std::size_t num_nodes);

  /// Restricted to one classified traffic class.
  static TrafficMatrix from_trace(const Trace& trace, std::size_t num_nodes, net::FlowKind kind);

  std::size_t num_nodes() const { return n_; }

  /// Bytes sent src -> dst.
  double bytes(std::size_t src, std::size_t dst) const;

  /// Total bytes sent by / received at a node.
  double tx_bytes(std::size_t node) const;
  double rx_bytes(std::size_t node) const;

  /// Sum over all pairs.
  double total() const;

  /// Hotspot factor: max per-node (tx + rx) volume divided by the mean
  /// (1.0 = perfectly balanced). 0 for an empty matrix.
  double imbalance() const;

  /// Fraction of bytes crossing rack boundaries under `topology`'s rack
  /// assignment (node ids must be topology node ids).
  double cross_rack_fraction(const net::Topology& topology) const;

  /// The `k` busiest (src, dst, bytes) pairs, descending.
  struct HotPair {
    std::size_t src;
    std::size_t dst;
    double bytes;
  };
  std::vector<HotPair> hottest_pairs(std::size_t k) const;

 private:
  explicit TrafficMatrix(std::size_t n) : n_(n), cells_(n * n, 0.0) {}
  std::size_t n_ = 0;
  std::vector<double> cells_;
};

}  // namespace keddah::capture
