#include "capture/collector.h"

#include <filesystem>

namespace keddah::capture {

FlowCollector::FlowCollector(net::Network& network, CollectorOptions options)
    : options_(std::move(options)) {
  if (!options_.spill_dir.empty()) {
    std::filesystem::create_directories(options_.spill_dir);
    const std::string path =
        (std::filesystem::path(options_.spill_dir) / "capture.kspill").string();
    spill_ = std::make_unique<SpillWriter>(path);
  }
  const net::Topology* topo = &network.topology();
  network.add_completion_tap([this, topo](const net::Flow& flow) { on_flow(flow, *topo); });
}

Trace FlowCollector::take() {
  Trace out = std::move(trace_);
  trace_ = Trace();
  return out;
}

void FlowCollector::finalize_spill() {
  if (spill_) spill_->finalize();
}

void FlowCollector::on_flow(const net::Flow& flow, const net::Topology& topo) {
  if (flow.loopback() && !options_.include_loopback) {
    ++dropped_loopback_;
    return;
  }
  if (!options_.include_control && flow.meta.kind == net::FlowKind::kControl) return;
  // A connect that failed before any payload moved leaves nothing in a real
  // pcap; aborted flows with partial payload are kept (truncated transfer).
  if (flow.aborted && flow.bytes.value() <= 0.0) return;
  FlowRecord r;
  r.src = topo.node(flow.src).name;
  r.dst = topo.node(flow.dst).name;
  r.src_id = flow.src;
  r.dst_id = flow.dst;
  r.src_port = flow.meta.src_port;
  r.dst_port = flow.meta.dst_port;
  r.bytes = flow.bytes.value();
  r.start = flow.start_time;
  r.end = flow.end_time;
  r.job_id = flow.meta.job_id;
  r.truth = flow.meta.kind;
  if (spill_) {
    spill_->add(r);
    return;
  }
  trace_.add(std::move(r));
}

}  // namespace keddah::capture
