#include "capture/spill.h"

#include <cstring>
#include <stdexcept>

#include "util/strings.h"

namespace keddah::capture {

namespace {

/// Header image kept bit-compatible with the documented layout; the struct
/// exists only in memory (the file is addressed by offset).
struct SpillHeader {
  char magic[4];
  std::uint32_t version;
  std::uint32_t record_size;
  std::uint32_t flags;
  std::uint64_t record_count;
  std::uint64_t name_table_offset;
  std::uint8_t reserved[32];
};
static_assert(sizeof(SpillHeader) == kSpillHeaderBytes, "spill header layout drifted");

constexpr std::uint32_t kFlagFinalized = 1u;

[[noreturn]] void bad(const std::string& path, const std::string& what) {
  throw std::runtime_error("spill: " + path + ": " + what);
}

}  // namespace

SpillWriter::SpillWriter(const std::string& path, std::size_t initial_capacity)
    : path_(path), arena_(util::MmapArena::create(path, initial_capacity)) {
  SpillHeader header{};
  std::memcpy(header.magic, kSpillMagic, sizeof kSpillMagic);
  header.version = kSpillVersion;
  header.record_size = static_cast<std::uint32_t>(sizeof(SpillRecord));
  header.flags = 0;              // not finalized yet
  header.record_count = 0;       // patched by finalize()
  header.name_table_offset = 0;  // patched by finalize()
  arena_.append(&header, sizeof header);
}

SpillWriter::~SpillWriter() {
  try {
    finalize();
  } catch (...) {
    // Destructor path: swallow I/O failures; the file stays unfinalized and
    // the reader will reject it with a precise diagnostic.
  }
}

void SpillWriter::add(const FlowRecord& record) {
  if (finalized_) throw std::logic_error("spill: add() after finalize(): " + path_);
  const auto intern = [this](const std::string& name) {
    const auto [it, inserted] =
        name_ids_.emplace(name, static_cast<std::uint32_t>(names_.size()));
    if (inserted) names_.push_back(&it->first);
    return it->second;
  };
  SpillRecord r{};
  r.src_name = intern(record.src);
  r.dst_name = intern(record.dst);
  r.src_id = record.src_id;
  r.dst_id = record.dst_id;
  r.src_port = record.src_port;
  r.dst_port = record.dst_port;
  r.job_id = record.job_id;
  r.truth = static_cast<std::uint8_t>(record.truth);
  r.bytes = record.bytes;
  r.start = record.start;
  r.end = record.end;
  arena_.append(&r, sizeof r);
  ++count_;
}

void SpillWriter::finalize() {
  if (finalized_ || !arena_.is_open()) return;
  const std::uint64_t table_offset = arena_.size();
  const auto table_count = static_cast<std::uint32_t>(names_.size());
  arena_.append(&table_count, sizeof table_count);
  for (const std::string* name : names_) {
    const auto len = static_cast<std::uint32_t>(name->size());
    arena_.append(&len, sizeof len);
    arena_.append(name->data(), name->size());
  }
  SpillHeader header{};
  std::memcpy(header.magic, kSpillMagic, sizeof kSpillMagic);
  header.version = kSpillVersion;
  header.record_size = static_cast<std::uint32_t>(sizeof(SpillRecord));
  header.flags = kFlagFinalized;
  header.record_count = count_;
  header.name_table_offset = table_offset;
  arena_.write_at(0, &header, sizeof header);
  arena_.finalize();
  finalized_ = true;
}

SpillReader::SpillReader(const std::string& path)
    : arena_(util::MmapArena::open_readonly(path)) {
  const std::size_t file_size = arena_.size();
  if (file_size < kSpillHeaderBytes) {
    bad(path, util::format("truncated header: need %zu bytes, file has %zu", kSpillHeaderBytes,
                           file_size));
  }
  SpillHeader header{};
  std::memcpy(&header, arena_.data(), sizeof header);
  if (std::memcmp(header.magic, kSpillMagic, sizeof kSpillMagic) != 0) {
    bad(path, "bad magic at offset 0 (not a KSPL spill file)");
  }
  if (header.version != kSpillVersion) {
    bad(path, util::format("unsupported version %u at offset 4 (this build reads version %u)",
                           header.version, kSpillVersion));
  }
  if (header.record_size != sizeof(SpillRecord)) {
    bad(path, util::format("record size %u at offset 8 does not match this build's %zu",
                           header.record_size, sizeof(SpillRecord)));
  }
  if ((header.flags & kFlagFinalized) == 0 || header.name_table_offset == 0) {
    bad(path,
        "unfinalized spill (name-table offset is 0 at offset 24); "
        "the writer exited before finalize()");
  }
  count_ = header.record_count;
  const std::uint64_t records_end =
      kSpillHeaderBytes + count_ * static_cast<std::uint64_t>(sizeof(SpillRecord));
  if (header.name_table_offset != records_end) {
    bad(path, util::format("name table at offset %llu but records end at offset %llu",
                           static_cast<unsigned long long>(header.name_table_offset),
                           static_cast<unsigned long long>(records_end)));
  }
  if (records_end > file_size) {
    // Name the first record that falls off the end of the file.
    const std::uint64_t whole =
        (file_size - kSpillHeaderBytes) / sizeof(SpillRecord);
    bad(path, util::format("truncated record %llu at offset %llu: file ends at offset %zu",
                           static_cast<unsigned long long>(whole),
                           static_cast<unsigned long long>(kSpillHeaderBytes +
                                                           whole * sizeof(SpillRecord)),
                           file_size));
  }

  // Name table: u32 count, then length-prefixed strings.
  std::size_t cursor = header.name_table_offset;
  const auto need = [&](std::size_t n, const char* what) {
    if (cursor + n > file_size) {
      bad(path, util::format("truncated name table: %s at offset %zu runs past end of file %zu",
                             what, cursor, file_size));
    }
  };
  std::uint32_t num_names = 0;
  need(sizeof num_names, "name count");
  std::memcpy(&num_names, arena_.data() + cursor, sizeof num_names);
  cursor += sizeof num_names;
  names_.reserve(num_names);
  for (std::uint32_t i = 0; i < num_names; ++i) {
    std::uint32_t len = 0;
    need(sizeof len, "name length");
    std::memcpy(&len, arena_.data() + cursor, sizeof len);
    cursor += sizeof len;
    if (len > (1u << 20)) {
      bad(path, util::format("implausible name length %u at offset %zu", len,
                             cursor - sizeof len));
    }
    need(len, "name bytes");
    names_.emplace_back(reinterpret_cast<const char*>(arena_.data() + cursor), len);
    cursor += len;
  }
}

const SpillRecord* SpillReader::raw(std::uint64_t i) const {
  return reinterpret_cast<const SpillRecord*>(arena_.data() + records_offset_ +
                                              i * sizeof(SpillRecord));
}

FlowRecord SpillReader::record(std::uint64_t i) const {
  if (i >= count_) throw std::out_of_range("spill: record index out of range: " + arena_.path());
  const SpillRecord* b = raw(i);
  if (b->src_name >= names_.size() || b->dst_name >= names_.size()) {
    bad(arena_.path(),
        util::format("record %llu at offset %llu references name %u of %zu",
                     static_cast<unsigned long long>(i),
                     static_cast<unsigned long long>(records_offset_ + i * sizeof(SpillRecord)),
                     b->src_name >= names_.size() ? b->src_name : b->dst_name, names_.size()));
  }
  FlowRecord r;
  r.src = names_[b->src_name];
  r.dst = names_[b->dst_name];
  r.src_id = net::NodeId(b->src_id);
  r.dst_id = net::NodeId(b->dst_id);
  r.src_port = b->src_port;
  r.dst_port = b->dst_port;
  r.job_id = b->job_id;
  r.truth = static_cast<net::FlowKind>(b->truth);
  r.bytes = b->bytes;
  r.start = b->start;
  r.end = b->end;
  return r;
}

Trace SpillReader::to_trace() const {
  Trace trace;
  for (std::uint64_t i = 0; i < count_; ++i) trace.add(record(i));
  return trace;
}

}  // namespace keddah::capture
