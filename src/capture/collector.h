// FlowCollector: the "tcpdump on every node" of the toolchain. It taps the
// network engine and accumulates completed flows into a Trace — or, when a
// spill directory is configured, streams them to an mmap'd KSPL spill file
// so capture volume is bounded by disk instead of RAM (capture/spill.h).
#pragma once

#include <memory>
#include <string>

#include "capture/spill.h"
#include "capture/trace.h"
#include "net/network.h"

namespace keddah::capture {

/// Capture options.
struct CollectorOptions {
  /// Loopback (same-node) transfers never cross a NIC; real captures do not
  /// see them, so they are dropped by default.
  bool include_loopback = false;
  /// Drop control-plane flows (some analyses exclude the constant RPC hum).
  bool include_control = true;
  /// When non-empty, records spill to `<spill_dir>/capture.kspill` instead
  /// of accumulating in the in-memory Trace (trace() stays empty). The
  /// directory is created if absent. Read the result back with SpillReader
  /// after finalize_spill() (or collector destruction).
  std::string spill_dir;
};

/// Subscribes to a Network's completion tap and records each finished flow.
/// Attach exactly one collector per Network per capture run.
class FlowCollector {
 public:
  /// Registers the tap on construction; the collector must outlive the
  /// network's remaining lifetime of use.
  explicit FlowCollector(net::Network& network, CollectorOptions options = {});

  FlowCollector(const FlowCollector&) = delete;
  FlowCollector& operator=(const FlowCollector&) = delete;

  /// The trace captured so far (always empty in spill mode).
  const Trace& trace() const { return trace_; }

  /// Moves the accumulated trace out and resets the collector.
  Trace take();

  /// Clears accumulated records.
  void clear() { trace_ = Trace(); }

  std::size_t dropped_loopback() const { return dropped_loopback_; }

  /// True when records stream to a spill file instead of the Trace.
  bool spilling() const { return spill_ != nullptr; }
  /// Records written to the spill so far (0 when not spilling).
  std::uint64_t spilled() const { return spill_ ? spill_->records() : 0; }
  /// Path of the spill file ("" when not spilling).
  std::string spill_path() const { return spill_ ? spill_->path() : std::string(); }
  /// Finalizes the spill file (header patch + shrink); idempotent, and run
  /// automatically on destruction. Call before reading the file back.
  void finalize_spill();

 private:
  void on_flow(const net::Flow& flow, const net::Topology& topo);

  CollectorOptions options_;
  Trace trace_;
  std::unique_ptr<SpillWriter> spill_;
  std::size_t dropped_loopback_ = 0;
};

}  // namespace keddah::capture
