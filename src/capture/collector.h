// FlowCollector: the "tcpdump on every node" of the toolchain. It taps the
// network engine and accumulates completed flows into a Trace.
#pragma once

#include "capture/trace.h"
#include "net/network.h"

namespace keddah::capture {

/// Capture options.
struct CollectorOptions {
  /// Loopback (same-node) transfers never cross a NIC; real captures do not
  /// see them, so they are dropped by default.
  bool include_loopback = false;
  /// Drop control-plane flows (some analyses exclude the constant RPC hum).
  bool include_control = true;
};

/// Subscribes to a Network's completion tap and records each finished flow.
/// Attach exactly one collector per Network per capture run.
class FlowCollector {
 public:
  /// Registers the tap on construction; the collector must outlive the
  /// network's remaining lifetime of use.
  explicit FlowCollector(net::Network& network, CollectorOptions options = {});

  FlowCollector(const FlowCollector&) = delete;
  FlowCollector& operator=(const FlowCollector&) = delete;

  /// The trace captured so far.
  const Trace& trace() const { return trace_; }

  /// Moves the accumulated trace out and resets the collector.
  Trace take();

  /// Clears accumulated records.
  void clear() { trace_ = Trace(); }

  std::size_t dropped_loopback() const { return dropped_loopback_; }

 private:
  void on_flow(const net::Flow& flow, const net::Topology& topo);

  CollectorOptions options_;
  Trace trace_;
  std::size_t dropped_loopback_ = 0;
};

}  // namespace keddah::capture
