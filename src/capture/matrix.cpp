#include "capture/matrix.h"

#include <algorithm>
#include <stdexcept>

namespace keddah::capture {

TrafficMatrix TrafficMatrix::from_trace(const Trace& trace, std::size_t num_nodes) {
  TrafficMatrix m(num_nodes);
  for (const auto& r : trace.records()) {
    if (r.src_id >= num_nodes || r.dst_id >= num_nodes) {
      throw std::out_of_range("traffic matrix: record node id exceeds num_nodes");
    }
    m.cells_[r.src_id * num_nodes + r.dst_id] += r.bytes;
  }
  return m;
}

TrafficMatrix TrafficMatrix::from_trace(const Trace& trace, std::size_t num_nodes,
                                        net::FlowKind kind) {
  TrafficMatrix m(num_nodes);
  for (const auto& r : trace.records()) {
    if (classify_by_ports(r) != kind) continue;
    if (r.src_id >= num_nodes || r.dst_id >= num_nodes) {
      throw std::out_of_range("traffic matrix: record node id exceeds num_nodes");
    }
    m.cells_[r.src_id * num_nodes + r.dst_id] += r.bytes;
  }
  return m;
}

double TrafficMatrix::bytes(std::size_t src, std::size_t dst) const {
  if (src >= n_ || dst >= n_) throw std::out_of_range("traffic matrix: bad index");
  return cells_[src * n_ + dst];
}

double TrafficMatrix::tx_bytes(std::size_t node) const {
  if (node >= n_) throw std::out_of_range("traffic matrix: bad index");
  double total = 0.0;
  for (std::size_t d = 0; d < n_; ++d) total += cells_[node * n_ + d];
  return total;
}

double TrafficMatrix::rx_bytes(std::size_t node) const {
  if (node >= n_) throw std::out_of_range("traffic matrix: bad index");
  double total = 0.0;
  for (std::size_t s = 0; s < n_; ++s) total += cells_[s * n_ + node];
  return total;
}

double TrafficMatrix::total() const {
  double total = 0.0;
  for (const double c : cells_) total += c;
  return total;
}

double TrafficMatrix::imbalance() const {
  if (n_ == 0) return 0.0;
  double max_load = 0.0;
  double sum_load = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    const double load = tx_bytes(i) + rx_bytes(i);
    max_load = std::max(max_load, load);
    sum_load += load;
  }
  if (sum_load <= 0.0) return 0.0;
  return max_load / (sum_load / static_cast<double>(n_));
}

double TrafficMatrix::cross_rack_fraction(const net::Topology& topology) const {
  double cross = 0.0;
  double total_bytes = 0.0;
  for (std::size_t s = 0; s < n_; ++s) {
    for (std::size_t d = 0; d < n_; ++d) {
      const double b = cells_[s * n_ + d];
      if (b <= 0.0) continue;
      total_bytes += b;
      if (!topology.same_rack(static_cast<net::NodeId>(s), static_cast<net::NodeId>(d))) {
        cross += b;
      }
    }
  }
  return total_bytes > 0.0 ? cross / total_bytes : 0.0;
}

std::vector<TrafficMatrix::HotPair> TrafficMatrix::hottest_pairs(std::size_t k) const {
  std::vector<HotPair> pairs;
  for (std::size_t s = 0; s < n_; ++s) {
    for (std::size_t d = 0; d < n_; ++d) {
      const double b = cells_[s * n_ + d];
      if (b > 0.0) pairs.push_back(HotPair{s, d, b});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const HotPair& a, const HotPair& b) { return a.bytes > b.bytes; });
  if (pairs.size() > k) pairs.resize(k);
  return pairs;
}

}  // namespace keddah::capture
