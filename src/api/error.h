// The wire-format error taxonomy (wire format v1).
//
// Every non-200 the daemon or its HTTP transport can emit is one of the
// codes below, rendered as one envelope shape:
//
//   {"api": "v1",
//    "error": {"code": "queue_full",
//              "message": "...",
//              "retryable": true,
//              "details": { ... code-specific ... }}}
//
// `code` is a stable machine-readable id (clients switch on it, not on
// prose), `retryable` tells a client whether backing off and retrying can
// succeed (408/429/503: yes; 4xx input defects and 500: no), and `details`
// carries structured context — lint diagnostics, the defective key path of
// a SpecError, queue occupancy for a rejection. Bodies are built with
// util::Json, so any text placed in `message` (including exception text
// with quotes or backslashes) is escaped correctly; never assemble an
// error body by string concatenation.
#pragma once

#include <string>

#include "util/json.h"

namespace keddah::api {

/// Stable error codes, one per distinct failure the serving path can hit.
/// The HTTP status is a projection of the code (error_http_status); two
/// codes may share a status (e.g. kOverloaded and kDeadlineExceeded are
/// both 503) but a code never maps to two statuses.
enum class ErrorCode {
  kBadRequest,        ///< 400: malformed JSON body, HTTP framing, Content-Length.
  kLintRejected,      ///< 400: request failed keddah-lint (details.diagnostics).
  kSpecInvalid,       ///< 400: SpecError — details carry file/key/hint.
  kNotFound,          ///< 404: unknown endpoint, model, or run.
  kMethodNotAllowed,  ///< 405: known endpoint, wrong verb.
  kRequestTimeout,    ///< 408: header/body read budget exhausted (slow client).
  kPayloadTooLarge,   ///< 413: header block or declared body over the cap.
  kQueueFull,         ///< 429: admission queue at capacity.
  kInternal,          ///< 500: handler exception.
  kOverloaded,        ///< 503: overload mode shed this cold work.
  kDeadlineExceeded,  ///< 503: request sat past its wall-clock budget.
  kDraining,          ///< 503: server is shutting down.
};

/// The stable wire id, e.g. "queue_full".
const char* error_code_id(ErrorCode code);

/// The HTTP status the code projects to (400/404/405/408/413/429/500/503).
int error_http_status(ErrorCode code);

/// Whether a client retry (after backoff / Retry-After) can succeed.
bool error_retryable(ErrorCode code);

/// Builds the envelope document. `details` is embedded verbatim when
/// non-null and omitted otherwise.
util::Json error_envelope(ErrorCode code, const std::string& message,
                          util::Json details = util::Json());

/// to_body(error_envelope(...)) — the serialized wire form.
std::string error_body(ErrorCode code, const std::string& message,
                       util::Json details = util::Json());

}  // namespace keddah::api
