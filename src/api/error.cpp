#include "api/error.h"

#include "api/specs.h"

namespace keddah::api {

const char* error_code_id(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kLintRejected: return "lint_rejected";
    case ErrorCode::kSpecInvalid: return "spec_invalid";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kMethodNotAllowed: return "method_not_allowed";
    case ErrorCode::kRequestTimeout: return "request_timeout";
    case ErrorCode::kPayloadTooLarge: return "payload_too_large";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kDraining: return "draining";
  }
  return "internal";
}

int error_http_status(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest:
    case ErrorCode::kLintRejected:
    case ErrorCode::kSpecInvalid: return 400;
    case ErrorCode::kNotFound: return 404;
    case ErrorCode::kMethodNotAllowed: return 405;
    case ErrorCode::kRequestTimeout: return 408;
    case ErrorCode::kPayloadTooLarge: return 413;
    case ErrorCode::kQueueFull: return 429;
    case ErrorCode::kInternal: return 500;
    case ErrorCode::kOverloaded:
    case ErrorCode::kDeadlineExceeded:
    case ErrorCode::kDraining: return 503;
  }
  return 500;
}

bool error_retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::kRequestTimeout:
    case ErrorCode::kQueueFull:
    case ErrorCode::kOverloaded:
    case ErrorCode::kDeadlineExceeded:
    case ErrorCode::kDraining: return true;
    case ErrorCode::kBadRequest:
    case ErrorCode::kLintRejected:
    case ErrorCode::kSpecInvalid:
    case ErrorCode::kNotFound:
    case ErrorCode::kMethodNotAllowed:
    case ErrorCode::kPayloadTooLarge:
    case ErrorCode::kInternal: return false;
  }
  return false;
}

util::Json error_envelope(ErrorCode code, const std::string& message, util::Json details) {
  util::Json error = util::Json::object();
  error["code"] = util::Json(error_code_id(code));
  error["message"] = util::Json(message);
  error["retryable"] = util::Json(error_retryable(code));
  if (!details.is_null()) error["details"] = std::move(details);
  util::Json doc = util::Json::object();
  doc["api"] = util::Json(kApiVersionString);
  doc["error"] = std::move(error);
  return doc;
}

std::string error_body(ErrorCode code, const std::string& message, util::Json details) {
  return to_body(error_envelope(code, message, std::move(details)));
}

}  // namespace keddah::api
