#include "api/specs.h"

#include <cmath>

#include "hadoop/config_json.h"
#include "hadoop/faults.h"
#include "util/strings.h"

namespace keddah::api {

namespace {

std::string join_key(const std::string& prefix, const std::string& field) {
  return prefix.empty() ? field : prefix + "." + field;
}

/// Typed field access with SpecError diagnostics. `key` is the path of the
/// enclosing object; `field` the member being read.
double number_field(const util::Json& doc, const std::string& field, double fallback,
                    const std::string& file, const std::string& key) {
  if (!doc.contains(field)) return fallback;
  const auto& value = doc.at(field);
  if (!value.is_number()) throw SpecError(file, join_key(key, field), "must be a number");
  const double d = value.as_number();
  if (!std::isfinite(d)) throw SpecError(file, join_key(key, field), "must be finite");
  return d;
}

std::uint64_t count_field(const util::Json& doc, const std::string& field, std::uint64_t fallback,
                          const std::string& file, const std::string& key) {
  const double d = number_field(doc, field, static_cast<double>(fallback), file, key);
  if (d < 0.0) throw SpecError(file, join_key(key, field), "must be >= 0");
  return static_cast<std::uint64_t>(d);
}

bool bool_field(const util::Json& doc, const std::string& field, bool fallback,
                const std::string& file, const std::string& key) {
  if (!doc.contains(field)) return fallback;
  const auto& value = doc.at(field);
  if (!value.is_bool()) throw SpecError(file, join_key(key, field), "must be a boolean");
  return value.as_bool();
}

std::string string_field(const util::Json& doc, const std::string& field,
                         const std::string& fallback, const std::string& file,
                         const std::string& key) {
  if (!doc.contains(field)) return fallback;
  const auto& value = doc.at(field);
  if (!value.is_string()) throw SpecError(file, join_key(key, field), "must be a string");
  return value.as_string();
}

std::uint64_t size_value(const util::Json& value, const std::string& file,
                         const std::string& key) {
  if (value.is_number()) {
    const double d = value.as_number();
    if (!std::isfinite(d) || d < 0.0) throw SpecError(file, key, "must be a byte size >= 0");
    return static_cast<std::uint64_t>(d);
  }
  if (value.is_string()) {
    std::uint64_t bytes = 0;
    if (util::parse_bytes(value.as_string(), &bytes)) return bytes;
  }
  throw SpecError(file, key, "must be a byte size (\"128MB\", 4096, ...)");
}

const util::Json& object_field(const util::Json& doc, const std::string& field,
                               const std::string& file, const std::string& key) {
  if (!doc.contains(field)) {
    throw SpecError(file, join_key(key, field), "missing required object");
  }
  const auto& value = doc.at(field);
  if (!value.is_object()) throw SpecError(file, join_key(key, field), "must be an object");
  return value;
}

void check_object(const util::Json& doc, const std::string& file, const std::string& key) {
  if (!doc.is_object()) {
    throw SpecError(file, key.empty() ? "$" : key, "must be a JSON object");
  }
}

/// "api" is optional (v1 implied) but, when present, must name a version
/// this build speaks — a v2 client gets a crisp rejection, not a misparse.
void check_api_version(const util::Json& doc, const std::string& file) {
  check_object(doc, file, "");
  if (!doc.contains("api")) return;
  const auto& api = doc.at("api");
  if (!api.is_string() || api.as_string() != kApiVersionString) {
    throw SpecError(file, "api", "unsupported API version",
                    std::string("this build speaks \"") + kApiVersionString + "\"");
  }
}

hadoop::ClusterConfig parse_cluster_field(const util::Json& doc, const std::string& file) {
  if (!doc.contains("cluster")) return hadoop::default_scenario_cluster();
  return hadoop::parse_cluster_config(doc.at("cluster"), file);
}

gen::Scenario parse_gen_scenario(const util::Json& doc, const std::string& file,
                                 const std::string& key) {
  gen::Scenario scenario;
  if (!doc.contains("input")) {
    throw SpecError(file, join_key(key, "input"), "missing required byte size",
                    "the job input size drives counts, volumes, and duration");
  }
  scenario.input_bytes =
      static_cast<double>(size_value(doc.at("input"), file, join_key(key, "input")));
  if (scenario.input_bytes <= 0.0) {
    throw SpecError(file, join_key(key, "input"), "must be > 0");
  }
  scenario.num_hosts =
      static_cast<std::size_t>(count_field(doc, "hosts", scenario.num_hosts, file, key));
  scenario.num_maps = static_cast<std::size_t>(count_field(doc, "maps", 0, file, key));
  scenario.num_reducers = static_cast<std::size_t>(count_field(doc, "reducers", 0, file, key));
  return scenario;
}

util::Json gen_scenario_to_json(const gen::Scenario& scenario) {
  util::Json doc = util::Json::object();
  doc["input"] = util::Json(scenario.input_bytes);
  doc["hosts"] = util::Json(static_cast<std::uint64_t>(scenario.num_hosts));
  doc["maps"] = util::Json(static_cast<std::uint64_t>(scenario.num_maps));
  doc["reducers"] = util::Json(static_cast<std::uint64_t>(scenario.num_reducers));
  return doc;
}

/// Per-class {"flows", "bytes"} map over the non-empty traffic classes.
util::Json class_stats_json(const capture::Trace& trace) {
  util::Json classes = util::Json::object();
  const auto stats = trace.class_stats();
  for (std::size_t k = 0; k < net::kNumFlowKinds; ++k) {
    if (stats[k].flows == 0) continue;
    util::Json entry = util::Json::object();
    entry["flows"] = util::Json(static_cast<std::uint64_t>(stats[k].flows));
    entry["bytes"] = util::Json(stats[k].bytes);
    classes[net::flow_kind_name(static_cast<net::FlowKind>(k))] = std::move(entry);
  }
  return classes;
}

}  // namespace

SpecError::SpecError(std::string file, std::string key, std::string message, std::string hint)
    : std::invalid_argument(file + ": " + key + ": " + message +
                            (hint.empty() ? "" : " (" + hint + ")")),
      file_(std::move(file)),
      key_(std::move(key)),
      message_(std::move(message)),
      hint_(std::move(hint)) {}

util::Json SpecError::to_json() const {
  util::Json doc = util::Json::object();
  doc["file"] = util::Json(file_);
  doc["key"] = util::Json(key_);
  doc["message"] = util::Json(message_);
  if (!hint_.empty()) doc["hint"] = util::Json(hint_);
  return doc;
}

// ---------------------------------------------------------------- specs

core::CaptureSpec parse_capture_spec(const util::Json& doc, const std::string& file,
                                     const std::string& key) {
  check_object(doc, file, key);
  core::CaptureSpec spec;
  const std::string workload = string_field(doc, "workload", "sort", file, key);
  try {
    spec.workload = workloads::workload_from_name(workload);
  } catch (const std::invalid_argument& e) {
    throw SpecError(file, join_key(key, "workload"), e.what());
  }
  if (!doc.contains("input_sizes") || !doc.at("input_sizes").is_array() ||
      doc.at("input_sizes").size() == 0) {
    throw SpecError(file, join_key(key, "input_sizes"),
                    "must be a non-empty array of byte sizes");
  }
  const auto& sizes = doc.at("input_sizes").as_array();
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    spec.input_sizes.push_back(
        size_value(sizes[i], file, util::format("%s[%zu]", join_key(key, "input_sizes").c_str(), i)));
  }
  spec.repetitions = static_cast<std::size_t>(count_field(doc, "repetitions", 1, file, key));
  if (spec.repetitions == 0) {
    throw SpecError(file, join_key(key, "repetitions"), "must be >= 1");
  }
  spec.seed = count_field(doc, "seed", 1, file, key);
  spec.threads = static_cast<std::size_t>(count_field(doc, "threads", 0, file, key));
  if (doc.contains("faults")) {
    spec.faults = hadoop::parse_fault_plan(doc.at("faults"), file);
  }
  return spec;
}

util::Json capture_spec_to_json(const core::CaptureSpec& spec) {
  util::Json doc = util::Json::object();
  doc["api"] = util::Json(kApiVersionString);
  doc["workload"] = util::Json(workloads::workload_name(spec.workload));
  util::Json sizes = util::Json::array();
  for (const auto size : spec.input_sizes) sizes.push_back(util::Json(size));
  doc["input_sizes"] = std::move(sizes);
  doc["repetitions"] = util::Json(static_cast<std::uint64_t>(spec.repetitions));
  doc["seed"] = util::Json(spec.seed);
  doc["threads"] = util::Json(static_cast<std::uint64_t>(spec.threads));
  if (!spec.faults.empty()) doc["faults"] = hadoop::fault_plan_to_json(spec.faults);
  return doc;
}

core::ReproduceSpec parse_reproduce_spec(const util::Json& doc, const std::string& file,
                                         const std::string& key) {
  check_object(doc, file, key);
  core::ReproduceSpec spec;
  spec.scenario =
      parse_gen_scenario(object_field(doc, "scenario", file, key), file, join_key(key, "scenario"));
  spec.seed = count_field(doc, "seed", 1, file, key);
  spec.gen_options.normalize_volume = bool_field(doc, "normalize_volume", false, file, key);
  spec.spill_dir = string_field(doc, "spill_dir", "", file, key);
  return spec;
}

util::Json reproduce_spec_to_json(const core::ReproduceSpec& spec) {
  util::Json doc = util::Json::object();
  doc["scenario"] = gen_scenario_to_json(spec.scenario);
  doc["seed"] = util::Json(spec.seed);
  doc["normalize_volume"] = util::Json(spec.gen_options.normalize_volume);
  // Only serialized when set, so specs without it round-trip byte-identically
  // (the serve cache and CLI<->daemon identity tests pin those bytes).
  if (!spec.spill_dir.empty()) doc["spill_dir"] = util::Json(spec.spill_dir);
  return doc;
}

core::ValidateSpec parse_validate_spec(const util::Json& doc, const std::string& file,
                                       const std::string& key) {
  check_object(doc, file, key);
  core::ValidateSpec spec;
  spec.seed = count_field(doc, "seed", 1, file, key);
  spec.repetitions = static_cast<std::size_t>(count_field(doc, "repetitions", 1, file, key));
  if (spec.repetitions == 0) {
    throw SpecError(file, join_key(key, "repetitions"), "must be >= 1");
  }
  spec.threads = static_cast<std::size_t>(count_field(doc, "threads", 0, file, key));
  spec.gen_options.normalize_volume = bool_field(doc, "normalize_volume", false, file, key);
  return spec;
}

util::Json validate_spec_to_json(const core::ValidateSpec& spec) {
  util::Json doc = util::Json::object();
  doc["seed"] = util::Json(spec.seed);
  doc["repetitions"] = util::Json(static_cast<std::uint64_t>(spec.repetitions));
  doc["threads"] = util::Json(static_cast<std::uint64_t>(spec.threads));
  doc["normalize_volume"] = util::Json(spec.gen_options.normalize_volume);
  return doc;
}

// ------------------------------------------------------------- requests

WhatIfRequest parse_whatif_request(const util::Json& doc, const std::string& file) {
  check_api_version(doc, file);
  WhatIfRequest request;
  request.scenario = core::parse_scenario(doc, file);
  return request;
}

ReproduceRequest parse_reproduce_request(const util::Json& doc, const std::string& file) {
  check_api_version(doc, file);
  ReproduceRequest request;
  request.model = string_field(doc, "model", "", file, "");
  if (request.model.empty()) {
    throw SpecError(file, "model", "missing required model name",
                    "name a model in the daemon's bank (see /v1/stats for the list)");
  }
  request.spec = parse_reproduce_spec(doc, file, "");
  request.cluster = parse_cluster_field(doc, file);
  // An absent host count means "every worker of the replay fabric".
  if (!object_field(doc, "scenario", file, "").contains("hosts")) {
    request.spec.scenario.num_hosts = request.cluster.num_workers();
  }
  return request;
}

util::Json reproduce_request_to_json(const ReproduceRequest& request) {
  util::Json doc = reproduce_spec_to_json(request.spec);
  doc["api"] = util::Json(kApiVersionString);
  doc["model"] = util::Json(request.model);
  doc["cluster"] = hadoop::cluster_config_to_json(request.cluster);
  return doc;
}

ValidateRequest parse_validate_request(const util::Json& doc, const std::string& file) {
  check_api_version(doc, file);
  ValidateRequest request;
  request.model = string_field(doc, "model", "", file, "");
  if (request.model.empty()) {
    throw SpecError(file, "model", "missing required model name");
  }
  request.run = string_field(doc, "run", "", file, "");
  if (request.run.empty()) {
    throw SpecError(file, "run", "missing required run basename",
                    "a run persisted by `keddah capture` (basename of .csv/.meta.json)");
  }
  request.spec = parse_validate_spec(doc, file, "");
  request.cluster = parse_cluster_field(doc, file);
  return request;
}

util::Json validate_request_to_json(const ValidateRequest& request) {
  util::Json doc = validate_spec_to_json(request.spec);
  doc["api"] = util::Json(kApiVersionString);
  doc["model"] = util::Json(request.model);
  doc["run"] = util::Json(request.run);
  doc["cluster"] = hadoop::cluster_config_to_json(request.cluster);
  return doc;
}

// ------------------------------------------------------------ responses

util::Json whatif_response(const core::ScenarioOutcome& outcome) {
  util::Json doc = util::Json::object();
  doc["api"] = util::Json(kApiVersionString);
  doc["kind"] = util::Json("whatif");

  util::Json jobs = util::Json::array();
  for (const auto& r : outcome.results) {
    util::Json job = util::Json::object();
    job["name"] = util::Json(r.job_name);
    job["id"] = util::Json(static_cast<std::uint64_t>(r.job_id));
    job["submit_s"] = util::Json(r.submit_time);
    job["end_s"] = util::Json(r.end_time);
    job["maps"] = util::Json(static_cast<std::uint64_t>(r.num_maps));
    job["reducers"] = util::Json(static_cast<std::uint64_t>(r.num_reducers));
    job["input_bytes"] = util::Json(r.input_bytes);
    job["output_bytes"] = util::Json(r.output_bytes);
    jobs.push_back(std::move(job));
  }
  doc["jobs"] = std::move(jobs);

  util::Json trace = util::Json::object();
  trace["flows"] = util::Json(static_cast<std::uint64_t>(outcome.trace.size()));
  trace["total_bytes"] = util::Json(outcome.trace.total_bytes());
  trace["span_s"] = util::Json(
      outcome.trace.size() > 0 ? outcome.trace.last_end() - outcome.trace.first_start() : 0.0);
  trace["classes"] = class_stats_json(outcome.trace);
  doc["trace"] = std::move(trace);

  doc["rereplications"] = util::Json(static_cast<std::uint64_t>(outcome.rereplications));

  const auto& f = outcome.faults;
  util::Json faults = util::Json::object();
  faults["crashes"] = util::Json(f.crashes);
  faults["outages"] = util::Json(f.outages);
  faults["link_degradations"] = util::Json(f.link_degradations);
  faults["slow_nodes"] = util::Json(f.slow_nodes);
  faults["aborted_flows"] = util::Json(f.aborted_flows);
  faults["aborted_bytes"] = util::Json(f.aborted_bytes.value());
  faults["fetch_retries"] = util::Json(f.fetch_retries);
  faults["fetch_backoff_s"] = util::Json(f.fetch_backoff_s);
  faults["fetch_failure_reruns"] = util::Json(f.fetch_failure_reruns);
  faults["map_reruns"] = util::Json(f.map_reruns);
  faults["reducer_restarts"] = util::Json(f.reducer_restarts);
  faults["pipeline_rebuilds"] = util::Json(f.pipeline_rebuilds);
  faults["hdfs_read_retries"] = util::Json(f.hdfs_read_retries);
  faults["rereplications"] = util::Json(f.rereplications);
  doc["faults"] = std::move(faults);

  const auto& s = outcome.scheduler;
  util::Json scheduler = util::Json::object();
  scheduler["reshares"] = util::Json(s.reshares);
  scheduler["solves"] = util::Json(s.solves);
  scheduler["empty_reshares"] = util::Json(s.empty_reshares);
  scheduler["links_touched"] = util::Json(s.links_touched);
  scheduler["flows_visited"] = util::Json(s.flows_visited);
  scheduler["flows_rerated"] = util::Json(s.flows_rerated);
  scheduler["heap_ops"] = util::Json(s.heap_ops);
  doc["scheduler"] = std::move(scheduler);
  return doc;
}

util::Json reproduce_response(const core::ReproduceResult& result) {
  util::Json doc = util::Json::object();
  doc["api"] = util::Json(kApiVersionString);
  doc["kind"] = util::Json("reproduce");

  util::Json schedule = util::Json::object();
  schedule["flows"] = util::Json(static_cast<std::uint64_t>(result.schedule.flows.size()));
  schedule["total_bytes"] = util::Json(result.schedule.total_bytes());
  schedule["predicted_duration_s"] = util::Json(result.schedule.predicted_duration);
  util::Json classes = util::Json::object();
  for (std::size_t k = 0; k < net::kNumFlowKinds; ++k) {
    const auto kind = static_cast<net::FlowKind>(k);
    const std::size_t count = result.schedule.count(kind);
    if (count == 0) continue;
    util::Json entry = util::Json::object();
    entry["flows"] = util::Json(static_cast<std::uint64_t>(count));
    entry["bytes"] = util::Json(result.schedule.bytes_of(kind));
    classes[net::flow_kind_name(kind)] = std::move(entry);
  }
  schedule["classes"] = std::move(classes);
  doc["schedule"] = std::move(schedule);

  util::Json replay = util::Json::object();
  replay["flows"] = util::Json(static_cast<std::uint64_t>(result.replay.trace.size()));
  replay["total_bytes"] = util::Json(result.replay.trace.total_bytes());
  replay["makespan_s"] = util::Json(result.replay.makespan);
  replay["mean_fct_s"] = util::Json(result.replay.mean_fct());
  replay["p99_fct_s"] = util::Json(result.replay.p99_fct());
  doc["replay"] = std::move(replay);
  return doc;
}

util::Json validate_response(const core::ValidationReport& report) {
  util::Json doc = util::Json::object();
  doc["api"] = util::Json(kApiVersionString);
  doc["kind"] = util::Json("validate");
  util::Json classes = util::Json::object();
  for (const auto& c : report.classes) {
    if (c.captured_flows == 0 && c.generated_flows == 0) continue;
    util::Json entry = util::Json::object();
    entry["captured_flows"] = util::Json(static_cast<std::uint64_t>(c.captured_flows));
    entry["generated_flows"] = util::Json(static_cast<std::uint64_t>(c.generated_flows));
    entry["captured_bytes"] = util::Json(c.captured_bytes);
    entry["generated_bytes"] = util::Json(c.generated_bytes);
    entry["size_ks"] = util::Json(c.size_ks);
    entry["size_ks_pvalue"] = util::Json(c.size_ks_pvalue);
    classes[net::flow_kind_name(c.kind)] = std::move(entry);
  }
  doc["classes"] = std::move(classes);
  doc["captured_total_bytes"] = util::Json(report.captured_total_bytes);
  doc["generated_total_bytes"] = util::Json(report.generated_total_bytes);
  doc["captured_span_s"] = util::Json(report.captured_span_s);
  doc["generated_span_s"] = util::Json(report.generated_span_s);
  return doc;
}

std::string to_body(const util::Json& doc) { return doc.dump(2) + "\n"; }

}  // namespace keddah::api
