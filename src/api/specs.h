// The versioned Keddah Spec API (wire format v1).
//
// The toolchain's spec structs (core::CaptureSpec / ReproduceSpec /
// ValidateSpec, core::ScenarioSpec) are the programmatic entry points; this
// layer gives every one of them a single JSON wire schema plus the matching
// response documents, so the batch CLI (`keddah run-scenario --json`), the
// `keddah serve` daemon (/v1/whatif, /v1/reproduce, /v1/validate), and the
// test suites all speak — and can be diffed against — exactly one format.
//
// Design rules:
//   - Every document carries {"api": "v1"}; parsers reject other versions
//     so a v2 can change the schema without silent misreads.
//   - Parse failures throw SpecError naming the source document and the
//     JSON key path of the offending value, keddah-lint style, so a 400
//     response can point at "scenario.jobs[2].input" rather than "bad
//     request".
//   - Serialization is deterministic (util::Json sorts object keys, numbers
//     render via one fixed format), which is what makes "batch CLI output
//     == daemon response body" a testable bit-identity.
#pragma once

#include <stdexcept>
#include <string>

#include "keddah/compare.h"
#include "keddah/scenario.h"
#include "keddah/toolchain.h"
#include "util/json.h"

namespace keddah::api {

/// Wire-format major version. Bump on any incompatible schema change.
inline constexpr int kApiVersion = 1;
inline constexpr const char* kApiVersionString = "v1";

/// A field-level request defect: which document, which JSON key path, what
/// is wrong, and (optionally) how to fix it. what() renders the lint-style
/// line "file: key: message (hint)".
class SpecError : public std::invalid_argument {
 public:
  SpecError(std::string file, std::string key, std::string message, std::string hint = "");

  const std::string& file() const { return file_; }
  const std::string& key() const { return key_; }
  const std::string& message() const { return message_; }
  const std::string& hint() const { return hint_; }

  /// {"file", "key", "message", "hint"} — the diagnostic object embedded in
  /// error responses.
  util::Json to_json() const;

 private:
  std::string file_;
  std::string key_;
  std::string message_;
  std::string hint_;
};

// ---------------------------------------------------------------- specs
// JSON ⇄ toolchain spec structs. Parsers take the source name (`file`) and
// the key path of the object being parsed (for nested use); serializers
// round-trip through the parsers.

/// {"workload": "sort", "input_sizes": ["1GB", ...], "repetitions": 2,
///  "seed": 42, "threads": 0, "faults": [...]}
core::CaptureSpec parse_capture_spec(const util::Json& doc, const std::string& file,
                                     const std::string& key = "");
util::Json capture_spec_to_json(const core::CaptureSpec& spec);

/// {"scenario": {"input": "8GB", "hosts": 16, "maps": 0, "reducers": 0},
///  "seed": 1, "normalize_volume": false}
core::ReproduceSpec parse_reproduce_spec(const util::Json& doc, const std::string& file,
                                         const std::string& key = "");
util::Json reproduce_spec_to_json(const core::ReproduceSpec& spec);

/// {"seed": 1, "repetitions": 3, "threads": 0, "normalize_volume": false}
core::ValidateSpec parse_validate_spec(const util::Json& doc, const std::string& file,
                                       const std::string& key = "");
util::Json validate_spec_to_json(const core::ValidateSpec& spec);

// ------------------------------------------------------------- requests

/// /v1/whatif request: a scenario document (exactly the schema of
/// examples/scenarios/*.json — a scenario file IS a valid request body).
struct WhatIfRequest {
  core::ScenarioSpec scenario;
};
WhatIfRequest parse_whatif_request(const util::Json& doc, const std::string& file);

/// /v1/reproduce request: sample `model` for a scenario and replay it on a
/// cluster fabric.
///   {"api": "v1", "model": "sort",
///    "scenario": {"input": "8GB", "hosts": 16}, "seed": 1,
///    "normalize_volume": false, "cluster": { ... scenario cluster ... }}
struct ReproduceRequest {
  /// Model-bank key; resolution is the caller's job (the daemon holds the
  /// bank, the batch CLI loads a file).
  std::string model;
  core::ReproduceSpec spec;
  hadoop::ClusterConfig cluster;
};
ReproduceRequest parse_reproduce_request(const util::Json& doc, const std::string& file);
util::Json reproduce_request_to_json(const ReproduceRequest& request);

/// /v1/validate request: reproduce a saved reference run under `model` and
/// compare against it.
///   {"api": "v1", "model": "sort", "run": "runs/sort_0",
///    "seed": 1, "repetitions": 3, "cluster": { ... }}
struct ValidateRequest {
  std::string model;
  /// Basename of a run persisted by core::save_run, resolved on the side
  /// that executes (the daemon's filesystem for /v1/validate).
  std::string run;
  core::ValidateSpec spec;
  hadoop::ClusterConfig cluster;
};
ValidateRequest parse_validate_request(const util::Json& doc, const std::string& file);
util::Json validate_request_to_json(const ValidateRequest& request);

// ------------------------------------------------------------ responses
// Deterministic response documents; the daemon's 200 bodies are exactly
// to_body(x_response(...)) and the batch CLI prints the same bytes.

util::Json whatif_response(const core::ScenarioOutcome& outcome);
util::Json reproduce_response(const core::ReproduceResult& result);
util::Json validate_response(const core::ValidationReport& report);

/// The canonical serialized form of an API document: two-space pretty print
/// plus a trailing newline.
std::string to_body(const util::Json& doc);

}  // namespace keddah::api
