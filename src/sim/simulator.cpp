#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/check.h"

namespace keddah::sim {

// keddah:hot(schedule)
EventId Simulator::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("sim: schedule_at in the past");
  const EventId id = next_id_++;
  // archlint:allow(hot-shared-ptr): the callback must outlive both the heap
  // entry and the live map under lazy deletion; one control block per event
  // is the ownership model, not an accident.
  // archlint:allow(hot-std-function): the simulator's public contract is an
  // arbitrary callable per event; type erasure happens once at scheduling,
  // never on dispatch.
  auto shared = std::make_shared<std::function<void()>>(std::move(fn));
  queue_.push(Entry{at, next_seq_++, id, shared});
  // archlint:allow(hot-node-container): keyed by sparse, monotonically
  // growing EventId with random-order erase (cancel/reschedule); a flat
  // slot map would need its own free-list and generation tags for the
  // same node cost amortized.
  live_.emplace(id, std::move(shared));
  return id;
}

// keddah:hot(reschedule)
EventId Simulator::reschedule(EventId id, Time at) {
  const auto it = live_.find(id);
  if (it == live_.end()) return kInvalidEvent;
  if (at < now_) throw std::invalid_argument("sim: reschedule in the past");
  auto fn = std::move(it->second);
  // archlint:allow(hot-node-container): lazy-deletion bookkeeping; the
  // erased node's callback is moved into the new entry, so no callback
  // copy occurs -- only the map node itself churns.
  live_.erase(it);  // the stale heap entry is skimmed lazily
  const EventId nid = next_id_++;
  queue_.push(Entry{at, next_seq_++, nid, fn});
  // archlint:allow(hot-node-container): see the allow in schedule_at;
  // same sparse-key lazy-deletion design.
  live_.emplace(nid, std::move(fn));
  return nid;
}

EventId Simulator::schedule_in(Time delay, std::function<void()> fn) {
  if (delay < 0.0) throw std::invalid_argument("sim: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  // Lazy deletion: drop from the live set; the heap entry is skipped when
  // it reaches the top.
  return live_.erase(id) != 0;
}

void Simulator::skim_cancelled() {
  while (!queue_.empty() && live_.find(queue_.top().id) == live_.end()) queue_.pop();
}

void Simulator::audit_clock(Time next) const {
  if (!(next >= now_)) {
    throw util::AuditError("sim clock would run backwards: now=" + std::to_string(now_) +
                           " next=" + std::to_string(next));
  }
}

// keddah:hot(dispatch)
bool Simulator::step() {
  skim_cancelled();
  if (queue_.empty()) return false;
  Entry entry = queue_.top();
  queue_.pop();
  // archlint:allow(hot-node-container): retiring the dispatched event from
  // the live set is the lazy-deletion contract; the node free pairs the
  // node alloc from schedule_at.
  live_.erase(entry.id);
  assert(entry.at >= now_);
  if constexpr (util::kAuditEnabled) audit_clock(entry.at);
  now_ = entry.at;
  ++executed_;
  (*entry.fn)();
  return true;
}

std::size_t Simulator::run(Time until) {
  std::size_t count = 0;
  for (;;) {
    skim_cancelled();
    if (queue_.empty() || queue_.top().at > until) break;
    if (!step()) break;
    ++count;
  }
  if (now_ < until && until < kForever) now_ = until;
  return count;
}

}  // namespace keddah::sim
