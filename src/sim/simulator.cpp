#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/check.h"

namespace keddah::sim {

EventId Simulator::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("sim: schedule_at in the past");
  const EventId id = next_id_++;
  auto shared = std::make_shared<std::function<void()>>(std::move(fn));
  queue_.push(Entry{at, next_seq_++, id, shared});
  live_.emplace(id, std::move(shared));
  return id;
}

EventId Simulator::reschedule(EventId id, Time at) {
  const auto it = live_.find(id);
  if (it == live_.end()) return kInvalidEvent;
  if (at < now_) throw std::invalid_argument("sim: reschedule in the past");
  auto fn = std::move(it->second);
  live_.erase(it);  // the stale heap entry is skimmed lazily
  const EventId nid = next_id_++;
  queue_.push(Entry{at, next_seq_++, nid, fn});
  live_.emplace(nid, std::move(fn));
  return nid;
}

EventId Simulator::schedule_in(Time delay, std::function<void()> fn) {
  if (delay < 0.0) throw std::invalid_argument("sim: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  // Lazy deletion: drop from the live set; the heap entry is skipped when
  // it reaches the top.
  return live_.erase(id) != 0;
}

void Simulator::skim_cancelled() {
  while (!queue_.empty() && live_.find(queue_.top().id) == live_.end()) queue_.pop();
}

void Simulator::audit_clock(Time next) const {
  if (!(next >= now_)) {
    throw util::AuditError("sim clock would run backwards: now=" + std::to_string(now_) +
                           " next=" + std::to_string(next));
  }
}

bool Simulator::step() {
  skim_cancelled();
  if (queue_.empty()) return false;
  Entry entry = queue_.top();
  queue_.pop();
  live_.erase(entry.id);
  assert(entry.at >= now_);
  if constexpr (util::kAuditEnabled) audit_clock(entry.at);
  now_ = entry.at;
  ++executed_;
  (*entry.fn)();
  return true;
}

std::size_t Simulator::run(Time until) {
  std::size_t count = 0;
  for (;;) {
    skim_cancelled();
    if (queue_.empty() || queue_.top().at > until) break;
    if (!step()) break;
    ++count;
  }
  if (now_ < until && until < kForever) now_ = until;
  return count;
}

}  // namespace keddah::sim
