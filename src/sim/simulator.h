// Discrete-event simulation kernel.
//
// A single-threaded, deterministic event loop: callbacks are executed in
// (time, insertion-sequence) order, so two events scheduled for the same
// instant fire in the order they were scheduled. Events can be cancelled,
// which is how the flow-level network model retracts completion events when
// fair-share rates change.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

namespace keddah::sim {

/// Simulation time in seconds.
using Time = double;

/// Opaque handle identifying a scheduled event; usable for cancellation.
using EventId = std::uint64_t;

/// Sentinel for "no event".
inline constexpr EventId kInvalidEvent = 0;

/// The event loop. Components keep a reference and schedule callbacks.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. 0 before the first event fires.
  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  /// Returns a handle usable with cancel().
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(Time delay, std::function<void()> fn);

  /// Cancels a pending event. Safe to call for already-fired, already-
  /// cancelled, or invalid handles (no effect). Returns true if the event
  /// was pending and is now cancelled.
  bool cancel(EventId id);

  /// Moves a pending event to absolute time `at`, reusing its callback
  /// (no std::function re-allocation), and returns the new handle; the old
  /// handle is dead. Returns kInvalidEvent when `id` is not pending. This is
  /// the re-arm primitive for components that keep one outstanding event
  /// whose deadline moves around (the network's next-completion event).
  EventId reschedule(EventId id, Time at);

  /// Runs until the queue drains or `until` is reached (infinity = drain).
  /// If `until` is finite, the clock is advanced to `until` even when the
  /// queue drains earlier. Returns the number of events executed.
  std::size_t run(Time until = kForever);

  /// Runs at most one event; returns false if no live event remains.
  bool step();

  /// Number of live (not cancelled, not yet fired) events.
  std::size_t pending() const { return live_.size(); }

  /// Total events executed since construction.
  std::uint64_t executed() const { return executed_; }

  static constexpr Time kForever = 1.0e300;

  /// Audits that advancing the clock to `next` keeps it monotone; throws
  /// util::AuditError otherwise. Called automatically before every event
  /// dispatch in KEDDAH_CHECK builds; callable explicitly in any build.
  void audit_clock(Time next) const;

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    EventId id;
    // Heap entries must be copyable; the callback lives out-of-line.
    std::shared_ptr<std::function<void()>> fn;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  /// Pops cancelled entries off the heap top.
  void skim_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  /// Live events and their callbacks; the heap holds shared_ptr copies, so
  /// reschedule() can move an event without copying the closure.
  std::unordered_map<EventId, std::shared_ptr<std::function<void()>>> live_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace keddah::sim
