// Flow-level network engine with progressive-filling max-min fair sharing.
//
// This is the fluid TCP model standard in flow-level simulators: each active
// flow receives its max-min fair share of every link on its path, rates are
// recomputed whenever the active set changes, and per-flow completion times
// follow from draining the remaining bytes at the current rate. Relative to
// packet-level ns-3 this abstracts slow-start and loss recovery, which is the
// documented substitution for the paper's replay substrate (DESIGN.md §2).
//
// The fair-share hot path is INCREMENTAL (DESIGN.md §9): the engine keeps
// per-arc active-flow member lists and a dirty-arc frontier, and a reshare
// only re-solves the connected component(s) of the flow/arc sharing graph
// that a dirty arc can reach — flows elsewhere keep their cached rates.
// Because the solver freezes one bottleneck arc at a time with exact share
// comparisons (no tolerance batching), the allocation decomposes exactly
// over components, so the incremental result is bit-identical to a full
// recompute. The full recompute survives as the reference scheduler
// (KEDDAH_REFERENCE_SCHEDULER=1 or NetworkOptions::reference_scheduler):
// it marks every populated arc dirty on every reshare and runs the same
// solver, which is what tests/net_differential_test.cpp runs side-by-side
// with the incremental mode.
#pragma once

#include <array>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "net/flow.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace keddah::net {

/// Engine configuration.
struct NetworkOptions {
  /// Rate applied to loopback (src == dst) flows. Models local disk/IPC
  /// rather than the NIC; loopback flows bypass fair sharing.
  util::Rate loopback = util::Rate::bps(40.0e9);
  /// If true, a flow waits one path latency before its first byte moves
  /// (connection setup) and delivers its last byte one path latency after
  /// draining.
  bool model_latency = true;
  /// If true, approximate TCP slow-start: before entering fair sharing a
  /// flow spends ceil(log2(1 + bytes/initial_window)) round-trips ramping
  /// up, modelled as extra activation delay (capped at 10 RTTs). Short
  /// flows become latency-bound, as on real networks; long flows are
  /// barely affected. Off by default (pure fluid model).
  bool model_slow_start = false;
  /// Initial congestion window for the slow-start approximation
  /// (10 segments of 1460 B, the Linux default).
  util::Bytes initial_window{14600.0};
  /// Run the reference (full-recompute) scheduler instead of the
  /// incremental one. The KEDDAH_REFERENCE_SCHEDULER environment variable
  /// (any value other than "0") forces this on regardless of the field, so
  /// whole pipelines can be flipped without code changes.
  bool reference_scheduler = false;
};

/// Per-traffic-class byte ledger kept by the engine. The conservation
/// invariant audited under KEDDAH_CHECK: offered == delivered + aborted
/// once the class has no in-flight flows (and at any instant when in-flight
/// payload is added back in).
struct ClassTotals {
  util::Bytes offered;    ///< payload accepted by start_flow()
  util::Bytes delivered;  ///< payload that reached its destination
  util::Bytes aborted;    ///< payload lost to aborts (requested - delivered)
};

/// Perf counters for the fair-share scheduler (bench/perf_scheduler emits
/// them as BENCH_scheduler.json; the CLI prints them after run-scenario).
struct SchedulerStats {
  std::uint64_t reshares = 0;       ///< reshare() invocations
  std::uint64_t solves = 0;         ///< reshares that ran the water-filling solver
  std::uint64_t empty_reshares = 0; ///< reshares with a clean dirty set (rates reused)
  std::uint64_t links_touched = 0;  ///< arc-share evaluations inside solves
  std::uint64_t flows_visited = 0;  ///< flows pulled into solve subproblems
  std::uint64_t flows_rerated = 0;  ///< rate assignments that changed a flow's rate
  std::uint64_t heap_ops = 0;       ///< completion-heap sift swaps
  /// Per-solve links-touched histogram: bucket i counts solves that touched
  /// [4^i, 4^(i+1)) arc shares (bucket 0 is [0,4)). The reshare cost
  /// distribution the bench reports.
  std::array<std::uint64_t, 8> solve_size_hist{};

  /// Mean arc-share evaluations per reshare (the headline incremental win).
  double links_per_reshare() const {
    return reshares > 0 ? static_cast<double>(links_touched) / static_cast<double>(reshares) : 0.0;
  }
};

/// The network simulator facade.
///
/// Ownership: Network borrows the Simulator (must outlive it) and owns the
/// Topology and all flow state.
class Network {
 public:
  using CompletionCallback = std::function<void(const Flow&)>;
  /// Tap invoked on flow lifecycle events (used by capture::FlowCollector).
  using Tap = std::function<void(const Flow&)>;

  Network(sim::Simulator& sim, Topology topology, NetworkOptions options = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Topology& topology() const { return topology_; }
  sim::Simulator& simulator() { return sim_; }

  /// Starts a flow of `bytes` payload from src to dst. `on_complete` (may be
  /// null) fires when the last byte is delivered. `rate_cap` bounds the
  /// flow below its fair share (application/disk limited senders); any
  /// non-positive rate means uncapped, same as the infinite default.
  FlowId start_flow(NodeId src, NodeId dst, util::Bytes bytes, FlowMeta meta,
                    CompletionCallback on_complete = nullptr,
                    util::Rate rate_cap = util::Rate::infinite());

  /// Registers an observer for flow completions (all flows, loopback too).
  void add_completion_tap(Tap tap);

  /// Registers an observer for flow starts.
  void add_start_tap(Tap tap);

  /// Aborts one active flow: progress is advanced, the flow's `bytes` is
  /// rewritten to the payload actually delivered, `aborted` is set, and
  /// completion taps plus the callback fire immediately (a connection reset
  /// has no delivery tail latency). Returns false when the id is not active
  /// (already finished, still in connection setup, or unknown).
  bool abort_flow(FlowId id);

  /// Aborts every active flow whose source or destination is `node`
  /// (endpoint failure). Flows are aborted in id order with a single rate
  /// recomputation. Returns the number of flows aborted.
  std::size_t abort_flows_touching(NodeId node);

  /// Marks a node down/up. While a node is down, flows still in connection
  /// setup that touch it abort with zero payload at activation time, so a
  /// dead host sources no bytes. Aborting already-active flows is the
  /// caller's job (abort_flows_touching); marking up never resurrects flows.
  void set_node_down(NodeId node);
  void set_node_up(NodeId node);

  /// False only while `node` is marked down.
  bool node_up(NodeId node) const;

  /// Rewrites a link's per-direction capacity and recomputes fair shares
  /// (fault injection: link-degradation windows). A rewrite to the current
  /// capacity leaves the dirty set empty: no rate changes.
  void set_link_capacity(LinkId link, util::Rate capacity);

  /// Number of flows currently holding network capacity.
  std::size_t active_flows() const { return slot_of_.size(); }

  /// Flows started since construction.
  std::uint64_t total_flows() const { return next_flow_id_ - 1; }

  /// Total payload delivered so far.
  util::Bytes delivered_bytes() const { return delivered_bytes_; }

  /// Total payload accepted by start_flow() so far.
  util::Bytes offered_bytes() const { return offered_bytes_; }

  /// Number of fair-share recomputations (solver runs; perf counter).
  std::uint64_t recomputations() const { return sched_stats_.solves; }

  /// Scheduler perf counters (reshares, links touched, heap ops, ...).
  const SchedulerStats& scheduler_stats() const { return sched_stats_; }

  /// True when the reference (full-recompute) scheduler is active.
  bool reference_scheduler() const { return reference_mode_; }

  /// Flows terminated early by abort_flow/abort_flows_touching or by
  /// activating against a down endpoint.
  std::uint64_t aborted_flows() const { return aborted_flows_; }

  /// Payload requested but never delivered because of aborts.
  util::Bytes aborted_bytes() const { return aborted_bytes_; }

  /// Per-traffic-class byte ledger (ground-truth FlowMeta::kind).
  const ClassTotals& class_totals(FlowKind kind) const {
    return class_totals_[static_cast<std::size_t>(kind)];
  }

  /// Audits byte conservation: per class and in aggregate,
  ///   offered == delivered + aborted + in-flight payload
  /// where in-flight covers flows in connection setup, active fair sharing,
  /// loopback transit, and the delivery-tail latency window. Throws
  /// util::AuditError naming the violated class on breach. Called
  /// automatically at the completion/abort seams in KEDDAH_CHECK builds;
  /// callable explicitly in any build (the audit test does).
  void audit_conservation() const;

  /// Audits the scheduler's internal structures: per-arc member lists and
  /// back-references consistent, completion heap well-formed, dirty flags in
  /// sync with the frontier. Throws util::AuditError on breach. Cheap enough
  /// for tests to call after every event; KEDDAH_CHECK builds do not call it
  /// automatically (it is O(active flows x path)).
  void audit_scheduler() const;

  /// Looks up an active flow; returns nullptr if finished or unknown. The
  /// returned flow's `remaining` is exact as of its last rate change
  /// (progress is materialized lazily); `rate_bps` is always current.
  const Flow* find_flow(FlowId id) const;

  /// Visits every active flow in flow-id order (tests and audits; not a hot
  /// path). Progress is as-of the flow's last rate change.
  void visit_active_flows(const std::function<void(const Flow&)>& fn) const;

  /// Instantaneous aggregate rate over all active flows, bits/second.
  double aggregate_rate_bps() const;

  /// Bytes that have traversed a directed arc so far.
  double arc_bytes(Arc arc) const;

  /// Bytes over a link, both directions combined.
  double link_bytes(LinkId link) const;

  /// Mean utilization of a directed arc over [0, now] (0..1).
  double arc_utilization(Arc arc) const;

 private:
  /// Sentinel: slot absent from the completion heap.
  static constexpr std::int32_t kNotInHeap = -1;

  /// An active flow in the arena. Slots are reused via a free list; all hot
  /// loops address flows by slot index, never through the id map.
  struct ActiveFlow {
    Flow flow;
    CompletionCallback on_complete;
    /// Progress (flow.remaining, arc byte counters) is exact up to here.
    sim::Time last_update = 0.0;
    /// Absolute time the flow drains at its current rate (heap key).
    double projected_finish = std::numeric_limits<double>::infinity();
    /// Position of this flow in each path arc's member list (parallel to
    /// flow.path), maintained through swap-removes.
    std::vector<std::uint32_t> member_pos;
    /// Index into finish_heap_, kNotInHeap when inactive.
    std::int32_t heap_pos = kNotInHeap;
    bool in_use = false;
  };

  /// Per-directed-arc scheduler state (indexed by Arc::index()).
  struct ArcState {
    /// Cached capacity (avoids the Topology indirection on the hot path).
    double capacity_bps = 0.0;
    /// Active flows crossing the arc as (arena slot, index of this arc in
    /// that flow's path). Unordered: removal is swap-remove; the solver
    /// canonicalizes by flow id.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> members;
    /// True while the arc sits on the dirty frontier.
    bool dirty = false;
  };

  // --- lazy progress ------------------------------------------------------
  /// Settles `slot`'s transferred bytes over [last_update, now] at its
  /// current rate (flow.remaining and per-arc byte counters).
  void materialize(std::uint32_t slot);
  /// Materializes every active flow (utilization queries).
  void sync_progress();

  // --- membership / dirty frontier ---------------------------------------
  void mark_dirty(std::uint32_t arc_index);
  void add_membership(std::uint32_t slot);
  void remove_membership(std::uint32_t slot);
  std::uint32_t allocate_slot();
  /// Detaches an active flow from every scheduler structure and frees its
  /// slot; returns the flow + callback for the caller to resolve.
  std::pair<Flow, CompletionCallback> detach(std::uint32_t slot);

  // --- fair sharing -------------------------------------------------------
  /// Recomputes max-min rates over the component(s) reachable from the
  /// dirty frontier and re-arms the completion event.
  void reshare();
  /// Reference scheduler: marks every populated arc dirty so the solver
  /// recomputes the complete allocation from scratch.
  void compute_max_min_rates_reference();
  /// Water-filling over the dirty component(s): flood-fills the affected
  /// flow/arc set, then freezes one bottleneck arc at a time off a lazy
  /// min-heap of arc shares. Clears the dirty frontier.
  void solve_dirty();
  /// Applies a freshly solved rate; no-op (and no heap churn) when the rate
  /// is unchanged.
  void assign_rate(std::uint32_t slot, double rate_bps);

  // --- completion heap ----------------------------------------------------
  bool finishes_before(std::uint32_t a, std::uint32_t b) const;
  /// Writes `slot` at heap position `pos` and fixes its back-reference.
  void heap_place(std::size_t pos, std::uint32_t slot);
  void heap_sift_up(std::size_t pos);
  void heap_sift_down(std::size_t pos);
  void heap_insert(std::uint32_t slot);
  void heap_erase(std::uint32_t slot);
  void heap_update(std::uint32_t slot);
  /// (Re)schedules the single completion event at the heap top's projected
  /// finish; cancels it when no flow is active.
  void rearm_completion();

  void on_completion_event();

  /// Delivery tail: fires taps/callback for a fully drained, already
  /// detached flow (after the tail latency when modelled).
  void resolve_finished(Flow flow, CompletionCallback cb);
  /// Terminates an already-detached flow with partial-byte accounting and
  /// fires taps/callback immediately.
  void resolve_aborted(Flow flow, CompletionCallback cb);

  sim::Simulator& sim_;
  Topology topology_;
  NetworkOptions options_;
  bool reference_mode_ = false;

  std::vector<Tap> completion_taps_;
  std::vector<Tap> start_taps_;

  /// Ledger bookkeeping shared by every path that resolves a flow.
  void account_offered(const Flow& flow);
  void account_delivered(const Flow& flow);
  void account_aborted(const Flow& flow, util::Bytes shortfall);
  /// Payload admitted but outside the active set (connection setup,
  /// loopback transit, delivery tail), per class; the audit adds it back in.
  util::Bytes& limbo(const Flow& flow) {
    return limbo_[static_cast<std::size_t>(flow.meta.kind)];
  }

  // --- arena + indexes ----------------------------------------------------
  std::vector<ActiveFlow> arena_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<FlowId, std::uint32_t> slot_of_;
  std::vector<ArcState> arcs_;
  std::vector<std::uint32_t> dirty_arcs_;
  std::vector<std::uint32_t> finish_heap_;

  // --- solver scratch (reused across solves; epoch-stamped visit marks) ---
  std::uint64_t visit_epoch_ = 0;
  std::vector<std::uint64_t> arc_visit_;
  std::vector<std::uint64_t> slot_visit_;
  /// slot -> index into the current solve's sorted flow list.
  std::vector<std::uint32_t> slot_local_;
  std::vector<std::uint32_t> scratch_flows_;
  std::vector<std::uint32_t> scratch_arc_stack_;
  std::vector<std::uint32_t> scratch_local_arcs_;
  std::vector<std::uint32_t> arc_local_idx_;
  /// solve_dirty() working set, hoisted out of the solve loop so repeat
  /// solves are allocation-free in steady state: CSR of the dirty
  /// component, residual capacities, the share heap, and freeze flags.
  std::vector<std::uint32_t> scratch_flow_arc_off_;
  std::vector<std::uint32_t> scratch_flow_arcs_;
  std::vector<double> scratch_residual_;
  std::vector<std::uint32_t> scratch_unfrozen_;
  std::vector<std::uint32_t> scratch_virtual_member_;
  std::vector<std::pair<double, std::uint32_t>> scratch_share_heap_;
  std::vector<std::uint8_t> scratch_frozen_;
  /// on_completion_event() drained batch (flow + callback pairs), reused
  /// across completion events.
  std::vector<std::pair<Flow, CompletionCallback>> scratch_drained_;

  FlowId next_flow_id_ = 1;
  sim::EventId completion_event_ = sim::kInvalidEvent;
  /// Absolute time completion_event_ is armed for (infinity when unarmed).
  double armed_time_ = std::numeric_limits<double>::infinity();
  util::Bytes delivered_bytes_;
  util::Bytes offered_bytes_;
  SchedulerStats sched_stats_;
  std::uint64_t aborted_flows_ = 0;
  util::Bytes aborted_bytes_;
  std::array<ClassTotals, kNumFlowKinds> class_totals_{};
  std::array<util::Bytes, kNumFlowKinds> limbo_{};
  /// Per-arc transferred bits (indexed by Arc::index()).
  std::vector<double> arc_bits_;
  /// node_down_[n] is true while node n is marked down.
  std::vector<bool> node_down_;
};

}  // namespace keddah::net
