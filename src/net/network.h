// Flow-level network engine with progressive-filling max-min fair sharing.
//
// This is the fluid TCP model standard in flow-level simulators: each active
// flow receives its max-min fair share of every link on its path, rates are
// recomputed whenever the active set changes, and per-flow completion times
// follow from draining the remaining bytes at the current rate. Relative to
// packet-level ns-3 this abstracts slow-start and loss recovery, which is the
// documented substitution for the paper's replay substrate (DESIGN.md §2).
//
// The fair-share hot path is INCREMENTAL (DESIGN.md §9): the engine keeps
// per-arc active-flow member lists and a dirty-arc frontier, and a reshare
// only re-solves the connected component(s) of the flow/arc sharing graph
// that a dirty arc can reach — flows elsewhere keep their cached rates.
// Because the solver freezes one bottleneck arc at a time with exact share
// comparisons (no tolerance batching), the allocation decomposes exactly
// over components, so the incremental result is bit-identical to a full
// recompute. The full recompute survives as the reference scheduler
// (KEDDAH_REFERENCE_SCHEDULER=1 or NetworkOptions::reference_scheduler):
// it marks every populated arc dirty on every reshare and runs the same
// solver, which is what tests/net_differential_test.cpp runs side-by-side
// with the incremental mode.
//
// Per-flow state is COLUMNAR (DESIGN.md §10): a struct-of-arrays arena of
// parallel flat vectors indexed by slot, with free-list slot reuse. Flow
// paths and the matching member-list back-references live in two shared
// flat pools addressed by (offset, length, capacity) per slot — no
// per-flow heap nodes anywhere on the hot path, and the id->slot lookup is
// an open-addressing flat table rather than std::unordered_map. The public
// API still speaks `Flow`: lookups materialize a view on demand.
#pragma once

#include <array>
#include <functional>
#include <limits>
#include <vector>

#include "net/flow.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace keddah::net {

/// Engine configuration.
struct NetworkOptions {
  /// Rate applied to loopback (src == dst) flows. Models local disk/IPC
  /// rather than the NIC; loopback flows bypass fair sharing.
  util::Rate loopback = util::Rate::bps(40.0e9);
  /// If true, a flow waits one path latency before its first byte moves
  /// (connection setup) and delivers its last byte one path latency after
  /// draining.
  bool model_latency = true;
  /// If true, approximate TCP slow-start: before entering fair sharing a
  /// flow spends ceil(log2(1 + bytes/initial_window)) round-trips ramping
  /// up, modelled as extra activation delay (capped at 10 RTTs). Short
  /// flows become latency-bound, as on real networks; long flows are
  /// barely affected. Off by default (pure fluid model).
  bool model_slow_start = false;
  /// Initial congestion window for the slow-start approximation
  /// (10 segments of 1460 B, the Linux default).
  util::Bytes initial_window{14600.0};
  /// Run the reference (full-recompute) scheduler instead of the
  /// incremental one. The KEDDAH_REFERENCE_SCHEDULER environment variable
  /// (any value other than "0") forces this on regardless of the field, so
  /// whole pipelines can be flipped without code changes.
  bool reference_scheduler = false;
  /// Compaction floor for the shared columnar path pool: the pool compacts
  /// (dropping segments abandoned by slot churn) only once it holds at
  /// least this many entries and at least half of them are dead. Lower it
  /// to force frequent compactions (the arena property tests do); raising
  /// it trades memory for fewer O(pool) rebuilds. Compaction is invisible
  /// to scheduling — it moves bytes, never changes any rate or order.
  std::size_t path_pool_compact_min = 4096;
};

/// Per-traffic-class byte ledger kept by the engine. The conservation
/// invariant audited under KEDDAH_CHECK: offered == delivered + aborted
/// once the class has no in-flight flows (and at any instant when in-flight
/// payload is added back in).
struct ClassTotals {
  util::Bytes offered;    ///< payload accepted by start_flow()
  util::Bytes delivered;  ///< payload that reached its destination
  util::Bytes aborted;    ///< payload lost to aborts (requested - delivered)
};

/// Perf counters for the fair-share scheduler (bench/perf_scheduler emits
/// them as BENCH_scheduler.json; the CLI prints them after run-scenario).
struct SchedulerStats {
  std::uint64_t reshares = 0;       ///< reshare() invocations
  std::uint64_t solves = 0;         ///< reshares that ran the water-filling solver
  std::uint64_t empty_reshares = 0; ///< reshares with a clean dirty set (rates reused)
  std::uint64_t links_touched = 0;  ///< arc-share evaluations inside solves
  std::uint64_t flows_visited = 0;  ///< flows pulled into solve subproblems
  std::uint64_t flows_rerated = 0;  ///< rate assignments that changed a flow's rate
  std::uint64_t heap_ops = 0;       ///< completion-heap sift swaps
  /// Per-solve links-touched histogram: bucket i counts solves that touched
  /// [4^i, 4^(i+1)) arc shares (bucket 0 is [0,4)). The reshare cost
  /// distribution the bench reports.
  std::array<std::uint64_t, 8> solve_size_hist{};

  /// Mean arc-share evaluations per reshare (the headline incremental win).
  double links_per_reshare() const {
    return reshares > 0 ? static_cast<double>(links_touched) / static_cast<double>(reshares) : 0.0;
  }
};

/// Occupancy counters for the columnar flow arena (bench/perf_scale emits
/// them; the arena property tests pin compaction behaviour with them).
struct ArenaStats {
  std::size_t slots = 0;          ///< arena height (allocated slot columns)
  std::size_t live = 0;           ///< slots currently holding an active flow
  std::size_t peak_live = 0;      ///< high-water mark of live
  std::size_t path_pool_len = 0;  ///< entries in the shared path pool
  std::uint64_t slot_reuses = 0;  ///< allocations served from the free list
  std::uint64_t path_pool_compactions = 0;
};

/// Open-addressing FlowId -> slot table (linear probing, power-of-two
/// capacity, backward-shift deletion). Two flat vectors, no per-entry heap
/// nodes — the columnar-arena replacement for the old std::unordered_map
/// id lookup. Keys are FlowIds, which are never 0 (kInvalidFlow), so 0 is
/// the empty sentinel.
class FlowSlotIndex {
 public:
  std::size_t size() const { return size_; }

  void insert(FlowId id, std::uint32_t slot) {
    if ((size_ + 1) * 4 >= keys_.size() * 3) grow();
    std::size_t i = probe_start(id);
    while (keys_[i] != kInvalidFlow) i = next(i);
    keys_[i] = id;
    vals_[i] = slot;
    ++size_;
  }

  /// Returns nullptr when absent; the pointer is valid until the next
  /// insert/erase.
  const std::uint32_t* find(FlowId id) const {
    if (keys_.empty()) return nullptr;
    std::size_t i = probe_start(id);
    while (keys_[i] != kInvalidFlow) {
      if (keys_[i] == id) return &vals_[i];
      i = next(i);
    }
    return nullptr;
  }

  bool erase(FlowId id) {
    if (keys_.empty()) return false;
    std::size_t i = probe_start(id);
    while (keys_[i] != id) {
      if (keys_[i] == kInvalidFlow) return false;
      i = next(i);
    }
    // Backward-shift deletion keeps probe chains contiguous without
    // tombstones: pull displaced entries back over the hole.
    std::size_t hole = i;
    for (std::size_t j = next(i); keys_[j] != kInvalidFlow; j = next(j)) {
      const std::size_t home = probe_start(keys_[j]);
      const bool movable = hole <= j ? (home <= hole || home > j) : (home <= hole && home > j);
      if (movable) {
        keys_[hole] = keys_[j];
        vals_[hole] = vals_[j];
        hole = j;
      }
    }
    keys_[hole] = kInvalidFlow;
    --size_;
    return true;
  }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }
  std::size_t probe_start(FlowId id) const { return mix(id) & (keys_.size() - 1); }
  std::size_t next(std::size_t i) const { return (i + 1) & (keys_.size() - 1); }

  void grow() {
    const std::size_t cap = keys_.empty() ? 16 : keys_.size() * 2;
    std::vector<FlowId> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_vals = std::move(vals_);
    keys_.assign(cap, kInvalidFlow);
    vals_.assign(cap, 0);
    size_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != kInvalidFlow) insert(old_keys[i], old_vals[i]);
    }
  }

  std::vector<FlowId> keys_;
  std::vector<std::uint32_t> vals_;
  std::size_t size_ = 0;
};

/// The network simulator facade.
///
/// Ownership: Network borrows the Simulator (must outlive it) and owns the
/// Topology and all flow state.
class Network {
 public:
  using CompletionCallback = std::function<void(const Flow&)>;
  /// Tap invoked on flow lifecycle events (used by capture::FlowCollector).
  using Tap = std::function<void(const Flow&)>;

  Network(sim::Simulator& sim, Topology topology, NetworkOptions options = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Topology& topology() const { return topology_; }
  sim::Simulator& simulator() { return sim_; }

  /// Starts a flow of `bytes` payload from src to dst. `on_complete` (may be
  /// null) fires when the last byte is delivered. `rate_cap` bounds the
  /// flow below its fair share (application/disk limited senders); any
  /// non-positive rate means uncapped, same as the infinite default.
  FlowId start_flow(NodeId src, NodeId dst, util::Bytes bytes, FlowMeta meta,
                    CompletionCallback on_complete = nullptr,
                    util::Rate rate_cap = util::Rate::infinite());

  /// Registers an observer for flow completions (all flows, loopback too).
  void add_completion_tap(Tap tap);

  /// Registers an observer for flow starts.
  void add_start_tap(Tap tap);

  /// Aborts one active flow: progress is advanced, the flow's `bytes` is
  /// rewritten to the payload actually delivered, `aborted` is set, and
  /// completion taps plus the callback fire immediately (a connection reset
  /// has no delivery tail latency). Returns false when the id is not active
  /// (already finished, still in connection setup, or unknown).
  bool abort_flow(FlowId id);

  /// Aborts every active flow whose source or destination is `node`
  /// (endpoint failure). Flows are aborted in id order with a single rate
  /// recomputation. Returns the number of flows aborted.
  std::size_t abort_flows_touching(NodeId node);

  /// Marks a node down/up. While a node is down, flows still in connection
  /// setup that touch it abort with zero payload at activation time, so a
  /// dead host sources no bytes. Aborting already-active flows is the
  /// caller's job (abort_flows_touching); marking up never resurrects flows.
  void set_node_down(NodeId node);
  void set_node_up(NodeId node);

  /// False only while `node` is marked down.
  bool node_up(NodeId node) const;

  /// Rewrites a link's per-direction capacity and recomputes fair shares
  /// (fault injection: link-degradation windows). A rewrite to the current
  /// capacity leaves the dirty set empty: no rate changes.
  void set_link_capacity(LinkId link, util::Rate capacity);

  /// Number of flows currently holding network capacity.
  std::size_t active_flows() const { return slot_index_.size(); }

  /// Flows started since construction.
  std::uint64_t total_flows() const { return next_flow_id_ - 1; }

  /// Total payload delivered so far.
  util::Bytes delivered_bytes() const { return delivered_bytes_; }

  /// Total payload accepted by start_flow() so far.
  util::Bytes offered_bytes() const { return offered_bytes_; }

  /// Number of fair-share recomputations (solver runs; perf counter).
  std::uint64_t recomputations() const { return sched_stats_.solves; }

  /// Scheduler perf counters (reshares, links touched, heap ops, ...).
  const SchedulerStats& scheduler_stats() const { return sched_stats_; }

  /// Columnar-arena occupancy counters (slots, pool size, compactions).
  ArenaStats arena_stats() const;

  /// True when the reference (full-recompute) scheduler is active.
  bool reference_scheduler() const { return reference_mode_; }

  /// Flows terminated early by abort_flow/abort_flows_touching or by
  /// activating against a down endpoint.
  std::uint64_t aborted_flows() const { return aborted_flows_; }

  /// Payload requested but never delivered because of aborts.
  util::Bytes aborted_bytes() const { return aborted_bytes_; }

  /// Per-traffic-class byte ledger (ground-truth FlowMeta::kind).
  const ClassTotals& class_totals(FlowKind kind) const {
    return class_totals_[static_cast<std::size_t>(kind)];
  }

  /// Audits byte conservation: per class and in aggregate,
  ///   offered == delivered + aborted + in-flight payload
  /// where in-flight covers flows in connection setup, active fair sharing,
  /// loopback transit, and the delivery-tail latency window. Throws
  /// util::AuditError naming the violated class on breach. Called
  /// automatically at the completion/abort seams in KEDDAH_CHECK builds;
  /// callable explicitly in any build (the audit test does).
  void audit_conservation() const;

  /// Audits the scheduler's internal structures: per-arc member lists and
  /// back-references consistent, completion heap well-formed, dirty flags in
  /// sync with the frontier, columnar path pool segments in bounds. Throws
  /// util::AuditError on breach. Cheap enough for tests to call after every
  /// event; KEDDAH_CHECK builds do not call it automatically (it is
  /// O(active flows x path)).
  void audit_scheduler() const;

  /// Looks up an active flow; returns nullptr if finished or unknown. The
  /// returned flow's `remaining` is exact as of its last rate change
  /// (progress is materialized lazily); `rate_bps` is always current. The
  /// pointer refers to a view materialized from the columnar arena and is
  /// valid until the next call into the Network.
  const Flow* find_flow(FlowId id) const;

  /// Visits every active flow in flow-id order (tests and audits; not a hot
  /// path). Progress is as-of the flow's last rate change. The Flow& passed
  /// to `fn` is a per-call view; copy what you need.
  void visit_active_flows(const std::function<void(const Flow&)>& fn) const;

  /// Instantaneous aggregate rate over all active flows, bits/second.
  double aggregate_rate_bps() const;

  /// Bytes that have traversed a directed arc so far.
  double arc_bytes(Arc arc) const;

  /// Bytes over a link, both directions combined.
  double link_bytes(LinkId link) const;

  /// Mean utilization of a directed arc over [0, now] (0..1).
  double arc_utilization(Arc arc) const;

 private:
  /// Sentinel: slot absent from the completion heap.
  static constexpr std::int32_t kNotInHeap = -1;

  /// A slot's segment in the shared path/member-position pools. `cap`
  /// outlives the flow: a freed slot keeps its segment and reuses it in
  /// place when the next occupant's path fits, so steady-state churn
  /// allocates nothing. Segments abandoned by a longer path become dead
  /// bytes reclaimed by compact_path_pool().
  struct PathRef {
    std::uint32_t off = 0;
    std::uint32_t len = 0;
    std::uint32_t cap = 0;
  };

  /// Per-directed-arc scheduler state (indexed by Arc::index()).
  struct ArcState {
    /// Cached capacity (avoids the Topology indirection on the hot path).
    double capacity_bps = 0.0;
    /// Active flows crossing the arc as (arena slot, index of this arc in
    /// that flow's path). Unordered: removal is swap-remove; the solver
    /// canonicalizes by flow id.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> members;
    /// True while the arc sits on the dirty frontier.
    bool dirty = false;
  };

  // --- lazy progress ------------------------------------------------------
  /// Settles `slot`'s transferred bytes over [last_update, now] at its
  /// current rate (remaining payload and per-arc byte counters).
  void materialize(std::uint32_t slot);
  /// Materializes every active flow (utilization queries).
  void sync_progress();

  // --- membership / dirty frontier ---------------------------------------
  void mark_dirty(std::uint32_t arc_index);
  void add_membership(std::uint32_t slot);
  void remove_membership(std::uint32_t slot);
  std::uint32_t allocate_slot();
  /// Copies `path` into the slot's pool segment, reusing it in place when
  /// it fits and appending a fresh segment (after a possible compaction)
  /// otherwise.
  void assign_path(std::uint32_t slot, const std::vector<Arc>& path);
  /// Rebuilds the path/member-position pools with only live segments,
  /// dropping dead bytes abandoned by slot churn.
  void compact_path_pool();
  /// Detaches an active flow from every scheduler structure and frees its
  /// slot; returns the flow (scalar fields only; the columnar path is not
  /// copied out) + callback for the caller to resolve.
  std::pair<Flow, CompletionCallback> detach(std::uint32_t slot);
  /// Materializes a Flow view of `slot` into view_flow_ (path included).
  const Flow& fill_view(std::uint32_t slot) const;

  // --- fair sharing -------------------------------------------------------
  /// Recomputes max-min rates over the component(s) reachable from the
  /// dirty frontier and re-arms the completion event.
  void reshare();
  /// Reference scheduler: marks every populated arc dirty so the solver
  /// recomputes the complete allocation from scratch.
  void compute_max_min_rates_reference();
  /// Water-filling over the dirty component(s): flood-fills the affected
  /// flow/arc set, then freezes one bottleneck arc at a time off a lazy
  /// min-heap of arc shares. Clears the dirty frontier.
  void solve_dirty();
  /// Applies a freshly solved rate; no-op (and no heap churn) when the rate
  /// is unchanged.
  void assign_rate(std::uint32_t slot, double rate_bps);

  // --- completion heap ----------------------------------------------------
  bool finishes_before(std::uint32_t a, std::uint32_t b) const;
  /// Writes `slot` at heap position `pos` and fixes its back-reference.
  void heap_place(std::size_t pos, std::uint32_t slot);
  void heap_sift_up(std::size_t pos);
  void heap_sift_down(std::size_t pos);
  void heap_insert(std::uint32_t slot);
  void heap_erase(std::uint32_t slot);
  void heap_update(std::uint32_t slot);
  /// (Re)schedules the single completion event at the heap top's projected
  /// finish; cancels it when no flow is active.
  void rearm_completion();

  void on_completion_event();

  /// Delivery tail: fires taps/callback for a fully drained, already
  /// detached flow (after the tail latency when modelled).
  void resolve_finished(Flow flow, CompletionCallback cb);
  /// Terminates an already-detached flow with partial-byte accounting and
  /// fires taps/callback immediately.
  void resolve_aborted(Flow flow, CompletionCallback cb);

  sim::Simulator& sim_;
  Topology topology_;
  NetworkOptions options_;
  bool reference_mode_ = false;

  std::vector<Tap> completion_taps_;
  std::vector<Tap> start_taps_;

  /// Ledger bookkeeping shared by every path that resolves a flow.
  void account_offered(const Flow& flow);
  void account_delivered(const Flow& flow);
  void account_aborted(const Flow& flow, util::Bytes shortfall);
  /// Payload admitted but outside the active set (connection setup,
  /// loopback transit, delivery tail), per class; the audit adds it back in.
  util::Bytes& limbo(const Flow& flow) {
    return limbo_[static_cast<std::size_t>(flow.meta.kind)];
  }
  util::Bytes& limbo_kind(FlowKind kind) { return limbo_[static_cast<std::size_t>(kind)]; }

  // --- columnar flow arena ------------------------------------------------
  // Parallel flat vectors indexed by slot (struct-of-arrays). allocate_slot
  // appends one element to every column; the free list recycles slots.
  std::vector<FlowId> slot_id_;
  std::vector<NodeId> slot_src_;
  std::vector<NodeId> slot_dst_;
  std::vector<util::Bytes> slot_bytes_;
  std::vector<util::Bytes> slot_remaining_;
  std::vector<double> slot_rate_;          ///< current fair rate, bits/s
  std::vector<double> slot_rate_cap_;      ///< cap, +inf when uncapped
  std::vector<double> slot_submit_;
  std::vector<double> slot_start_;
  std::vector<double> slot_last_update_;   ///< progress exact up to here
  std::vector<double> slot_finish_;        ///< projected finish (heap key)
  std::vector<FlowMeta> slot_meta_;
  std::vector<std::int32_t> slot_heap_pos_;
  std::vector<std::uint8_t> slot_in_use_;
  std::vector<PathRef> slot_path_;
  std::vector<CompletionCallback> slot_callback_;
  /// Shared pools addressed by slot_path_: the flow's arcs and, parallel to
  /// them, the flow's position in each arc's member list (maintained
  /// through swap-removes).
  std::vector<Arc> path_pool_;
  std::vector<std::uint32_t> member_pos_pool_;
  /// Dead pool entries: segments abandoned when a reused slot needed a
  /// longer one, plus segments parked on the free list at last compaction.
  std::size_t path_pool_dead_ = 0;
  /// Pool entries parked with free-list slots (reusable, not yet dead).
  std::size_t path_pool_parked_ = 0;
  std::size_t live_slots_ = 0;
  std::size_t peak_live_slots_ = 0;
  std::uint64_t slot_reuses_ = 0;
  std::uint64_t pool_compactions_ = 0;

  std::vector<std::uint32_t> free_slots_;
  FlowSlotIndex slot_index_;
  std::vector<ArcState> arcs_;
  std::vector<std::uint32_t> dirty_arcs_;
  std::vector<std::uint32_t> finish_heap_;
  /// Flow view materialized on demand by find_flow/visit_active_flows.
  mutable Flow view_flow_;

  // --- solver scratch (reused across solves; epoch-stamped visit marks) ---
  std::uint64_t visit_epoch_ = 0;
  std::vector<std::uint64_t> arc_visit_;
  std::vector<std::uint64_t> slot_visit_;
  /// slot -> index into the current solve's sorted flow list.
  std::vector<std::uint32_t> slot_local_;
  std::vector<std::uint32_t> scratch_flows_;
  std::vector<std::uint32_t> scratch_arc_stack_;
  std::vector<std::uint32_t> scratch_local_arcs_;
  std::vector<std::uint32_t> arc_local_idx_;
  /// solve_dirty() working set, hoisted out of the solve loop so repeat
  /// solves are allocation-free in steady state: CSR of the dirty
  /// component, residual capacities, the share heap, and freeze flags.
  std::vector<std::uint32_t> scratch_flow_arc_off_;
  std::vector<std::uint32_t> scratch_flow_arcs_;
  std::vector<double> scratch_residual_;
  std::vector<std::uint32_t> scratch_unfrozen_;
  std::vector<std::uint32_t> scratch_virtual_member_;
  std::vector<std::pair<double, std::uint32_t>> scratch_share_heap_;
  std::vector<std::uint8_t> scratch_frozen_;
  /// on_completion_event() drained batch (flow + callback pairs), reused
  /// across completion events.
  std::vector<std::pair<Flow, CompletionCallback>> scratch_drained_;

  FlowId next_flow_id_ = 1;
  sim::EventId completion_event_ = sim::kInvalidEvent;
  /// Absolute time completion_event_ is armed for (infinity when unarmed).
  double armed_time_ = std::numeric_limits<double>::infinity();
  util::Bytes delivered_bytes_;
  util::Bytes offered_bytes_;
  SchedulerStats sched_stats_;
  std::uint64_t aborted_flows_ = 0;
  util::Bytes aborted_bytes_;
  std::array<ClassTotals, kNumFlowKinds> class_totals_{};
  std::array<util::Bytes, kNumFlowKinds> limbo_{};
  /// Per-arc transferred bits (indexed by Arc::index()).
  std::vector<double> arc_bits_;
  /// node_down_[n] is true while node n is marked down.
  std::vector<bool> node_down_;
};

}  // namespace keddah::net
