// Flow-level network engine with progressive-filling max-min fair sharing.
//
// This is the fluid TCP model standard in flow-level simulators: each active
// flow receives its max-min fair share of every link on its path, rates are
// recomputed whenever the active set changes, and per-flow completion times
// follow from draining the remaining bytes at the current rate. Relative to
// packet-level ns-3 this abstracts slow-start and loss recovery, which is the
// documented substitution for the paper's replay substrate (DESIGN.md §2).
#pragma once

#include <array>
#include <functional>
#include <limits>
#include <unordered_map>

#include "net/flow.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace keddah::net {

/// Engine configuration.
struct NetworkOptions {
  /// Rate applied to loopback (src == dst) flows. Models local disk/IPC
  /// rather than the NIC; loopback flows bypass fair sharing.
  util::Rate loopback = util::Rate::bps(40.0e9);
  /// If true, a flow waits one path latency before its first byte moves
  /// (connection setup) and delivers its last byte one path latency after
  /// draining.
  bool model_latency = true;
  /// If true, approximate TCP slow-start: before entering fair sharing a
  /// flow spends ceil(log2(1 + bytes/initial_window)) round-trips ramping
  /// up, modelled as extra activation delay (capped at 10 RTTs). Short
  /// flows become latency-bound, as on real networks; long flows are
  /// barely affected. Off by default (pure fluid model).
  bool model_slow_start = false;
  /// Initial congestion window for the slow-start approximation
  /// (10 segments of 1460 B, the Linux default).
  util::Bytes initial_window{14600.0};
};

/// Per-traffic-class byte ledger kept by the engine. The conservation
/// invariant audited under KEDDAH_CHECK: offered == delivered + aborted
/// once the class has no in-flight flows (and at any instant when in-flight
/// payload is added back in).
struct ClassTotals {
  util::Bytes offered;    ///< payload accepted by start_flow()
  util::Bytes delivered;  ///< payload that reached its destination
  util::Bytes aborted;    ///< payload lost to aborts (requested - delivered)
};

/// The network simulator facade.
///
/// Ownership: Network borrows the Simulator (must outlive it) and owns the
/// Topology and all flow state.
class Network {
 public:
  using CompletionCallback = std::function<void(const Flow&)>;
  /// Tap invoked on flow lifecycle events (used by capture::FlowCollector).
  using Tap = std::function<void(const Flow&)>;

  Network(sim::Simulator& sim, Topology topology, NetworkOptions options = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Topology& topology() const { return topology_; }
  sim::Simulator& simulator() { return sim_; }

  /// Starts a flow of `bytes` payload from src to dst. `on_complete` (may be
  /// null) fires when the last byte is delivered. `rate_cap` bounds the
  /// flow below its fair share (application/disk limited senders); any
  /// non-positive rate means uncapped, same as the infinite default.
  FlowId start_flow(NodeId src, NodeId dst, util::Bytes bytes, FlowMeta meta,
                    CompletionCallback on_complete = nullptr,
                    util::Rate rate_cap = util::Rate::infinite());

  /// Registers an observer for flow completions (all flows, loopback too).
  void add_completion_tap(Tap tap);

  /// Registers an observer for flow starts.
  void add_start_tap(Tap tap);

  /// Aborts one active flow: progress is advanced, the flow's `bytes` is
  /// rewritten to the payload actually delivered, `aborted` is set, and
  /// completion taps plus the callback fire immediately (a connection reset
  /// has no delivery tail latency). Returns false when the id is not active
  /// (already finished, still in connection setup, or unknown).
  bool abort_flow(FlowId id);

  /// Aborts every active flow whose source or destination is `node`
  /// (endpoint failure). Flows are aborted in id order with a single rate
  /// recomputation. Returns the number of flows aborted.
  std::size_t abort_flows_touching(NodeId node);

  /// Marks a node down/up. While a node is down, flows still in connection
  /// setup that touch it abort with zero payload at activation time, so a
  /// dead host sources no bytes. Aborting already-active flows is the
  /// caller's job (abort_flows_touching); marking up never resurrects flows.
  void set_node_down(NodeId node);
  void set_node_up(NodeId node);

  /// False only while `node` is marked down.
  bool node_up(NodeId node) const;

  /// Rewrites a link's per-direction capacity and recomputes fair shares
  /// (fault injection: link-degradation windows).
  void set_link_capacity(LinkId link, util::Rate capacity);

  /// Number of flows currently holding network capacity.
  std::size_t active_flows() const { return active_.size(); }

  /// Flows started since construction.
  std::uint64_t total_flows() const { return next_flow_id_ - 1; }

  /// Total payload delivered so far.
  util::Bytes delivered_bytes() const { return delivered_bytes_; }

  /// Total payload accepted by start_flow() so far.
  util::Bytes offered_bytes() const { return offered_bytes_; }

  /// Number of fair-share recomputations (perf counter for benches).
  std::uint64_t recomputations() const { return recomputations_; }

  /// Flows terminated early by abort_flow/abort_flows_touching or by
  /// activating against a down endpoint.
  std::uint64_t aborted_flows() const { return aborted_flows_; }

  /// Payload requested but never delivered because of aborts.
  util::Bytes aborted_bytes() const { return aborted_bytes_; }

  /// Per-traffic-class byte ledger (ground-truth FlowMeta::kind).
  const ClassTotals& class_totals(FlowKind kind) const {
    return class_totals_[static_cast<std::size_t>(kind)];
  }

  /// Audits byte conservation: per class and in aggregate,
  ///   offered == delivered + aborted + in-flight payload
  /// where in-flight covers flows in connection setup, active fair sharing,
  /// loopback transit, and the delivery-tail latency window. Throws
  /// util::AuditError naming the violated class on breach. Called
  /// automatically at the completion/abort seams in KEDDAH_CHECK builds;
  /// callable explicitly in any build (the audit test does).
  void audit_conservation() const;

  /// Looks up an active flow; returns nullptr if finished or unknown.
  const Flow* find_flow(FlowId id) const;

  /// Instantaneous aggregate rate over all active flows, bits/second.
  double aggregate_rate_bps() const;

  /// Bytes that have traversed a directed arc so far.
  double arc_bytes(Arc arc) const;

  /// Bytes over a link, both directions combined.
  double link_bytes(LinkId link) const;

  /// Mean utilization of a directed arc over [0, now] (0..1).
  double arc_utilization(Arc arc) const;

 private:
  struct ActiveFlow {
    Flow flow;
    CompletionCallback on_complete;
  };

  /// Brings every active flow's remaining_bits up to date at sim_.now().
  void advance_progress();

  /// Recomputes max-min fair rates and re-arms the next completion event.
  void reshare();

  /// Water-filling over real arcs plus one virtual arc per capped flow.
  void compute_max_min_rates();

  /// Completes all flows whose remaining bits have drained.
  void on_completion_event();

  void finish_flow(ActiveFlow& af);

  /// Terminates an already-erased flow with partial-byte accounting and
  /// fires taps/callback. Caller advances progress and reshares.
  void abort_erased(ActiveFlow& af);

  sim::Simulator& sim_;
  Topology topology_;
  NetworkOptions options_;

  std::unordered_map<FlowId, ActiveFlow> active_;
  std::vector<Tap> completion_taps_;
  std::vector<Tap> start_taps_;

  /// Ledger bookkeeping shared by every path that resolves a flow.
  void account_offered(const Flow& flow);
  void account_delivered(const Flow& flow);
  void account_aborted(const Flow& flow, util::Bytes shortfall);
  /// Payload admitted but outside `active_` (connection setup, loopback
  /// transit, delivery tail), per class; the audit adds it back in.
  util::Bytes& limbo(const Flow& flow) {
    return limbo_[static_cast<std::size_t>(flow.meta.kind)];
  }

  FlowId next_flow_id_ = 1;
  sim::Time last_progress_time_ = 0.0;
  sim::EventId completion_event_ = sim::kInvalidEvent;
  util::Bytes delivered_bytes_;
  util::Bytes offered_bytes_;
  std::uint64_t recomputations_ = 0;
  std::uint64_t aborted_flows_ = 0;
  util::Bytes aborted_bytes_;
  std::array<ClassTotals, kNumFlowKinds> class_totals_{};
  std::array<util::Bytes, kNumFlowKinds> limbo_{};
  /// Per-arc transferred bits (indexed by Arc::index()).
  std::vector<double> arc_bits_;
  /// node_down_[n] is true while node n is marked down.
  std::vector<bool> node_down_;
};

}  // namespace keddah::net
