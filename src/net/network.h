// Flow-level network engine with progressive-filling max-min fair sharing.
//
// This is the fluid TCP model standard in flow-level simulators: each active
// flow receives its max-min fair share of every link on its path, rates are
// recomputed whenever the active set changes, and per-flow completion times
// follow from draining the remaining bytes at the current rate. Relative to
// packet-level ns-3 this abstracts slow-start and loss recovery, which is the
// documented substitution for the paper's replay substrate (DESIGN.md §2).
#pragma once

#include <functional>
#include <limits>
#include <unordered_map>

#include "net/flow.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace keddah::net {

/// Engine configuration.
struct NetworkOptions {
  /// Rate applied to loopback (src == dst) flows, bits/second. Models local
  /// disk/IPC rather than the NIC; loopback flows bypass fair sharing.
  double loopback_bps = 40.0e9;
  /// If true, a flow waits one path latency before its first byte moves
  /// (connection setup) and delivers its last byte one path latency after
  /// draining.
  bool model_latency = true;
  /// If true, approximate TCP slow-start: before entering fair sharing a
  /// flow spends ceil(log2(1 + bytes/initial_window)) round-trips ramping
  /// up, modelled as extra activation delay (capped at 10 RTTs). Short
  /// flows become latency-bound, as on real networks; long flows are
  /// barely affected. Off by default (pure fluid model).
  bool model_slow_start = false;
  /// Initial congestion window for the slow-start approximation, bytes
  /// (10 segments of 1460 B, the Linux default).
  double initial_window_bytes = 14600.0;
};

/// The network simulator facade.
///
/// Ownership: Network borrows the Simulator (must outlive it) and owns the
/// Topology and all flow state.
class Network {
 public:
  using CompletionCallback = std::function<void(const Flow&)>;
  /// Tap invoked on flow lifecycle events (used by capture::FlowCollector).
  using Tap = std::function<void(const Flow&)>;

  Network(sim::Simulator& sim, Topology topology, NetworkOptions options = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Topology& topology() const { return topology_; }
  sim::Simulator& simulator() { return sim_; }

  /// Starts a flow of `bytes` payload from src to dst. `on_complete` (may be
  /// null) fires when the last byte is delivered. `rate_cap_bps` bounds the
  /// flow below its fair share (application/disk limited senders); any
  /// value <= 0 means uncapped, same as the infinite default.
  FlowId start_flow(NodeId src, NodeId dst, double bytes, FlowMeta meta,
                    CompletionCallback on_complete = nullptr,
                    double rate_cap_bps = std::numeric_limits<double>::infinity());

  /// Registers an observer for flow completions (all flows, loopback too).
  void add_completion_tap(Tap tap);

  /// Registers an observer for flow starts.
  void add_start_tap(Tap tap);

  /// Aborts one active flow: progress is advanced, the flow's `bytes` is
  /// rewritten to the payload actually delivered, `aborted` is set, and
  /// completion taps plus the callback fire immediately (a connection reset
  /// has no delivery tail latency). Returns false when the id is not active
  /// (already finished, still in connection setup, or unknown).
  bool abort_flow(FlowId id);

  /// Aborts every active flow whose source or destination is `node`
  /// (endpoint failure). Flows are aborted in id order with a single rate
  /// recomputation. Returns the number of flows aborted.
  std::size_t abort_flows_touching(NodeId node);

  /// Marks a node down/up. While a node is down, flows still in connection
  /// setup that touch it abort with zero payload at activation time, so a
  /// dead host sources no bytes. Aborting already-active flows is the
  /// caller's job (abort_flows_touching); marking up never resurrects flows.
  void set_node_down(NodeId node);
  void set_node_up(NodeId node);

  /// False only while `node` is marked down.
  bool node_up(NodeId node) const;

  /// Rewrites a link's per-direction capacity and recomputes fair shares
  /// (fault injection: link-degradation windows).
  void set_link_capacity(LinkId link, double capacity_bps);

  /// Number of flows currently holding network capacity.
  std::size_t active_flows() const { return active_.size(); }

  /// Flows started since construction.
  std::uint64_t total_flows() const { return next_flow_id_ - 1; }

  /// Total payload delivered so far, bytes.
  double delivered_bytes() const { return delivered_bytes_; }

  /// Number of fair-share recomputations (perf counter for benches).
  std::uint64_t recomputations() const { return recomputations_; }

  /// Flows terminated early by abort_flow/abort_flows_touching or by
  /// activating against a down endpoint.
  std::uint64_t aborted_flows() const { return aborted_flows_; }

  /// Payload bytes requested but never delivered because of aborts.
  double aborted_bytes() const { return aborted_bytes_; }

  /// Looks up an active flow; returns nullptr if finished or unknown.
  const Flow* find_flow(FlowId id) const;

  /// Instantaneous aggregate rate over all active flows, bits/second.
  double aggregate_rate_bps() const;

  /// Bytes that have traversed a directed arc so far.
  double arc_bytes(Arc arc) const;

  /// Bytes over a link, both directions combined.
  double link_bytes(LinkId link) const;

  /// Mean utilization of a directed arc over [0, now] (0..1).
  double arc_utilization(Arc arc) const;

 private:
  struct ActiveFlow {
    Flow flow;
    CompletionCallback on_complete;
  };

  /// Brings every active flow's remaining_bits up to date at sim_.now().
  void advance_progress();

  /// Recomputes max-min fair rates and re-arms the next completion event.
  void reshare();

  /// Water-filling over real arcs plus one virtual arc per capped flow.
  void compute_max_min_rates();

  /// Completes all flows whose remaining bits have drained.
  void on_completion_event();

  void finish_flow(ActiveFlow& af);

  /// Terminates an already-erased flow with partial-byte accounting and
  /// fires taps/callback. Caller advances progress and reshares.
  void abort_erased(ActiveFlow& af);

  sim::Simulator& sim_;
  Topology topology_;
  NetworkOptions options_;

  std::unordered_map<FlowId, ActiveFlow> active_;
  std::vector<Tap> completion_taps_;
  std::vector<Tap> start_taps_;

  FlowId next_flow_id_ = 1;
  sim::Time last_progress_time_ = 0.0;
  sim::EventId completion_event_ = sim::kInvalidEvent;
  double delivered_bytes_ = 0.0;
  std::uint64_t recomputations_ = 0;
  std::uint64_t aborted_flows_ = 0;
  double aborted_bytes_ = 0.0;
  /// Per-arc transferred bits (indexed by Arc::index()).
  std::vector<double> arc_bits_;
  /// node_down_[n] is true while node n is marked down.
  std::vector<bool> node_down_;
};

}  // namespace keddah::net
