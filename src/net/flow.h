// Flow descriptors shared between the network engine, the Hadoop emulation,
// and the capture library.
#pragma once

#include <cstdint>
#include <limits>

#include "net/topology.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace keddah::net {

using FlowId = std::uint64_t;
inline constexpr FlowId kInvalidFlow = 0;

/// Well-known Hadoop service ports. These are what the real Keddah capture
/// stage keys on when classifying tcpdump output, so our emulated flows carry
/// them too and the classifier works exactly like the paper's.
namespace ports {
inline constexpr std::uint16_t kDataNodeXfer = 50010;   // HDFS block read/write
inline constexpr std::uint16_t kShuffle = 13562;        // MR ShuffleHandler HTTP
inline constexpr std::uint16_t kNameNodeRpc = 8020;     // HDFS control RPC
inline constexpr std::uint16_t kRmScheduler = 8030;     // AM <-> RM
inline constexpr std::uint16_t kRmTracker = 8031;       // NM heartbeat
inline constexpr std::uint16_t kEphemeralBase = 32768;  // client-side ports
}  // namespace ports

/// Ground-truth traffic class assigned by the emulator when it creates a
/// flow. The capture classifier re-derives a class from ports/direction
/// alone (as the paper does from pcaps); tests compare the two.
enum class FlowKind : std::uint8_t {
  kHdfsRead = 0,
  kShuffle = 1,
  kHdfsWrite = 2,
  kControl = 3,
  kOther = 4,
};

/// Human-readable class name ("hdfs_read", ...).
const char* flow_kind_name(FlowKind kind);

/// Number of FlowKind values (for array sizing).
inline constexpr std::size_t kNumFlowKinds = 5;

/// Application-level annotations carried by a flow. `src_port`/`dst_port`
/// follow data direction: src is the byte sender.
struct FlowMeta {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  /// Job that caused the flow; 0 for background/control traffic.
  std::uint32_t job_id = 0;
  /// Ground truth class (not consulted by the port classifier).
  FlowKind kind = FlowKind::kOther;
};

/// A (possibly still active) flow as exposed to taps and callbacks.
struct Flow {
  FlowId id = kInvalidFlow;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  /// Application payload.
  util::Bytes bytes;
  FlowMeta meta;
  /// Time start_flow() was called.
  sim::Time submit_time = 0.0;
  /// Time the first byte entered the network (after connection latency).
  sim::Time start_time = 0.0;
  /// Completion time; meaningful once done.
  sim::Time end_time = 0.0;
  /// Current max-min fair rate, bits/second.
  double rate_bps = 0.0;
  /// Application-imposed rate ceiling (e.g. disk throughput), bits/second.
  double rate_cap_bps = std::numeric_limits<double>::infinity();
  /// Remaining payload. Kept in util::Bytes (not a raw double) so the
  /// KEDDAH_CHECK NaN/negative audits cover the progress hot path: an
  /// accounting bug that drives a flow's residual negative throws at the
  /// subtraction that produced it. Progress is materialized lazily — the
  /// value is exact as of the flow's last rate change, not of now().
  util::Bytes remaining;
  /// Arcs traversed (empty for loopback flows).
  std::vector<Arc> path;
  bool done = false;
  /// True when the flow was terminated early (endpoint failure). `bytes` is
  /// rewritten to the partial payload actually delivered before the abort.
  bool aborted = false;

  bool loopback() const { return src == dst; }
  /// Mean throughput over the flow's life, bits/second.
  double mean_rate_bps() const {
    const double dt = end_time - start_time;
    return dt > 0.0 ? bytes.bits() / dt : 0.0;
  }
};

}  // namespace keddah::net
