// Network topology: nodes (hosts and switches), full-duplex links, and
// hop-count shortest-path routing with deterministic ECMP tie-breaking.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/units.h"

namespace keddah::net {

/// Node identity, branded (util::TaggedId) so other integer IDs — FileId,
/// job ids, rack indices — cannot silently travel as a node. Reads out
/// implicitly (dense-array subscripting everywhere); construction from a
/// raw integer is explicit.
using NodeId = util::TaggedId<struct NodeIdTag, std::uint32_t>;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode{0xffffffffu};

/// A directed use of a full-duplex link: `link` traversed forward
/// (a -> b, dir == 0) or backward (b -> a, dir == 1). Each direction has the
/// link's full capacity (full duplex).
struct Arc {
  LinkId link;
  std::uint8_t dir;

  /// Dense index usable as an array subscript: link * 2 + dir.
  std::uint32_t index() const { return link * 2 + dir; }
  bool operator==(const Arc& other) const = default;
};

/// A host or switch.
struct Node {
  NodeId id = kInvalidNode;
  std::string name;
  /// Rack index; hosts in the same rack are "rack-local" to each other.
  /// Switches use -1.
  int rack = -1;
  bool is_switch = false;
};

/// A full-duplex point-to-point link.
struct Link {
  LinkId id = 0;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  /// Capacity per direction.
  util::Rate capacity;
  /// One-way propagation delay.
  util::Seconds latency;
};

/// An immutable-after-build graph of nodes and links with routing queries.
///
/// Routing is hop-count shortest path. When several equal-cost next hops
/// exist (e.g. in a fat-tree), the choice is a deterministic hash of
/// (src, dst, flow_key), which models per-flow ECMP.
class Topology {
 public:
  /// Adds a host in rack `rack`. Names must be unique.
  NodeId add_host(const std::string& name, int rack);

  /// Adds a switch (never a flow endpoint).
  NodeId add_switch(const std::string& name);

  /// Connects two nodes with a full-duplex link.
  LinkId add_link(NodeId a, NodeId b, util::Rate capacity, util::Seconds latency);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_links() const { return links_.size(); }
  std::size_t num_arcs() const { return links_.size() * 2; }

  const Node& node(NodeId id) const { return nodes_.at(id); }
  const Link& link(LinkId id) const { return links_.at(id); }

  /// Rewrites a link's per-direction capacity (fault injection: link
  /// degradation windows). Routing is unaffected; callers that cache rates
  /// (the network engine) must recompute shares afterwards. Returns false
  /// when the new capacity equals the current one — callers use this to
  /// keep their dirty sets empty on no-op rewrites.
  bool set_link_capacity(LinkId id, util::Rate capacity);

  /// Links incident to a node, in creation order (a host's single entry is
  /// its access link).
  std::vector<LinkId> links_at(NodeId id) const;

  /// Looks up a node by name; returns kInvalidNode when absent.
  NodeId find(const std::string& name) const;

  /// All host (non-switch) node ids, in creation order.
  std::vector<NodeId> hosts() const;

  /// Hosts grouped by rack index, ordered by rack so iteration (which
  /// feeds placement and report output) is platform-independent.
  std::map<int, std::vector<NodeId>> hosts_by_rack() const;

  /// Shortest path from src to dst as a sequence of directed arcs.
  /// `flow_key` seeds the ECMP hash so distinct flows may take distinct
  /// equal-cost paths while a given flow is stable. Throws
  /// std::runtime_error when dst is unreachable.
  std::vector<Arc> route(NodeId src, NodeId dst, std::uint64_t flow_key) const;

  /// Sum of per-arc latencies along route(src, dst, flow_key).
  util::Seconds path_latency(NodeId src, NodeId dst, std::uint64_t flow_key) const;

  /// Hop distance (number of links) between two nodes, or -1 if unreachable.
  int distance(NodeId src, NodeId dst) const;

  /// True if both nodes are hosts in the same rack.
  bool same_rack(NodeId a, NodeId b) const;

  /// Arc endpoint helpers.
  NodeId arc_from(Arc arc) const;
  NodeId arc_to(Arc arc) const;

 private:
  /// Distances from every node to `dst` (BFS over the undirected graph);
  /// memoized per destination. Entries are int16_t: at 10k-host fat-tree
  /// scale the cache holds one row per destination, and halving the element
  /// width halves a multi-hundred-MB structure. Any real topology's
  /// diameter fits with five orders of magnitude to spare; BFS throws if a
  /// distance would overflow.
  const std::vector<std::int16_t>& dist_to(NodeId dst) const;

  NodeId add_node(const std::string& name, int rack, bool is_switch);

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  /// adjacency_[n] = list of (neighbor, arc leaving n).
  std::vector<std::vector<std::pair<NodeId, Arc>>> adjacency_;
  std::unordered_map<std::string, NodeId> by_name_;
  mutable std::unordered_map<NodeId, std::vector<std::int16_t>> dist_cache_;
};

/// Topology builders used across tests, examples, and benches. All hosts are
/// named "hN" (N = creation order) so scenarios can address them uniformly.
/// These keep raw double parameters (bits/second, seconds) as a deliberate
/// convenience boundary; the strong-typed Topology API checks everything
/// downstream of them.

/// Single switch, `num_hosts` hosts, one access link each.
Topology make_star(std::size_t num_hosts, double access_bps, double latency_s);

/// Classic 2-tier cluster: one top-of-rack switch per rack, all ToRs on one
/// core switch. Hosts get `access_bps` links, ToR uplinks get `core_bps`.
Topology make_rack_tree(std::size_t racks, std::size_t hosts_per_rack, double access_bps,
                        double core_bps, double latency_s);

/// k-ary fat-tree (k even): k pods, (k/2)^2 core switches, k^3/4 hosts.
/// Host access links run at `link_bps`; edge->aggregation and
/// aggregation->core uplinks run at `link_bps / oversubscription`, so 1.0
/// (the default) is the classic full-bisection fat-tree and e.g. 4.0 models
/// the 4:1 oversubscribed fabrics common in production clusters. Rack
/// index = edge switch index.
Topology make_fat_tree(std::size_t k, double link_bps, double latency_s,
                       double oversubscription = 1.0);

/// Two hosts groups joined by one bottleneck link; for unit tests.
Topology make_dumbbell(std::size_t left, std::size_t right, double access_bps,
                       double bottleneck_bps, double latency_s);

}  // namespace keddah::net
