#include "net/topology.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <stdexcept>

#include "util/strings.h"

namespace keddah::net {

namespace {
/// Deterministic 64-bit mix for ECMP next-hop selection.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

NodeId Topology::add_node(const std::string& name, int rack, bool is_switch) {
  if (by_name_.count(name) != 0) throw std::invalid_argument("topology: duplicate node " + name);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, name, rack, is_switch});
  adjacency_.emplace_back();
  by_name_[name] = id;
  return id;
}

NodeId Topology::add_host(const std::string& name, int rack) {
  return add_node(name, rack, /*is_switch=*/false);
}

NodeId Topology::add_switch(const std::string& name) {
  return add_node(name, /*rack=*/-1, /*is_switch=*/true);
}

LinkId Topology::add_link(NodeId a, NodeId b, util::Rate capacity, util::Seconds latency) {
  if (a >= nodes_.size() || b >= nodes_.size()) throw std::out_of_range("topology: bad node id");
  if (a == b) throw std::invalid_argument("topology: self-link");
  if (capacity.bps() <= 0.0) throw std::invalid_argument("topology: non-positive capacity");
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{id, a, b, capacity, latency});
  adjacency_[a].emplace_back(b, Arc{id, 0});
  adjacency_[b].emplace_back(a, Arc{id, 1});
  dist_cache_.clear();  // invalidate memoized BFS results
  return id;
}

bool Topology::set_link_capacity(LinkId id, util::Rate capacity) {
  if (id >= links_.size()) throw std::out_of_range("topology: bad link id");
  if (capacity.bps() <= 0.0) throw std::invalid_argument("topology: non-positive capacity");
  if (links_[id].capacity == capacity) return false;
  links_[id].capacity = capacity;
  return true;
}

std::vector<LinkId> Topology::links_at(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("topology: bad node id");
  std::vector<LinkId> out;
  for (const auto& [neighbor, arc] : adjacency_[id]) {
    (void)neighbor;
    if (arc.dir == 0) out.push_back(arc.link);  // node is endpoint a
  }
  for (const auto& link : links_) {
    if (link.b == id) out.push_back(link.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

NodeId Topology::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidNode : it->second;
}

std::vector<NodeId> Topology::hosts() const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (!n.is_switch) out.push_back(n.id);
  }
  return out;
}

std::map<int, std::vector<NodeId>> Topology::hosts_by_rack() const {
  std::map<int, std::vector<NodeId>> out;
  for (const auto& n : nodes_) {
    if (!n.is_switch) out[n.rack].push_back(n.id);
  }
  return out;
}

const std::vector<std::int16_t>& Topology::dist_to(NodeId dst) const {
  const auto it = dist_cache_.find(dst);
  if (it != dist_cache_.end()) return it->second;
  std::vector<std::int16_t> dist(nodes_.size(), -1);
  std::deque<NodeId> frontier;
  dist[dst] = 0;
  frontier.push_back(dst);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    if (dist[u] == std::numeric_limits<std::int16_t>::max()) {
      throw std::runtime_error("topology: diameter overflows the int16 distance cache");
    }
    for (const auto& [v, arc] : adjacency_[u]) {
      (void)arc;
      if (dist[v] < 0) {
        dist[v] = static_cast<std::int16_t>(dist[u] + 1);
        frontier.push_back(v);
      }
    }
  }
  return dist_cache_.emplace(dst, std::move(dist)).first->second;
}

std::vector<Arc> Topology::route(NodeId src, NodeId dst, std::uint64_t flow_key) const {
  if (src >= nodes_.size() || dst >= nodes_.size()) throw std::out_of_range("topology: bad node id");
  std::vector<Arc> path;
  if (src == dst) return path;  // loopback: no network arcs
  const auto& dist = dist_to(dst);
  if (dist[src] < 0) {
    throw std::runtime_error("topology: no path " + nodes_[src].name + " -> " + nodes_[dst].name);
  }
  NodeId here = src;
  int hop = 0;
  while (here != dst) {
    // Collect equal-cost next hops (strictly decreasing BFS distance).
    std::vector<std::pair<NodeId, Arc>> candidates;
    for (const auto& [v, arc] : adjacency_[here]) {
      if (dist[v] == dist[here] - 1) candidates.emplace_back(v, arc);
    }
    assert(!candidates.empty());
    // Hash-based per-flow ECMP: stable for one flow, spread across flows.
    const std::uint64_t h =
        mix(flow_key ^ mix((static_cast<std::uint64_t>(src) << 40) ^
                           (static_cast<std::uint64_t>(dst) << 20) ^
                           static_cast<std::uint64_t>(hop)));
    const auto& [next, arc] = candidates[h % candidates.size()];
    path.push_back(arc);
    here = next;
    ++hop;
  }
  return path;
}

util::Seconds Topology::path_latency(NodeId src, NodeId dst, std::uint64_t flow_key) const {
  util::Seconds total;
  for (const Arc arc : route(src, dst, flow_key)) total += links_[arc.link].latency;
  return total;
}

int Topology::distance(NodeId src, NodeId dst) const {
  if (src >= nodes_.size() || dst >= nodes_.size()) throw std::out_of_range("topology: bad node id");
  return dist_to(dst)[src];
}

bool Topology::same_rack(NodeId a, NodeId b) const {
  const Node& na = node(a);
  const Node& nb = node(b);
  return !na.is_switch && !nb.is_switch && na.rack == nb.rack;
}

NodeId Topology::arc_from(Arc arc) const {
  const Link& l = links_.at(arc.link);
  return arc.dir == 0 ? l.a : l.b;
}

NodeId Topology::arc_to(Arc arc) const {
  const Link& l = links_.at(arc.link);
  return arc.dir == 0 ? l.b : l.a;
}

Topology make_star(std::size_t num_hosts, double access_bps, double latency_s) {
  Topology topo;
  const NodeId sw = topo.add_switch("sw0");
  for (std::size_t i = 0; i < num_hosts; ++i) {
    const NodeId h = topo.add_host(util::format("h%zu", i), /*rack=*/0);
    topo.add_link(h, sw, util::Rate::bps(access_bps), util::Seconds(latency_s));
  }
  return topo;
}

Topology make_rack_tree(std::size_t racks, std::size_t hosts_per_rack, double access_bps,
                        double core_bps, double latency_s) {
  Topology topo;
  const NodeId core = topo.add_switch("core");
  std::size_t host_index = 0;
  for (std::size_t r = 0; r < racks; ++r) {
    const NodeId tor = topo.add_switch(util::format("tor%zu", r));
    topo.add_link(tor, core, util::Rate::bps(core_bps), util::Seconds(latency_s));
    for (std::size_t i = 0; i < hosts_per_rack; ++i) {
      const NodeId h = topo.add_host(util::format("h%zu", host_index++), static_cast<int>(r));
      topo.add_link(h, tor, util::Rate::bps(access_bps), util::Seconds(latency_s));
    }
  }
  return topo;
}

Topology make_fat_tree(std::size_t k, double link_bps, double latency_s,
                       double oversubscription) {
  if (k < 2 || k % 2 != 0) throw std::invalid_argument("fat-tree: k must be even and >= 2");
  if (!(oversubscription >= 1.0)) {
    throw std::invalid_argument("fat-tree: oversubscription must be >= 1.0");
  }
  Topology topo;
  const std::size_t half = k / 2;
  const std::size_t num_core = half * half;
  // Thinning every uplink tier by the oversubscription ratio keeps the
  // host access rate at link_bps while shrinking the bisection, which is
  // how oversubscribed Clos fabrics are actually provisioned.
  const double uplink_bps = link_bps / oversubscription;

  std::vector<NodeId> core(num_core);
  for (std::size_t c = 0; c < num_core; ++c) core[c] = topo.add_switch(util::format("core%zu", c));

  std::size_t host_index = 0;
  for (std::size_t pod = 0; pod < k; ++pod) {
    std::vector<NodeId> aggs(half);
    std::vector<NodeId> edges(half);
    for (std::size_t a = 0; a < half; ++a) {
      aggs[a] = topo.add_switch(util::format("agg%zu_%zu", pod, a));
    }
    for (std::size_t e = 0; e < half; ++e) {
      edges[e] = topo.add_switch(util::format("edge%zu_%zu", pod, e));
    }
    // Edge <-> aggregation full bipartite inside the pod.
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t a = 0; a < half; ++a) topo.add_link(edges[e], aggs[a], util::Rate::bps(uplink_bps), util::Seconds(latency_s));
    }
    // Aggregation a connects to core switches [a*half, (a+1)*half).
    for (std::size_t a = 0; a < half; ++a) {
      for (std::size_t c = 0; c < half; ++c) {
        topo.add_link(aggs[a], core[a * half + c], util::Rate::bps(uplink_bps), util::Seconds(latency_s));
      }
    }
    // Hosts under each edge switch; rack index = global edge index.
    for (std::size_t e = 0; e < half; ++e) {
      const int rack = static_cast<int>(pod * half + e);
      for (std::size_t i = 0; i < half; ++i) {
        const NodeId h = topo.add_host(util::format("h%zu", host_index++), rack);
        topo.add_link(h, edges[e], util::Rate::bps(link_bps), util::Seconds(latency_s));
      }
    }
  }
  return topo;
}

Topology make_dumbbell(std::size_t left, std::size_t right, double access_bps,
                       double bottleneck_bps, double latency_s) {
  Topology topo;
  const NodeId swl = topo.add_switch("swL");
  const NodeId swr = topo.add_switch("swR");
  topo.add_link(swl, swr, util::Rate::bps(bottleneck_bps), util::Seconds(latency_s));
  std::size_t host_index = 0;
  for (std::size_t i = 0; i < left; ++i) {
    const NodeId h = topo.add_host(util::format("h%zu", host_index++), 0);
    topo.add_link(h, swl, util::Rate::bps(access_bps), util::Seconds(latency_s));
  }
  for (std::size_t i = 0; i < right; ++i) {
    const NodeId h = topo.add_host(util::format("h%zu", host_index++), 1);
    topo.add_link(h, swr, util::Rate::bps(access_bps), util::Seconds(latency_s));
  }
  return topo;
}

}  // namespace keddah::net
