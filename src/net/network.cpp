#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "util/check.h"
#include "util/log.h"

namespace keddah::net {

namespace {
/// Residual payload below this many bits counts as drained. A popped flow's
/// post-materialization residue is floating-point noise (a few ulps of the
/// payload), never real payload — on_completion_event audits that.
constexpr double kDrainEpsilonBits = 1e-2;

constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

const char* flow_kind_name(FlowKind kind) {
  switch (kind) {
    case FlowKind::kHdfsRead:
      return "hdfs_read";
    case FlowKind::kShuffle:
      return "shuffle";
    case FlowKind::kHdfsWrite:
      return "hdfs_write";
    case FlowKind::kControl:
      return "control";
    case FlowKind::kOther:
      return "other";
  }
  return "unknown";
}

Network::Network(sim::Simulator& sim, Topology topology, NetworkOptions options)
    : sim_(sim), topology_(std::move(topology)), options_(options) {
  const std::size_t n_arcs = topology_.num_arcs();
  arcs_.resize(n_arcs);
  for (LinkId l = 0; l < topology_.num_links(); ++l) {
    const double cap = topology_.link(l).capacity.bps();
    arcs_[Arc{l, 0}.index()].capacity_bps = cap;
    arcs_[Arc{l, 1}.index()].capacity_bps = cap;
  }
  arc_visit_.assign(n_arcs, 0);
  arc_local_idx_.assign(n_arcs, 0);
  arc_bits_.assign(n_arcs, 0.0);
  // Arc-bounded solver scratch is pre-sized once here; the flow-bounded
  // scratch buffers grow on first use and then retain capacity, so a
  // steady-state solve allocates nothing.
  scratch_arc_stack_.reserve(n_arcs);
  scratch_local_arcs_.reserve(n_arcs);
  scratch_residual_.reserve(n_arcs);
  scratch_unfrozen_.reserve(n_arcs);
  node_down_.assign(topology_.num_nodes(), false);
  reference_mode_ = options_.reference_scheduler;
  const char* env = std::getenv("KEDDAH_REFERENCE_SCHEDULER");
  if (env != nullptr && *env != '\0' && std::string_view(env) != "0") reference_mode_ = true;
}

void Network::set_node_down(NodeId node) {
  if (node >= node_down_.size()) throw std::out_of_range("network: bad node id");
  node_down_[node] = true;
}

void Network::set_node_up(NodeId node) {
  if (node >= node_down_.size()) throw std::out_of_range("network: bad node id");
  node_down_[node] = false;
}

bool Network::node_up(NodeId node) const {
  return node < node_down_.size() ? !node_down_[node] : true;
}

void Network::set_link_capacity(LinkId link, util::Rate capacity) {
  if (topology_.set_link_capacity(link, capacity)) {
    for (std::uint8_t dir = 0; dir < 2; ++dir) {
      const std::uint32_t ai = Arc{link, dir}.index();
      arcs_[ai].capacity_bps = capacity.bps();
      mark_dirty(ai);
    }
  }
  // A no-op rewrite leaves the dirty set empty: reshare() re-arms and
  // changes no rate (the property tests pin this down).
  reshare();
}

void Network::account_offered(const Flow& flow) {
  offered_bytes_ += flow.bytes;
  class_totals_[static_cast<std::size_t>(flow.meta.kind)].offered += flow.bytes;
  limbo(flow) += flow.bytes;  // in setup/loopback transit until activation
}

void Network::account_delivered(const Flow& flow) {
  delivered_bytes_ += flow.bytes;
  class_totals_[static_cast<std::size_t>(flow.meta.kind)].delivered += flow.bytes;
}

void Network::account_aborted(const Flow& flow, util::Bytes shortfall) {
  ++aborted_flows_;
  aborted_bytes_ += shortfall;
  class_totals_[static_cast<std::size_t>(flow.meta.kind)].aborted += shortfall;
}

void Network::audit_conservation() const {
  // In-flight payload of flows currently holding capacity, per class.
  std::array<double, kNumFlowKinds> active_bytes{};
  for (std::uint32_t slot = 0; slot < slot_id_.size(); ++slot) {
    if (!slot_in_use_[slot]) continue;
    active_bytes[static_cast<std::size_t>(slot_meta_[slot].kind)] += slot_bytes_[slot].value();
  }
  double offered = 0.0, resolved = 0.0;
  for (std::size_t k = 0; k < kNumFlowKinds; ++k) {
    const ClassTotals& t = class_totals_[k];
    const double lhs = t.offered.value();
    const double rhs =
        t.delivered.value() + t.aborted.value() + limbo_[k].value() + active_bytes[k];
    const double tol = 1e-6 * std::max(1.0, lhs) + 1e-3;
    if (std::fabs(lhs - rhs) > tol) {
      throw util::AuditError(std::string("network conservation breach in class ") +
                             flow_kind_name(static_cast<FlowKind>(k)) + ": offered " +
                             std::to_string(lhs) + " B != delivered+aborted+in-flight " +
                             std::to_string(rhs) + " B");
    }
    offered += lhs;
    resolved += rhs;
  }
  const double tol = 1e-6 * std::max(1.0, offered) + 1e-3;
  if (std::fabs(offered - resolved) > tol) {
    throw util::AuditError("network conservation breach in aggregate ledger");
  }
  KEDDAH_AUDIT(std::fabs(offered_bytes_.value() - offered) <= tol,
               "aggregate offered counter out of sync with per-class ledger");
}

void Network::audit_scheduler() const {
  const auto fail = [](const std::string& what) {
    throw util::AuditError("network scheduler: " + what);
  };

  std::size_t in_use = 0;
  for (std::uint32_t slot = 0; slot < slot_id_.size(); ++slot) {
    if (!slot_in_use_[slot]) continue;
    ++in_use;
    const std::uint32_t* found = slot_index_.find(slot_id_[slot]);
    if (found == nullptr || *found != slot) fail("slot index missing an active flow");
    const PathRef& pr = slot_path_[slot];
    if (pr.len > pr.cap) fail("path segment length exceeds its capacity");
    if (static_cast<std::size_t>(pr.off) + pr.cap > path_pool_.size()) {
      fail("path segment out of pool bounds");
    }
    for (std::uint32_t i = 0; i < pr.len; ++i) {
      const ArcState& s = arcs_[path_pool_[pr.off + i].index()];
      const std::uint32_t pos = member_pos_pool_[pr.off + i];
      if (pos >= s.members.size() || s.members[pos] != std::make_pair(slot, i)) {
        fail("member back-reference out of sync");
      }
    }
    if (slot_heap_pos_[slot] == kNotInHeap ||
        static_cast<std::size_t>(slot_heap_pos_[slot]) >= finish_heap_.size() ||
        finish_heap_[slot_heap_pos_[slot]] != slot) {
      fail("heap_pos out of sync");
    }
  }
  if (in_use != slot_index_.size()) fail("slot index size != live arena slots");
  if (in_use != live_slots_) fail("live-slot counter != live arena slots");
  if (finish_heap_.size() != in_use) fail("completion heap size != live arena slots");
  for (std::size_t pos = 1; pos < finish_heap_.size(); ++pos) {
    if (finishes_before(finish_heap_[pos], finish_heap_[(pos - 1) / 2])) {
      fail("completion heap order violated");
    }
  }
  if (member_pos_pool_.size() != path_pool_.size()) {
    fail("member-position pool size != path pool size");
  }
  std::size_t dirty_flags = 0;
  for (std::uint32_t ai = 0; ai < arcs_.size(); ++ai) {
    if (arcs_[ai].dirty) ++dirty_flags;
    for (std::uint32_t pos = 0; pos < arcs_[ai].members.size(); ++pos) {
      const auto [slot, pi] = arcs_[ai].members[pos];
      if (slot >= slot_id_.size() || !slot_in_use_[slot]) fail("member refers to a dead slot");
      const PathRef& pr = slot_path_[slot];
      if (pi >= pr.len || path_pool_[pr.off + pi].index() != ai ||
          member_pos_pool_[pr.off + pi] != pos) {
        fail("member list entry inconsistent with flow path");
      }
    }
  }
  std::size_t frontier = 0;
  for (const std::uint32_t ai : dirty_arcs_) {
    if (!arcs_[ai].dirty) fail("dirty frontier holds a clean arc");
    ++frontier;
  }
  if (frontier != dirty_flags) fail("dirty flags out of sync with frontier");
}

ArenaStats Network::arena_stats() const {
  ArenaStats s;
  s.slots = slot_id_.size();
  s.live = live_slots_;
  s.peak_live = peak_live_slots_;
  s.path_pool_len = path_pool_.size();
  s.slot_reuses = slot_reuses_;
  s.path_pool_compactions = pool_compactions_;
  return s;
}

double Network::arc_bytes(Arc arc) const {
  // Materialize lazy progress so the counter reflects now(), not each
  // flow's last rate-change time.
  const_cast<Network*>(this)->sync_progress();
  return arc_bits_.at(arc.index()) / 8.0;
}

double Network::link_bytes(LinkId link) const {
  return arc_bytes(Arc{link, 0}) + arc_bytes(Arc{link, 1});
}

double Network::arc_utilization(Arc arc) const {
  const double elapsed = sim_.now();
  if (elapsed <= 0.0) return 0.0;
  const_cast<Network*>(this)->sync_progress();
  return arc_bits_.at(arc.index()) / (topology_.link(arc.link).capacity.bps() * elapsed);
}

void Network::add_completion_tap(Tap tap) { completion_taps_.push_back(std::move(tap)); }

void Network::add_start_tap(Tap tap) { start_taps_.push_back(std::move(tap)); }

const Flow& Network::fill_view(std::uint32_t slot) const {
  view_flow_.id = slot_id_[slot];
  view_flow_.src = slot_src_[slot];
  view_flow_.dst = slot_dst_[slot];
  view_flow_.bytes = slot_bytes_[slot];
  view_flow_.meta = slot_meta_[slot];
  view_flow_.submit_time = slot_submit_[slot];
  view_flow_.start_time = slot_start_[slot];
  view_flow_.end_time = 0.0;
  view_flow_.rate_bps = slot_rate_[slot];
  view_flow_.rate_cap_bps = slot_rate_cap_[slot];
  view_flow_.remaining = slot_remaining_[slot];
  const PathRef& pr = slot_path_[slot];
  view_flow_.path.assign(path_pool_.begin() + pr.off, path_pool_.begin() + pr.off + pr.len);
  view_flow_.done = false;
  view_flow_.aborted = false;
  return view_flow_;
}

const Flow* Network::find_flow(FlowId id) const {
  const std::uint32_t* slot = slot_index_.find(id);
  return slot == nullptr ? nullptr : &fill_view(*slot);
}

void Network::visit_active_flows(const std::function<void(const Flow&)>& fn) const {
  std::vector<std::uint32_t> slots;
  slots.reserve(slot_index_.size());
  for (std::uint32_t slot = 0; slot < slot_id_.size(); ++slot) {
    if (slot_in_use_[slot]) slots.push_back(slot);
  }
  std::sort(slots.begin(), slots.end(), [this](std::uint32_t a, std::uint32_t b) {
    return slot_id_[a] < slot_id_[b];
  });
  for (const std::uint32_t slot : slots) fn(fill_view(slot));
}

double Network::aggregate_rate_bps() const {
  double total = 0.0;
  for (std::uint32_t slot = 0; slot < slot_id_.size(); ++slot) {
    if (slot_in_use_[slot]) total += slot_rate_[slot];
  }
  return total;
}

// keddah:hot(start-flow)
FlowId Network::start_flow(NodeId src, NodeId dst, util::Bytes bytes, FlowMeta meta,
                           CompletionCallback on_complete, util::Rate rate_cap) {
  if (bytes.value() < 0.0) throw std::invalid_argument("network: negative flow size");
  const FlowId id = next_flow_id_++;

  Flow flow;
  flow.id = id;
  flow.src = src;
  flow.dst = dst;
  flow.bytes = bytes;
  flow.meta = meta;
  flow.submit_time = sim_.now();
  flow.remaining = bytes;
  // A non-positive cap means "uncapped": callers that compute a cap of 0.0
  // (e.g. a disabled throttle) must not end up with a 1 bps near-deadlock.
  flow.rate_cap_bps =
      rate_cap.bps() > 0.0 ? rate_cap.bps() : std::numeric_limits<double>::infinity();
  account_offered(flow);

  if (flow.loopback()) {
    // Local transfer: never touches the fabric; drain at the loopback rate.
    flow.start_time = sim_.now();
    const double duration = flow.remaining.bits() / options_.loopback.bps();
    flow.rate_bps = options_.loopback.bps();
    for (const auto& tap : start_taps_) tap(flow);
    sim_.schedule_in(duration, [this, flow, cb = std::move(on_complete)]() mutable {
      flow.end_time = sim_.now();
      flow.remaining = util::Bytes(0.0);
      flow.done = true;
      limbo(flow) -= flow.bytes;
      account_delivered(flow);
      for (const auto& tap : completion_taps_) tap(flow);
      if (cb) cb(flow);
      if constexpr (util::kAuditEnabled) audit_conservation();
    });
    return id;
  }

  flow.path = topology_.route(src, dst, id);
  const double latency =
      options_.model_latency ? topology_.path_latency(src, dst, id).value() : 0.0;
  double ramp = 0.0;
  if (options_.model_slow_start && latency > 0.0) {
    // Slow-start approximation: the window doubles each RTT until the
    // payload is covered. The ramp rounds are modelled as transfer time at
    // ~zero rate before the flow enters fair sharing, so they appear in the
    // flow's duration (first byte leaves on time, last byte is late).
    const double rounds = std::ceil(
        std::log2(1.0 + bytes.value() / std::max(options_.initial_window.value(), 1.0)));
    ramp = 2.0 * latency * std::min(rounds, 10.0);
  }

  // Connection establishment: first byte moves one path latency after submit.
  sim_.schedule_in(latency + ramp,
                   [this, flow = std::move(flow), ramp, cb = std::move(on_complete)]() mutable {
                     flow.start_time = sim_.now() - ramp;
                     if (!node_up(flow.src) || !node_up(flow.dst)) {
                       // Endpoint died during connection setup: the connect
                       // fails and no payload ever moves.
                       limbo(flow) -= flow.bytes;
                       account_aborted(flow, flow.bytes);
                       flow.bytes = util::Bytes(0.0);
                       flow.remaining = util::Bytes(0.0);
                       flow.done = true;
                       flow.aborted = true;
                       flow.end_time = sim_.now();
                       for (const auto& tap : completion_taps_) tap(flow);
                       if (cb) cb(flow);
                       if constexpr (util::kAuditEnabled) audit_conservation();
                       return;
                     }
                     for (const auto& tap : start_taps_) tap(flow);
                     limbo(flow) -= flow.bytes;  // now held in the active set
                     const std::uint32_t slot = allocate_slot();
                     slot_id_[slot] = flow.id;
                     slot_src_[slot] = flow.src;
                     slot_dst_[slot] = flow.dst;
                     slot_bytes_[slot] = flow.bytes;
                     slot_remaining_[slot] = flow.remaining;
                     // Rate sentinel: solved rates are never negative, so the
                     // first assign_rate after insertion always fires (even a
                     // solved rate of 0.0 must install a projected finish).
                     slot_rate_[slot] = -1.0;
                     slot_rate_cap_[slot] = flow.rate_cap_bps;
                     slot_submit_[slot] = flow.submit_time;
                     slot_start_[slot] = flow.start_time;
                     slot_last_update_[slot] = sim_.now();
                     slot_finish_[slot] = kInf;
                     slot_meta_[slot] = flow.meta;
                     slot_heap_pos_[slot] = kNotInHeap;
                     slot_callback_[slot] = std::move(cb);
                     assign_path(slot, flow.path);
                     slot_in_use_[slot] = 1;
                     ++live_slots_;
                     peak_live_slots_ = std::max(peak_live_slots_, live_slots_);
                     slot_index_.insert(flow.id, slot);
                     add_membership(slot);
                     heap_insert(slot);
                     reshare();
                   });
  return id;
}

// --- lazy progress ---------------------------------------------------------

// keddah:hot(materialize)
void Network::materialize(std::uint32_t slot) {
  const sim::Time now = sim_.now();
  const double dt = now - slot_last_update_[slot];
  if (dt > 0.0 && slot_rate_[slot] > 0.0) {
    const util::Bytes moved = std::min(
        slot_remaining_[slot], util::Rate::bps(slot_rate_[slot]) * util::Seconds(dt));
    slot_remaining_[slot] -= moved;  // audited against NaN/negative under KEDDAH_CHECK
    const PathRef& pr = slot_path_[slot];
    for (std::uint32_t i = 0; i < pr.len; ++i) {
      arc_bits_[path_pool_[pr.off + i].index()] += moved.bits();
    }
  }
  slot_last_update_[slot] = now;
}

void Network::sync_progress() {
  for (std::uint32_t slot = 0; slot < slot_id_.size(); ++slot) {
    if (slot_in_use_[slot]) materialize(slot);
  }
}

// --- membership / dirty frontier -------------------------------------------

void Network::mark_dirty(std::uint32_t arc_index) {
  if (!arcs_[arc_index].dirty) {
    arcs_[arc_index].dirty = true;
    dirty_arcs_.push_back(arc_index);
  }
}

std::uint32_t Network::allocate_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    ++slot_reuses_;
    // The slot's parked pool segment becomes the new occupant's to reuse
    // (or abandon) in assign_path.
    path_pool_parked_ -= slot_path_[slot].cap;
    return slot;
  }
  // Grow every column in lockstep; the arena height only ever increases.
  const std::uint32_t slot = static_cast<std::uint32_t>(slot_id_.size());
  slot_id_.push_back(kInvalidFlow);
  slot_src_.push_back(NodeId{0});
  slot_dst_.push_back(NodeId{0});
  slot_bytes_.emplace_back();
  slot_remaining_.emplace_back();
  slot_rate_.push_back(0.0);
  slot_rate_cap_.push_back(kInf);
  slot_submit_.push_back(0.0);
  slot_start_.push_back(0.0);
  slot_last_update_.push_back(0.0);
  slot_finish_.push_back(kInf);
  slot_meta_.emplace_back();
  slot_heap_pos_.push_back(kNotInHeap);
  slot_in_use_.push_back(0);
  slot_path_.emplace_back();
  slot_callback_.emplace_back();
  slot_visit_.push_back(0);
  slot_local_.push_back(0);
  return slot;
}

void Network::assign_path(std::uint32_t slot, const std::vector<Arc>& path) {
  PathRef& pr = slot_path_[slot];
  const std::uint32_t len = static_cast<std::uint32_t>(path.size());
  if (len <= pr.cap) {
    // Reuse in place: steady-state churn through same-shaped flows never
    // grows the pool.
    pr.len = len;
    std::copy(path.begin(), path.end(), path_pool_.begin() + pr.off);
    return;
  }
  // Abandon the too-small segment (dead until the next compaction) and
  // append a fresh one at the tail.
  path_pool_dead_ += pr.cap;
  pr = PathRef{};
  if (path_pool_.size() >= options_.path_pool_compact_min &&
      2 * (path_pool_dead_ + path_pool_parked_) >= path_pool_.size()) {
    compact_path_pool();
  }
  pr.off = static_cast<std::uint32_t>(path_pool_.size());
  pr.len = len;
  pr.cap = len;
  path_pool_.insert(path_pool_.end(), path.begin(), path.end());
  member_pos_pool_.resize(path_pool_.size(), 0);
}

void Network::compact_path_pool() {
  // Safe point: only ever called from assign_path, before the slot being
  // assigned holds a segment and never during a solve. Members reference
  // (slot, path index), not pool offsets, so moving segments is invisible
  // to the scheduler.
  std::vector<Arc> new_path;
  std::vector<std::uint32_t> new_member_pos;
  std::size_t live = 0;
  for (std::uint32_t slot = 0; slot < slot_path_.size(); ++slot) {
    if (slot_in_use_[slot]) live += slot_path_[slot].len;
  }
  new_path.reserve(live);
  new_member_pos.reserve(live);
  for (std::uint32_t slot = 0; slot < slot_path_.size(); ++slot) {
    PathRef& pr = slot_path_[slot];
    if (!slot_in_use_[slot]) {
      pr = PathRef{};
      continue;
    }
    const std::uint32_t off = static_cast<std::uint32_t>(new_path.size());
    new_path.insert(new_path.end(), path_pool_.begin() + pr.off,
                    path_pool_.begin() + pr.off + pr.len);
    new_member_pos.insert(new_member_pos.end(), member_pos_pool_.begin() + pr.off,
                          member_pos_pool_.begin() + pr.off + pr.len);
    pr.off = off;
    pr.cap = pr.len;
  }
  path_pool_ = std::move(new_path);
  member_pos_pool_ = std::move(new_member_pos);
  path_pool_dead_ = 0;
  path_pool_parked_ = 0;
  ++pool_compactions_;
}

void Network::add_membership(std::uint32_t slot) {
  const PathRef& pr = slot_path_[slot];
  for (std::uint32_t i = 0; i < pr.len; ++i) {
    const std::uint32_t ai = path_pool_[pr.off + i].index();
    ArcState& s = arcs_[ai];
    member_pos_pool_[pr.off + i] = static_cast<std::uint32_t>(s.members.size());
    s.members.emplace_back(slot, i);
    mark_dirty(ai);
  }
}

void Network::remove_membership(std::uint32_t slot) {
  const PathRef& pr = slot_path_[slot];
  for (std::uint32_t i = 0; i < pr.len; ++i) {
    const std::uint32_t ai = path_pool_[pr.off + i].index();
    ArcState& s = arcs_[ai];
    const std::uint32_t pos = member_pos_pool_[pr.off + i];
    const auto moved = s.members.back();
    s.members[pos] = moved;
    s.members.pop_back();
    if (moved.first != slot) {
      const PathRef& mp = slot_path_[moved.first];
      member_pos_pool_[mp.off + moved.second] = pos;
    }
    mark_dirty(ai);
  }
}

std::pair<Flow, Network::CompletionCallback> Network::detach(std::uint32_t slot) {
  remove_membership(slot);
  heap_erase(slot);
  slot_index_.erase(slot_id_[slot]);
  slot_in_use_[slot] = 0;
  --live_slots_;
  // The slot keeps its pool segment parked for its next occupant; only the
  // length is cleared so audits and compaction see it as empty.
  path_pool_parked_ += slot_path_[slot].cap;
  slot_path_[slot].len = 0;
  Flow flow;
  flow.id = slot_id_[slot];
  flow.src = slot_src_[slot];
  flow.dst = slot_dst_[slot];
  flow.bytes = slot_bytes_[slot];
  flow.meta = slot_meta_[slot];
  flow.submit_time = slot_submit_[slot];
  flow.start_time = slot_start_[slot];
  flow.rate_bps = slot_rate_[slot];
  flow.rate_cap_bps = slot_rate_cap_[slot];
  flow.remaining = slot_remaining_[slot];
  // flow.path stays empty: nothing downstream of detach reads it, and
  // copying it out of the pool would be the hot path's only allocation.
  CompletionCallback cb = std::move(slot_callback_[slot]);
  slot_callback_[slot] = nullptr;
  free_slots_.push_back(slot);
  return {std::move(flow), std::move(cb)};
}

// --- fair sharing ----------------------------------------------------------

// keddah:hot(reshare)
void Network::reshare() {
  ++sched_stats_.reshares;
  if (reference_mode_) compute_max_min_rates_reference();
  if (dirty_arcs_.empty()) {
    ++sched_stats_.empty_reshares;
  } else {
    solve_dirty();
  }
  rearm_completion();
}

void Network::compute_max_min_rates_reference() {
  for (std::uint32_t ai = 0; ai < arcs_.size(); ++ai) {
    if (!arcs_[ai].members.empty()) mark_dirty(ai);
  }
}

void Network::assign_rate(std::uint32_t slot, double rate_bps) {
  // Bit-identical rate: nothing moved, the projected finish is still exact.
  // This skip is what keeps the reference scheduler's full sweeps from
  // perturbing flows whose allocation did not change.
  if (slot_rate_[slot] == rate_bps) return;
  materialize(slot);
  slot_rate_[slot] = rate_bps;
  slot_finish_[slot] = sim_.now() + slot_remaining_[slot].bits() / std::max(rate_bps, 1e-9);
  heap_update(slot);
  ++sched_stats_.flows_rerated;
}

// keddah:hot(solve)
void Network::solve_dirty() {
  ++sched_stats_.solves;
  ++visit_epoch_;
  const std::uint64_t epoch = visit_epoch_;

  scratch_flows_.clear();
  scratch_arc_stack_.clear();
  scratch_local_arcs_.clear();

  // Seed the flood fill with the populated dirty arcs; arcs whose last
  // member departed (or that were never populated) just get their flag
  // cleared — no flow's rate can depend on them.
  for (const std::uint32_t ai : dirty_arcs_) {
    arcs_[ai].dirty = false;
    if (!arcs_[ai].members.empty() && arc_visit_[ai] != epoch) {
      arc_visit_[ai] = epoch;
      scratch_arc_stack_.push_back(ai);
    }
  }
  dirty_arcs_.clear();

  // Flood fill the connected component(s) of the flow/arc sharing graph
  // that contain a dirty arc. Rates of flows outside these components are
  // unaffected by whatever changed (max-min decomposes exactly over
  // components), so their cached values stand.
  while (!scratch_arc_stack_.empty()) {
    const std::uint32_t ai = scratch_arc_stack_.back();
    scratch_arc_stack_.pop_back();
    scratch_local_arcs_.push_back(ai);
    for (const auto& [slot, pi] : arcs_[ai].members) {
      (void)pi;
      if (slot_visit_[slot] == epoch) continue;
      slot_visit_[slot] = epoch;
      // archlint:allow(hot-push-back): flow-bounded scratch; capacity
      // persists across solves, so growth amortizes to zero steady-state.
      scratch_flows_.push_back(slot);
      const PathRef& pr = slot_path_[slot];
      for (std::uint32_t i = 0; i < pr.len; ++i) {
        const std::uint32_t aj = path_pool_[pr.off + i].index();
        if (arc_visit_[aj] != epoch) {
          arc_visit_[aj] = epoch;
          scratch_arc_stack_.push_back(aj);
        }
      }
    }
  }

  sched_stats_.links_touched += scratch_local_arcs_.size();
  {
    // Histogram bucket i holds solves that touched [4^i, 4^(i+1)) arcs.
    std::size_t n = scratch_local_arcs_.size();
    std::size_t bucket = 0;
    while (n >= 4 && bucket + 1 < sched_stats_.solve_size_hist.size()) {
      n >>= 2;
      ++bucket;
    }
    ++sched_stats_.solve_size_hist[bucket];
  }
  if (scratch_flows_.empty()) return;
  sched_stats_.flows_visited += scratch_flows_.size();

  // Canonical order: flows by id, real arcs by global arc index, virtual
  // cap arcs appended in flow order after every real arc. The solve is then
  // a pure function of (membership, capacities) — independent of how the
  // component was discovered — which is what makes incremental and
  // reference allocations bit-identical.
  std::sort(scratch_flows_.begin(), scratch_flows_.end(), [this](std::uint32_t a, std::uint32_t b) {
    return slot_id_[a] < slot_id_[b];
  });
  std::sort(scratch_local_arcs_.begin(), scratch_local_arcs_.end());

  const std::size_t nf = scratch_flows_.size();
  const std::size_t n_real = scratch_local_arcs_.size();
  for (std::size_t li = 0; li < n_real; ++li) {
    arc_local_idx_[scratch_local_arcs_[li]] = static_cast<std::uint32_t>(li);
  }
  for (std::size_t fi = 0; fi < nf; ++fi) {
    slot_local_[scratch_flows_[fi]] = static_cast<std::uint32_t>(fi);
  }

  // CSR of flow -> local arcs (path arcs, then the virtual cap arc if any).
  // All of the solve state below lives in member scratch buffers (hoisted
  // locals): assign() reuses retained capacity, so repeat solves allocate
  // nothing once the buffers have grown to the component's size.
  auto& flow_arc_off = scratch_flow_arc_off_;
  flow_arc_off.assign(nf + 1, 0);
  std::size_t n_virtual = 0;
  for (std::size_t fi = 0; fi < nf; ++fi) {
    const std::uint32_t slot = scratch_flows_[fi];
    const bool capped = std::isfinite(slot_rate_cap_[slot]);
    flow_arc_off[fi + 1] = flow_arc_off[fi] + slot_path_[slot].len + (capped ? 1u : 0u);
    if (capped) ++n_virtual;
  }
  const std::size_t n_arcs = n_real + n_virtual;
  auto& flow_arcs = scratch_flow_arcs_;
  flow_arcs.assign(flow_arc_off[nf], 0);
  auto& residual = scratch_residual_;
  residual.assign(n_arcs, 0.0);
  auto& unfrozen = scratch_unfrozen_;
  unfrozen.assign(n_arcs, 0);
  auto& virtual_member = scratch_virtual_member_;
  virtual_member.assign(n_virtual, 0);

  for (std::size_t li = 0; li < n_real; ++li) {
    residual[li] = arcs_[scratch_local_arcs_[li]].capacity_bps;
  }
  std::size_t next_virtual = n_real;
  for (std::size_t fi = 0; fi < nf; ++fi) {
    const std::uint32_t slot = scratch_flows_[fi];
    const PathRef& pr = slot_path_[slot];
    std::uint32_t w = flow_arc_off[fi];
    for (std::uint32_t i = 0; i < pr.len; ++i) {
      const std::uint32_t li = arc_local_idx_[path_pool_[pr.off + i].index()];
      flow_arcs[w++] = li;
      ++unfrozen[li];
    }
    if (std::isfinite(slot_rate_cap_[slot])) {
      residual[next_virtual] = slot_rate_cap_[slot];
      unfrozen[next_virtual] = 1;
      virtual_member[next_virtual - n_real] = static_cast<std::uint32_t>(fi);
      flow_arcs[w++] = static_cast<std::uint32_t>(next_virtual);
      ++next_virtual;
    }
  }

  // Progressive filling, one bottleneck arc per round, driven by a lazy
  // min-heap of (share, local arc). Exact comparisons throughout: ties
  // break on the local index, which matches the canonical global order.
  const auto arc_share = [&](std::uint32_t li) {
    return std::max(0.0, residual[li]) / static_cast<double>(unfrozen[li]);
  };
  using ShareEntry = std::pair<double, std::uint32_t>;
  const auto later = [](const ShareEntry& a, const ShareEntry& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;
  };
  auto& share_heap = scratch_share_heap_;
  share_heap.clear();
  share_heap.reserve(n_arcs * 2);
  for (std::uint32_t li = 0; li < n_arcs; ++li) {
    if (unfrozen[li] > 0) share_heap.emplace_back(arc_share(li), li);
  }
  std::make_heap(share_heap.begin(), share_heap.end(), later);

  auto& frozen = scratch_frozen_;
  frozen.assign(nf, 0);
  std::size_t remaining_flows = nf;
  while (remaining_flows > 0) {
    assert(!share_heap.empty());
    std::pop_heap(share_heap.begin(), share_heap.end(), later);
    const auto [share, li] = share_heap.back();
    share_heap.pop_back();
    // Lazy deletion: an entry is live only if it matches the arc's current
    // share (every share change pushes a fresh entry).
    if (unfrozen[li] == 0 || share != arc_share(li)) continue;

    const auto freeze = [&](std::uint32_t fi) {
      if (frozen[fi]) return;
      frozen[fi] = true;
      --remaining_flows;
      assign_rate(scratch_flows_[fi], share);
      for (std::uint32_t k = flow_arc_off[fi]; k < flow_arc_off[fi + 1]; ++k) {
        const std::uint32_t lj = flow_arcs[k];
        residual[lj] -= share;
        --unfrozen[lj];
        if (lj != li && unfrozen[lj] > 0) {
          share_heap.emplace_back(arc_share(lj), lj);
          std::push_heap(share_heap.begin(), share_heap.end(), later);
        }
      }
    };
    // All unfrozen members freeze at the same share, so the member list's
    // (swap-remove) order cannot change any floating-point result.
    if (li < n_real) {
      for (const auto& [slot, pi] : arcs_[scratch_local_arcs_[li]].members) {
        (void)pi;
        freeze(slot_local_[slot]);
      }
    } else {
      freeze(virtual_member[li - n_real]);
    }
  }
}

// --- completion heap -------------------------------------------------------

bool Network::finishes_before(std::uint32_t a, std::uint32_t b) const {
  if (slot_finish_[a] != slot_finish_[b]) return slot_finish_[a] < slot_finish_[b];
  return slot_id_[a] < slot_id_[b];
}

void Network::heap_place(std::size_t pos, std::uint32_t slot) {
  finish_heap_[pos] = slot;
  slot_heap_pos_[slot] = static_cast<std::int32_t>(pos);
}

void Network::heap_sift_up(std::size_t pos) {
  const std::uint32_t slot = finish_heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (!finishes_before(slot, finish_heap_[parent])) break;
    heap_place(pos, finish_heap_[parent]);
    ++sched_stats_.heap_ops;
    pos = parent;
  }
  heap_place(pos, slot);
}

void Network::heap_sift_down(std::size_t pos) {
  const std::uint32_t slot = finish_heap_[pos];
  const std::size_t n = finish_heap_.size();
  for (;;) {
    std::size_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && finishes_before(finish_heap_[child + 1], finish_heap_[child])) ++child;
    if (!finishes_before(finish_heap_[child], slot)) break;
    heap_place(pos, finish_heap_[child]);
    ++sched_stats_.heap_ops;
    pos = child;
  }
  heap_place(pos, slot);
}

void Network::heap_insert(std::uint32_t slot) {
  finish_heap_.push_back(slot);
  slot_heap_pos_[slot] = static_cast<std::int32_t>(finish_heap_.size() - 1);
  heap_sift_up(finish_heap_.size() - 1);
}

void Network::heap_erase(std::uint32_t slot) {
  const std::int32_t pos = slot_heap_pos_[slot];
  if (pos == kNotInHeap) return;
  slot_heap_pos_[slot] = kNotInHeap;
  const std::size_t last = finish_heap_.size() - 1;
  if (static_cast<std::size_t>(pos) != last) {
    const std::uint32_t moved = finish_heap_[last];
    finish_heap_.pop_back();
    heap_place(static_cast<std::size_t>(pos), moved);
    heap_sift_down(static_cast<std::size_t>(pos));
    heap_sift_up(static_cast<std::size_t>(slot_heap_pos_[moved]));
  } else {
    finish_heap_.pop_back();
  }
}

void Network::heap_update(std::uint32_t slot) {
  assert(slot_heap_pos_[slot] != kNotInHeap);
  heap_sift_up(static_cast<std::size_t>(slot_heap_pos_[slot]));
  heap_sift_down(static_cast<std::size_t>(slot_heap_pos_[slot]));
}

void Network::rearm_completion() {
  if (finish_heap_.empty() || !std::isfinite(slot_finish_[finish_heap_.front()])) {
    if (completion_event_ != sim::kInvalidEvent) {
      sim_.cancel(completion_event_);
      completion_event_ = sim::kInvalidEvent;
    }
    armed_time_ = kInf;
    return;
  }
  const double target = std::max(slot_finish_[finish_heap_.front()], sim_.now());
  if (completion_event_ != sim::kInvalidEvent) {
    if (target == armed_time_) return;  // already armed at the right time
    completion_event_ = sim_.reschedule(completion_event_, target);
  } else {
    completion_event_ = sim_.schedule_at(target, [this] { on_completion_event(); });
  }
  armed_time_ = target;
}

// keddah:hot(completion)
void Network::on_completion_event() {
  completion_event_ = sim::kInvalidEvent;
  armed_time_ = kInf;
  const sim::Time now = sim_.now();
  // Every flow whose projected finish has arrived is mathematically drained:
  // a projected finish goes stale only when the rate changes, and a rate
  // change recomputes it. Any residue after materialization is
  // floating-point noise at the payload's ulp scale. The drained batch is
  // member scratch (hoisted local): completion events fire per flow, and a
  // fresh vector here was a per-event allocation. Callbacks run after the
  // heap drain and never re-enter this handler, so reuse is safe.
  scratch_drained_.clear();
  while (!finish_heap_.empty() && slot_finish_[finish_heap_.front()] <= now) {
    const std::uint32_t slot = finish_heap_.front();
    materialize(slot);
    KEDDAH_AUDIT(slot_remaining_[slot].bits() <=
                     kDrainEpsilonBits + 1e-9 * slot_bytes_[slot].bits(),
                 "completed flow left real payload behind");
    slot_remaining_[slot] = util::Bytes(0.0);
    // archlint:allow(hot-push-back): flow-bounded scratch; capacity
    // persists across completion events.
    scratch_drained_.push_back(detach(slot));
  }
  // Heap pop order is (finish, id): simultaneous completions resolve in
  // flow-id order, keeping downstream callbacks deterministic.
  for (auto& [flow, cb] : scratch_drained_) resolve_finished(std::move(flow), std::move(cb));
  reshare();
  if constexpr (util::kAuditEnabled) audit_conservation();
}

bool Network::abort_flow(FlowId id) {
  const std::uint32_t* found = slot_index_.find(id);
  if (found == nullptr) return false;
  const std::uint32_t slot = *found;
  materialize(slot);
  auto [flow, cb] = detach(slot);
  resolve_aborted(std::move(flow), std::move(cb));
  reshare();
  if constexpr (util::kAuditEnabled) audit_conservation();
  return true;
}

std::size_t Network::abort_flows_touching(NodeId node) {
  std::vector<FlowId> victims;
  for (std::uint32_t slot = 0; slot < slot_id_.size(); ++slot) {
    if (slot_in_use_[slot] && (slot_src_[slot] == node || slot_dst_[slot] == node)) {
      victims.push_back(slot_id_[slot]);
    }
  }
  if (victims.empty()) return 0;
  // Id order keeps abort callbacks deterministic regardless of arena layout.
  std::sort(victims.begin(), victims.end());
  std::size_t aborted = 0;
  for (const FlowId id : victims) {
    const std::uint32_t* found = slot_index_.find(id);
    if (found == nullptr) continue;  // removed by a nested callback
    const std::uint32_t slot = *found;
    materialize(slot);
    auto [flow, cb] = detach(slot);
    resolve_aborted(std::move(flow), std::move(cb));
    ++aborted;
  }
  reshare();
  if constexpr (util::kAuditEnabled) audit_conservation();
  return aborted;
}

void Network::resolve_finished(Flow flow, CompletionCallback cb) {
  flow.done = true;
  const double tail_latency =
      options_.model_latency ? topology_.path_latency(flow.src, flow.dst, flow.id).value() : 0.0;
  if (tail_latency > 0.0) {
    limbo(flow) += flow.bytes;  // drained but not yet delivered (tail latency)
    sim_.schedule_in(tail_latency, [this, flow = std::move(flow), cb = std::move(cb)]() mutable {
      flow.end_time = sim_.now();
      limbo(flow) -= flow.bytes;
      account_delivered(flow);
      for (const auto& tap : completion_taps_) tap(flow);
      if (cb) cb(flow);
      if constexpr (util::kAuditEnabled) audit_conservation();
    });
  } else {
    flow.end_time = sim_.now();
    account_delivered(flow);
    for (const auto& tap : completion_taps_) tap(flow);
    if (cb) cb(flow);
  }
}

void Network::resolve_aborted(Flow flow, CompletionCallback cb) {
  const double delivered = std::max(0.0, flow.bytes.value() - flow.remaining.value());
  account_aborted(flow, util::Bytes(flow.bytes.value() - delivered));
  flow.bytes = util::Bytes(delivered);
  flow.remaining = util::Bytes(0.0);
  flow.done = true;
  flow.aborted = true;
  flow.end_time = sim_.now();
  account_delivered(flow);  // the partial payload did arrive
  for (const auto& tap : completion_taps_) tap(flow);
  if (cb) cb(flow);
}

}  // namespace keddah::net
