#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/check.h"
#include "util/log.h"

namespace keddah::net {

namespace {
/// Residual payload below this many bits counts as drained.
constexpr double kDrainEpsilonBits = 1e-2;
}  // namespace

const char* flow_kind_name(FlowKind kind) {
  switch (kind) {
    case FlowKind::kHdfsRead:
      return "hdfs_read";
    case FlowKind::kShuffle:
      return "shuffle";
    case FlowKind::kHdfsWrite:
      return "hdfs_write";
    case FlowKind::kControl:
      return "control";
    case FlowKind::kOther:
      return "other";
  }
  return "unknown";
}

Network::Network(sim::Simulator& sim, Topology topology, NetworkOptions options)
    : sim_(sim), topology_(std::move(topology)), options_(options) {
  arc_bits_.assign(topology_.num_arcs(), 0.0);
  node_down_.assign(topology_.num_nodes(), false);
}

void Network::set_node_down(NodeId node) {
  if (node >= node_down_.size()) throw std::out_of_range("network: bad node id");
  node_down_[node] = true;
}

void Network::set_node_up(NodeId node) {
  if (node >= node_down_.size()) throw std::out_of_range("network: bad node id");
  node_down_[node] = false;
}

bool Network::node_up(NodeId node) const {
  return node < node_down_.size() ? !node_down_[node] : true;
}

void Network::set_link_capacity(LinkId link, util::Rate capacity) {
  advance_progress();
  topology_.set_link_capacity(link, capacity);
  reshare();
}

void Network::account_offered(const Flow& flow) {
  offered_bytes_ += flow.bytes;
  class_totals_[static_cast<std::size_t>(flow.meta.kind)].offered += flow.bytes;
  limbo(flow) += flow.bytes;  // in setup/loopback transit until activation
}

void Network::account_delivered(const Flow& flow) {
  delivered_bytes_ += flow.bytes;
  class_totals_[static_cast<std::size_t>(flow.meta.kind)].delivered += flow.bytes;
}

void Network::account_aborted(const Flow& flow, util::Bytes shortfall) {
  ++aborted_flows_;
  aborted_bytes_ += shortfall;
  class_totals_[static_cast<std::size_t>(flow.meta.kind)].aborted += shortfall;
}

void Network::audit_conservation() const {
  // In-flight payload of flows currently holding capacity, per class.
  std::array<double, kNumFlowKinds> active_bytes{};
  for (const auto& [id, af] : active_) {
    active_bytes[static_cast<std::size_t>(af.flow.meta.kind)] += af.flow.bytes.value();
  }
  double offered = 0.0, resolved = 0.0;
  for (std::size_t k = 0; k < kNumFlowKinds; ++k) {
    const ClassTotals& t = class_totals_[k];
    const double lhs = t.offered.value();
    const double rhs =
        t.delivered.value() + t.aborted.value() + limbo_[k].value() + active_bytes[k];
    const double tol = 1e-6 * std::max(1.0, lhs) + 1e-3;
    if (std::fabs(lhs - rhs) > tol) {
      throw util::AuditError(std::string("network conservation breach in class ") +
                             flow_kind_name(static_cast<FlowKind>(k)) + ": offered " +
                             std::to_string(lhs) + " B != delivered+aborted+in-flight " +
                             std::to_string(rhs) + " B");
    }
    offered += lhs;
    resolved += rhs;
  }
  const double tol = 1e-6 * std::max(1.0, offered) + 1e-3;
  if (std::fabs(offered - resolved) > tol) {
    throw util::AuditError("network conservation breach in aggregate ledger");
  }
  KEDDAH_AUDIT(std::fabs(offered_bytes_.value() - offered) <= tol,
               "aggregate offered counter out of sync with per-class ledger");
}

double Network::arc_bytes(Arc arc) const { return arc_bits_.at(arc.index()) / 8.0; }

double Network::link_bytes(LinkId link) const {
  return arc_bytes(Arc{link, 0}) + arc_bytes(Arc{link, 1});
}

double Network::arc_utilization(Arc arc) const {
  const double elapsed = sim_.now();
  if (elapsed <= 0.0) return 0.0;
  return arc_bits_.at(arc.index()) / (topology_.link(arc.link).capacity.bps() * elapsed);
}

void Network::add_completion_tap(Tap tap) { completion_taps_.push_back(std::move(tap)); }

void Network::add_start_tap(Tap tap) { start_taps_.push_back(std::move(tap)); }

const Flow* Network::find_flow(FlowId id) const {
  const auto it = active_.find(id);
  return it == active_.end() ? nullptr : &it->second.flow;
}

double Network::aggregate_rate_bps() const {
  double total = 0.0;
  for (const auto& [id, af] : active_) total += af.flow.rate_bps;
  return total;
}

FlowId Network::start_flow(NodeId src, NodeId dst, util::Bytes bytes, FlowMeta meta,
                           CompletionCallback on_complete, util::Rate rate_cap) {
  if (bytes.value() < 0.0) throw std::invalid_argument("network: negative flow size");
  const FlowId id = next_flow_id_++;

  Flow flow;
  flow.id = id;
  flow.src = src;
  flow.dst = dst;
  flow.bytes = bytes;
  flow.meta = meta;
  flow.submit_time = sim_.now();
  flow.remaining_bits = bytes.bits();
  // A non-positive cap means "uncapped": callers that compute a cap of 0.0
  // (e.g. a disabled throttle) must not end up with a 1 bps near-deadlock.
  flow.rate_cap_bps =
      rate_cap.bps() > 0.0 ? rate_cap.bps() : std::numeric_limits<double>::infinity();
  account_offered(flow);

  if (flow.loopback()) {
    // Local transfer: never touches the fabric; drain at the loopback rate.
    flow.start_time = sim_.now();
    const double duration = flow.remaining_bits / options_.loopback.bps();
    flow.rate_bps = options_.loopback.bps();
    for (const auto& tap : start_taps_) tap(flow);
    sim_.schedule_in(duration, [this, flow, cb = std::move(on_complete)]() mutable {
      flow.end_time = sim_.now();
      flow.remaining_bits = 0.0;
      flow.done = true;
      limbo(flow) -= flow.bytes;
      account_delivered(flow);
      for (const auto& tap : completion_taps_) tap(flow);
      if (cb) cb(flow);
      if constexpr (util::kAuditEnabled) audit_conservation();
    });
    return id;
  }

  flow.path = topology_.route(src, dst, id);
  const double latency =
      options_.model_latency ? topology_.path_latency(src, dst, id).value() : 0.0;
  double ramp = 0.0;
  if (options_.model_slow_start && latency > 0.0) {
    // Slow-start approximation: the window doubles each RTT until the
    // payload is covered. The ramp rounds are modelled as transfer time at
    // ~zero rate before the flow enters fair sharing, so they appear in the
    // flow's duration (first byte leaves on time, last byte is late).
    const double rounds = std::ceil(
        std::log2(1.0 + bytes.value() / std::max(options_.initial_window.value(), 1.0)));
    ramp = 2.0 * latency * std::min(rounds, 10.0);
  }

  // Connection establishment: first byte moves one path latency after submit.
  sim_.schedule_in(latency + ramp,
                   [this, flow = std::move(flow), ramp, cb = std::move(on_complete)]() mutable {
                     flow.start_time = sim_.now() - ramp;
                     if (!node_up(flow.src) || !node_up(flow.dst)) {
                       // Endpoint died during connection setup: the connect
                       // fails and no payload ever moves.
                       limbo(flow) -= flow.bytes;
                       account_aborted(flow, flow.bytes);
                       flow.bytes = util::Bytes(0.0);
                       flow.remaining_bits = 0.0;
                       flow.done = true;
                       flow.aborted = true;
                       flow.end_time = sim_.now();
                       for (const auto& tap : completion_taps_) tap(flow);
                       if (cb) cb(flow);
                       if constexpr (util::kAuditEnabled) audit_conservation();
                       return;
                     }
                     for (const auto& tap : start_taps_) tap(flow);
                     advance_progress();
                     limbo(flow) -= flow.bytes;  // now held in the active set
                     active_.emplace(flow.id, ActiveFlow{std::move(flow), std::move(cb)});
                     reshare();
                   });
  return id;
}

void Network::advance_progress() {
  const sim::Time now = sim_.now();
  const double dt = now - last_progress_time_;
  if (dt > 0.0) {
    for (auto& [id, af] : active_) {
      const double moved = std::min(af.flow.remaining_bits, af.flow.rate_bps * dt);
      af.flow.remaining_bits -= moved;
      for (const Arc arc : af.flow.path) arc_bits_[arc.index()] += moved;
    }
  }
  last_progress_time_ = now;
}

void Network::compute_max_min_rates() {
  ++recomputations_;
  const std::size_t num_real_arcs = topology_.num_arcs();

  std::vector<ActiveFlow*> flows;
  flows.reserve(active_.size());
  for (auto& [id, af] : active_) flows.push_back(&af);
  // Deterministic iteration order regardless of hash-map layout.
  std::sort(flows.begin(), flows.end(),
            [](const ActiveFlow* a, const ActiveFlow* b) { return a->flow.id < b->flow.id; });

  // Arc table: real arcs first, then one virtual arc per rate-capped flow.
  std::vector<double> residual(num_real_arcs, 0.0);
  std::vector<std::vector<std::uint32_t>> members(num_real_arcs);
  std::vector<std::uint32_t> unfrozen_count(num_real_arcs, 0);

  auto add_virtual_arc = [&](double capacity) {
    residual.push_back(capacity);
    members.emplace_back();
    unfrozen_count.push_back(0);
    return static_cast<std::uint32_t>(residual.size() - 1);
  };

  // flow -> arcs (real path arcs + optional virtual cap arc).
  std::vector<std::vector<std::uint32_t>> flow_arcs(flows.size());
  for (std::uint32_t fi = 0; fi < flows.size(); ++fi) {
    const Flow& f = flows[fi]->flow;
    for (const Arc arc : f.path) {
      const std::uint32_t ai = arc.index();
      if (members[ai].empty()) residual[ai] = topology_.link(arc.link).capacity.bps();
      members[ai].push_back(fi);
      ++unfrozen_count[ai];
      flow_arcs[fi].push_back(ai);
    }
    if (std::isfinite(f.rate_cap_bps)) {
      const std::uint32_t ai = add_virtual_arc(f.rate_cap_bps);
      members[ai].push_back(fi);
      ++unfrozen_count[ai];
      flow_arcs[fi].push_back(ai);
    }
  }

  std::vector<bool> frozen(flows.size(), false);
  std::size_t remaining = flows.size();
  while (remaining > 0) {
    // Find the bottleneck share.
    double best_share = std::numeric_limits<double>::infinity();
    for (std::uint32_t ai = 0; ai < residual.size(); ++ai) {
      if (unfrozen_count[ai] == 0) continue;
      best_share = std::min(best_share, std::max(0.0, residual[ai]) / unfrozen_count[ai]);
    }
    assert(std::isfinite(best_share));
    // Freeze every unfrozen flow crossing an arc at the bottleneck share.
    const double tol = best_share * 1e-9 + 1e-12;
    bool froze_any = false;
    for (std::uint32_t ai = 0; ai < residual.size(); ++ai) {
      if (unfrozen_count[ai] == 0) continue;
      const double share = std::max(0.0, residual[ai]) / unfrozen_count[ai];
      if (share > best_share + tol) continue;
      for (const std::uint32_t fi : members[ai]) {
        if (frozen[fi]) continue;
        frozen[fi] = true;
        froze_any = true;
        --remaining;
        flows[fi]->flow.rate_bps = best_share;
        for (const std::uint32_t other : flow_arcs[fi]) {
          residual[other] -= best_share;
          --unfrozen_count[other];
        }
      }
    }
    assert(froze_any);
    if (!froze_any) break;  // numerical safety net; should be unreachable
  }
}

void Network::reshare() {
  if (completion_event_ != sim::kInvalidEvent) {
    sim_.cancel(completion_event_);
    completion_event_ = sim::kInvalidEvent;
  }
  if (active_.empty()) return;

  compute_max_min_rates();

  double min_dt = std::numeric_limits<double>::infinity();
  for (const auto& [id, af] : active_) {
    const double rate = std::max(af.flow.rate_bps, 1e-9);
    min_dt = std::min(min_dt, af.flow.remaining_bits / rate);
  }
  min_dt = std::max(0.0, min_dt);
  completion_event_ = sim_.schedule_in(min_dt, [this] { on_completion_event(); });
}

void Network::on_completion_event() {
  completion_event_ = sim::kInvalidEvent;
  advance_progress();
  std::vector<FlowId> drained;
  for (const auto& [id, af] : active_) {
    if (af.flow.remaining_bits <= kDrainEpsilonBits) drained.push_back(id);
  }
  std::sort(drained.begin(), drained.end());
  if (drained.empty()) {
    // Rounding left a sliver: re-arm and drain it next round.
    reshare();
    return;
  }
  for (const FlowId id : drained) {
    auto it = active_.find(id);
    assert(it != active_.end());
    finish_flow(it->second);
    active_.erase(it);
  }
  reshare();
  if constexpr (util::kAuditEnabled) audit_conservation();
}

void Network::abort_erased(ActiveFlow& af) {
  Flow flow = std::move(af.flow);
  CompletionCallback cb = std::move(af.on_complete);
  const double delivered = std::max(0.0, flow.bytes.value() - flow.remaining_bits / 8.0);
  account_aborted(flow, util::Bytes(flow.bytes.value() - delivered));
  flow.bytes = util::Bytes(delivered);
  flow.remaining_bits = 0.0;
  flow.done = true;
  flow.aborted = true;
  flow.end_time = sim_.now();
  account_delivered(flow);  // the partial payload did arrive
  for (const auto& tap : completion_taps_) tap(flow);
  if (cb) cb(flow);
}

bool Network::abort_flow(FlowId id) {
  auto it = active_.find(id);
  if (it == active_.end()) return false;
  advance_progress();
  ActiveFlow af = std::move(it->second);
  active_.erase(it);
  abort_erased(af);
  reshare();
  if constexpr (util::kAuditEnabled) audit_conservation();
  return true;
}

std::size_t Network::abort_flows_touching(NodeId node) {
  std::vector<FlowId> victims;
  for (const auto& [id, af] : active_) {
    if (af.flow.src == node || af.flow.dst == node) victims.push_back(id);
  }
  if (victims.empty()) return 0;
  // Id order keeps abort callbacks deterministic regardless of hash layout.
  std::sort(victims.begin(), victims.end());
  advance_progress();
  std::size_t aborted = 0;
  for (const FlowId id : victims) {
    auto it = active_.find(id);
    if (it == active_.end()) continue;  // removed by a nested callback
    ActiveFlow af = std::move(it->second);
    active_.erase(it);
    abort_erased(af);
    ++aborted;
  }
  reshare();
  if constexpr (util::kAuditEnabled) audit_conservation();
  return aborted;
}

void Network::finish_flow(ActiveFlow& af) {
  Flow flow = std::move(af.flow);
  CompletionCallback cb = std::move(af.on_complete);
  flow.remaining_bits = 0.0;
  flow.done = true;
  const double tail_latency =
      options_.model_latency ? topology_.path_latency(flow.src, flow.dst, flow.id).value() : 0.0;
  if (tail_latency > 0.0) {
    limbo(flow) += flow.bytes;  // drained but not yet delivered (tail latency)
    sim_.schedule_in(tail_latency, [this, flow = std::move(flow), cb = std::move(cb)]() mutable {
      flow.end_time = sim_.now();
      limbo(flow) -= flow.bytes;
      account_delivered(flow);
      for (const auto& tap : completion_taps_) tap(flow);
      if (cb) cb(flow);
      if constexpr (util::kAuditEnabled) audit_conservation();
    });
  } else {
    flow.end_time = sim_.now();
    account_delivered(flow);
    for (const auto& tap : completion_taps_) tap(flow);
    if (cb) cb(flow);
  }
}

}  // namespace keddah::net
