// Cluster-wide configuration: topology shape, HDFS parameters, and the
// MapReduce knobs the paper sweeps (replication factor, block size,
// slow-start threshold).
#pragma once

#include <cstdint>
#include <string>

#include "net/topology.h"

namespace keddah::hadoop {

/// Which fabric to build under the cluster.
enum class TopologyKind { kStar, kRackTree, kFatTree };

/// Everything needed to stand up an emulated Hadoop cluster.
struct ClusterConfig {
  // ---- fabric ----
  TopologyKind topology = TopologyKind::kRackTree;
  std::size_t racks = 4;
  std::size_t hosts_per_rack = 4;
  /// Host access-link rate, bits/s (1 GbE default, as in the paper's era).
  double access_bps = 1.0e9;
  /// ToR uplink rate, bits/s.
  double core_bps = 10.0e9;
  /// Per-link one-way latency, seconds.
  double latency_s = 100e-6;
  /// Fat-tree arity when topology == kFatTree (hosts = k^3/4).
  std::size_t fat_tree_k = 4;

  // ---- node resources ----
  /// YARN containers per NodeManager (vcores-bound slots).
  std::size_t containers_per_node = 8;
  /// Local disk sequential read/write rates, bits/s: cap loopback reads,
  /// shuffle serving, and pipeline writes.
  double disk_read_bps = 6.0e9;   // ~750 MB/s
  double disk_write_bps = 4.0e9;  // ~500 MB/s

  // ---- HDFS ----
  std::uint64_t block_size = 128ull << 20;
  std::uint32_t replication = 3;

  // ---- MapReduce ----
  /// mapreduce.job.reduce.slowstart.completedmaps: fraction of maps that
  /// must finish before reducers launch.
  double slowstart = 0.05;
  /// mapreduce.reduce.shuffle.parallelcopies: concurrent fetches/reducer.
  std::size_t shuffle_parallel_copies = 5;
  /// mapreduce.map.output.compress: on-the-wire shuffle bytes per logical
  /// map-output byte (1.0 = compression off; ~0.35 models Snappy on text).
  /// Compute and output sizing always use the logical (uncompressed) bytes.
  double map_output_compress_ratio = 1.0;
  /// Per-fetch HTTP framing overhead added to every shuffle flow, bytes.
  double shuffle_http_overhead_bytes = 512.0;
  /// Task container startup cost (JVM spawn etc.), seconds.
  double task_startup_s = 1.0;
  /// Multiplicative lognormal noise sigma on task compute durations.
  double task_noise_sigma = 0.15;
  /// Fraction of task attempts that straggle (e.g. CPU contention, bad
  /// disk); their compute runs `straggler_slowdown` times slower.
  double straggler_fraction = 0.0;
  double straggler_slowdown = 6.0;
  /// mapreduce.map.speculative: launch a backup attempt for a map whose
  /// elapsed runtime exceeds `speculation_threshold` times the mean
  /// completed-map runtime. The first attempt to finish wins; the loser's
  /// traffic (duplicate input read) stays on the wire, as in real Hadoop.
  bool speculative_execution = false;
  double speculation_threshold = 1.5;
  double speculation_check_interval_s = 1.0;
  /// If false the scheduler ignores data locality (ablation knob).
  bool locality_scheduling = true;
  /// Delay-scheduling hold-out: how long a map request waits for a
  /// node-local slot before degrading to rack-local/off-switch.
  double locality_delay_s = 3.0;

  // ---- failure recovery ----
  /// Shuffle fetch retry backoff: a reducer that fails to fetch a map
  /// output waits min(initial * 2^n, cap) seconds before retry n+1
  /// (mapreduce.reduce.shuffle.retry analog).
  double fetch_retry_initial_s = 1.0;
  double fetch_retry_cap_s = 10.0;
  /// Fetch failures against one map output before the AM declares the map
  /// lost and reruns it (mapreduce.reduce.shuffle.maxfetchfailures analog).
  std::uint32_t fetch_failure_threshold = 3;
  /// Wait before retrying an HDFS block read whose source DataNode died
  /// mid-transfer (dfs.client retry window analog).
  double hdfs_read_retry_s = 3.0;

  // ---- control plane ----
  bool control_traffic = true;
  double nm_heartbeat_s = 1.0;     // NodeManager -> ResourceManager
  double dn_heartbeat_s = 3.0;     // DataNode -> NameNode
  double heartbeat_bytes = 800.0;  // serialized protobuf-ish payload

  /// Rate applied to same-host transfers (memory/IPC bound), bits/s.
  double loopback_bps = 40.0e9;

  std::size_t num_workers() const {
    return topology == TopologyKind::kFatTree ? fat_tree_k * fat_tree_k * fat_tree_k / 4
                                              : racks * hosts_per_rack;
  }

  /// Builds the fabric described by this config.
  net::Topology build_topology() const;
};

}  // namespace keddah::hadoop
