#include "hadoop/jobrunner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/log.h"
#include "util/strings.h"

namespace keddah::hadoop {

namespace {
constexpr double kMiB = 1024.0 * 1024.0;
}

/// Per-job mutable state shared by the event callbacks.
struct JobRunner::Execution {
  JobSpec spec;
  JobCallback on_complete;
  JobResult result;
  util::Rng rng;
  bool finished = false;

  /// One map task per input block, possibly spanning several files.
  struct Split {
    FileId file{0};
    std::size_t block_index = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<Split> splits;
  std::size_t num_maps = 0;
  std::size_t num_reducers = 0;

  /// Normalized partition weights over reducers (skew applied, order
  /// shuffled so reducer 0 is not systematically the hottest).
  std::vector<double> partition_weights;
  /// Seed for per-map partition jitter; keyed by map index so a rerun
  /// reproduces the exact partition sizes (the real partitioner is
  /// deterministic in the input).
  std::uint64_t partition_seed = 0;

  struct MapState {
    bool done = false;
    net::NodeId host = net::kInvalidNode;  // output location once done
    std::vector<double> partition_bytes;   // per reducer
    std::uint32_t attempts_started = 0;
    std::uint32_t pending_requests = 0;  // container requests not yet granted
    double first_attempt_start = 0.0;
    bool backup_launched = false;
    /// Fetch failures reported against this map's current output (the AM's
    /// per-map counter; crossing the threshold reruns the map).
    std::uint32_t fetch_failures = 0;
  };
  std::vector<MapState> maps;
  std::size_t completed_maps = 0;
  double map_runtime_sum = 0.0;
  std::size_t map_runtime_count = 0;
  bool reducers_requested = false;
  std::size_t map_outputs_written = 0;  // map-only jobs

  struct Attempt {
    std::size_t map_index = 0;
    net::NodeId node = net::kInvalidNode;
    bool valid = true;
    double start_time = 0.0;
  };
  std::unordered_map<std::uint64_t, Attempt> attempts;
  std::uint64_t next_attempt_id = 1;

  struct ReducerState {
    net::NodeId node = net::kInvalidNode;
    bool running = false;
    bool finished = false;
    std::uint32_t generation = 0;
    std::vector<bool> claimed;  // fetch launched, per map
    std::deque<std::size_t> pending;
    std::size_t inflight = 0;
    std::size_t fetched = 0;
    double shuffle_bytes = 0.0;
    /// Failed-fetch retries so far, per map (drives exponential backoff).
    std::vector<std::uint32_t> retry_counts;
  };
  std::vector<ReducerState> reducers;
  std::size_t reducers_done = 0;

  net::NodeId am_node = net::kInvalidNode;
  bool am_released = false;
  sim::EventId speculation_event = sim::kInvalidEvent;

  util::Rng task_rng() { return rng.split(); }

  bool attempt_valid(std::uint64_t id) const {
    const auto it = attempts.find(id);
    return it != attempts.end() && it->second.valid;
  }

  std::size_t valid_attempts_for(std::size_t map_index) const {
    std::size_t n = 0;
    // Order-insensitive count; iteration order cannot reach the result.
    // detlint:allow(unordered-iter)
    for (const auto& [id, att] : attempts) {
      (void)id;
      n += (att.valid && att.map_index == map_index);
    }
    return n;
  }
};

JobRunner::JobRunner(net::Network& network, HdfsCluster& hdfs, YarnScheduler& scheduler,
                     const ClusterConfig& config, util::Rng rng)
    : network_(network), hdfs_(hdfs), scheduler_(scheduler), config_(config), rng_(rng) {}

void JobRunner::log_event(double time, std::uint32_t job_id, TaskEvent::Kind kind,
                          net::NodeId node, std::uint32_t task_index) {
  if (history_ == nullptr) return;
  TaskEvent event;
  event.time = time;
  event.job_id = job_id;
  event.kind = kind;
  event.node = node;
  event.task_index = task_index;
  history_->add(event);
}

std::uint32_t JobRunner::submit(const JobSpec& spec, JobCallback on_complete) {
  auto exec = std::make_shared<Execution>();
  exec->spec = spec;
  exec->on_complete = std::move(on_complete);
  exec->rng = rng_.split();

  std::uint64_t total_input = 0;
  for (const auto& name : spec.all_inputs()) {
    const FileInfo& input = hdfs_.file_by_name(name);
    total_input += input.bytes;
    for (std::size_t b = 0; b < input.blocks.size(); ++b) {
      exec->splits.push_back(
          Execution::Split{input.id, b, input.blocks[b].bytes});
    }
  }
  exec->num_maps = exec->splits.size();
  if (exec->num_maps == 0) throw std::invalid_argument("jobrunner: empty job input");
  exec->num_reducers = spec.num_reducers;

  exec->result.job_id = next_job_id_++;
  exec->result.job_name = spec.profile.name;
  exec->result.submit_time = network_.simulator().now();
  exec->result.num_maps = exec->num_maps;
  exec->result.num_reducers = exec->num_reducers;
  exec->result.input_bytes = total_input;

  exec->maps.resize(exec->num_maps);
  exec->reducers.resize(exec->num_reducers);

  // Partition weights: Zipf-shaped over reducers, randomly permuted.
  if (exec->num_reducers > 0) {
    exec->partition_weights.resize(exec->num_reducers);
    double total = 0.0;
    for (std::size_t r = 0; r < exec->num_reducers; ++r) {
      exec->partition_weights[r] =
          1.0 / std::pow(static_cast<double>(r + 1), spec.profile.partition_skew);
      total += exec->partition_weights[r];
    }
    for (auto& w : exec->partition_weights) w /= total;
    exec->rng.shuffle(exec->partition_weights);
    exec->partition_seed = exec->rng.next();
  }

  ++running_;
  active_.push_back(exec);
  log_event(exec->result.submit_time, exec->result.job_id, TaskEvent::Kind::kJobSubmit);
  // Application master container first (it coordinates everything).
  scheduler_.request_container({}, [this, exec](net::NodeId node, LocalityLevel) {
    exec->am_node = node;
    start_map_phase(exec);
    if (config_.speculative_execution) {
      exec->speculation_event = network_.simulator().schedule_in(
          config_.speculation_check_interval_s, [this, exec] { check_speculation(exec); });
    }
  });
  return exec->result.job_id;
}

void JobRunner::start_map_phase(const ExecPtr& exec) {
  for (std::size_t m = 0; m < exec->num_maps; ++m) launch_map_attempt(exec, m);
}

void JobRunner::launch_map_attempt(const ExecPtr& exec, std::size_t map_index) {
  ++exec->maps[map_index].pending_requests;
  // Prefer the hosts holding this split's replicas (dead ones have no free
  // slots, so the scheduler skips them naturally).
  const auto& split = exec->splits[map_index];
  const auto& block = hdfs_.file(split.file).blocks[split.block_index];
  scheduler_.request_container(block.replicas,
                               [this, exec, map_index](net::NodeId node, LocalityLevel) {
                                 run_map_attempt(exec, map_index, node);
                               });
}

void JobRunner::run_map_attempt(const ExecPtr& exec, std::size_t map_index, net::NodeId node) {
  auto& ms = exec->maps[map_index];
  if (ms.pending_requests > 0) --ms.pending_requests;
  if (exec->finished || ms.done) {
    // The map resolved while this container request was queued.
    scheduler_.release_container(node);
    return;
  }
  const std::uint64_t attempt_id = exec->next_attempt_id++;
  exec->attempts[attempt_id] =
      Execution::Attempt{map_index, node, true, network_.simulator().now()};
  log_event(network_.simulator().now(), exec->result.job_id, TaskEvent::Kind::kMapStart, node,
            static_cast<std::uint32_t>(map_index));
  const auto& split = exec->splits[map_index];
  if (++ms.attempts_started == 1) {
    ms.first_attempt_start = network_.simulator().now();
    if (hdfs_.is_local(split.file, split.block_index, node)) {
      ++exec->result.maps_with_local_read;
    }
  }

  util::Rng task_rng = exec->task_rng();
  const double startup = config_.task_startup_s * std::exp(task_rng.normal(0.0, 0.3));
  const bool straggles = task_rng.chance(config_.straggler_fraction);

  network_.simulator().schedule_in(
      startup, [this, exec, map_index, node, attempt_id, straggles, task_rng]() mutable {
        if (!exec->attempt_valid(attempt_id)) return;  // node died during startup
        // Read the split: loopback when a replica is local, an HDFS-read
        // flow otherwise.
        hdfs_.read_block(
            exec->splits[map_index].file, exec->splits[map_index].block_index, node,
            exec->result.job_id,
            [this, exec, map_index, node, attempt_id, straggles, task_rng]() mutable {
              if (!exec->attempt_valid(attempt_id)) return;
              const double input_mb = static_cast<double>(exec->splits[map_index].bytes) / kMiB;
              double compute = exec->spec.profile.map_cpu_s_per_mb * input_mb *
                               std::exp(task_rng.normal(0.0, config_.task_noise_sigma));
              if (straggles) compute *= config_.straggler_slowdown;
              compute *= node_slowdown(node);
              network_.simulator().schedule_in(
                  std::max(compute, 0.01),
                  [this, exec, attempt_id] { on_map_attempt_complete(exec, attempt_id); });
            });
      });
}

void JobRunner::on_map_attempt_complete(const ExecPtr& exec, std::uint64_t attempt_id) {
  const auto it = exec->attempts.find(attempt_id);
  if (it == exec->attempts.end() || !it->second.valid) {
    // Killed by a node failure: the container died with the node.
    if (it != exec->attempts.end()) exec->attempts.erase(it);
    return;
  }
  const Execution::Attempt attempt = it->second;
  exec->attempts.erase(it);
  log_event(network_.simulator().now(), exec->result.job_id, TaskEvent::Kind::kMapFinish,
            attempt.node, static_cast<std::uint32_t>(attempt.map_index));

  auto& ms = exec->maps[attempt.map_index];
  if (exec->finished || ms.done) {
    // Lost the speculation race (or the job is over): discard the output.
    scheduler_.release_container(attempt.node);
    return;
  }
  exec->map_runtime_sum += network_.simulator().now() - attempt.start_time;
  ++exec->map_runtime_count;
  scheduler_.release_container(attempt.node);
  on_map_output_ready(exec, attempt.map_index, attempt.node);
}

void JobRunner::on_map_output_ready(const ExecPtr& exec, std::size_t map_index,
                                    net::NodeId node) {
  auto& ms = exec->maps[map_index];
  ms.done = true;
  ms.host = node;
  const double out_bytes =
      exec->spec.profile.map_selectivity * static_cast<double>(exec->splits[map_index].bytes);
  exec->result.map_output_bytes += static_cast<std::uint64_t>(out_bytes);
  ++exec->completed_maps;
  exec->result.map_phase_end = network_.simulator().now();

  if (exec->num_reducers == 0) {
    // Map-only job: each map writes its own output part with replication.
    const std::string part = util::format("job%u_m%zu_a%u_out", exec->result.job_id, map_index,
                                          ms.attempts_started);
    hdfs_.write_file(part, static_cast<std::uint64_t>(out_bytes), node, exec->result.job_id,
                     [this, exec, out_bytes, part] {
                       exec->result.output_bytes += static_cast<std::uint64_t>(out_bytes);
                       exec->result.output_files.push_back(part);
                       if (++exec->map_outputs_written == exec->num_maps) finish_job(exec);
                     });
    return;
  }

  // Partition the map output across reducers with per-map jitter that is
  // deterministic in the map index (reruns reproduce identical partitions).
  util::Rng jitter(exec->partition_seed ^ (0x9e3779b97f4a7c15ULL * (map_index + 1)));
  ms.partition_bytes.assign(exec->num_reducers, 0.0);
  std::vector<double> w(exec->num_reducers);
  double total_w = 0.0;
  for (std::size_t r = 0; r < exec->num_reducers; ++r) {
    w[r] = exec->partition_weights[r] * std::exp(jitter.normal(0.0, 0.05));
    total_w += w[r];
  }
  for (std::size_t r = 0; r < exec->num_reducers; ++r) {
    ms.partition_bytes[r] = out_bytes * w[r] / total_w;
  }

  maybe_launch_reducers(exec);
  // Running reducers can now fetch this map's output.
  for (std::size_t r = 0; r < exec->num_reducers; ++r) {
    auto& red = exec->reducers[r];
    if (red.running && !red.claimed[map_index]) {
      red.pending.push_back(map_index);
      pump_fetches(exec, r);
    }
  }
}

void JobRunner::maybe_launch_reducers(const ExecPtr& exec) {
  if (exec->reducers_requested || exec->num_reducers == 0) return;
  const auto threshold = static_cast<std::size_t>(
      std::ceil(config_.slowstart * static_cast<double>(exec->num_maps)));
  if (exec->completed_maps < std::max<std::size_t>(threshold, 1)) return;
  exec->reducers_requested = true;
  for (std::size_t r = 0; r < exec->num_reducers; ++r) {
    request_reducer(exec, r, exec->reducers[r].generation);
  }
}

void JobRunner::request_reducer(const ExecPtr& exec, std::size_t reducer_index,
                                std::uint32_t expected_generation) {
  scheduler_.request_container(
      {}, [this, exec, reducer_index, expected_generation](net::NodeId node, LocalityLevel) {
        start_reducer(exec, reducer_index, node, expected_generation);
      });
}

void JobRunner::start_reducer(const ExecPtr& exec, std::size_t reducer_index, net::NodeId node,
                              std::uint32_t expected_generation) {
  auto& red = exec->reducers[reducer_index];
  if (exec->finished || red.generation != expected_generation || red.finished) {
    // Stale grant (the reducer restarted again, or the job is done).
    scheduler_.release_container(node);
    return;
  }
  red.node = node;
  util::Rng task_rng = exec->task_rng();
  const double startup = config_.task_startup_s * std::exp(task_rng.normal(0.0, 0.3));
  network_.simulator().schedule_in(
      startup, [this, exec, reducer_index, expected_generation] {
        auto& r = exec->reducers[reducer_index];
        if (exec->finished || r.generation != expected_generation || r.finished) return;
        r.running = true;
        log_event(network_.simulator().now(), exec->result.job_id,
                  TaskEvent::Kind::kReduceStart, r.node,
                  static_cast<std::uint32_t>(reducer_index));
        r.claimed.assign(exec->num_maps, false);
        r.retry_counts.assign(exec->num_maps, 0);
        r.pending.clear();
        for (std::size_t m = 0; m < exec->num_maps; ++m) {
          if (exec->maps[m].done) r.pending.push_back(m);
        }
        pump_fetches(exec, reducer_index);
      });
}

void JobRunner::pump_fetches(const ExecPtr& exec, std::size_t reducer_index) {
  auto& red = exec->reducers[reducer_index];
  while (red.inflight < config_.shuffle_parallel_copies && !red.pending.empty()) {
    const std::size_t map_index = red.pending.front();
    red.pending.pop_front();
    if (red.claimed[map_index] || !exec->maps[map_index].done) continue;
    red.claimed[map_index] = true;
    ++red.inflight;
    const auto& ms = exec->maps[map_index];
    const double payload = ms.partition_bytes[reducer_index];
    // Wire bytes shrink under map-output compression; the reducer still
    // accounts the logical payload for merge cost and output sizing.
    const double wire_bytes =
        payload * config_.map_output_compress_ratio + config_.shuffle_http_overhead_bytes;
    if (exec->result.shuffle_start == 0.0) {
      exec->result.shuffle_start = network_.simulator().now();
    }
    net::FlowMeta meta;
    meta.src_port = net::ports::kShuffle;  // ShuffleHandler serves the data
    meta.dst_port = net::ports::kEphemeralBase;
    meta.job_id = exec->result.job_id;
    meta.kind = net::FlowKind::kShuffle;
    const std::uint32_t generation = red.generation;
    network_.start_flow(
        ms.host, red.node, util::Bytes(wire_bytes), meta,
        [this, exec, reducer_index, map_index, generation, payload](const net::Flow& flow) {
          auto& r = exec->reducers[reducer_index];
          if (exec->finished || r.generation != generation) return;  // stale fetch
          if (flow.aborted) {
            // The reducer's own death is handled wholesale by its restart;
            // a dead/failed source is a fetch failure.
            if (!network_.node_up(r.node)) return;
            on_fetch_failed(exec, reducer_index, map_index);
            return;
          }
          --r.inflight;
          ++r.fetched;
          r.shuffle_bytes += payload;
          exec->result.shuffle_end = network_.simulator().now();
          if (r.fetched == exec->num_maps) {
            finish_reducer_shuffle(exec, reducer_index);
          } else {
            pump_fetches(exec, reducer_index);
          }
        },
        util::Rate::bps(config_.disk_read_bps));
  }
}

void JobRunner::on_fetch_failed(const ExecPtr& exec, std::size_t reducer_index,
                                std::size_t map_index) {
  auto& red = exec->reducers[reducer_index];
  auto& ms = exec->maps[map_index];
  red.claimed[map_index] = false;  // the whole map output must be refetched
  if (red.inflight > 0) --red.inflight;

  if (!ms.done) {
    // The map is already being rerun (another reducer crossed the
    // threshold, or the host failed permanently); its fresh output will be
    // re-announced to every unclaimed reducer.
    pump_fetches(exec, reducer_index);
    return;
  }

  if (++ms.fetch_failures >= config_.fetch_failure_threshold) {
    // The AM declares this map output lost and reruns the map, as real
    // MapReduce does past mapreduce.reduce.shuffle.maxfetchfailures.
    ms.fetch_failures = 0;
    ms.done = false;
    ms.host = net::kInvalidNode;
    --exec->completed_maps;
    ++fetch_failure_reruns_;
    ++exec->result.fetch_failure_reruns;
    ++map_reruns_;
    ++exec->result.map_reruns;
    KLOG_DEBUG << "job " << exec->result.job_id << ": fetch failures exhausted, rerunning map "
               << map_index;
    launch_map_attempt(exec, map_index);
    pump_fetches(exec, reducer_index);
    return;
  }

  // Capped exponential backoff, then requeue the fetch.
  const std::uint32_t tries = red.retry_counts[map_index]++;
  const double backoff = std::min(config_.fetch_retry_initial_s * std::pow(2.0, tries),
                                  config_.fetch_retry_cap_s);
  ++fetch_retries_;
  ++exec->result.fetch_retries;
  fetch_backoff_s_ += backoff;
  exec->result.fetch_backoff_s += backoff;
  const std::uint32_t generation = red.generation;
  network_.simulator().schedule_in(backoff, [this, exec, reducer_index, map_index, generation] {
    auto& r = exec->reducers[reducer_index];
    if (exec->finished || r.generation != generation || r.finished) return;
    r.pending.push_back(map_index);
    pump_fetches(exec, reducer_index);
  });
  pump_fetches(exec, reducer_index);  // the freed slot can serve other maps
}

void JobRunner::finish_reducer_shuffle(const ExecPtr& exec, std::size_t reducer_index) {
  auto& red = exec->reducers[reducer_index];
  const std::uint32_t generation = red.generation;
  util::Rng task_rng = exec->task_rng();
  const double shuffle_mb = red.shuffle_bytes / kMiB;
  const double compute = exec->spec.profile.reduce_cpu_s_per_mb * shuffle_mb *
                         std::exp(task_rng.normal(0.0, config_.task_noise_sigma)) *
                         node_slowdown(red.node);
  network_.simulator().schedule_in(
      std::max(compute, 0.01), [this, exec, reducer_index, generation] {
        auto& r = exec->reducers[reducer_index];
        if (exec->finished || r.generation != generation || r.finished) return;
        const double out_bytes = exec->spec.profile.reduce_selectivity * r.shuffle_bytes;
        const std::string part = util::format("job%u_r%zu_g%u_out", exec->result.job_id,
                                              reducer_index, generation);
        hdfs_.write_file(
            part, static_cast<std::uint64_t>(out_bytes), r.node, exec->result.job_id,
            [this, exec, reducer_index, generation, out_bytes, part] {
              auto& rr = exec->reducers[reducer_index];
              if (exec->finished || rr.generation != generation || rr.finished) return;
              rr.finished = true;
              exec->result.output_bytes += static_cast<std::uint64_t>(out_bytes);
              exec->result.output_files.push_back(part);
              log_event(network_.simulator().now(), exec->result.job_id,
                        TaskEvent::Kind::kReduceFinish, rr.node,
                        static_cast<std::uint32_t>(reducer_index));
              scheduler_.release_container(rr.node);
              if (++exec->reducers_done == exec->num_reducers) finish_job(exec);
            });
      });
}

void JobRunner::check_speculation(const ExecPtr& exec) {
  exec->speculation_event = sim::kInvalidEvent;
  if (exec->finished || exec->completed_maps == exec->num_maps) return;
  if (exec->map_runtime_count > 0) {
    const double mean = exec->map_runtime_sum / static_cast<double>(exec->map_runtime_count);
    const double now = network_.simulator().now();
    for (std::size_t m = 0; m < exec->num_maps; ++m) {
      auto& ms = exec->maps[m];
      if (ms.done || ms.backup_launched || ms.attempts_started != 1) continue;
      if (now - ms.first_attempt_start > config_.speculation_threshold * mean) {
        ms.backup_launched = true;
        ++speculative_attempts_;
        KLOG_DEBUG << "job " << exec->result.job_id << ": speculating map " << m;
        launch_map_attempt(exec, m);
      }
    }
  }
  exec->speculation_event = network_.simulator().schedule_in(
      config_.speculation_check_interval_s, [this, exec] { check_speculation(exec); });
}

void JobRunner::handle_node_failure(net::NodeId node) {
  handle_node_event(node, /*outputs_lost=*/true);
}

void JobRunner::handle_node_outage(net::NodeId node) {
  // Outputs stay on the host's disk across an NM restart; the fetch-retry
  // and threshold machinery decides whether they are ever declared lost.
  handle_node_event(node, /*outputs_lost=*/false);
}

void JobRunner::handle_node_event(net::NodeId node, bool outputs_lost) {
  for (const auto& weak : active_) {
    const ExecPtr exec = weak.lock();
    if (!exec || exec->finished) continue;

    // Kill attempts running on the node. Erasing makes every in-flight
    // continuation of the attempt (startup, read, compute) a no-op via
    // attempt_valid(). Visit order is invisible: the erase set depends only
    // on the node match. detlint:allow(unordered-iter)
    for (auto it = exec->attempts.begin(); it != exec->attempts.end();) {
      if (it->second.node == node) {
        it = exec->attempts.erase(it);
        ++failed_attempts_;
      } else {
        ++it;
      }
    }
    // Rerun maps with no remaining live attempt or pending request.
    for (std::size_t m = 0; m < exec->num_maps; ++m) {
      auto& ms = exec->maps[m];
      if (ms.done || ms.pending_requests > 0) continue;
      if (exec->valid_attempts_for(m) == 0 && ms.attempts_started > 0) {
        ++map_reruns_;
        ++exec->result.map_reruns;
        launch_map_attempt(exec, m);
      }
    }
    // Lost map outputs: any completed map hosted on the dead node must be
    // rerun while the shuffle still needs it (fetch failures in real
    // Hadoop trigger exactly this).
    if (outputs_lost && exec->num_reducers > 0 && exec->reducers_done < exec->num_reducers) {
      for (std::size_t m = 0; m < exec->num_maps; ++m) {
        auto& ms = exec->maps[m];
        if (!ms.done || ms.host != node) continue;
        ms.done = false;
        ms.host = net::kInvalidNode;
        ms.fetch_failures = 0;
        --exec->completed_maps;
        ++map_reruns_;
        ++exec->result.map_reruns;
        launch_map_attempt(exec, m);
      }
    }
    // Restart reducers running on the node: their fetched data is gone.
    for (std::size_t r = 0; r < exec->num_reducers; ++r) {
      auto& red = exec->reducers[r];
      if (red.finished || red.node != node) continue;
      if (!exec->reducers_requested) continue;
      ++red.generation;
      red.running = false;
      red.node = net::kInvalidNode;
      red.inflight = 0;
      red.fetched = 0;
      red.shuffle_bytes = 0.0;
      red.pending.clear();
      ++reducer_restarts_;
      ++exec->result.reducer_restarts;
      request_reducer(exec, r, red.generation);
    }
    // Note: the ApplicationMaster is treated as RM-side state; failing its
    // host does not abort the job (real YARN would restart the AM attempt,
    // converging to the same traffic modulo a restart burst).
  }
  // Prune dead executions.
  std::erase_if(active_, [](const std::weak_ptr<Execution>& w) { return w.expired(); });
}

void JobRunner::set_node_slowdown(net::NodeId node, double factor) {
  if (factor <= 1.0) {
    slowdown_.erase(node);
  } else {
    slowdown_[node] = factor;
  }
}

double JobRunner::node_slowdown(net::NodeId node) const {
  const auto it = slowdown_.find(node);
  return it == slowdown_.end() ? 1.0 : it->second;
}

void JobRunner::finish_job(const ExecPtr& exec) {
  exec->finished = true;
  if (exec->speculation_event != sim::kInvalidEvent) {
    network_.simulator().cancel(exec->speculation_event);
    exec->speculation_event = sim::kInvalidEvent;
  }
  // Kill any straggling speculative attempts' bookkeeping so their
  // completions become no-ops (their containers are still released by the
  // completion path via the ms.done guard).
  if (!exec->am_released) {
    exec->am_released = true;
    scheduler_.release_container(exec->am_node);
  }
  exec->result.end_time = network_.simulator().now();
  exec->result.pipeline_rebuilds = hdfs_.pipeline_rebuilds(exec->result.job_id);
  log_event(exec->result.end_time, exec->result.job_id, TaskEvent::Kind::kJobFinish);
  --running_;
  if (exec->on_complete) exec->on_complete(exec->result);
}

}  // namespace keddah::hadoop
