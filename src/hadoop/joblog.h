// Job history log: the timeline the MapReduce framework writes about task
// placement and lifetime. Keddah's capture stage correlates pcap flows with
// these logs to attribute traffic to jobs; we emit the same events from the
// emulator so that correlation (capture/attribution.h) can be exercised and
// scored against ground truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/topology.h"
#include "util/csv.h"

namespace keddah::hadoop {

/// One job-history event.
struct TaskEvent {
  enum class Kind : std::uint8_t {
    kJobSubmit = 0,
    kJobFinish = 1,
    kMapStart = 2,
    kMapFinish = 3,
    kReduceStart = 4,
    kReduceFinish = 5,
  };

  double time = 0.0;
  std::uint32_t job_id = 0;
  Kind kind = Kind::kJobSubmit;
  /// Host the task ran on (kInvalidNode for job-level events).
  net::NodeId node = net::kInvalidNode;
  /// Task index within the job (map or reduce ordinal; 0 for job events).
  std::uint32_t task_index = 0;
};

/// Stable event-kind name used in CSV ("job_submit", "map_start", ...).
const char* task_event_kind_name(TaskEvent::Kind kind);

/// An append-only job history, queryable by job and time.
class JobHistoryLog {
 public:
  void add(TaskEvent event) { events_.push_back(event); }

  const std::vector<TaskEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Events of one job, in record order.
  std::vector<TaskEvent> for_job(std::uint32_t job_id) const;

  /// Job ids present, sorted.
  std::vector<std::uint32_t> job_ids() const;

  /// [submit, finish] window of a job; returns false when unknown.
  bool job_window(std::uint32_t job_id, double* start, double* end) const;

  /// True if job `job_id` had a task (map or reduce) running on `node` at
  /// time `t` (interval [task start, task finish], with `slack_s` padding
  /// on both sides — real logs and captures have clock skew).
  bool task_active_on(std::uint32_t job_id, net::NodeId node, double t,
                      double slack_s = 0.5) const;

  /// CSV persistence (columns: time, job_id, kind, node, task_index).
  util::CsvTable to_csv() const;
  static JobHistoryLog from_csv(const util::CsvTable& table);
  void save(const std::string& path) const;
  static JobHistoryLog load(const std::string& path);

 private:
  std::vector<TaskEvent> events_;
};

}  // namespace keddah::hadoop
