// JSON ⇄ ClusterConfig: the one "cluster" object schema shared by scenario
// files (src/keddah/scenario.h), the versioned Spec API (src/api/specs.h),
// and the serve daemon's request bodies. Parse errors name the source
// document and the JSON key path of the offending field, keddah-lint style.
#pragma once

#include <string>

#include "hadoop/config.h"
#include "hadoop/faults.h"
#include "util/json.h"

namespace keddah::hadoop {

/// Stable topology-kind name ("star", "racktree", "fattree").
const char* topology_kind_name(TopologyKind kind);

/// Inverse of topology_kind_name; throws std::invalid_argument on unknown
/// names.
TopologyKind topology_kind_from_name(const std::string& name);

/// The defaults a scenario-style document assumes when the "cluster" object
/// (or one of its fields) is absent: the paper-era testbed with 4
/// containers/node and a 2 s delay-scheduling hold-out.
ClusterConfig default_scenario_cluster();

/// Parses a scenario-style "cluster" object on top of
/// default_scenario_cluster(). Errors read "<context>: <key>.<field>: ...",
/// where `context` names the source document and `key` the object's path
/// within it.
ClusterConfig parse_cluster_config(const util::Json& cluster, const std::string& context,
                                   const std::string& key = "cluster");

/// Serializes the scenario-schema fields of a config. Round-trips through
/// parse_cluster_config.
util::Json cluster_config_to_json(const ClusterConfig& cfg);

/// Serializes a fault plan as the scenario-schema "faults" array; inverse of
/// parse_fault_plan.
util::Json fault_plan_to_json(const FaultPlan& plan);

}  // namespace keddah::hadoop
