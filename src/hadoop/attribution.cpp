#include "hadoop/attribution.h"

#include <algorithm>

namespace keddah::hadoop {

AttributionResult attribute_flows(const capture::Trace& trace, const JobHistoryLog& log,
                                  AttributionOptions options) {
  AttributionResult result;
  result.assigned.assign(trace.size(), 0);

  // Precompute job windows once.
  struct Window {
    std::uint32_t job;
    double start;
    double end;
  };
  std::vector<Window> windows;
  for (const auto job : log.job_ids()) {
    double start = 0.0;
    double end = 0.0;
    if (log.job_window(job, &start, &end)) windows.push_back(Window{job, start, end});
  }

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& record = trace[i];
    if (record.job_id != 0) ++result.job_flows;
    if (capture::classify_by_ports(record) == net::FlowKind::kControl) continue;

    std::uint32_t best_job = 0;
    int best_score = 0;
    std::size_t covering = 0;
    std::uint32_t sole_cover = 0;
    for (const auto& w : windows) {
      if (record.start < w.start - options.slack_s || record.start > w.end + options.slack_s) {
        continue;
      }
      ++covering;
      sole_cover = w.job;
      // Endpoint evidence: did this job have a task on the flow's source
      // or destination when the flow started?
      int score = 1;  // inside the window at all
      if (log.task_active_on(w.job, record.src_id, record.start, options.slack_s)) score += 2;
      if (log.task_active_on(w.job, record.dst_id, record.start, options.slack_s)) score += 2;
      if (score > best_score) {
        best_score = score;
        best_job = w.job;
      } else if (score == best_score && best_job != 0 && w.job < best_job) {
        best_job = w.job;  // deterministic tie-break
      }
    }
    // Claim a flow on endpoint evidence; failing that, on an unambiguous
    // window (replication-pipeline tail stages run DataNode-to-DataNode,
    // away from any task host — only the job window can claim those).
    std::uint32_t assignment = 0;
    if (best_score >= 3) {
      assignment = best_job;
    } else if (covering == 1) {
      assignment = sole_cover;
    }
    if (assignment != 0) {
      result.assigned[i] = assignment;
      ++result.attributed;
      if (assignment == record.job_id) ++result.correct;
    }
  }
  return result;
}

}  // namespace keddah::hadoop
