#include "hadoop/yarn.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace keddah::hadoop {

YarnScheduler::YarnScheduler(sim::Simulator& sim, const net::Topology& topology,
                             std::vector<net::NodeId> nodes, std::size_t containers_per_node,
                             bool locality, double locality_delay_s)
    : sim_(sim),
      topology_(topology),
      nodes_(std::move(nodes)),
      locality_(locality),
      locality_delay_s_(locality_delay_s) {
  if (nodes_.empty() || containers_per_node == 0) {
    throw std::invalid_argument("yarn: need nodes and slots");
  }
  containers_per_node_ = containers_per_node;
  for (const auto n : nodes_) free_[n] = containers_per_node;
  total_slots_ = free_slots_ = nodes_.size() * containers_per_node;
}

std::size_t YarnScheduler::free_slots_on(net::NodeId node) const {
  const auto it = free_.find(node);
  return it == free_.end() ? 0 : it->second;
}

std::size_t YarnScheduler::rack_miss_threshold() const {
  if (locality_delay_s_ <= 0.0) return 0;
  return static_cast<std::size_t>(std::ceil(locality_delay_s_ / opportunity_interval_s_));
}

void YarnScheduler::request_container(std::vector<net::NodeId> preferred, Grant grant) {
  if (!grant) throw std::invalid_argument("yarn: null grant callback");
  queue_.push_back(Request{std::move(preferred), std::move(grant)});
  pump();
}

void YarnScheduler::release_container(net::NodeId node) {
  if (down_.count(node) != 0) return;  // the container died with the node
  const auto it = free_.find(node);
  if (it == free_.end()) throw std::invalid_argument("yarn: release on unknown node");
  ++it->second;
  ++free_slots_;
  pump();
}

void YarnScheduler::mark_node_down(net::NodeId node) {
  const auto it = free_.find(node);
  if (it == free_.end()) {
    if (down_.count(node) != 0) return;  // already down
    throw std::invalid_argument("yarn: unknown node");
  }
  // Lost capacity = its free slots (from the free pool) plus its whole
  // quota (from total capacity, covering containers running on it).
  free_slots_ -= it->second;
  total_slots_ -= containers_per_node_;
  free_.erase(it);
  down_.insert(node);
  pump();
}

void YarnScheduler::mark_node_up(net::NodeId node) {
  if (down_.count(node) == 0) {
    if (free_.count(node) != 0) return;  // already up
    throw std::invalid_argument("yarn: unknown node");
  }
  down_.erase(node);
  free_[node] = containers_per_node_;
  free_slots_ += containers_per_node_;
  total_slots_ += containers_per_node_;
  pump();
}

bool YarnScheduler::node_up(net::NodeId node) const { return down_.count(node) == 0; }

net::NodeId YarnScheduler::most_free_node() const {
  net::NodeId best = net::kInvalidNode;
  std::size_t best_free = 0;
  for (const auto n : nodes_) {
    const std::size_t f = free_slots_on(n);
    if (f > best_free) {
      best = n;
      best_free = f;
    }
  }
  return best;
}

net::NodeId YarnScheduler::choose_node(const Request& request, LocalityLevel* level) const {
  if (free_slots_ == 0) return net::kInvalidNode;
  if (!locality_ || request.preferred.empty()) {
    *level = LocalityLevel::kOffSwitch;
    return most_free_node();
  }
  // Node-local: a preferred node with a free slot.
  for (const auto n : request.preferred) {
    if (free_slots_on(n) > 0) {
      *level = LocalityLevel::kNodeLocal;
      return n;
    }
  }
  // Delay scheduling: hold out through the first threshold of missed
  // opportunities, then accept rack-local; after twice that, anything.
  const std::size_t rack_threshold = rack_miss_threshold();
  if (request.missed_opportunities < rack_threshold) return net::kInvalidNode;
  net::NodeId best = net::kInvalidNode;
  std::size_t best_free = 0;
  for (const auto n : nodes_) {
    const std::size_t f = free_slots_on(n);
    if (f == 0) continue;
    const bool rack_ok =
        std::any_of(request.preferred.begin(), request.preferred.end(),
                    [&](net::NodeId p) { return topology_.same_rack(n, p); });
    if (rack_ok && f > best_free) {
      best = n;
      best_free = f;
    }
  }
  if (best != net::kInvalidNode) {
    *level = LocalityLevel::kRackLocal;
    return best;
  }
  if (request.missed_opportunities < 2 * rack_threshold) return net::kInvalidNode;
  *level = LocalityLevel::kOffSwitch;
  return most_free_node();
}

void YarnScheduler::pump() {
  bool any_starved = false;
  for (auto it = queue_.begin(); it != queue_.end() && free_slots_ > 0;) {
    LocalityLevel level = LocalityLevel::kOffSwitch;
    const net::NodeId node = choose_node(*it, &level);
    if (node == net::kInvalidNode) {
      // The cluster had capacity but this request declined it: a missed
      // scheduling opportunity, charged at most once per heartbeat
      // interval so the counter tracks starved *time*, not pump frequency.
      if (sim_.now() - it->last_miss_time >= opportunity_interval_s_ - 1e-9) {
        ++it->missed_opportunities;
        it->last_miss_time = sim_.now();
      }
      any_starved = true;
      ++it;
      continue;
    }
    --free_[node];
    --free_slots_;
    // Locality statistics only make sense for requests that expressed a
    // preference (map tasks); AM/reducer requests are placement-free.
    if (!it->preferred.empty()) {
      switch (level) {
        case LocalityLevel::kNodeLocal:
          ++stats_.granted_node_local;
          break;
        case LocalityLevel::kRackLocal:
          ++stats_.granted_rack_local;
          break;
        case LocalityLevel::kOffSwitch:
          ++stats_.granted_off_switch;
          break;
      }
    }
    // Deliver asynchronously so callers never re-enter the scheduler from
    // inside request_container()/release_container().
    sim_.schedule_in(0.0, [grant = std::move(it->grant), node, level] { grant(node, level); });
    it = queue_.erase(it);
  }
  // Starved hold-outs get a fresh opportunity at the next heartbeat tick;
  // one pending tick serves the whole queue.
  if (any_starved && !opportunity_scheduled_) {
    opportunity_scheduled_ = true;
    sim_.schedule_in(opportunity_interval_s_, [this] {
      opportunity_scheduled_ = false;
      pump();
    });
  }
}

}  // namespace keddah::hadoop
