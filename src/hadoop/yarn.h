// YARN-style container scheduler with delay scheduling for data locality.
//
// Requests may carry preferred nodes (the hosts holding the task's input
// replicas). A request is granted node-local immediately when possible;
// otherwise it accumulates *missed scheduling opportunities* — moments when
// the cluster had a free slot somewhere but not on a preferred node — and
// degrades to rack-local after ~locality_delay_s worth of misses, then to
// off-switch after twice that (the YARN CapacityScheduler's
// node-locality-delay mechanism). Crucially, time spent in a full cluster
// does NOT count against the hold-out: a map queued behind a busy wave
// still gets a fair shot at locality when slots churn. Requests without
// preferences (AM, reducers) are granted on any free node at once.
//
// Grant order is FIFO among immediately-grantable requests, but a request
// holding out for locality does not block later requests (no head-of-line
// blocking).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/topology.h"
#include "sim/simulator.h"

namespace keddah::hadoop {

/// Locality level of a granted container.
enum class LocalityLevel { kNodeLocal, kRackLocal, kOffSwitch };

/// Scheduler counters (for tests and the locality ablation bench).
struct SchedulerStats {
  std::uint64_t granted_node_local = 0;
  std::uint64_t granted_rack_local = 0;
  std::uint64_t granted_off_switch = 0;
  std::uint64_t total() const {
    return granted_node_local + granted_rack_local + granted_off_switch;
  }
};

/// The ResourceManager of the emulated cluster.
///
/// Grants are delivered asynchronously through the simulator (zero-delay
/// events), so callers never observe re-entrant callbacks.
class YarnScheduler {
 public:
  /// Called when a container is granted, with the chosen node and the
  /// locality level achieved.
  using Grant = std::function<void(net::NodeId, LocalityLevel)>;

  /// `nodes` are NodeManager hosts, each with `containers_per_node` slots.
  /// When `locality` is false, preferences are ignored (ablation mode).
  /// `locality_delay_s` is how long a preferenced request waits for a
  /// node-local slot before degrading.
  YarnScheduler(sim::Simulator& sim, const net::Topology& topology,
                std::vector<net::NodeId> nodes, std::size_t containers_per_node,
                bool locality = true, double locality_delay_s = 3.0);

  YarnScheduler(const YarnScheduler&) = delete;
  YarnScheduler& operator=(const YarnScheduler&) = delete;

  /// Requests one container. `preferred` may be empty (any node).
  void request_container(std::vector<net::NodeId> preferred, Grant grant);

  /// Returns a container on `node` to the pool and pumps the queue.
  /// Releases on a downed node are ignored (the container died with it).
  void release_container(net::NodeId node);

  /// Takes a NodeManager out of service: its free slots disappear and its
  /// running containers are lost. Idempotent.
  void mark_node_down(net::NodeId node);

  /// Returns a recovered NodeManager to service with a full (empty) slot
  /// quota — its previous containers were lost with the outage. Idempotent;
  /// throws on a node that was never part of the cluster.
  void mark_node_up(net::NodeId node);

  /// True if the node is still in service.
  bool node_up(net::NodeId node) const;

  std::size_t total_slots() const { return total_slots_; }
  std::size_t free_slots() const { return free_slots_; }
  std::size_t free_slots_on(net::NodeId node) const;
  std::size_t queued_requests() const { return queue_.size(); }
  const SchedulerStats& stats() const { return stats_; }

 private:
  struct Request {
    std::vector<net::NodeId> preferred;
    Grant grant;
    /// Scheduling opportunities this request declined while holding out
    /// for a node-local slot. Charged at most once per opportunity
    /// interval, so this counts seconds of starved-by-choice time.
    std::size_t missed_opportunities = 0;
    /// Last time a miss was charged (rate-limits the counter).
    double last_miss_time = -1.0e300;
  };

  /// Grants every currently grantable request; charges missed
  /// opportunities to requests that declined available capacity.
  void pump();

  /// Picks a node for the request; kInvalidNode when the request must wait
  /// (either for a slot or for its locality hold-out to run down).
  net::NodeId choose_node(const Request& request, LocalityLevel* level) const;

  /// Most-free node with capacity; kInvalidNode when the cluster is full.
  net::NodeId most_free_node() const;

  /// Misses after which a request accepts rack-local placement.
  std::size_t rack_miss_threshold() const;

  sim::Simulator& sim_;
  const net::Topology& topology_;
  std::vector<net::NodeId> nodes_;
  std::unordered_map<net::NodeId, std::size_t> free_;
  std::unordered_set<net::NodeId> down_;
  std::deque<Request> queue_;
  std::size_t total_slots_ = 0;
  std::size_t free_slots_ = 0;
  std::size_t containers_per_node_ = 0;
  bool locality_;
  double locality_delay_s_;
  /// How often a fresh scheduling opportunity is offered to starved
  /// requests (models the NodeManager heartbeat cadence).
  double opportunity_interval_s_ = 1.0;
  bool opportunity_scheduled_ = false;
  SchedulerStats stats_;
};

}  // namespace keddah::hadoop
