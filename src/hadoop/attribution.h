// Flow-to-job attribution from job-history logs — the paper's method for
// labelling pcap flows with the job that caused them: a flow belongs to a
// job if it falls inside the job's window and the job had tasks on the
// flow's endpoints at that moment.
//
// Our captured flows carry the true job id (stamped by the emulator), which
// the attributor deliberately ignores; it is used only to score accuracy.
#pragma once

#include <cstdint>
#include <vector>

#include "capture/trace.h"
#include "hadoop/joblog.h"

namespace keddah::hadoop {

/// Outcome of attributing one trace against one history log.
struct AttributionResult {
  /// Per-record job assignment (0 = background/unattributed), parallel to
  /// the trace's records.
  std::vector<std::uint32_t> assigned;
  /// Records attributed to some job.
  std::size_t attributed = 0;
  /// Attributed records whose assignment matches the ground truth.
  std::size_t correct = 0;
  /// Records whose ground truth is a job (job_id != 0).
  std::size_t job_flows = 0;

  /// Fraction of job flows attributed to the right job.
  double recall() const {
    return job_flows == 0 ? 1.0 : static_cast<double>(correct) / static_cast<double>(job_flows);
  }
  /// Fraction of attributions that are correct.
  double precision() const {
    return attributed == 0 ? 1.0
                           : static_cast<double>(correct) / static_cast<double>(attributed);
  }
};

/// Attribution options.
struct AttributionOptions {
  /// Clock slack applied to task intervals and job windows, seconds.
  double slack_s = 0.5;
};

/// Attributes every flow of `trace` to a job using only timing/placement
/// information from `log` (never the records' own job_id). Flows that
/// classify as control are left unattributed (they belong to the cluster,
/// not a job).
AttributionResult attribute_flows(const capture::Trace& trace, const JobHistoryLog& log,
                                  AttributionOptions options = {});

}  // namespace keddah::hadoop
