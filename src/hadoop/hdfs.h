// HDFS model: NameNode metadata, rack-aware block placement, replication
// pipeline writes, and locality-aware block reads.
//
// Fidelity notes (what matters for traffic): block placement determines
// which reads are node-local (invisible to capture) vs remote (HDFS-read
// flows), and the replication pipeline determines HDFS-write traffic
// (replication-1 off-node copies per block).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hadoop/config.h"
#include "net/network.h"
#include "util/rng.h"
#include "util/units.h"

namespace keddah::hadoop {

/// File identity, branded so a FileId can never silently travel where a
/// NodeId (or any other integer id) is expected.
using FileId = util::TaggedId<struct FileIdTag, std::uint64_t>;

/// One HDFS block: size and replica locations (DataNode ids).
struct BlockInfo {
  std::uint64_t bytes = 0;
  std::vector<net::NodeId> replicas;
};

/// File metadata held by the NameNode.
struct FileInfo {
  FileId id{0};
  std::string name;
  std::uint64_t bytes = 0;
  std::vector<BlockInfo> blocks;
};

/// The HDFS layer of the emulated cluster.
///
/// Ownership: borrows the Network (must outlive); owns all file metadata.
class HdfsCluster {
 public:
  /// `datanodes` are the hosts running DataNodes (normally all workers).
  HdfsCluster(net::Network& network, std::vector<net::NodeId> datanodes,
              const ClusterConfig& config, util::Rng rng);

  /// Registers a pre-existing file: places blocks with the standard policy
  /// but generates NO traffic (job input is loaded before capture starts,
  /// exactly as in the paper's experiments).
  FileId ingest_file(const std::string& name, std::uint64_t bytes);

  /// Writes a new file from `writer`: places blocks and generates the
  /// replication-pipeline flows. `on_complete` fires when every block of
  /// every replica is durable. Returns the file id immediately.
  FileId write_file(const std::string& name, std::uint64_t bytes, net::NodeId writer,
                    std::uint32_t job_id, std::function<void()> on_complete);

  /// Reads one block to `reader`. Chooses the closest *alive* replica
  /// (node-local, then rack-local, then remote). Node-local reads are
  /// loopback (invisible to capture). `on_complete` fires when the block is
  /// at the reader. A read whose source DataNode dies mid-transfer retries
  /// against another replica after `hdfs_read_retry_s`; a read whose reader
  /// is down is dropped (its task attempt died with the node).
  void read_block(FileId file, std::size_t block_index, net::NodeId reader, std::uint32_t job_id,
                  std::function<void()> on_complete);

  const FileInfo& file(FileId id) const;

  /// Looks up by name; throws std::out_of_range when absent.
  const FileInfo& file_by_name(const std::string& name) const;
  bool has_file(const std::string& name) const;

  std::size_t num_files() const { return files_.size(); }
  const std::vector<net::NodeId>& datanodes() const { return datanodes_; }

  /// True if `node` holds a replica of the given block.
  bool is_local(FileId file, std::size_t block_index, net::NodeId node) const;

  /// Handles a DataNode failure: drops the node from service, removes its
  /// replicas from every block, and starts one re-replication transfer per
  /// under-replicated block (surviving replica -> fresh node, HDFS-write
  /// flows with job_id 0). Returns the number of transfers started.
  /// Blocks whose last replica died are counted in lost_blocks().
  std::size_t handle_datanode_failure(net::NodeId node);

  /// Blocks with zero surviving replicas (data loss) since construction.
  std::size_t lost_blocks() const { return lost_blocks_; }

  /// Re-replication transfers started since construction.
  std::size_t rereplications() const { return rereplications_; }

  /// Write pipelines rebuilt with a replacement DataNode after losing an
  /// endpoint mid-block, total and per job.
  std::uint64_t pipeline_rebuilds() const { return pipeline_rebuilds_; }
  std::uint64_t pipeline_rebuilds(std::uint32_t job_id) const;

  /// Block reads retried because a source DataNode was down or died
  /// mid-transfer.
  std::uint64_t read_retries() const { return read_retries_; }

  /// Stored bytes per DataNode (sum of replica sizes it holds). Ordered
  /// so callers that iterate (balancer, reports) see a stable order.
  std::map<net::NodeId, std::uint64_t> datanode_usage() const;

  /// Storage imbalance: max DataNode usage / mean usage (1.0 = balanced).
  double storage_imbalance() const;

  /// Runs one pass of the HDFS balancer: while some DataNode stores more
  /// than (1 + threshold) x mean and another less than (1 - threshold) x
  /// mean, move a block replica from the most- to the least-utilized node
  /// (generating an HDFS-write transfer, job_id 0), up to `max_moves`
  /// transfers. Returns the number of transfers started. Metadata moves
  /// immediately; bytes flow through the network asynchronously.
  std::size_t run_balancer(double threshold = 0.10, std::size_t max_moves = 64);

  /// Splits a byte count into block-size chunks (last one short).
  std::vector<std::uint64_t> split_blocks(std::uint64_t bytes) const;

 private:
  /// In-flight write_file() bookkeeping shared by its pipeline callbacks.
  struct WriteState {
    FileInfo* file = nullptr;
    net::NodeId writer = net::kInvalidNode;
    std::uint32_t job_id = 0;
    std::function<void()> on_complete;
    std::size_t stages_left = 0;
  };

  /// Launches the replication pipeline for one block; chains to the next
  /// block when all stages of this one drain.
  void start_block_pipeline(const std::shared_ptr<WriteState>& state, std::size_t block_index);

  /// One pipeline stage transfer (from -> to) for the given block.
  void start_pipeline_stage(const std::shared_ptr<WriteState>& state, std::size_t block_index,
                            net::NodeId from, net::NodeId to);

  /// Stage completion: either counts the stage done or, on an aborted flow,
  /// rebuilds the pipeline with a replacement DataNode and resends.
  void on_pipeline_stage_done(const std::shared_ptr<WriteState>& state, std::size_t block_index,
                              net::NodeId to, const net::Flow& flow);

  /// Marks one stage drained; chains to the next block / fires on_complete.
  void finish_pipeline_stage(const std::shared_ptr<WriteState>& state, std::size_t block_index);

  /// An alive DataNode not yet holding the block; kInvalidNode when none.
  net::NodeId pick_replacement(const BlockInfo& block);

  /// Starts (or restarts, after an aborted transfer) one background
  /// re-replication of `block` onto an alive non-holder.
  void start_rereplication(BlockInfo* block);

  /// Standard placement: first replica on the writer (when it is a
  /// DataNode), second on a different rack, third on the second's rack.
  /// Down nodes are never chosen.
  std::vector<net::NodeId> place_replicas(net::NodeId writer);

  /// File ids in ascending order — the deterministic iteration order for
  /// every files_ walk whose side effects are order-visible (re-replication
  /// scheduling, balancer block picks).
  std::vector<FileId> sorted_file_ids() const;

  net::Network& network_;
  std::vector<net::NodeId> datanodes_;
  ClusterConfig config_;
  util::Rng rng_;
  std::unordered_map<FileId, FileInfo> files_;
  std::unordered_map<std::string, FileId> by_name_;
  FileId next_file_id_{1};
  std::size_t lost_blocks_ = 0;
  std::size_t rereplications_ = 0;
  std::uint64_t pipeline_rebuilds_ = 0;
  std::uint64_t read_retries_ = 0;
  std::unordered_map<std::uint32_t, std::uint64_t> pipeline_rebuilds_by_job_;
  /// Blocks with an active write pipeline: their recovery belongs to the
  /// pipeline rebuild path, so handle_datanode_failure leaves them alone.
  /// Pointers are stable (block vectors never resize after creation).
  std::unordered_set<const BlockInfo*> blocks_in_flight_;
};

}  // namespace keddah::hadoop
