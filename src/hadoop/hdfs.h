// HDFS model: NameNode metadata, rack-aware block placement, replication
// pipeline writes, and locality-aware block reads.
//
// Fidelity notes (what matters for traffic): block placement determines
// which reads are node-local (invisible to capture) vs remote (HDFS-read
// flows), and the replication pipeline determines HDFS-write traffic
// (replication-1 off-node copies per block).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hadoop/config.h"
#include "net/network.h"
#include "util/rng.h"

namespace keddah::hadoop {

using FileId = std::uint64_t;

/// One HDFS block: size and replica locations (DataNode ids).
struct BlockInfo {
  std::uint64_t bytes = 0;
  std::vector<net::NodeId> replicas;
};

/// File metadata held by the NameNode.
struct FileInfo {
  FileId id = 0;
  std::string name;
  std::uint64_t bytes = 0;
  std::vector<BlockInfo> blocks;
};

/// The HDFS layer of the emulated cluster.
///
/// Ownership: borrows the Network (must outlive); owns all file metadata.
class HdfsCluster {
 public:
  /// `datanodes` are the hosts running DataNodes (normally all workers).
  HdfsCluster(net::Network& network, std::vector<net::NodeId> datanodes,
              const ClusterConfig& config, util::Rng rng);

  /// Registers a pre-existing file: places blocks with the standard policy
  /// but generates NO traffic (job input is loaded before capture starts,
  /// exactly as in the paper's experiments).
  FileId ingest_file(const std::string& name, std::uint64_t bytes);

  /// Writes a new file from `writer`: places blocks and generates the
  /// replication-pipeline flows. `on_complete` fires when every block of
  /// every replica is durable. Returns the file id immediately.
  FileId write_file(const std::string& name, std::uint64_t bytes, net::NodeId writer,
                    std::uint32_t job_id, std::function<void()> on_complete);

  /// Reads one block to `reader`. Chooses the closest replica (node-local,
  /// then rack-local, then remote). Node-local reads are loopback (invisible
  /// to capture). `on_complete` fires when the block is at the reader.
  void read_block(FileId file, std::size_t block_index, net::NodeId reader, std::uint32_t job_id,
                  std::function<void()> on_complete);

  const FileInfo& file(FileId id) const;

  /// Looks up by name; throws std::out_of_range when absent.
  const FileInfo& file_by_name(const std::string& name) const;
  bool has_file(const std::string& name) const;

  std::size_t num_files() const { return files_.size(); }
  const std::vector<net::NodeId>& datanodes() const { return datanodes_; }

  /// True if `node` holds a replica of the given block.
  bool is_local(FileId file, std::size_t block_index, net::NodeId node) const;

  /// Handles a DataNode failure: drops the node from service, removes its
  /// replicas from every block, and starts one re-replication transfer per
  /// under-replicated block (surviving replica -> fresh node, HDFS-write
  /// flows with job_id 0). Returns the number of transfers started.
  /// Blocks whose last replica died are counted in lost_blocks().
  std::size_t handle_datanode_failure(net::NodeId node);

  /// Blocks with zero surviving replicas (data loss) since construction.
  std::size_t lost_blocks() const { return lost_blocks_; }

  /// Re-replication transfers started since construction.
  std::size_t rereplications() const { return rereplications_; }

  /// Stored bytes per DataNode (sum of replica sizes it holds).
  std::unordered_map<net::NodeId, std::uint64_t> datanode_usage() const;

  /// Storage imbalance: max DataNode usage / mean usage (1.0 = balanced).
  double storage_imbalance() const;

  /// Runs one pass of the HDFS balancer: while some DataNode stores more
  /// than (1 + threshold) x mean and another less than (1 - threshold) x
  /// mean, move a block replica from the most- to the least-utilized node
  /// (generating an HDFS-write transfer, job_id 0), up to `max_moves`
  /// transfers. Returns the number of transfers started. Metadata moves
  /// immediately; bytes flow through the network asynchronously.
  std::size_t run_balancer(double threshold = 0.10, std::size_t max_moves = 64);

  /// Splits a byte count into block-size chunks (last one short).
  std::vector<std::uint64_t> split_blocks(std::uint64_t bytes) const;

 private:
  /// In-flight write_file() bookkeeping shared by its pipeline callbacks.
  struct WriteState {
    const FileInfo* file = nullptr;
    net::NodeId writer = net::kInvalidNode;
    std::uint32_t job_id = 0;
    std::function<void()> on_complete;
    std::size_t stages_left = 0;
  };

  /// Launches the replication pipeline for one block; chains to the next
  /// block when all stages of this one drain.
  void start_block_pipeline(const std::shared_ptr<WriteState>& state, std::size_t block_index);

  /// Standard placement: first replica on the writer (when it is a
  /// DataNode), second on a different rack, third on the second's rack.
  std::vector<net::NodeId> place_replicas(net::NodeId writer);

  net::Network& network_;
  std::vector<net::NodeId> datanodes_;
  ClusterConfig config_;
  util::Rng rng_;
  std::unordered_map<FileId, FileInfo> files_;
  std::unordered_map<std::string, FileId> by_name_;
  FileId next_file_id_ = 1;
  std::size_t lost_blocks_ = 0;
  std::size_t rereplications_ = 0;
};

}  // namespace keddah::hadoop
