// Background control-plane traffic: NodeManager -> ResourceManager and
// DataNode -> NameNode heartbeats. Individually tiny, but they put the
// constant RPC hum in captures that the paper's "control" class describes.
#pragma once

#include <vector>

#include "hadoop/config.h"
#include "net/network.h"
#include "util/rng.h"

namespace keddah::hadoop {

/// Emits periodic heartbeat flows from every worker to the master while
/// enabled. Pending ticks are cancelled on disable so a drained simulator
/// queue means the cluster is truly idle.
class ControlPlane {
 public:
  /// `master` hosts the ResourceManager and NameNode endpoints.
  ControlPlane(net::Network& network, std::vector<net::NodeId> workers, net::NodeId master,
               const ClusterConfig& config, util::Rng rng);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Starts heartbeat emission (idempotent).
  void enable();

  /// Stops emission and cancels scheduled ticks (idempotent).
  void disable();

  bool enabled() const { return enabled_; }

  /// Heartbeat flows emitted since construction.
  std::uint64_t emitted() const { return emitted_; }

  /// Silences a failed worker (its heartbeats stop, like a dead NM/DN).
  void mark_node_down(net::NodeId node);

  /// Resumes heartbeats from a recovered worker (idempotent; a fresh tick
  /// is scheduled only while the plane is enabled).
  void mark_node_up(net::NodeId node);

 private:
  void schedule_tick(std::size_t worker_index, bool nm_channel, double delay);
  void fire(std::size_t worker_index, bool nm_channel);

  net::Network& network_;
  std::vector<net::NodeId> workers_;
  net::NodeId master_;
  ClusterConfig config_;
  util::Rng rng_;
  bool enabled_ = false;
  std::uint64_t emitted_ = 0;
  /// Pending tick per (worker, channel): [worker * 2 + channel].
  std::vector<sim::EventId> pending_;
  std::vector<bool> node_down_;
};

}  // namespace keddah::hadoop
