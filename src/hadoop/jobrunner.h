// The MapReduce execution engine: schedules map/reduce containers through
// YARN, reads input through HDFS, runs the slow-start shuffle with bounded
// fetch parallelism, and writes replicated output — generating exactly the
// flow classes Keddah captures.
//
// Fault model: speculative execution launches backup attempts for straggling
// maps (first finisher wins; the loser's read traffic stays on the wire).
// A NodeManager *failure* kills its running attempts, loses the map outputs
// it hosted (forcing reruns for any reducer that had not fetched them), and
// restarts reducers that were running there (full shuffle refetch). A
// transient *outage* kills attempts and restarts reducers the same way but
// keeps completed map outputs: shuffle fetches against the down host fail
// and retry with capped exponential backoff, and once a map output
// accumulates `fetch_failure_threshold` failures the AM declares it lost and
// reruns the map — exactly the real framework's fetch-failure machinery.
// In-flight transfers touching a failed node are aborted at the network
// layer with partial-byte accounting (see DESIGN.md fault model).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "hadoop/config.h"
#include "hadoop/hdfs.h"
#include "hadoop/job.h"
#include "hadoop/joblog.h"
#include "hadoop/yarn.h"
#include "net/network.h"
#include "util/rng.h"

namespace keddah::hadoop {

/// Submits and drives MapReduce jobs. Multiple jobs may run concurrently;
/// each gets an isolated RNG stream split from the runner's.
class JobRunner {
 public:
  using JobCallback = std::function<void(const JobResult&)>;

  JobRunner(net::Network& network, HdfsCluster& hdfs, YarnScheduler& scheduler,
            const ClusterConfig& config, util::Rng rng);

  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  /// Submits a job; `on_complete` fires when all output is durable in HDFS.
  /// Returns the assigned job id (also stamped on every flow of the job).
  std::uint32_t submit(const JobSpec& spec, JobCallback on_complete);

  /// Jobs currently executing.
  std::size_t running_jobs() const { return running_; }

  /// Reacts to a permanent NodeManager failure: reruns lost work on
  /// surviving nodes, including completed maps whose outputs died with the
  /// host. (HDFS/scheduler/control-plane bookkeeping is the cluster
  /// facade's job.)
  void handle_node_failure(net::NodeId node);

  /// Reacts to a transient outage: running attempts are killed and reducers
  /// restarted as for a failure, but completed map outputs survive on the
  /// host's disk — the fetch-retry/threshold machinery decides whether they
  /// are ever declared lost.
  void handle_node_outage(net::NodeId node);

  /// Injects a compute slowdown on `node`: map/reduce compute there runs
  /// `factor` times slower (straggler injection). `factor <= 1` clears it.
  void set_node_slowdown(net::NodeId node, double factor);

  /// Backup attempts launched by speculative execution.
  std::uint64_t speculative_attempts() const { return speculative_attempts_; }
  /// Attempts killed by node failures.
  std::uint64_t failed_attempts() const { return failed_attempts_; }
  /// Completed maps rerun because their output host died.
  std::uint64_t map_reruns() const { return map_reruns_; }
  /// Reducers restarted after their host died.
  std::uint64_t reducer_restarts() const { return reducer_restarts_; }
  /// Shuffle fetches that failed and were retried after backoff.
  std::uint64_t fetch_retries() const { return fetch_retries_; }
  /// Total reducer time spent waiting in fetch-retry backoff, seconds.
  double fetch_backoff_s() const { return fetch_backoff_s_; }
  /// Maps declared lost (and rerun) by the fetch-failure threshold.
  std::uint64_t fetch_failure_reruns() const { return fetch_failure_reruns_; }

  /// Attaches a job-history sink (task/job lifecycle events, as the real
  /// framework's history files record). Borrowed; may be null.
  void set_history_log(JobHistoryLog* log) { history_ = log; }

 private:
  struct Execution;
  using ExecPtr = std::shared_ptr<Execution>;

  void start_map_phase(const ExecPtr& exec);
  /// Requests a container for (another) attempt of map `map_index`.
  void launch_map_attempt(const ExecPtr& exec, std::size_t map_index);
  void run_map_attempt(const ExecPtr& exec, std::size_t map_index, net::NodeId node);
  void on_map_attempt_complete(const ExecPtr& exec, std::uint64_t attempt_id);
  void on_map_output_ready(const ExecPtr& exec, std::size_t map_index, net::NodeId node);
  void maybe_launch_reducers(const ExecPtr& exec);
  void request_reducer(const ExecPtr& exec, std::size_t reducer_index,
                       std::uint32_t expected_generation);
  void start_reducer(const ExecPtr& exec, std::size_t reducer_index, net::NodeId node,
                     std::uint32_t expected_generation);
  void pump_fetches(const ExecPtr& exec, std::size_t reducer_index);
  /// A fetch against map `map_index` failed (source down or transfer
  /// aborted): unclaims it and either schedules a backoff retry or, past
  /// the fetch-failure threshold, declares the map output lost and reruns.
  void on_fetch_failed(const ExecPtr& exec, std::size_t reducer_index, std::size_t map_index);
  void finish_reducer_shuffle(const ExecPtr& exec, std::size_t reducer_index);
  void check_speculation(const ExecPtr& exec);
  void finish_job(const ExecPtr& exec);
  /// Shared crash/outage reaction; `outputs_lost` distinguishes them.
  void handle_node_event(net::NodeId node, bool outputs_lost);
  /// Injected compute slowdown factor for a node (>= 1.0).
  double node_slowdown(net::NodeId node) const;

  /// Emits a history event when a log is attached.
  void log_event(double time, std::uint32_t job_id, TaskEvent::Kind kind,
                 net::NodeId node = net::kInvalidNode, std::uint32_t task_index = 0);

  net::Network& network_;
  HdfsCluster& hdfs_;
  YarnScheduler& scheduler_;
  ClusterConfig config_;
  util::Rng rng_;
  std::uint32_t next_job_id_ = 1;
  std::size_t running_ = 0;
  std::vector<std::weak_ptr<Execution>> active_;
  std::uint64_t speculative_attempts_ = 0;
  std::uint64_t failed_attempts_ = 0;
  std::uint64_t map_reruns_ = 0;
  std::uint64_t reducer_restarts_ = 0;
  std::uint64_t fetch_retries_ = 0;
  double fetch_backoff_s_ = 0.0;
  std::uint64_t fetch_failure_reruns_ = 0;
  std::unordered_map<net::NodeId, double> slowdown_;
  JobHistoryLog* history_ = nullptr;
};

}  // namespace keddah::hadoop
