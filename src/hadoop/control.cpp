#include "hadoop/control.h"

namespace keddah::hadoop {

ControlPlane::ControlPlane(net::Network& network, std::vector<net::NodeId> workers,
                           net::NodeId master, const ClusterConfig& config, util::Rng rng)
    : network_(network),
      workers_(std::move(workers)),
      master_(master),
      config_(config),
      rng_(rng),
      pending_(workers_.size() * 2, sim::kInvalidEvent),
      node_down_(workers_.size(), false) {}

void ControlPlane::mark_node_down(net::NodeId node) {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i] != node) continue;
    node_down_[i] = true;
    auto& sim = network_.simulator();
    sim.cancel(pending_[i * 2]);
    sim.cancel(pending_[i * 2 + 1]);
    pending_[i * 2] = pending_[i * 2 + 1] = sim::kInvalidEvent;
  }
}

void ControlPlane::mark_node_up(net::NodeId node) {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i] != node || !node_down_[i]) continue;
    node_down_[i] = false;
    if (!enabled_) continue;
    schedule_tick(i, /*nm_channel=*/true, rng_.uniform(0.0, config_.nm_heartbeat_s));
    schedule_tick(i, /*nm_channel=*/false, rng_.uniform(0.0, config_.dn_heartbeat_s));
  }
}

void ControlPlane::enable() {
  if (enabled_ || !config_.control_traffic) return;
  enabled_ = true;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (node_down_[i]) continue;
    // Random phase so heartbeats do not synchronize across nodes.
    schedule_tick(i, /*nm_channel=*/true, rng_.uniform(0.0, config_.nm_heartbeat_s));
    schedule_tick(i, /*nm_channel=*/false, rng_.uniform(0.0, config_.dn_heartbeat_s));
  }
}

void ControlPlane::disable() {
  if (!enabled_) return;
  enabled_ = false;
  auto& sim = network_.simulator();
  for (auto& id : pending_) {
    sim.cancel(id);
    id = sim::kInvalidEvent;
  }
}

void ControlPlane::schedule_tick(std::size_t worker_index, bool nm_channel, double delay) {
  auto& sim = network_.simulator();
  pending_[worker_index * 2 + (nm_channel ? 0 : 1)] =
      sim.schedule_in(delay, [this, worker_index, nm_channel] { fire(worker_index, nm_channel); });
}

void ControlPlane::fire(std::size_t worker_index, bool nm_channel) {
  if (!enabled_ || node_down_[worker_index]) return;
  net::FlowMeta meta;
  meta.src_port = net::ports::kEphemeralBase;
  meta.dst_port = nm_channel ? net::ports::kRmTracker : net::ports::kNameNodeRpc;
  meta.job_id = 0;
  meta.kind = net::FlowKind::kControl;
  // Heartbeat payload with mild size jitter (report contents vary).
  const double bytes = config_.heartbeat_bytes * rng_.uniform(0.8, 1.4);
  network_.start_flow(workers_[worker_index], master_, util::Bytes(bytes), meta, nullptr);
  ++emitted_;
  const double period = nm_channel ? config_.nm_heartbeat_s : config_.dn_heartbeat_s;
  schedule_tick(worker_index, nm_channel, period);
}

}  // namespace keddah::hadoop
