#include "hadoop/faults.h"

#include <cmath>
#include <stdexcept>

#include "util/check.h"
#include "util/strings.h"

namespace keddah::hadoop {

namespace {

/// "context: faults[i]" prefix shared by every complaint about one event.
std::string where(const std::string& context, std::size_t index) {
  return util::format("%s: faults[%zu]", context.c_str(), index);
}

double finite_number(const util::Json& entry, const std::string& key, double fallback,
                     const std::string& prefix) {
  if (!entry.contains(key)) return fallback;
  const auto& field = entry.at(key);
  if (!field.is_number()) {
    throw std::invalid_argument(prefix + "." + key + " must be a number");
  }
  const double value = field.as_number();
  if (!std::isfinite(value)) {
    throw std::invalid_argument(prefix + "." + key + " must be finite (got NaN/inf)");
  }
  return value;
}

void validate_event(const FaultEvent& event, std::size_t num_workers,
                    const std::string& prefix) {
  if (event.worker == 0) {
    throw std::invalid_argument(prefix +
                                ".worker must be >= 1 (worker 0 hosts the master)");
  }
  if (num_workers != 0 && event.worker >= num_workers) {
    throw std::invalid_argument(util::format("%s.worker %zu out of range (cluster has %zu workers)",
                                             prefix.c_str(), event.worker, num_workers));
  }
  if (!std::isfinite(event.at) || event.at < 0.0) {
    throw std::invalid_argument(prefix + ".at must be a finite time >= 0");
  }
  if (!std::isfinite(event.duration) || event.duration < 0.0) {
    throw std::invalid_argument(prefix + ".duration must be a finite time >= 0");
  }
  switch (event.kind) {
    case FaultKind::kCrash:
      break;  // duration/factor ignored
    case FaultKind::kOutage:
      if (event.duration <= 0.0) {
        throw std::invalid_argument(prefix +
                                    ".duration must be > 0 for an outage (its recovery time)");
      }
      break;
    case FaultKind::kDegradeLink:
      if (event.duration <= 0.0) {
        throw std::invalid_argument(prefix + ".duration must be > 0 for degrade_link");
      }
      if (!std::isfinite(event.factor) || event.factor <= 0.0 || event.factor >= 1.0) {
        throw std::invalid_argument(
            prefix + ".factor must be in (0, 1) for degrade_link (capacity multiplier)");
      }
      break;
    case FaultKind::kSlowNode:
      if (event.duration <= 0.0) {
        throw std::invalid_argument(prefix + ".duration must be > 0 for slow_node");
      }
      if (!std::isfinite(event.factor) || event.factor <= 1.0) {
        throw std::invalid_argument(
            prefix + ".factor must be > 1 for slow_node (compute slowdown)");
      }
      break;
  }
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kOutage:
      return "outage";
    case FaultKind::kDegradeLink:
      return "degrade_link";
    case FaultKind::kSlowNode:
      return "slow_node";
  }
  return "unknown";
}

FaultKind fault_kind_from_name(const std::string& name) {
  if (name == "crash") return FaultKind::kCrash;
  if (name == "outage") return FaultKind::kOutage;
  if (name == "degrade_link") return FaultKind::kDegradeLink;
  if (name == "slow_node") return FaultKind::kSlowNode;
  throw std::invalid_argument("faults: unknown kind '" + name +
                              "' (want crash|outage|degrade_link|slow_node)");
}

void validate_fault_plan(const FaultPlan& plan, std::size_t num_workers,
                         const std::string& context) {
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    validate_event(plan.events[i], num_workers, where(context, i));
  }
}

FaultPlan parse_fault_plan(const util::Json& array, const std::string& context) {
  if (!array.is_array()) {
    throw std::invalid_argument(context + ": faults must be an array");
  }
  FaultPlan plan;
  for (std::size_t i = 0; i < array.size(); ++i) {
    const auto& entry = array.at(i);
    const std::string prefix = where(context, i);
    if (!entry.is_object()) {
      throw std::invalid_argument(prefix + " must be an object");
    }
    FaultEvent event;
    if (entry.contains("kind")) {
      try {
        event.kind = fault_kind_from_name(entry.at("kind").as_string());
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(prefix + ".kind: " + e.what());
      }
    } else {
      event.kind = FaultKind::kCrash;  // legacy {"worker", "at"} crash entry
    }
    if (!entry.contains("worker")) {
      throw std::invalid_argument(prefix + " missing required key 'worker'");
    }
    const double worker = finite_number(entry, "worker", 0.0, prefix);
    if (worker < 0.0) {
      throw std::invalid_argument(prefix + ".worker must be >= 0");
    }
    event.worker = static_cast<std::size_t>(worker);
    event.at = finite_number(entry, "at", 0.0, prefix);
    event.duration = finite_number(entry, "duration", 0.0, prefix);
    event.factor = finite_number(entry, "factor", 0.0, prefix);
    // Parameter-range checks happen here too (worker range waits for the
    // cluster size, passed as 0 = unknown).
    validate_event(event, /*num_workers=*/0, prefix);
    plan.events.push_back(event);
  }
  return plan;
}

void audit_fault_stats(const FaultStats& stats) {
  const std::uint64_t injections =
      stats.crashes + stats.outages + stats.link_degradations + stats.slow_nodes;
  if (stats.aborted_bytes.value() > 0.0 && stats.aborted_flows == 0) {
    throw util::AuditError("fault stats: aborted bytes without any aborted flow");
  }
  if (!(stats.fetch_backoff_s >= 0.0) || !std::isfinite(stats.fetch_backoff_s)) {
    throw util::AuditError("fault stats: fetch backoff must be finite and >= 0, got " +
                           std::to_string(stats.fetch_backoff_s));
  }
  if (injections == 0) {
    // Recovery work can only be caused by an injected fault; a clean run
    // must report an all-zero recovery ledger.
    if (stats.aborted_flows != 0 || stats.fetch_retries != 0 ||
        stats.fetch_failure_reruns != 0 || stats.map_reruns != 0 ||
        stats.reducer_restarts != 0 || stats.pipeline_rebuilds != 0 ||
        stats.hdfs_read_retries != 0 || stats.rereplications != 0) {
      throw util::AuditError("fault stats: recovery counters nonzero without any injected fault");
    }
  }
}

}  // namespace keddah::hadoop
