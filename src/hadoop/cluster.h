// HadoopCluster: the facade tying the whole emulated testbed together —
// simulator, fabric, HDFS, YARN, job runner, control plane, and the capture
// collector. This is the object the paper's "run a job and tcpdump it"
// workflow maps onto.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include <unordered_map>
#include <unordered_set>

#include "capture/collector.h"
#include "hadoop/config.h"
#include "hadoop/control.h"
#include "hadoop/faults.h"
#include "hadoop/hdfs.h"
#include "hadoop/joblog.h"
#include "hadoop/jobrunner.h"
#include "hadoop/yarn.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace keddah::hadoop {

/// A complete, ready-to-run emulated Hadoop cluster.
///
/// The master (ResourceManager + NameNode) is co-hosted on worker 0, as in
/// small testbeds; heartbeats from worker 0 are loopback and hence invisible
/// to capture, like a real co-hosted master.
class HadoopCluster {
 public:
  explicit HadoopCluster(const ClusterConfig& config, std::uint64_t seed = 1,
                         capture::CollectorOptions capture_options = {});

  HadoopCluster(const HadoopCluster&) = delete;
  HadoopCluster& operator=(const HadoopCluster&) = delete;

  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return *network_; }
  HdfsCluster& hdfs() { return *hdfs_; }
  YarnScheduler& scheduler() { return *scheduler_; }
  JobRunner& runner() { return *runner_; }
  ControlPlane& control() { return *control_; }
  const ClusterConfig& config() const { return config_; }

  /// The framework's job-history log (task/job lifecycle events), written
  /// by the runner as jobs execute; input to hadoop/attribution.h.
  const JobHistoryLog& history() const { return history_; }

  net::NodeId master() const { return workers_.front(); }
  const std::vector<net::NodeId>& workers() const { return workers_; }

  /// Ingests an input file sized `bytes` if it does not already exist;
  /// returns its name. The name encodes the size so repeated runs share it.
  std::string ensure_input(std::uint64_t bytes);

  /// Runs one job to completion (blocking: advances the simulator until the
  /// job's output is durable). Control traffic is emitted while the job
  /// runs. Returns the execution summary.
  JobResult run_job(const JobSpec& spec);

  /// Runs several jobs back to back (sequential submission, one result per
  /// spec, in order).
  std::vector<JobResult> run_jobs(const std::vector<JobSpec>& specs);

  /// Flows captured so far (excludes loopback per collector options).
  const capture::Trace& trace() const { return collector_->trace(); }

  /// Takes ownership of the captured trace and clears the collector, so the
  /// next run starts a fresh capture.
  capture::Trace take_trace() { return collector_->take(); }

  /// The collector behind trace()/take_trace(), for spill-mode queries
  /// (spilling()/spilled()/spill_path()/finalize_spill()).
  capture::FlowCollector& collector() { return *collector_; }

  /// Fails a worker immediately and permanently: the NodeManager's
  /// containers die (tasks rerun elsewhere), its DataNode's replicas are
  /// re-replicated, in-flight flows touching the node are aborted with
  /// partial-byte accounting, and its heartbeats stop. The master (worker 0)
  /// cannot be failed.
  void fail_node(net::NodeId node);

  /// Schedules fail_node(node) at an absolute simulation time.
  void fail_node_at(net::NodeId node, double time);

  /// Takes a worker down transiently: attempts die and in-flight flows abort
  /// as for a crash, but map outputs and HDFS replicas survive on disk —
  /// shuffle fetches against the host fail and retry with backoff until the
  /// node recovers `duration` seconds later (or the fetch-failure threshold
  /// declares the outputs lost first).
  void fail_node_transient(net::NodeId node, double duration);

  /// Brings a transiently-down worker back: the network forwards its flows
  /// again, the scheduler re-adds its (empty) container slots, and its
  /// heartbeats resume.
  void recover_node(net::NodeId node);

  /// Cuts the worker's access-link capacity to `factor` (in (0,1)) of
  /// nominal for `duration` seconds, then restores it.
  void degrade_link(net::NodeId node, double factor, double duration);

  /// Makes compute on the worker run `factor` (> 1) times slower for
  /// `duration` seconds (straggler injection).
  void slow_node(net::NodeId node, double factor, double duration);

  /// Schedules every event of a validated fault plan onto the simulator.
  /// Worker indices are resolved against workers(); throws
  /// std::invalid_argument on out-of-range or master (index 0) targets.
  void schedule_fault_plan(const FaultPlan& plan);

  /// Snapshot of injected faults and the recovery work they caused, merged
  /// from the network, HDFS, and job-runner counters.
  FaultStats fault_stats() const;

 private:
  /// Shared crash/outage entry; `permanent` picks the HDFS + rerun policy.
  /// Returns false when the node was already down (nothing happened).
  bool take_node_down(net::NodeId node, bool permanent);
  void restore_link(net::LinkId link);
  ClusterConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::vector<net::NodeId> workers_;
  std::unique_ptr<capture::FlowCollector> collector_;
  std::unique_ptr<HdfsCluster> hdfs_;
  std::unique_ptr<YarnScheduler> scheduler_;
  std::unique_ptr<JobRunner> runner_;
  std::unique_ptr<ControlPlane> control_;
  JobHistoryLog history_;
  util::Rng rng_;
  /// Injection counters (recovery counters live in the subsystems).
  FaultStats injected_;
  /// Nominal capacity of links currently degraded, for restore_link.
  std::unordered_map<net::LinkId, util::Rate> degraded_links_;
  /// Permanently crashed nodes; a pending outage recovery must not revive
  /// a node that crashed for good inside its window.
  std::unordered_set<net::NodeId> crashed_;
};

}  // namespace keddah::hadoop
