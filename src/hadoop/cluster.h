// HadoopCluster: the facade tying the whole emulated testbed together —
// simulator, fabric, HDFS, YARN, job runner, control plane, and the capture
// collector. This is the object the paper's "run a job and tcpdump it"
// workflow maps onto.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "capture/collector.h"
#include "hadoop/config.h"
#include "hadoop/control.h"
#include "hadoop/hdfs.h"
#include "hadoop/joblog.h"
#include "hadoop/jobrunner.h"
#include "hadoop/yarn.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace keddah::hadoop {

/// A complete, ready-to-run emulated Hadoop cluster.
///
/// The master (ResourceManager + NameNode) is co-hosted on worker 0, as in
/// small testbeds; heartbeats from worker 0 are loopback and hence invisible
/// to capture, like a real co-hosted master.
class HadoopCluster {
 public:
  explicit HadoopCluster(const ClusterConfig& config, std::uint64_t seed = 1,
                         capture::CollectorOptions capture_options = {});

  HadoopCluster(const HadoopCluster&) = delete;
  HadoopCluster& operator=(const HadoopCluster&) = delete;

  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return *network_; }
  HdfsCluster& hdfs() { return *hdfs_; }
  YarnScheduler& scheduler() { return *scheduler_; }
  JobRunner& runner() { return *runner_; }
  ControlPlane& control() { return *control_; }
  const ClusterConfig& config() const { return config_; }

  /// The framework's job-history log (task/job lifecycle events), written
  /// by the runner as jobs execute; input to hadoop/attribution.h.
  const JobHistoryLog& history() const { return history_; }

  net::NodeId master() const { return workers_.front(); }
  const std::vector<net::NodeId>& workers() const { return workers_; }

  /// Ingests an input file sized `bytes` if it does not already exist;
  /// returns its name. The name encodes the size so repeated runs share it.
  std::string ensure_input(std::uint64_t bytes);

  /// Runs one job to completion (blocking: advances the simulator until the
  /// job's output is durable). Control traffic is emitted while the job
  /// runs. Returns the execution summary.
  JobResult run_job(const JobSpec& spec);

  /// Runs several jobs back to back (sequential submission, one result per
  /// spec, in order).
  std::vector<JobResult> run_jobs(const std::vector<JobSpec>& specs);

  /// Flows captured so far (excludes loopback per collector options).
  const capture::Trace& trace() const { return collector_->trace(); }

  /// Takes ownership of the captured trace and clears the collector, so the
  /// next run starts a fresh capture.
  capture::Trace take_trace() { return collector_->take(); }

  /// Fails a worker immediately: the NodeManager's containers die (tasks
  /// rerun elsewhere), its DataNode's replicas are re-replicated, and its
  /// heartbeats stop. The master (worker 0) cannot be failed.
  void fail_node(net::NodeId node);

  /// Schedules fail_node(node) at an absolute simulation time.
  void fail_node_at(net::NodeId node, double time);

 private:
  ClusterConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::vector<net::NodeId> workers_;
  std::unique_ptr<capture::FlowCollector> collector_;
  std::unique_ptr<HdfsCluster> hdfs_;
  std::unique_ptr<YarnScheduler> scheduler_;
  std::unique_ptr<JobRunner> runner_;
  std::unique_ptr<ControlPlane> control_;
  JobHistoryLog history_;
  util::Rng rng_;
};

}  // namespace keddah::hadoop
