#include "hadoop/hdfs.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>

#include "util/log.h"

namespace keddah::hadoop {

net::Topology ClusterConfig::build_topology() const {
  switch (topology) {
    case TopologyKind::kStar:
      return net::make_star(racks * hosts_per_rack, access_bps, latency_s);
    case TopologyKind::kRackTree:
      return net::make_rack_tree(racks, hosts_per_rack, access_bps, core_bps, latency_s);
    case TopologyKind::kFatTree:
      return net::make_fat_tree(fat_tree_k, access_bps, latency_s);
  }
  throw std::logic_error("hadoop: unknown topology kind");
}

HdfsCluster::HdfsCluster(net::Network& network, std::vector<net::NodeId> datanodes,
                         const ClusterConfig& config, util::Rng rng)
    : network_(network), datanodes_(std::move(datanodes)), config_(config), rng_(rng) {
  if (datanodes_.empty()) throw std::invalid_argument("hdfs: need at least one datanode");
}

std::vector<std::uint64_t> HdfsCluster::split_blocks(std::uint64_t bytes) const {
  std::vector<std::uint64_t> out;
  if (bytes == 0) return out;
  const std::uint64_t bs = config_.block_size;
  for (std::uint64_t off = 0; off < bytes; off += bs) out.push_back(std::min(bs, bytes - off));
  return out;
}

std::vector<net::NodeId> HdfsCluster::place_replicas(net::NodeId writer) {
  const auto& topo = network_.topology();
  const std::size_t want = std::min<std::size_t>(config_.replication, datanodes_.size());
  std::vector<net::NodeId> replicas;
  replicas.reserve(want);

  auto contains = [&](net::NodeId n) {
    return std::find(replicas.begin(), replicas.end(), n) != replicas.end();
  };
  auto pick_where = [&](auto&& pred) -> net::NodeId {
    std::vector<net::NodeId> candidates;
    for (const auto dn : datanodes_) {
      if (!contains(dn) && network_.node_up(dn) && pred(dn)) candidates.push_back(dn);
    }
    if (candidates.empty()) return net::kInvalidNode;
    return candidates[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
  };

  // First replica: the writer itself when it runs a DataNode.
  const bool writer_is_dn =
      std::find(datanodes_.begin(), datanodes_.end(), writer) != datanodes_.end();
  replicas.push_back(writer_is_dn ? writer
                                  : pick_where([](net::NodeId) { return true; }));

  // Second replica: a different rack when the cluster has one.
  if (replicas.size() < want) {
    net::NodeId second =
        pick_where([&](net::NodeId n) { return !topo.same_rack(n, replicas[0]); });
    if (second == net::kInvalidNode) second = pick_where([](net::NodeId) { return true; });
    if (second != net::kInvalidNode) replicas.push_back(second);
  }

  // Third replica: same rack as the second, different node.
  if (replicas.size() < want) {
    net::NodeId third =
        pick_where([&](net::NodeId n) { return topo.same_rack(n, replicas[1]); });
    if (third == net::kInvalidNode) third = pick_where([](net::NodeId) { return true; });
    if (third != net::kInvalidNode) replicas.push_back(third);
  }

  // Any further replicas: random distinct DataNodes.
  while (replicas.size() < want) {
    const net::NodeId extra = pick_where([](net::NodeId) { return true; });
    if (extra == net::kInvalidNode) break;
    replicas.push_back(extra);
  }
  // A fully-down cluster can leave no pickable first replica.
  replicas.erase(std::remove(replicas.begin(), replicas.end(), net::kInvalidNode),
                 replicas.end());
  return replicas;
}

FileId HdfsCluster::ingest_file(const std::string& name, std::uint64_t bytes) {
  if (by_name_.count(name) != 0) throw std::invalid_argument("hdfs: file exists: " + name);
  FileInfo info;
  info.id = next_file_id_++;
  info.name = name;
  info.bytes = bytes;
  for (const std::uint64_t block_bytes : split_blocks(bytes)) {
    BlockInfo block;
    block.bytes = block_bytes;
    // Ingested data was written by an external client: first replica lands
    // on a random DataNode, so blocks spread across the cluster.
    const auto writer = datanodes_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(datanodes_.size()) - 1))];
    block.replicas = place_replicas(writer);
    info.blocks.push_back(std::move(block));
  }
  const FileId id = info.id;
  by_name_[name] = id;
  files_.emplace(id, std::move(info));
  return id;
}

FileId HdfsCluster::write_file(const std::string& name, std::uint64_t bytes, net::NodeId writer,
                               std::uint32_t job_id, std::function<void()> on_complete) {
  if (by_name_.count(name) != 0) throw std::invalid_argument("hdfs: file exists: " + name);
  FileInfo info;
  info.id = next_file_id_++;
  info.name = name;
  info.bytes = bytes;
  for (const std::uint64_t block_bytes : split_blocks(bytes)) {
    BlockInfo block;
    block.bytes = block_bytes;
    block.replicas = place_replicas(writer);
    info.blocks.push_back(std::move(block));
  }
  const FileId id = info.id;
  by_name_[name] = id;
  auto [it, inserted] = files_.emplace(id, std::move(info));
  assert(inserted);
  FileInfo& stored = it->second;

  if (stored.blocks.empty()) {
    // Empty file: complete on the next tick to keep callback asynchrony.
    network_.simulator().schedule_in(0.0, [cb = std::move(on_complete)] {
      if (cb) cb();
    });
    return id;
  }

  // Blocks are written sequentially (HDFS semantics); within a block the
  // pipeline stages writer->r1->r2->r3 run concurrently, and the block is
  // durable when its slowest stage drains. State lives in a shared context
  // (no lambda self-capture, so no reference cycle). All blocks of the file
  // are claimed up front: until the pipeline finishes them, failure repair
  // belongs to pipeline recovery, not the NameNode re-replicator.
  auto state = std::make_shared<WriteState>();
  state->file = &stored;
  state->writer = writer;
  state->job_id = job_id;
  state->on_complete = std::move(on_complete);
  for (const auto& block : stored.blocks) blocks_in_flight_.insert(&block);
  start_block_pipeline(state, 0);
  return id;
}

void HdfsCluster::start_block_pipeline(const std::shared_ptr<WriteState>& state,
                                       std::size_t block_index) {
  BlockInfo& block = state->file->blocks[block_index];
  if (block.replicas.empty()) {
    // Every placed replica died before the pipeline reached this block:
    // re-place on whatever is alive now.
    block.replicas = place_replicas(state->writer);
  }
  if (block.replicas.empty()) {
    // Nowhere to write (cluster-wide outage): skip the block so the write
    // state machine cannot stall; durability is the casualty.
    state->stages_left = 1;
    network_.simulator().schedule_in(
        0.0, [this, state, block_index] { finish_pipeline_stage(state, block_index); });
    return;
  }
  state->stages_left = block.replicas.size();
  net::NodeId from = state->writer;
  for (const net::NodeId to : block.replicas) {
    start_pipeline_stage(state, block_index, from, to);
    from = to;
  }
}

void HdfsCluster::start_pipeline_stage(const std::shared_ptr<WriteState>& state,
                                       std::size_t block_index, net::NodeId from, net::NodeId to) {
  const BlockInfo& block = state->file->blocks[block_index];
  net::FlowMeta meta;
  meta.src_port = net::ports::kEphemeralBase;
  meta.dst_port = net::ports::kDataNodeXfer;
  meta.job_id = state->job_id;
  meta.kind = net::FlowKind::kHdfsWrite;
  network_.start_flow(from, to, util::Bytes::of(block.bytes), meta,
                      [this, state, block_index, to](const net::Flow& flow) {
                        on_pipeline_stage_done(state, block_index, to, flow);
                      },
                      util::Rate::bps(config_.disk_write_bps));
}

net::NodeId HdfsCluster::pick_replacement(const BlockInfo& block) {
  std::vector<net::NodeId> candidates;
  for (const auto dn : datanodes_) {
    if (!network_.node_up(dn)) continue;
    if (std::find(block.replicas.begin(), block.replicas.end(), dn) != block.replicas.end()) {
      continue;
    }
    candidates.push_back(dn);
  }
  if (candidates.empty()) return net::kInvalidNode;
  return candidates[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
}

void HdfsCluster::on_pipeline_stage_done(const std::shared_ptr<WriteState>& state,
                                         std::size_t block_index, net::NodeId to,
                                         const net::Flow& flow) {
  if (!flow.aborted) {
    finish_pipeline_stage(state, block_index);
    return;
  }
  // A pipeline endpoint died mid-block. DFSClient-style recovery: when the
  // target DataNode is the casualty, swap it for a fresh node; then resend
  // the whole block from an alive holder.
  BlockInfo& block = state->file->blocks[block_index];
  net::NodeId target = to;
  if (!network_.node_up(to)) {
    const auto it = std::find(block.replicas.begin(), block.replicas.end(), to);
    if (it != block.replicas.end()) block.replicas.erase(it);
    target = pick_replacement(block);
    if (target == net::kInvalidNode) {
      // No replacement DataNode available: accept reduced durability for
      // this block rather than stalling the writer forever.
      finish_pipeline_stage(state, block_index);
      return;
    }
    block.replicas.push_back(target);
  }
  net::NodeId source = net::kInvalidNode;
  if (network_.node_up(state->writer)) {
    source = state->writer;
  } else {
    for (const auto r : block.replicas) {
      if (r != target && network_.node_up(r)) {
        source = r;
        break;
      }
    }
  }
  if (source == net::kInvalidNode) {
    // Writer and every upstream holder are gone: the client is dead and the
    // job layer reruns the task; don't stall the write state machine.
    finish_pipeline_stage(state, block_index);
    return;
  }
  ++pipeline_rebuilds_;
  ++pipeline_rebuilds_by_job_[state->job_id];
  start_pipeline_stage(state, block_index, source, target);
}

void HdfsCluster::finish_pipeline_stage(const std::shared_ptr<WriteState>& state,
                                        std::size_t block_index) {
  if (--state->stages_left > 0) return;
  blocks_in_flight_.erase(&state->file->blocks[block_index]);
  if (block_index + 1 < state->file->blocks.size()) {
    start_block_pipeline(state, block_index + 1);
  } else if (state->on_complete) {
    state->on_complete();
  }
}

void HdfsCluster::read_block(FileId file, std::size_t block_index, net::NodeId reader,
                             std::uint32_t job_id, std::function<void()> on_complete) {
  const FileInfo& info = this->file(file);
  if (block_index >= info.blocks.size()) throw std::out_of_range("hdfs: bad block index");
  const BlockInfo& block = info.blocks[block_index];
  if (block.replicas.empty()) throw std::logic_error("hdfs: block with no replicas");
  if (!network_.node_up(reader)) return;  // the reading attempt died with its node

  // Only alive replicas can serve; when every holder is down (transient
  // outage) the client waits out the retry window and tries again.
  std::vector<net::NodeId> alive;
  for (const auto r : block.replicas) {
    if (network_.node_up(r)) alive.push_back(r);
  }
  if (alive.empty()) {
    ++read_retries_;
    network_.simulator().schedule_in(
        config_.hdfs_read_retry_s,
        [this, file, block_index, reader, job_id, cb = std::move(on_complete)]() mutable {
          read_block(file, block_index, reader, job_id, std::move(cb));
        });
    return;
  }

  // Closest alive replica: node-local, then rack-local, then any.
  const auto& topo = network_.topology();
  net::NodeId source = net::kInvalidNode;
  for (const auto r : alive) {
    if (r == reader) {
      source = r;
      break;
    }
  }
  if (source == net::kInvalidNode) {
    std::vector<net::NodeId> rack_local;
    for (const auto r : alive) {
      if (topo.same_rack(r, reader)) rack_local.push_back(r);
    }
    if (!rack_local.empty()) {
      source = rack_local[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(rack_local.size()) - 1))];
    } else {
      source = alive[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(alive.size()) - 1))];
    }
  }

  net::FlowMeta meta;
  meta.src_port = net::ports::kDataNodeXfer;  // DataNode serves the data
  meta.dst_port = net::ports::kEphemeralBase;
  meta.job_id = job_id;
  meta.kind = net::FlowKind::kHdfsRead;
  network_.start_flow(source, reader, util::Bytes::of(block.bytes), meta,
                      [this, file, block_index, reader, job_id,
                       cb = std::move(on_complete)](const net::Flow& flow) mutable {
                        if (flow.aborted) {
                          // Source died mid-transfer: retry against another
                          // replica after the client retry window. (The
                          // partial bytes stay on the wire, as captured.)
                          if (!network_.node_up(reader)) return;
                          ++read_retries_;
                          network_.simulator().schedule_in(
                              config_.hdfs_read_retry_s,
                              [this, file, block_index, reader, job_id,
                               cb = std::move(cb)]() mutable {
                                read_block(file, block_index, reader, job_id, std::move(cb));
                              });
                          return;
                        }
                        if (cb) cb();
                      },
                      util::Rate::bps(config_.disk_read_bps));
}

std::size_t HdfsCluster::handle_datanode_failure(net::NodeId node) {
  // Take the node out of service for future placements and reads.
  datanodes_.erase(std::remove(datanodes_.begin(), datanodes_.end(), node), datanodes_.end());
  if (datanodes_.empty()) throw std::logic_error("hdfs: last datanode failed");

  std::size_t transfers = 0;
  // Sorted file order: each re-replication below starts a network transfer,
  // so iteration order is scheduling order and must be platform-independent.
  for (const FileId id : sorted_file_ids()) {
    FileInfo& info = files_.at(id);
    for (auto& block : info.blocks) {
      const auto it = std::find(block.replicas.begin(), block.replicas.end(), node);
      if (it == block.replicas.end()) continue;
      block.replicas.erase(it);
      // A block with an active write pipeline is repaired by pipeline
      // recovery, not the NameNode re-replicator (and its later blocks may
      // not even exist yet).
      if (blocks_in_flight_.count(&block) != 0) continue;
      if (block.replicas.empty()) {
        ++lost_blocks_;
        continue;
      }
      const std::size_t before = rereplications_;
      start_rereplication(&block);
      if (rereplications_ > before) ++transfers;
    }
  }
  return transfers;
}

void HdfsCluster::start_rereplication(BlockInfo* block) {
  // Re-replicate from an alive surviving replica onto an alive node not yet
  // holding the block (standard NameNode under-replication repair).
  std::vector<net::NodeId> sources;
  for (const auto r : block->replicas) {
    if (network_.node_up(r)) sources.push_back(r);
  }
  const net::NodeId target = pick_replacement(*block);
  if (sources.empty() || target == net::kInvalidNode) return;
  const auto source = sources[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(sources.size()) - 1))];
  net::FlowMeta meta;
  meta.src_port = net::ports::kEphemeralBase;
  meta.dst_port = net::ports::kDataNodeXfer;
  meta.job_id = 0;  // background repair, not attributable to a job
  meta.kind = net::FlowKind::kHdfsWrite;
  network_.start_flow(source, target, util::Bytes::of(block->bytes), meta,
                      [this, block, target](const net::Flow& flow) {
                        if (flow.aborted) {
                          // Repair itself hit a failure; try again after the
                          // retry window with fresh endpoints.
                          network_.simulator().schedule_in(
                              config_.hdfs_read_retry_s,
                              [this, block] { start_rereplication(block); });
                          return;
                        }
                        block->replicas.push_back(target);
                      },
                      util::Rate::bps(config_.disk_write_bps));
  ++rereplications_;
}

std::uint64_t HdfsCluster::pipeline_rebuilds(std::uint32_t job_id) const {
  const auto it = pipeline_rebuilds_by_job_.find(job_id);
  return it == pipeline_rebuilds_by_job_.end() ? 0 : it->second;
}

std::vector<FileId> HdfsCluster::sorted_file_ids() const {
  std::vector<FileId> ids;
  ids.reserve(files_.size());
  // Key collection is order-insensitive; the sort below restores a stable
  // order for the callers. detlint:allow(unordered-iter)
  for (const auto& [id, info] : files_) {
    (void)info;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::map<net::NodeId, std::uint64_t> HdfsCluster::datanode_usage() const {
  std::map<net::NodeId, std::uint64_t> usage;
  for (const auto dn : datanodes_) usage[dn] = 0;
  // Pure commutative accumulation into an ordered map; the files_ walk
  // order cannot reach the result. detlint:allow(unordered-iter)
  for (const auto& [id, info] : files_) {
    (void)id;
    for (const auto& block : info.blocks) {
      for (const auto replica : block.replicas) usage[replica] += block.bytes;
    }
  }
  return usage;
}

double HdfsCluster::storage_imbalance() const {
  const auto usage = datanode_usage();
  if (usage.empty()) return 0.0;
  std::uint64_t max_bytes = 0;
  std::uint64_t total = 0;
  for (const auto& [node, bytes] : usage) {
    (void)node;
    max_bytes = std::max(max_bytes, bytes);
    total += bytes;
  }
  if (total == 0) return 0.0;
  const double mean = static_cast<double>(total) / static_cast<double>(usage.size());
  return static_cast<double>(max_bytes) / mean;
}

std::size_t HdfsCluster::run_balancer(double threshold, std::size_t max_moves) {
  std::size_t moves = 0;
  while (moves < max_moves) {
    const auto usage = datanode_usage();
    if (usage.size() < 2) break;
    std::uint64_t total = 0;
    for (const auto& [node, bytes] : usage) {
      (void)node;
      total += bytes;
    }
    const double mean = static_cast<double>(total) / static_cast<double>(usage.size());
    net::NodeId over = net::kInvalidNode;
    net::NodeId under = net::kInvalidNode;
    std::uint64_t over_bytes = 0;
    std::uint64_t under_bytes = ~0ull;
    for (const auto& [node, bytes] : usage) {
      if (bytes > over_bytes) {
        over = node;
        over_bytes = bytes;
      }
      if (bytes < under_bytes) {
        under = node;
        under_bytes = bytes;
      }
    }
    if (over == net::kInvalidNode || under == net::kInvalidNode || over == under) break;
    if (static_cast<double>(over_bytes) <= (1.0 + threshold) * mean ||
        static_cast<double>(under_bytes) >= (1.0 - threshold) * mean) {
      break;  // within balance band
    }
    // Pick a block on `over` whose replica set does not already include
    // `under`, preferring the largest movable block (fastest convergence).
    BlockInfo* candidate = nullptr;
    // Sorted file order: ties between equal-sized movable blocks fall to
    // the first file visited, which must not depend on bucket order.
    for (const FileId id : sorted_file_ids()) {
      FileInfo& info = files_.at(id);
      for (auto& block : info.blocks) {
        const bool on_over = std::find(block.replicas.begin(), block.replicas.end(), over) !=
                             block.replicas.end();
        const bool on_under = std::find(block.replicas.begin(), block.replicas.end(), under) !=
                              block.replicas.end();
        if (on_over && !on_under && (candidate == nullptr || block.bytes > candidate->bytes)) {
          candidate = &block;
        }
      }
    }
    if (candidate == nullptr) break;
    // Metadata move now; bytes move asynchronously over the wire.
    candidate->replicas.erase(
        std::find(candidate->replicas.begin(), candidate->replicas.end(), over));
    candidate->replicas.push_back(under);
    net::FlowMeta meta;
    meta.src_port = net::ports::kEphemeralBase;
    meta.dst_port = net::ports::kDataNodeXfer;
    meta.job_id = 0;  // background, like re-replication
    meta.kind = net::FlowKind::kHdfsWrite;
    network_.start_flow(over, under, util::Bytes::of(candidate->bytes), meta, nullptr,
                        util::Rate::bps(config_.disk_write_bps));
    ++moves;
  }
  return moves;
}

const FileInfo& HdfsCluster::file(FileId id) const {
  const auto it = files_.find(id);
  if (it == files_.end()) throw std::out_of_range("hdfs: unknown file id");
  return it->second;
}

const FileInfo& HdfsCluster::file_by_name(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) throw std::out_of_range("hdfs: unknown file: " + name);
  return file(it->second);
}

bool HdfsCluster::has_file(const std::string& name) const { return by_name_.count(name) != 0; }

bool HdfsCluster::is_local(FileId file_id, std::size_t block_index, net::NodeId node) const {
  const auto& block = file(file_id).blocks.at(block_index);
  return std::find(block.replicas.begin(), block.replicas.end(), node) != block.replicas.end();
}

}  // namespace keddah::hadoop
