#include "hadoop/cluster.h"

#include "util/check.h"

#include <stdexcept>

#include "util/log.h"
#include "util/strings.h"

namespace keddah::hadoop {

HadoopCluster::HadoopCluster(const ClusterConfig& config, std::uint64_t seed,
                             capture::CollectorOptions capture_options)
    : config_(config), rng_(seed) {
  net::Topology topo = config_.build_topology();
  net::NetworkOptions net_options;
  net_options.loopback = util::Rate::bps(config_.loopback_bps);
  network_ = std::make_unique<net::Network>(sim_, std::move(topo), net_options);
  workers_ = network_->topology().hosts();
  if (workers_.empty()) throw std::invalid_argument("cluster: topology has no hosts");

  collector_ = std::make_unique<capture::FlowCollector>(*network_, capture_options);
  hdfs_ = std::make_unique<HdfsCluster>(*network_, workers_, config_, rng_.split());
  scheduler_ = std::make_unique<YarnScheduler>(sim_, network_->topology(), workers_,
                                               config_.containers_per_node,
                                               config_.locality_scheduling,
                                               config_.locality_delay_s);
  runner_ = std::make_unique<JobRunner>(*network_, *hdfs_, *scheduler_, config_, rng_.split());
  runner_->set_history_log(&history_);
  control_ = std::make_unique<ControlPlane>(*network_, workers_, master(), config_, rng_.split());
}

std::string HadoopCluster::ensure_input(std::uint64_t bytes) {
  const std::string name = util::format("input_%llu", static_cast<unsigned long long>(bytes));
  if (!hdfs_->has_file(name)) hdfs_->ingest_file(name, bytes);
  return name;
}

JobResult HadoopCluster::run_job(const JobSpec& spec) {
  JobResult result;
  bool done = false;
  control_->enable();
  runner_->submit(spec, [&](const JobResult& r) {
    result = r;
    done = true;
    control_->disable();
  });
  sim_.run();
  if (!done) throw std::logic_error("cluster: simulator drained before job completion");
  return result;
}

bool HadoopCluster::take_node_down(net::NodeId node, bool permanent) {
  if (node == master()) throw std::invalid_argument("cluster: cannot fail the master node");
  if (!scheduler_->node_up(node)) return false;  // already down
  KLOG_INFO << (permanent ? "failing" : "taking down") << " node "
            << network_->topology().node(node).name << " at t=" << sim_.now();
  // Order matters: take the scheduler capacity away first so reruns cannot
  // land on the dead node, then stop the network forwarding its traffic and
  // abort in-flight flows (their failure callbacks see the node as down),
  // then repair storage, then rerun work.
  scheduler_->mark_node_down(node);
  network_->set_node_down(node);
  network_->abort_flows_touching(node);
  if (permanent) {
    hdfs_->handle_datanode_failure(node);
    runner_->handle_node_failure(node);
  } else {
    runner_->handle_node_outage(node);
  }
  control_->mark_node_down(node);
  return true;
}

void HadoopCluster::fail_node(net::NodeId node) {
  if (take_node_down(node, /*permanent=*/true)) {
    crashed_.insert(node);
    ++injected_.crashes;
    return;
  }
  // Already down. If that was only a transient outage, the crash escalates
  // it: the disk is now really gone (replicas repair, surviving map outputs
  // are lost) and the pending recovery must never revive the node.
  if (crashed_.insert(node).second) {
    hdfs_->handle_datanode_failure(node);
    runner_->handle_node_failure(node);
    ++injected_.crashes;
  }
}

void HadoopCluster::fail_node_at(net::NodeId node, double time) {
  sim_.schedule_at(time, [this, node] { fail_node(node); });
}

void HadoopCluster::fail_node_transient(net::NodeId node, double duration) {
  if (!(duration > 0.0)) {
    throw std::invalid_argument("cluster: outage duration must be > 0");
  }
  if (!take_node_down(node, /*permanent=*/false)) return;
  ++injected_.outages;
  sim_.schedule_in(duration, [this, node] { recover_node(node); });
}

void HadoopCluster::recover_node(net::NodeId node) {
  if (crashed_.count(node) != 0) return;  // crashed for good inside the window
  if (scheduler_->node_up(node)) return;  // already back
  KLOG_INFO << "recovering node " << network_->topology().node(node).name << " at t="
            << sim_.now();
  // Network first so heartbeats and reruns scheduled below can flow.
  network_->set_node_up(node);
  scheduler_->mark_node_up(node);
  control_->mark_node_up(node);
}

void HadoopCluster::degrade_link(net::NodeId node, double factor, double duration) {
  if (!(factor > 0.0) || !(factor < 1.0)) {
    throw std::invalid_argument("cluster: degrade factor must be in (0, 1)");
  }
  if (!(duration > 0.0)) {
    throw std::invalid_argument("cluster: degrade duration must be > 0");
  }
  const auto links = network_->topology().links_at(node);
  if (links.empty()) {
    throw std::invalid_argument("cluster: node has no access link to degrade");
  }
  const net::LinkId link = links.front();
  // Overlapping windows do not stack: the nominal capacity is remembered
  // once and the first restore ends the degradation.
  const auto [it, inserted] =
      degraded_links_.try_emplace(link, network_->topology().link(link).capacity);
  KLOG_INFO << "degrading access link of " << network_->topology().node(node).name
            << " to " << factor << "x at t=" << sim_.now();
  network_->set_link_capacity(link, it->second * factor);
  ++injected_.link_degradations;
  sim_.schedule_in(duration, [this, link] { restore_link(link); });
}

void HadoopCluster::restore_link(net::LinkId link) {
  const auto it = degraded_links_.find(link);
  if (it == degraded_links_.end()) return;  // already restored
  network_->set_link_capacity(link, it->second);
  degraded_links_.erase(it);
}

void HadoopCluster::slow_node(net::NodeId node, double factor, double duration) {
  if (!(factor > 1.0)) {
    throw std::invalid_argument("cluster: slow-node factor must be > 1");
  }
  if (!(duration > 0.0)) {
    throw std::invalid_argument("cluster: slow-node duration must be > 0");
  }
  runner_->set_node_slowdown(node, factor);
  ++injected_.slow_nodes;
  sim_.schedule_in(duration, [this, node] { runner_->set_node_slowdown(node, 1.0); });
}

void HadoopCluster::schedule_fault_plan(const FaultPlan& plan) {
  validate_fault_plan(plan, workers_.size(), "fault plan");
  for (const FaultEvent& event : plan.events) {
    const net::NodeId node = workers_.at(event.worker);
    switch (event.kind) {
      case FaultKind::kCrash:
        sim_.schedule_at(event.at, [this, node] { fail_node(node); });
        break;
      case FaultKind::kOutage:
        sim_.schedule_at(event.at, [this, node, d = event.duration] {
          fail_node_transient(node, d);
        });
        break;
      case FaultKind::kDegradeLink:
        sim_.schedule_at(event.at, [this, node, f = event.factor, d = event.duration] {
          degrade_link(node, f, d);
        });
        break;
      case FaultKind::kSlowNode:
        sim_.schedule_at(event.at, [this, node, f = event.factor, d = event.duration] {
          slow_node(node, f, d);
        });
        break;
    }
  }
}

FaultStats HadoopCluster::fault_stats() const {
  FaultStats stats = injected_;
  stats.aborted_flows = network_->aborted_flows();
  stats.aborted_bytes = network_->aborted_bytes();
  stats.fetch_retries = runner_->fetch_retries();
  stats.fetch_backoff_s = runner_->fetch_backoff_s();
  stats.fetch_failure_reruns = runner_->fetch_failure_reruns();
  stats.map_reruns = runner_->map_reruns();
  stats.reducer_restarts = runner_->reducer_restarts();
  stats.pipeline_rebuilds = hdfs_->pipeline_rebuilds();
  stats.hdfs_read_retries = hdfs_->read_retries();
  stats.rereplications = hdfs_->rereplications();
  if constexpr (util::kAuditEnabled) audit_fault_stats(stats);
  return stats;
}

std::vector<JobResult> HadoopCluster::run_jobs(const std::vector<JobSpec>& specs) {
  std::vector<JobResult> results;
  results.reserve(specs.size());
  for (const auto& spec : specs) results.push_back(run_job(spec));
  return results;
}

}  // namespace keddah::hadoop
