#include "hadoop/cluster.h"

#include <stdexcept>

#include "util/log.h"
#include "util/strings.h"

namespace keddah::hadoop {

HadoopCluster::HadoopCluster(const ClusterConfig& config, std::uint64_t seed,
                             capture::CollectorOptions capture_options)
    : config_(config), rng_(seed) {
  net::Topology topo = config_.build_topology();
  net::NetworkOptions net_options;
  net_options.loopback_bps = config_.loopback_bps;
  network_ = std::make_unique<net::Network>(sim_, std::move(topo), net_options);
  workers_ = network_->topology().hosts();
  if (workers_.empty()) throw std::invalid_argument("cluster: topology has no hosts");

  collector_ = std::make_unique<capture::FlowCollector>(*network_, capture_options);
  hdfs_ = std::make_unique<HdfsCluster>(*network_, workers_, config_, rng_.split());
  scheduler_ = std::make_unique<YarnScheduler>(sim_, network_->topology(), workers_,
                                               config_.containers_per_node,
                                               config_.locality_scheduling,
                                               config_.locality_delay_s);
  runner_ = std::make_unique<JobRunner>(*network_, *hdfs_, *scheduler_, config_, rng_.split());
  runner_->set_history_log(&history_);
  control_ = std::make_unique<ControlPlane>(*network_, workers_, master(), config_, rng_.split());
}

std::string HadoopCluster::ensure_input(std::uint64_t bytes) {
  const std::string name = util::format("input_%llu", static_cast<unsigned long long>(bytes));
  if (!hdfs_->has_file(name)) hdfs_->ingest_file(name, bytes);
  return name;
}

JobResult HadoopCluster::run_job(const JobSpec& spec) {
  JobResult result;
  bool done = false;
  control_->enable();
  runner_->submit(spec, [&](const JobResult& r) {
    result = r;
    done = true;
    control_->disable();
  });
  sim_.run();
  if (!done) throw std::logic_error("cluster: simulator drained before job completion");
  return result;
}

void HadoopCluster::fail_node(net::NodeId node) {
  if (node == master()) throw std::invalid_argument("cluster: cannot fail the master node");
  if (!scheduler_->node_up(node)) return;  // already dead
  KLOG_INFO << "failing node " << network_->topology().node(node).name << " at t="
            << sim_.now();
  // Order matters: take the scheduler capacity away first so reruns cannot
  // land on the dead node, then repair storage, then rerun work.
  scheduler_->mark_node_down(node);
  hdfs_->handle_datanode_failure(node);
  runner_->handle_node_failure(node);
  control_->mark_node_down(node);
}

void HadoopCluster::fail_node_at(net::NodeId node, double time) {
  sim_.schedule_at(time, [this, node] { fail_node(node); });
}

std::vector<JobResult> HadoopCluster::run_jobs(const std::vector<JobSpec>& specs) {
  std::vector<JobResult> results;
  results.reserve(specs.size());
  for (const auto& spec : specs) results.push_back(run_job(spec));
  return results;
}

}  // namespace keddah::hadoop
