#include "hadoop/joblog.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "util/strings.h"

namespace keddah::hadoop {

const char* task_event_kind_name(TaskEvent::Kind kind) {
  switch (kind) {
    case TaskEvent::Kind::kJobSubmit:
      return "job_submit";
    case TaskEvent::Kind::kJobFinish:
      return "job_finish";
    case TaskEvent::Kind::kMapStart:
      return "map_start";
    case TaskEvent::Kind::kMapFinish:
      return "map_finish";
    case TaskEvent::Kind::kReduceStart:
      return "reduce_start";
    case TaskEvent::Kind::kReduceFinish:
      return "reduce_finish";
  }
  return "unknown";
}

namespace {
TaskEvent::Kind kind_from_name(const std::string& name) {
  for (int k = 0; k <= 5; ++k) {
    const auto kind = static_cast<TaskEvent::Kind>(k);
    if (name == task_event_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("joblog: unknown event kind '" + name + "'");
}
}  // namespace

std::vector<TaskEvent> JobHistoryLog::for_job(std::uint32_t job_id) const {
  std::vector<TaskEvent> out;
  for (const auto& e : events_) {
    if (e.job_id == job_id) out.push_back(e);
  }
  return out;
}

std::vector<std::uint32_t> JobHistoryLog::job_ids() const {
  std::set<std::uint32_t> ids;
  for (const auto& e : events_) ids.insert(e.job_id);
  return {ids.begin(), ids.end()};
}

bool JobHistoryLog::job_window(std::uint32_t job_id, double* start, double* end) const {
  bool saw_start = false;
  bool saw_end = false;
  for (const auto& e : events_) {
    if (e.job_id != job_id) continue;
    if (e.kind == TaskEvent::Kind::kJobSubmit) {
      *start = e.time;
      saw_start = true;
    } else if (e.kind == TaskEvent::Kind::kJobFinish) {
      *end = e.time;
      saw_end = true;
    }
  }
  return saw_start && saw_end;
}

bool JobHistoryLog::task_active_on(std::uint32_t job_id, net::NodeId node, double t,
                                   double slack_s) const {
  // Match (job, node, task ordinal, task type) start/finish pairs. Events
  // are recorded in time order per task, so a linear scan pairing starts
  // with the next finish of the same key suffices.
  struct Key {
    bool map;
    std::uint32_t index;
    net::NodeId node;
    bool operator<(const Key& o) const {
      if (map != o.map) return map < o.map;
      if (index != o.index) return index < o.index;
      return node < o.node;
    }
  };
  std::map<Key, double> open;  // start times of currently-unmatched tasks
  for (const auto& e : events_) {
    if (e.job_id != job_id || e.node != node) continue;
    switch (e.kind) {
      case TaskEvent::Kind::kMapStart:
        open[{true, e.task_index, e.node}] = e.time;
        break;
      case TaskEvent::Kind::kReduceStart:
        open[{false, e.task_index, e.node}] = e.time;
        break;
      case TaskEvent::Kind::kMapFinish:
      case TaskEvent::Kind::kReduceFinish: {
        const Key key{e.kind == TaskEvent::Kind::kMapFinish, e.task_index, e.node};
        const auto it = open.find(key);
        if (it != open.end()) {
          if (t >= it->second - slack_s && t <= e.time + slack_s) return true;
          open.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }
  // Tasks that never finished (e.g. killed by a failure): active from start.
  for (const auto& [key, start] : open) {
    (void)key;
    if (t >= start - slack_s) return true;
  }
  return false;
}

util::CsvTable JobHistoryLog::to_csv() const {
  util::CsvTable table({"time", "job_id", "kind", "node", "task_index"});
  for (const auto& e : events_) {
    table.add_row({util::format("%.9f", e.time), std::to_string(e.job_id),
                   task_event_kind_name(e.kind), std::to_string(e.node),
                   std::to_string(e.task_index)});
  }
  return table;
}

JobHistoryLog JobHistoryLog::from_csv(const util::CsvTable& table) {
  JobHistoryLog log;
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    TaskEvent e;
    e.time = table.cell_double(i, "time");
    e.job_id = static_cast<std::uint32_t>(table.cell_int(i, "job_id"));
    e.kind = kind_from_name(table.cell(i, "kind"));
    e.node = static_cast<net::NodeId>(table.cell_int(i, "node"));
    e.task_index = static_cast<std::uint32_t>(table.cell_int(i, "task_index"));
    log.add(e);
  }
  return log;
}

void JobHistoryLog::save(const std::string& path) const { to_csv().save(path); }

JobHistoryLog JobHistoryLog::load(const std::string& path) {
  return from_csv(util::CsvTable::load(path));
}

}  // namespace keddah::hadoop
