#include "hadoop/config_json.h"

#include <cmath>
#include <stdexcept>

#include "hadoop/faults.h"
#include "util/strings.h"

namespace keddah::hadoop {

namespace {

[[noreturn]] void fail(const std::string& context, const std::string& key,
                       const std::string& message) {
  throw std::invalid_argument(context + ": " + key + ": " + message);
}

double number_field(const util::Json& doc, const std::string& field, double fallback,
                    const std::string& context, const std::string& key) {
  if (!doc.contains(field)) return fallback;
  const auto& value = doc.at(field);
  if (!value.is_number()) fail(context, key + "." + field, "must be a number");
  const double d = value.as_number();
  if (!std::isfinite(d)) fail(context, key + "." + field, "must be finite");
  return d;
}

std::size_t count_field(const util::Json& doc, const std::string& field, std::size_t fallback,
                        const std::string& context, const std::string& key) {
  const double d =
      number_field(doc, field, static_cast<double>(fallback), context, key);
  if (d < 0.0) fail(context, key + "." + field, "must be >= 0");
  return static_cast<std::size_t>(d);
}

std::uint64_t size_field(const util::Json& doc, const std::string& field, std::uint64_t fallback,
                         const std::string& context, const std::string& key) {
  if (!doc.contains(field)) return fallback;
  const auto& value = doc.at(field);
  if (value.is_number()) return static_cast<std::uint64_t>(value.as_number());
  if (value.is_string()) {
    std::uint64_t bytes = 0;
    if (util::parse_bytes(value.as_string(), &bytes)) return bytes;
  }
  fail(context, key + "." + field, "must be a byte size (\"128MB\", 4096, ...)");
}

}  // namespace

const char* topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kStar:
      return "star";
    case TopologyKind::kRackTree:
      return "racktree";
    case TopologyKind::kFatTree:
      return "fattree";
  }
  return "racktree";
}

TopologyKind topology_kind_from_name(const std::string& name) {
  if (name == "star") return TopologyKind::kStar;
  if (name == "racktree") return TopologyKind::kRackTree;
  if (name == "fattree") return TopologyKind::kFatTree;
  throw std::invalid_argument("unknown topology '" + name +
                              "' (expected star, racktree, or fattree)");
}

ClusterConfig default_scenario_cluster() {
  ClusterConfig cfg;
  cfg.containers_per_node = 4;
  cfg.locality_delay_s = 2.0;
  return cfg;
}

ClusterConfig parse_cluster_config(const util::Json& cluster, const std::string& context,
                                   const std::string& key) {
  ClusterConfig cfg = default_scenario_cluster();
  if (!cluster.is_object()) fail(context, key, "must be an object");
  if (cluster.contains("topology")) {
    const auto& topo = cluster.at("topology");
    if (!topo.is_string()) fail(context, key + ".topology", "must be a string");
    try {
      cfg.topology = topology_kind_from_name(topo.as_string());
    } catch (const std::invalid_argument& e) {
      fail(context, key + ".topology", e.what());
    }
  }
  cfg.racks = count_field(cluster, "racks", cfg.racks, context, key);
  cfg.hosts_per_rack = count_field(cluster, "hosts_per_rack", cfg.hosts_per_rack, context, key);
  cfg.fat_tree_k = count_field(cluster, "fat_tree_k", cfg.fat_tree_k, context, key);
  cfg.access_bps = number_field(cluster, "access_gbps", 1.0, context, key) * 1e9;
  cfg.core_bps = number_field(cluster, "core_gbps", 10.0, context, key) * 1e9;
  cfg.block_size = size_field(cluster, "block_size", cfg.block_size, context, key);
  cfg.replication = static_cast<std::uint32_t>(
      count_field(cluster, "replication", cfg.replication, context, key));
  cfg.containers_per_node =
      count_field(cluster, "containers", cfg.containers_per_node, context, key);
  cfg.slowstart = number_field(cluster, "slowstart", cfg.slowstart, context, key);
  cfg.locality_delay_s =
      number_field(cluster, "locality_delay_s", cfg.locality_delay_s, context, key);
  cfg.map_output_compress_ratio =
      number_field(cluster, "compress_ratio", cfg.map_output_compress_ratio, context, key);
  cfg.straggler_fraction =
      number_field(cluster, "straggler_fraction", cfg.straggler_fraction, context, key);
  if (cluster.contains("speculative")) {
    const auto& spec = cluster.at("speculative");
    if (!spec.is_bool()) fail(context, key + ".speculative", "must be a boolean");
    cfg.speculative_execution = spec.as_bool();
  }
  return cfg;
}

util::Json cluster_config_to_json(const ClusterConfig& cfg) {
  util::Json doc = util::Json::object();
  doc["topology"] = util::Json(topology_kind_name(cfg.topology));
  doc["racks"] = util::Json(static_cast<std::uint64_t>(cfg.racks));
  doc["hosts_per_rack"] = util::Json(static_cast<std::uint64_t>(cfg.hosts_per_rack));
  if (cfg.topology == TopologyKind::kFatTree) {
    doc["fat_tree_k"] = util::Json(static_cast<std::uint64_t>(cfg.fat_tree_k));
  }
  doc["access_gbps"] = util::Json(cfg.access_bps / 1e9);
  doc["core_gbps"] = util::Json(cfg.core_bps / 1e9);
  doc["block_size"] = util::Json(cfg.block_size);
  doc["replication"] = util::Json(static_cast<std::uint64_t>(cfg.replication));
  doc["containers"] = util::Json(static_cast<std::uint64_t>(cfg.containers_per_node));
  doc["slowstart"] = util::Json(cfg.slowstart);
  doc["locality_delay_s"] = util::Json(cfg.locality_delay_s);
  doc["compress_ratio"] = util::Json(cfg.map_output_compress_ratio);
  doc["straggler_fraction"] = util::Json(cfg.straggler_fraction);
  doc["speculative"] = util::Json(cfg.speculative_execution);
  return doc;
}

util::Json fault_plan_to_json(const FaultPlan& plan) {
  util::Json array = util::Json::array();
  for (const auto& event : plan.events) {
    util::Json entry = util::Json::object();
    entry["kind"] = util::Json(fault_kind_name(event.kind));
    entry["worker"] = util::Json(static_cast<std::uint64_t>(event.worker));
    entry["at"] = util::Json(event.at);
    if (event.kind != FaultKind::kCrash) entry["duration"] = util::Json(event.duration);
    if (event.kind == FaultKind::kDegradeLink || event.kind == FaultKind::kSlowNode) {
      entry["factor"] = util::Json(event.factor);
    }
    array.push_back(std::move(entry));
  }
  return array;
}

}  // namespace keddah::hadoop
