// Scripted fault injection: a FaultPlan is a validated list of fault events
// — permanent crashes, transient outages with a recovery time, access-link
// degradation windows, and slow-node (straggler) injection — declared in
// scenario JSON or on the CLI and scheduled onto a HadoopCluster. FaultStats
// aggregates the recovery counters (retries, backoff, rebuilds, aborted
// flows) a faulted run produces, so captures under faults can be compared
// against clean ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/units.h"

namespace keddah::hadoop {

/// What kind of fault an event injects.
enum class FaultKind : std::uint8_t {
  /// Permanent node crash: containers die, replicas re-replicate, the node
  /// never returns.
  kCrash = 0,
  /// Transient outage: as a crash, but data survives on disk and the node
  /// rejoins after `duration` with empty container slots.
  kOutage = 1,
  /// The worker's access link runs at `factor` x capacity for `duration`.
  kDegradeLink = 2,
  /// Compute on the worker runs `factor` times slower for `duration`.
  kSlowNode = 3,
};

/// Human-readable kind name ("crash", "outage", "degrade_link", "slow_node").
const char* fault_kind_name(FaultKind kind);

/// Inverse of fault_kind_name; throws std::invalid_argument on unknown names.
FaultKind fault_kind_from_name(const std::string& name);

/// One scripted fault.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  /// Worker index into HadoopCluster::workers(). Worker 0 co-hosts the
  /// master and cannot be faulted.
  std::size_t worker = 0;
  /// Injection time, seconds of simulation.
  double at = 0.0;
  /// Window length, seconds: recovery time for outages, degradation window
  /// for degrade_link, slowdown window for slow_node. Ignored for crashes.
  double duration = 0.0;
  /// degrade_link: capacity multiplier in (0, 1). slow_node: compute
  /// multiplier > 1. Ignored for crash/outage.
  double factor = 0.0;
};

/// An ordered script of fault events for one run.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  std::size_t size() const { return events.size(); }
};

/// Validates every event against the cluster size and per-kind parameter
/// ranges (finite non-negative times, positive windows, sane factors).
/// `context` names the source (file path, "cli", ...) so the error message
/// points at the offending file and key. Throws std::invalid_argument.
void validate_fault_plan(const FaultPlan& plan, std::size_t num_workers,
                         const std::string& context);

/// Parses a JSON array of fault events:
///   [ {"kind": "outage",       "worker": 3, "at": 10.0, "duration": 15.0},
///     {"kind": "degrade_link", "worker": 2, "at": 5.0, "duration": 20.0, "factor": 0.1},
///     {"kind": "slow_node",    "worker": 1, "at": 0.0, "duration": 30.0, "factor": 4.0},
///     {"kind": "crash",        "worker": 5, "at": 12.5} ]
/// Entries without "kind" are legacy crash entries ({"worker", "at"}).
/// Field types and per-kind ranges are checked here with `context`-prefixed
/// messages; worker indices are range-checked by validate_fault_plan once
/// the cluster size is known.
FaultPlan parse_fault_plan(const util::Json& array, const std::string& context);

/// Aggregated fault/recovery counters for one cluster run.
struct FaultStats {
  // Injections performed.
  std::uint64_t crashes = 0;
  std::uint64_t outages = 0;
  std::uint64_t link_degradations = 0;
  std::uint64_t slow_nodes = 0;
  // Recovery work those injections caused.
  std::uint64_t aborted_flows = 0;
  util::Bytes aborted_bytes;
  std::uint64_t fetch_retries = 0;
  double fetch_backoff_s = 0.0;
  std::uint64_t fetch_failure_reruns = 0;
  std::uint64_t map_reruns = 0;
  std::uint64_t reducer_restarts = 0;
  std::uint64_t pipeline_rebuilds = 0;
  std::uint64_t hdfs_read_retries = 0;
  std::uint64_t rereplications = 0;
};

/// Audits internal consistency of aggregated fault counters: aborted bytes
/// require aborted flows (and vice versa for a non-trivial payload), and
/// recovery work (reruns, restarts, rebuilds, re-replications, retries)
/// requires at least one injected fault. Throws util::AuditError naming the
/// violated relation. Called by HadoopCluster::fault_stats() in KEDDAH_CHECK
/// builds; callable explicitly in any build (the audit test does).
void audit_fault_stats(const FaultStats& stats);

}  // namespace keddah::hadoop
