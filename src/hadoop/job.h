// MapReduce job descriptions and results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace keddah::hadoop {

/// Workload-specific shape of a MapReduce job. The selectivities are the
/// parameters that determine per-class traffic volume (shuffle bytes = map
/// selectivity x input; HDFS-write bytes = reduce selectivity x shuffle x
/// replication).
struct JobProfile {
  std::string name = "custom";
  /// Map output bytes per input byte (after combiner).
  double map_selectivity = 1.0;
  /// Final output bytes per shuffled byte.
  double reduce_selectivity = 1.0;
  /// Map compute cost, seconds per MiB of input.
  double map_cpu_s_per_mb = 0.01;
  /// Reduce (merge + apply) compute cost, seconds per MiB of shuffle input.
  double reduce_cpu_s_per_mb = 0.01;
  /// Zipf exponent of partition sizes across reducers (0 = balanced; key
  /// skew in e.g. PageRank makes some reducers hot).
  double partition_skew = 0.0;
};

/// One submitted job instance.
struct JobSpec {
  JobProfile profile;
  /// HDFS input file (must exist before submission). Convenience for the
  /// common single-input case; `extra_inputs` adds more (a job over a
  /// directory of part files, e.g. the previous iteration's output).
  std::string input_file;
  std::vector<std::string> extra_inputs;
  /// Number of reduce tasks; 0 makes a map-only job whose maps write their
  /// output directly.
  std::size_t num_reducers = 8;

  /// All input names in order.
  std::vector<std::string> all_inputs() const {
    std::vector<std::string> out;
    if (!input_file.empty()) out.push_back(input_file);
    out.insert(out.end(), extra_inputs.begin(), extra_inputs.end());
    return out;
  }
};

/// Execution summary returned on job completion.
struct JobResult {
  std::uint32_t job_id = 0;
  std::string job_name;
  double submit_time = 0.0;
  double end_time = 0.0;
  std::size_t num_maps = 0;
  std::size_t num_reducers = 0;
  /// Time the last map task finished.
  double map_phase_end = 0.0;
  /// First shuffle fetch launch / last fetch completion (0 when map-only).
  double shuffle_start = 0.0;
  double shuffle_end = 0.0;
  /// Byte accounting (application-level payloads).
  std::uint64_t input_bytes = 0;
  std::uint64_t map_output_bytes = 0;
  std::uint64_t output_bytes = 0;
  /// Map input locality achieved (node-local reads are capture-invisible).
  std::size_t maps_with_local_read = 0;
  /// HDFS files the job produced (reducer parts, or map parts when
  /// map-only) — feedable as the next iteration's input.
  std::vector<std::string> output_files;

  // ---- recovery accounting (all zero on a clean run) ----
  /// Shuffle fetches retried after a failure against a down/failed host.
  std::uint64_t fetch_retries = 0;
  /// Total time reducers spent in fetch-retry backoff, seconds.
  double fetch_backoff_s = 0.0;
  /// Maps re-executed because fetch failures crossed the threshold.
  std::uint64_t fetch_failure_reruns = 0;
  /// Maps re-executed for any reason (node loss included).
  std::uint64_t map_reruns = 0;
  /// Reducers restarted after losing partial shuffle state.
  std::uint64_t reducer_restarts = 0;
  /// HDFS write pipelines rebuilt with a replacement DataNode.
  std::uint64_t pipeline_rebuilds = 0;

  double duration() const { return end_time - submit_time; }
};

}  // namespace keddah::hadoop
