#include "serve/admission.h"

#include <stdexcept>
#include <utility>

namespace keddah::serve {

OverloadPolicy parse_overload_policy(const std::string& text) {
  if (text == "shed") return OverloadPolicy::kShed;
  if (text == "reject") return OverloadPolicy::kReject;
  if (text == "none") return OverloadPolicy::kNone;
  throw std::invalid_argument("unknown overload policy '" + text +
                              "' (want shed, reject, or none)");
}

const char* overload_policy_name(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kShed: return "shed";
    case OverloadPolicy::kReject: return "reject";
    case OverloadPolicy::kNone: return "none";
  }
  return "shed";
}

std::size_t AdmissionController::endpoint_cost(const std::string& path) {
  if (path == "/v1/whatif") return 2;
  if (path == "/v1/reproduce") return 2;
  if (path == "/v1/validate") return 3;
  return 0;  // health/stats/shutdown and 404-bound paths are always served
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.shed_threshold == 0) options_.shed_threshold = (3 * options_.capacity) / 4;
  if (options_.shed_threshold == 0) options_.shed_threshold = 1;
  if (options_.shed_threshold > options_.capacity) {
    options_.shed_threshold = options_.capacity;
  }
}

AdmissionController::Ticket::Ticket(Ticket&& other) noexcept
    : controller_(other.controller_), cost_(other.cost_) {
  other.controller_ = nullptr;
  other.cost_ = 0;
}

AdmissionController::Ticket& AdmissionController::Ticket::operator=(Ticket&& other) noexcept {
  if (this != &other) {
    if (controller_ != nullptr) controller_->release(cost_);
    controller_ = other.controller_;
    cost_ = other.cost_;
    other.controller_ = nullptr;
    other.cost_ = 0;
  }
  return *this;
}

AdmissionController::Ticket::~Ticket() {
  if (controller_ != nullptr) controller_->release(cost_);
}

AdmissionController::Verdict AdmissionController::try_admit(std::size_t cost,
                                                            Ticket* ticket) {
  util::MutexLock lock(&mutex_);
  if (cost == 0 || options_.policy == OverloadPolicy::kNone) {
    ++admitted_;
    if (cost > 0) {
      in_flight_cost_ += cost;
      *ticket = Ticket(this, cost);
    }
    return Verdict::kAdmit;
  }
  if (in_flight_cost_ + cost > options_.capacity) {
    ++rejected_;
    return Verdict::kReject;
  }
  if (options_.policy == OverloadPolicy::kShed &&
      in_flight_cost_ >= options_.shed_threshold) {
    ++shed_;
    return Verdict::kShed;
  }
  in_flight_cost_ += cost;
  ++admitted_;
  *ticket = Ticket(this, cost);
  return Verdict::kAdmit;
}

bool AdmissionController::overloaded() const {
  util::MutexLock lock(&mutex_);
  return in_flight_cost_ >= options_.shed_threshold;
}

AdmissionController::Snapshot AdmissionController::snapshot() const {
  Snapshot snapshot;
  snapshot.capacity = options_.capacity;
  snapshot.shed_threshold = options_.shed_threshold;
  snapshot.policy = overload_policy_name(options_.policy);
  util::MutexLock lock(&mutex_);
  snapshot.in_flight_cost = in_flight_cost_;
  snapshot.overloaded = in_flight_cost_ >= options_.shed_threshold;
  snapshot.admitted = admitted_;
  snapshot.rejected = rejected_;
  snapshot.shed = shed_;
  return snapshot;
}

void AdmissionController::release(std::size_t cost) {
  util::MutexLock lock(&mutex_);
  in_flight_cost_ -= cost;
}

}  // namespace keddah::serve
