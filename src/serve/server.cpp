#include "serve/server.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "api/error.h"
#include "api/specs.h"
#include "keddah/scenario.h"
#include "keddah/toolchain.h"
#include "lint/lint.h"
#include "util/args.h"
#include "util/strings.h"

namespace keddah::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::string_view text, std::uint64_t hash = kFnvOffset) {
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= kFnvPrime;
  }
  return hash;
}

/// Cache key: endpoint, canonical (compact, key-sorted) request, and the
/// content hash of any model involved. NUL separators keep field
/// boundaries unambiguous.
std::uint64_t cache_key(std::string_view endpoint, std::string_view canonical,
                        std::uint64_t model_hash) {
  std::uint64_t hash = fnv1a(endpoint);
  hash = fnv1a(std::string_view("\0", 1), hash);
  hash = fnv1a(canonical, hash);
  hash = fnv1a(std::string_view("\0", 1), hash);
  for (int i = 0; i < 8; ++i) {
    const char byte = static_cast<char>((model_hash >> (8 * i)) & 0xff);
    hash = fnv1a(std::string_view(&byte, 1), hash);
  }
  return hash;
}

HttpResponse json_response(int status, const util::Json& doc) {
  return HttpResponse{status, "application/json", api::to_body(doc), 0};
}

/// An api::ErrorCode envelope response; retryable codes carry a fixed
/// Retry-After so response bytes stay deterministic.
HttpResponse error_response(api::ErrorCode code, const std::string& message,
                            util::Json details = util::Json()) {
  HttpResponse response;
  response.status = api::error_http_status(code);
  response.body = api::error_body(code, message, std::move(details));
  if (api::error_retryable(code)) response.retry_after_s = 1;
  return response;
}

/// A details object with just a hint string.
util::Json hint_details(const std::string& hint) {
  util::Json details = util::Json::object();
  details["hint"] = util::Json(hint);
  return details;
}

HttpResponse spec_error_response(const api::SpecError& error) {
  return error_response(api::ErrorCode::kSpecInvalid, error.what(), error.to_json());
}

/// 400 listing every lint error with its key path, keddah-lint style.
HttpResponse lint_error_response(const std::vector<lint::Diagnostic>& diagnostics) {
  util::Json rows = util::Json::array();
  for (const auto& d : diagnostics) {
    if (d.severity != lint::Severity::kError) continue;
    util::Json row = util::Json::object();
    row["file"] = util::Json(d.file);
    row["key"] = util::Json(d.key);
    row["message"] = util::Json(d.message);
    if (!d.hint.empty()) row["hint"] = util::Json(d.hint);
    rows.push_back(std::move(row));
  }
  util::Json details = util::Json::object();
  details["diagnostics"] = std::move(rows);
  return error_response(api::ErrorCode::kLintRejected, "request failed lint",
                        std::move(details));
}

bool has_lint_errors(const std::vector<lint::Diagnostic>& diagnostics) {
  return std::any_of(diagnostics.begin(), diagnostics.end(), [](const lint::Diagnostic& d) {
    return d.severity == lint::Severity::kError;
  });
}

HttpOptions http_options_from(const ServeOptions& options) {
  HttpOptions http;
  http.port = options.port;
  http.threads = options.threads;
  http.header_timeout_ms = options.header_timeout_ms;
  http.body_timeout_ms = options.body_timeout_ms;
  http.write_timeout_ms = options.write_timeout_ms;
  http.handler_budget_ms = options.request_timeout_ms;
  http.max_header_bytes = options.max_header_bytes;
  http.max_body_bytes = options.max_body_bytes;
  http.max_pending = options.max_pending;
  http.drain_timeout_ms = options.drain_timeout_ms;
  http.sndbuf_bytes = options.sndbuf_bytes;
  return http;
}

AdmissionOptions admission_options_from(const ServeOptions& options) {
  AdmissionOptions admission;
  admission.capacity = options.queue_depth;
  admission.shed_threshold = options.shed_threshold;
  admission.policy = options.overload_policy;
  return admission;
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      http_(http_options_from(options_)),
      admission_(admission_options_from(options_)) {
  if (options_.max_resident_models == 0) options_.max_resident_models = 1;
  if (options_.max_cache_entries == 0) options_.max_cache_entries = 1;
  // No request threads exist yet, but registration helpers REQUIRE the
  // models capability, so hold it for the whole registration pass.
  util::MutexLock lock(&models_mutex_);
  for (const auto& path : options_.model_files) {
    register_model_file(path, /*expect_bank=*/false);
  }
  if (!options_.model_bank_file.empty()) {
    register_model_file(options_.model_bank_file, /*expect_bank=*/true);
  }
}

void Server::register_model_file(const std::string& path, bool expect_bank) {
  const util::Json doc = util::Json::load_file(path);
  if (doc.is_object() && doc.contains("models")) {
    const auto& models = doc.at("models").as_array();
    for (std::size_t i = 0; i < models.size(); ++i) register_model_doc(models[i], path, i);
    return;
  }
  if (expect_bank) {
    throw std::invalid_argument(path + ": models: missing required array (not a model bank)");
  }
  register_model_doc(doc, path, std::nullopt);
}

void Server::register_model_doc(const util::Json& doc, const std::string& path,
                                std::optional<std::size_t> bank_index) {
  std::string name = doc.get_string("job_name", "");
  if (name.empty()) {
    throw std::invalid_argument(path + ": job_name: missing required string (not a model)");
  }
  // Distinct models sharing a job name stay addressable via "#2", "#3", ...
  if (registry_.count(name) != 0) {
    std::size_t n = 2;
    while (registry_.count(util::format("%s#%zu", name.c_str(), n)) != 0) ++n;
    name = util::format("%s#%zu", name.c_str(), n);
  }
  ModelSource source;
  source.path = path;
  source.bank_index = bank_index;
  source.content_hash = fnv1a(doc.dump(-1));
  registry_.emplace(std::move(name), std::move(source));
}

std::shared_ptr<const model::KeddahModel> Server::acquire_model(const std::string& name) {
  util::MutexLock lock(&models_mutex_);
  const auto reg = registry_.find(name);
  if (reg == registry_.end()) return nullptr;
  if (const auto it = resident_.find(name); it != resident_.end()) {
    model_lru_.splice(model_lru_.begin(), model_lru_, it->second.second);
    return it->second.first;
  }
  const util::Json doc = util::Json::load_file(reg->second.path);
  const util::Json& node =
      reg->second.bank_index ? doc.at("models").at(*reg->second.bank_index) : doc;
  auto loaded = std::make_shared<const model::KeddahModel>(model::KeddahModel::from_json(node));
  {
    util::MutexLock stats_lock(&stats_mutex_);
    ++model_loads_;
  }
  model_lru_.push_front(name);
  resident_[name] = {loaded, model_lru_.begin()};
  while (resident_.size() > options_.max_resident_models) {
    resident_.erase(model_lru_.back());
    model_lru_.pop_back();
  }
  return loaded;
}

std::uint64_t Server::model_hash(const std::string& name) const {
  util::MutexLock lock(&models_mutex_);
  const auto it = registry_.find(name);
  return it == registry_.end() ? 0 : it->second.content_hash;
}

bool Server::model_registered(const std::string& name) const {
  util::MutexLock lock(&models_mutex_);
  return registry_.count(name) != 0;
}

std::vector<std::string> Server::model_names() const {
  util::MutexLock lock(&models_mutex_);
  std::vector<std::string> names;
  names.reserve(registry_.size());
  for (const auto& [name, source] : registry_) names.push_back(name);
  return names;
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.admission = admission_.snapshot();
  stats.transport = http_.transport_stats();
  util::MutexLock lock(&stats_mutex_);
  stats.requests = requests_;
  stats.errors = errors_;
  stats.cache_hits = cache_hits_;
  stats.cache_misses = cache_misses_;
  stats.model_loads = model_loads_;
  stats.deadline_expired = deadline_expired_;
  return stats;
}

// keddah:hot(cache-hit)
std::shared_ptr<const std::string> Server::cache_lookup(std::uint64_t key) {
  util::MutexLock lock(&cache_mutex_);
  const auto it = cache_.find(key);
  if (it == cache_.end()) {
    util::MutexLock stats_lock(&stats_mutex_);
    ++cache_misses_;
    return nullptr;
  }
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
  {
    util::MutexLock stats_lock(&stats_mutex_);
    ++cache_hits_;
  }
  // A hit hands out the stored body by refcount bump; the byte copy into
  // the HTTP response happens outside cache_mutex_.
  return it->second.body;
}

void Server::cache_store(std::uint64_t key, const std::string& body) {
  // The miss path allocates once per distinct response; eviction keeps the
  // map bounded at max_cache_entries.
  auto shared = std::make_shared<const std::string>(body);
  util::MutexLock lock(&cache_mutex_);
  if (cache_.count(key) != 0) return;  // a concurrent miss computed it first
  cache_lru_.push_front(key);
  cache_[key] = CacheEntry{std::move(shared), cache_lru_.begin()};
  while (cache_.size() > options_.max_cache_entries) {
    cache_.erase(cache_lru_.back());
    cache_lru_.pop_back();
  }
}

std::optional<HttpResponse> Server::admit_cold_work(const HttpRequest& request,
                                                    AdmissionController::Ticket* ticket) {
  const std::size_t cost = AdmissionController::endpoint_cost(request.path);
  switch (admission_.try_admit(cost, ticket)) {
    case AdmissionController::Verdict::kReject: {
      const auto snapshot = admission_.snapshot();
      util::Json details = util::Json::object();
      details["queue_capacity"] = util::Json(static_cast<std::uint64_t>(snapshot.capacity));
      details["in_flight_cost"] =
          util::Json(static_cast<std::uint64_t>(snapshot.in_flight_cost));
      return error_response(api::ErrorCode::kQueueFull,
                            "admission queue at capacity; retry after backoff",
                            std::move(details));
    }
    case AdmissionController::Verdict::kShed:
      return error_response(api::ErrorCode::kOverloaded,
                            "overloaded: shedding cold " + request.path +
                                " work (cache hits, /v1/health and /v1/stats "
                                "still answer)");
    case AdmissionController::Verdict::kAdmit: break;
  }
  // Deadline-aware shedding: a request that already sat past its
  // wall-clock budget (typically queue time under overload) is turned
  // away before its heavy work starts — the client has likely given up,
  // and running it anyway would only deepen the overload.
  if (request.deadline.expired()) {
    {
      util::MutexLock lock(&stats_mutex_);
      ++deadline_expired_;
    }
    return error_response(api::ErrorCode::kDeadlineExceeded,
                          "request outlived its wall-clock budget before "
                          "execution started");
  }
  return std::nullopt;
}

HttpResponse Server::handle(const HttpRequest& request) {
  {
    util::MutexLock lock(&stats_mutex_);
    ++requests_;
  }
  HttpResponse response;
  try {
    if (request.path == "/v1/health") {
      response = request.method == "GET"
                     ? json_response(200, health_json())
                     : error_response(api::ErrorCode::kMethodNotAllowed,
                                      "use GET " + request.path);
    } else if (request.path == "/v1/stats") {
      response = request.method == "GET"
                     ? json_response(200, stats_json())
                     : error_response(api::ErrorCode::kMethodNotAllowed,
                                      "use GET " + request.path);
    } else if (request.path == "/v1/whatif") {
      response = request.method == "POST" ? handle_whatif(request)
                                          : error_response(api::ErrorCode::kMethodNotAllowed,
                                                           "use POST " + request.path);
    } else if (request.path == "/v1/reproduce") {
      response = request.method == "POST" ? handle_reproduce(request)
                                          : error_response(api::ErrorCode::kMethodNotAllowed,
                                                           "use POST " + request.path);
    } else if (request.path == "/v1/validate") {
      response = request.method == "POST" ? handle_validate(request)
                                          : error_response(api::ErrorCode::kMethodNotAllowed,
                                                           "use POST " + request.path);
    } else if (request.path == "/v1/shutdown") {
      if (request.method != "POST") {
        response = error_response(api::ErrorCode::kMethodNotAllowed,
                                  "use POST " + request.path);
      } else {
        util::Json doc = util::Json::object();
        doc["api"] = util::Json(api::kApiVersionString);
        doc["status"] = util::Json("shutting down");
        response = json_response(200, doc);
        // Only flag + notify here: stop() would join the pool this handler
        // runs on. The waiter in run_serve_command performs the stop.
        request_shutdown();
      }
    } else {
      response = error_response(
          api::ErrorCode::kNotFound, "unknown endpoint " + request.path,
          hint_details("endpoints: /v1/health /v1/stats /v1/whatif /v1/reproduce "
                       "/v1/validate /v1/shutdown"));
    }
  } catch (const api::SpecError& e) {
    response = spec_error_response(e);
  } catch (const std::invalid_argument& e) {
    response = error_response(api::ErrorCode::kBadRequest, e.what());
  } catch (const std::exception& e) {
    response = error_response(api::ErrorCode::kInternal, e.what());
  }
  if (response.status != 200) {
    util::MutexLock lock(&stats_mutex_);
    ++errors_;
  }
  return response;
}

HttpResponse Server::handle_whatif(const HttpRequest& request) {
  util::Json doc;
  try {
    doc = util::Json::parse(request.body);
  } catch (const std::exception& e) {
    return error_response(api::ErrorCode::kBadRequest, e.what(),
                          hint_details("the request body must be a JSON scenario document"));
  }
  // Lint before running: the linter reports every defective key path in one
  // pass, where the parser would stop at the first.
  std::vector<lint::Diagnostic> diagnostics;
  lint::lint_scenario(doc, "request", diagnostics);
  if (has_lint_errors(diagnostics)) return lint_error_response(diagnostics);

  const std::string canonical = doc.dump(-1);
  const std::uint64_t key = cache_key("whatif", canonical, 0);
  // Cache hits are answered before admission: they cost microseconds and
  // are exactly the interactive traffic overload mode exists to protect.
  if (const auto cached = cache_lookup(key)) {
    return HttpResponse{200, "application/json", *cached, 0};
  }
  AdmissionController::Ticket ticket;
  if (auto refused = admit_cold_work(request, &ticket)) return std::move(*refused);
  const auto whatif = api::parse_whatif_request(doc, "request");
  const auto outcome = core::run_scenario(whatif.scenario);
  const std::string response_body = api::to_body(api::whatif_response(outcome));
  cache_store(key, response_body);
  return HttpResponse{200, "application/json", response_body, 0};
}

HttpResponse Server::handle_reproduce(const HttpRequest& request) {
  util::Json doc;
  try {
    doc = util::Json::parse(request.body);
  } catch (const std::exception& e) {
    return error_response(api::ErrorCode::kBadRequest, e.what(),
                          hint_details("the request body must be a JSON reproduce request"));
  }
  const auto reproduce = api::parse_reproduce_request(doc, "request");
  if (!model_registered(reproduce.model)) {
    return error_response(api::ErrorCode::kNotFound,
                          "unknown model '" + reproduce.model + "'",
                          hint_details("registered models: " + util::join(model_names(), ", ")));
  }
  const std::string canonical = doc.dump(-1);
  const std::uint64_t key = cache_key("reproduce", canonical, model_hash(reproduce.model));
  if (const auto cached = cache_lookup(key)) {
    return HttpResponse{200, "application/json", *cached, 0};
  }
  AdmissionController::Ticket ticket;
  if (auto refused = admit_cold_work(request, &ticket)) return std::move(*refused);
  const auto model = acquire_model(reproduce.model);
  if (!model) {
    return error_response(api::ErrorCode::kNotFound,
                          "unknown model '" + reproduce.model + "'",
                          hint_details("registered models: " + util::join(model_names(), ", ")));
  }
  const auto result = core::generate_and_replay(*model, reproduce.spec,
                                                reproduce.cluster.build_topology());
  const std::string response_body = api::to_body(api::reproduce_response(result));
  cache_store(key, response_body);
  return HttpResponse{200, "application/json", response_body, 0};
}

HttpResponse Server::handle_validate(const HttpRequest& request) {
  util::Json doc;
  try {
    doc = util::Json::parse(request.body);
  } catch (const std::exception& e) {
    return error_response(api::ErrorCode::kBadRequest, e.what(),
                          hint_details("the request body must be a JSON validate request"));
  }
  const auto validate = api::parse_validate_request(doc, "request");
  if (!model_registered(validate.model)) {
    return error_response(api::ErrorCode::kNotFound,
                          "unknown model '" + validate.model + "'",
                          hint_details("registered models: " + util::join(model_names(), ", ")));
  }
  const std::string canonical = doc.dump(-1);
  const std::uint64_t key = cache_key("validate", canonical, model_hash(validate.model));
  if (const auto cached = cache_lookup(key)) {
    return HttpResponse{200, "application/json", *cached, 0};
  }
  AdmissionController::Ticket ticket;
  if (auto refused = admit_cold_work(request, &ticket)) return std::move(*refused);
  const auto model = acquire_model(validate.model);
  if (!model) {
    return error_response(api::ErrorCode::kNotFound,
                          "unknown model '" + validate.model + "'",
                          hint_details("registered models: " + util::join(model_names(), ", ")));
  }
  model::TrainingRun reference;
  try {
    reference = core::load_run(validate.run);
  } catch (const std::exception& e) {
    return error_response(api::ErrorCode::kNotFound,
                          std::string("cannot load run: ") + e.what(),
                          hint_details("`run` names the basename of a `keddah capture` output"));
  }
  const auto report = core::validate_model(*model, reference, validate.cluster, validate.spec);
  const std::string response_body = api::to_body(api::validate_response(report));
  cache_store(key, response_body);
  return HttpResponse{200, "application/json", response_body, 0};
}

util::Json Server::health_json() const {
  util::Json doc = util::Json::object();
  doc["api"] = util::Json(api::kApiVersionString);
  doc["status"] = util::Json("ok");
  // Overload is reported but never blocks this endpoint: health is the
  // daemon's pulse and the graceful-degradation story depends on it.
  doc["overloaded"] = util::Json(admission_.overloaded());
  util::Json endpoints = util::Json::array();
  for (const char* e : {"/v1/health", "/v1/reproduce", "/v1/shutdown", "/v1/stats",
                        "/v1/validate", "/v1/whatif"}) {
    endpoints.push_back(util::Json(e));
  }
  doc["endpoints"] = std::move(endpoints);
  util::Json models = util::Json::array();
  for (const auto& name : model_names()) models.push_back(util::Json(name));
  doc["models"] = std::move(models);
  return doc;
}

util::Json Server::stats_json() {
  util::Json cache = util::Json::object();
  util::Json models = util::Json::object();
  {
    util::MutexLock lock(&cache_mutex_);
    cache["entries"] = util::Json(static_cast<std::uint64_t>(cache_.size()));
  }
  cache["capacity"] = util::Json(static_cast<std::uint64_t>(options_.max_cache_entries));
  {
    util::MutexLock lock(&models_mutex_);
    models["registered"] = util::Json(static_cast<std::uint64_t>(registry_.size()));
    models["resident"] = util::Json(static_cast<std::uint64_t>(resident_.size()));
  }
  models["max_resident"] = util::Json(static_cast<std::uint64_t>(options_.max_resident_models));
  util::Json doc = util::Json::object();
  doc["api"] = util::Json(api::kApiVersionString);
  {
    util::MutexLock lock(&stats_mutex_);
    doc["requests"] = util::Json(requests_);
    doc["errors"] = util::Json(errors_);
    cache["hits"] = util::Json(cache_hits_);
    cache["misses"] = util::Json(cache_misses_);
    models["loads"] = util::Json(model_loads_);
  }
  doc["cache"] = std::move(cache);
  doc["models"] = std::move(models);

  // The overload-survival counters: admission verdicts + queue occupancy
  // (429/503 sources), the deadline shed count, and the transport's
  // 408/413/429/400 tallies — everything the chaos suite and the overload
  // bench gate on.
  const auto snapshot = stats();
  util::Json queue = util::Json::object();
  queue["capacity"] = util::Json(static_cast<std::uint64_t>(snapshot.admission.capacity));
  queue["shed_threshold"] =
      util::Json(static_cast<std::uint64_t>(snapshot.admission.shed_threshold));
  queue["in_flight_cost"] =
      util::Json(static_cast<std::uint64_t>(snapshot.admission.in_flight_cost));
  queue["policy"] = util::Json(snapshot.admission.policy);
  util::Json transport = util::Json::object();
  transport["accepted"] = util::Json(snapshot.transport.accepted);
  transport["rejected_pending"] = util::Json(snapshot.transport.rejected_pending);
  transport["header_timeouts"] = util::Json(snapshot.transport.header_timeouts);
  transport["body_timeouts"] = util::Json(snapshot.transport.body_timeouts);
  transport["oversized"] = util::Json(snapshot.transport.oversized);
  transport["malformed"] = util::Json(snapshot.transport.malformed);
  transport["early_disconnects"] = util::Json(snapshot.transport.early_disconnects);
  transport["write_aborts"] = util::Json(snapshot.transport.write_aborts);
  util::Json robustness = util::Json::object();
  robustness["overloaded"] = util::Json(snapshot.admission.overloaded);
  robustness["admitted"] = util::Json(snapshot.admission.admitted);
  robustness["rejected"] = util::Json(snapshot.admission.rejected);
  robustness["shed"] = util::Json(snapshot.admission.shed);
  robustness["deadline_expired"] = util::Json(snapshot.deadline_expired);
  robustness["queue"] = std::move(queue);
  robustness["transport"] = std::move(transport);
  doc["robustness"] = std::move(robustness);
  return doc;
}

void Server::start() {
  http_.start([this](const HttpRequest& request) { return handle(request); });
}

void Server::wait_for_shutdown() {
  util::MutexLock lock(&shutdown_mutex_);
  while (!shutdown_requested_) shutdown_cv_.wait(shutdown_mutex_);
}

void Server::request_shutdown() {
  {
    util::MutexLock lock(&shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Server::stop() { http_.stop(); }

int run_serve_command(const util::Args& args, std::ostream& out, std::ostream& err) {
  ServeOptions options;
  options.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  options.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  options.model_bank_file = args.get("model-bank", "");
  options.max_resident_models = static_cast<std::size_t>(args.get_int("max-models", 8));
  options.max_cache_entries = static_cast<std::size_t>(args.get_int("cache-entries", 128));
  options.request_timeout_ms = args.get_int("request-timeout", options.request_timeout_ms);
  options.header_timeout_ms = args.get_int("header-timeout", options.header_timeout_ms);
  options.drain_timeout_ms = args.get_int("drain-timeout", options.drain_timeout_ms);
  options.queue_depth = static_cast<std::size_t>(
      args.get_int("queue-depth", static_cast<std::int64_t>(options.queue_depth)));
  options.max_pending = static_cast<std::size_t>(
      args.get_int("max-pending", static_cast<std::int64_t>(options.max_pending)));
  const std::string policy = args.get("overload-policy", "shed");
  for (const auto& path : util::split(args.get("models", ""), ',')) {
    if (!path.empty()) options.model_files.push_back(path);
  }
  args.reject_unknown();
  try {
    options.overload_policy = parse_overload_policy(policy);
  } catch (const std::invalid_argument& e) {
    throw util::UsageError(std::string("--overload-policy: ") + e.what());
  }

  Server server(std::move(options));
  server.start();
  out << "keddah serve listening on http://127.0.0.1:" << server.port() << "\n";
  const auto models = server.model_names();
  if (!models.empty()) out << "models: " << util::join(models, ", ") << "\n";
  out.flush();
  server.wait_for_shutdown();
  server.stop();
  out << "keddah serve: shutdown complete\n";
  (void)err;
  return 0;
}

}  // namespace keddah::serve
