#include "serve/server.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "api/specs.h"
#include "keddah/scenario.h"
#include "keddah/toolchain.h"
#include "lint/lint.h"
#include "util/args.h"
#include "util/strings.h"

namespace keddah::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::string_view text, std::uint64_t hash = kFnvOffset) {
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= kFnvPrime;
  }
  return hash;
}

/// Cache key: endpoint, canonical (compact, key-sorted) request, and the
/// content hash of any model involved. NUL separators keep field
/// boundaries unambiguous.
std::uint64_t cache_key(std::string_view endpoint, std::string_view canonical,
                        std::uint64_t model_hash) {
  std::uint64_t hash = fnv1a(endpoint);
  hash = fnv1a(std::string_view("\0", 1), hash);
  hash = fnv1a(canonical, hash);
  hash = fnv1a(std::string_view("\0", 1), hash);
  for (int i = 0; i < 8; ++i) {
    const char byte = static_cast<char>((model_hash >> (8 * i)) & 0xff);
    hash = fnv1a(std::string_view(&byte, 1), hash);
  }
  return hash;
}

HttpResponse json_response(int status, const util::Json& doc) {
  return HttpResponse{status, "application/json", api::to_body(doc)};
}

/// {"api": "v1", "error": {"message": ...}}.
HttpResponse error_response(int status, const std::string& message,
                            const std::string& hint = "") {
  util::Json error = util::Json::object();
  error["message"] = util::Json(message);
  if (!hint.empty()) error["hint"] = util::Json(hint);
  util::Json doc = util::Json::object();
  doc["api"] = util::Json(api::kApiVersionString);
  doc["error"] = std::move(error);
  return json_response(status, doc);
}

HttpResponse spec_error_response(const api::SpecError& error) {
  util::Json doc = util::Json::object();
  doc["api"] = util::Json(api::kApiVersionString);
  doc["error"] = error.to_json();
  return json_response(400, doc);
}

/// 400 listing every lint error with its key path, keddah-lint style.
HttpResponse lint_error_response(const std::vector<lint::Diagnostic>& diagnostics) {
  util::Json rows = util::Json::array();
  for (const auto& d : diagnostics) {
    if (d.severity != lint::Severity::kError) continue;
    util::Json row = util::Json::object();
    row["file"] = util::Json(d.file);
    row["key"] = util::Json(d.key);
    row["message"] = util::Json(d.message);
    if (!d.hint.empty()) row["hint"] = util::Json(d.hint);
    rows.push_back(std::move(row));
  }
  util::Json error = util::Json::object();
  error["message"] = util::Json("request failed lint");
  util::Json doc = util::Json::object();
  doc["api"] = util::Json(api::kApiVersionString);
  doc["error"] = std::move(error);
  doc["diagnostics"] = std::move(rows);
  return json_response(400, doc);
}

bool has_lint_errors(const std::vector<lint::Diagnostic>& diagnostics) {
  return std::any_of(diagnostics.begin(), diagnostics.end(), [](const lint::Diagnostic& d) {
    return d.severity == lint::Severity::kError;
  });
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)), http_(options_.port, options_.threads) {
  if (options_.max_resident_models == 0) options_.max_resident_models = 1;
  if (options_.max_cache_entries == 0) options_.max_cache_entries = 1;
  // No request threads exist yet, but registration helpers REQUIRE the
  // models capability, so hold it for the whole registration pass.
  util::MutexLock lock(&models_mutex_);
  for (const auto& path : options_.model_files) {
    register_model_file(path, /*expect_bank=*/false);
  }
  if (!options_.model_bank_file.empty()) {
    register_model_file(options_.model_bank_file, /*expect_bank=*/true);
  }
}

void Server::register_model_file(const std::string& path, bool expect_bank) {
  const util::Json doc = util::Json::load_file(path);
  if (doc.is_object() && doc.contains("models")) {
    const auto& models = doc.at("models").as_array();
    for (std::size_t i = 0; i < models.size(); ++i) register_model_doc(models[i], path, i);
    return;
  }
  if (expect_bank) {
    throw std::invalid_argument(path + ": models: missing required array (not a model bank)");
  }
  register_model_doc(doc, path, std::nullopt);
}

void Server::register_model_doc(const util::Json& doc, const std::string& path,
                                std::optional<std::size_t> bank_index) {
  std::string name = doc.get_string("job_name", "");
  if (name.empty()) {
    throw std::invalid_argument(path + ": job_name: missing required string (not a model)");
  }
  // Distinct models sharing a job name stay addressable via "#2", "#3", ...
  if (registry_.count(name) != 0) {
    std::size_t n = 2;
    while (registry_.count(util::format("%s#%zu", name.c_str(), n)) != 0) ++n;
    name = util::format("%s#%zu", name.c_str(), n);
  }
  ModelSource source;
  source.path = path;
  source.bank_index = bank_index;
  source.content_hash = fnv1a(doc.dump(-1));
  registry_.emplace(std::move(name), std::move(source));
}

std::shared_ptr<const model::KeddahModel> Server::acquire_model(const std::string& name) {
  util::MutexLock lock(&models_mutex_);
  const auto reg = registry_.find(name);
  if (reg == registry_.end()) return nullptr;
  if (const auto it = resident_.find(name); it != resident_.end()) {
    model_lru_.splice(model_lru_.begin(), model_lru_, it->second.second);
    return it->second.first;
  }
  const util::Json doc = util::Json::load_file(reg->second.path);
  const util::Json& node =
      reg->second.bank_index ? doc.at("models").at(*reg->second.bank_index) : doc;
  auto loaded = std::make_shared<const model::KeddahModel>(model::KeddahModel::from_json(node));
  {
    util::MutexLock stats_lock(&stats_mutex_);
    ++model_loads_;
  }
  model_lru_.push_front(name);
  resident_[name] = {loaded, model_lru_.begin()};
  while (resident_.size() > options_.max_resident_models) {
    resident_.erase(model_lru_.back());
    model_lru_.pop_back();
  }
  return loaded;
}

std::uint64_t Server::model_hash(const std::string& name) const {
  util::MutexLock lock(&models_mutex_);
  const auto it = registry_.find(name);
  return it == registry_.end() ? 0 : it->second.content_hash;
}

std::vector<std::string> Server::model_names() const {
  util::MutexLock lock(&models_mutex_);
  std::vector<std::string> names;
  names.reserve(registry_.size());
  for (const auto& [name, source] : registry_) names.push_back(name);
  return names;
}

std::optional<std::string> Server::cache_lookup(std::uint64_t key) {
  util::MutexLock lock(&cache_mutex_);
  const auto it = cache_.find(key);
  if (it == cache_.end()) {
    util::MutexLock stats_lock(&stats_mutex_);
    ++cache_misses_;
    return std::nullopt;
  }
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
  {
    util::MutexLock stats_lock(&stats_mutex_);
    ++cache_hits_;
  }
  return it->second.body;
}

void Server::cache_store(std::uint64_t key, const std::string& body) {
  util::MutexLock lock(&cache_mutex_);
  if (cache_.count(key) != 0) return;  // a concurrent miss computed it first
  cache_lru_.push_front(key);
  cache_[key] = CacheEntry{body, cache_lru_.begin()};
  while (cache_.size() > options_.max_cache_entries) {
    cache_.erase(cache_lru_.back());
    cache_lru_.pop_back();
  }
}

HttpResponse Server::handle(const HttpRequest& request) {
  {
    util::MutexLock lock(&stats_mutex_);
    ++requests_;
  }
  HttpResponse response;
  try {
    if (request.path == "/v1/health") {
      response = request.method == "GET" ? json_response(200, health_json())
                                         : error_response(405, "use GET " + request.path);
    } else if (request.path == "/v1/stats") {
      response = request.method == "GET" ? json_response(200, stats_json())
                                         : error_response(405, "use GET " + request.path);
    } else if (request.path == "/v1/whatif") {
      response = request.method == "POST" ? handle_whatif(request.body)
                                          : error_response(405, "use POST " + request.path);
    } else if (request.path == "/v1/reproduce") {
      response = request.method == "POST" ? handle_reproduce(request.body)
                                          : error_response(405, "use POST " + request.path);
    } else if (request.path == "/v1/validate") {
      response = request.method == "POST" ? handle_validate(request.body)
                                          : error_response(405, "use POST " + request.path);
    } else if (request.path == "/v1/shutdown") {
      if (request.method != "POST") {
        response = error_response(405, "use POST " + request.path);
      } else {
        util::Json doc = util::Json::object();
        doc["api"] = util::Json(api::kApiVersionString);
        doc["status"] = util::Json("shutting down");
        response = json_response(200, doc);
        // Only flag + notify here: stop() would join the pool this handler
        // runs on. The waiter in run_serve_command performs the stop.
        request_shutdown();
      }
    } else {
      response = error_response(
          404, "unknown endpoint " + request.path,
          "endpoints: /v1/health /v1/stats /v1/whatif /v1/reproduce /v1/validate /v1/shutdown");
    }
  } catch (const api::SpecError& e) {
    response = spec_error_response(e);
  } catch (const std::invalid_argument& e) {
    response = error_response(400, e.what());
  } catch (const std::exception& e) {
    response = error_response(500, e.what());
  }
  if (response.status != 200) {
    util::MutexLock lock(&stats_mutex_);
    ++errors_;
  }
  return response;
}

HttpResponse Server::handle_whatif(const std::string& body) {
  util::Json doc;
  try {
    doc = util::Json::parse(body);
  } catch (const std::exception& e) {
    return error_response(400, e.what(), "the request body must be a JSON scenario document");
  }
  // Lint before running: the linter reports every defective key path in one
  // pass, where the parser would stop at the first.
  std::vector<lint::Diagnostic> diagnostics;
  lint::lint_scenario(doc, "request", diagnostics);
  if (has_lint_errors(diagnostics)) return lint_error_response(diagnostics);

  const std::string canonical = doc.dump(-1);
  const std::uint64_t key = cache_key("whatif", canonical, 0);
  if (const auto cached = cache_lookup(key)) {
    return HttpResponse{200, "application/json", *cached};
  }
  const auto request = api::parse_whatif_request(doc, "request");
  const auto outcome = core::run_scenario(request.scenario);
  const std::string response_body = api::to_body(api::whatif_response(outcome));
  cache_store(key, response_body);
  return HttpResponse{200, "application/json", response_body};
}

HttpResponse Server::handle_reproduce(const std::string& body) {
  util::Json doc;
  try {
    doc = util::Json::parse(body);
  } catch (const std::exception& e) {
    return error_response(400, e.what(), "the request body must be a JSON reproduce request");
  }
  const auto request = api::parse_reproduce_request(doc, "request");
  const auto model = acquire_model(request.model);
  if (!model) {
    return error_response(404, "unknown model '" + request.model + "'",
                          "registered models: " + util::join(model_names(), ", "));
  }
  const std::string canonical = doc.dump(-1);
  const std::uint64_t key = cache_key("reproduce", canonical, model_hash(request.model));
  if (const auto cached = cache_lookup(key)) {
    return HttpResponse{200, "application/json", *cached};
  }
  const auto result = core::generate_and_replay(*model, request.spec,
                                                request.cluster.build_topology());
  const std::string response_body = api::to_body(api::reproduce_response(result));
  cache_store(key, response_body);
  return HttpResponse{200, "application/json", response_body};
}

HttpResponse Server::handle_validate(const std::string& body) {
  util::Json doc;
  try {
    doc = util::Json::parse(body);
  } catch (const std::exception& e) {
    return error_response(400, e.what(), "the request body must be a JSON validate request");
  }
  const auto request = api::parse_validate_request(doc, "request");
  const auto model = acquire_model(request.model);
  if (!model) {
    return error_response(404, "unknown model '" + request.model + "'",
                          "registered models: " + util::join(model_names(), ", "));
  }
  const std::string canonical = doc.dump(-1);
  const std::uint64_t key = cache_key("validate", canonical, model_hash(request.model));
  if (const auto cached = cache_lookup(key)) {
    return HttpResponse{200, "application/json", *cached};
  }
  model::TrainingRun reference;
  try {
    reference = core::load_run(request.run);
  } catch (const std::exception& e) {
    return error_response(404, std::string("cannot load run: ") + e.what(),
                          "`run` names the basename of a `keddah capture` output");
  }
  const auto report = core::validate_model(*model, reference, request.cluster, request.spec);
  const std::string response_body = api::to_body(api::validate_response(report));
  cache_store(key, response_body);
  return HttpResponse{200, "application/json", response_body};
}

util::Json Server::health_json() const {
  util::Json doc = util::Json::object();
  doc["api"] = util::Json(api::kApiVersionString);
  doc["status"] = util::Json("ok");
  util::Json endpoints = util::Json::array();
  for (const char* e : {"/v1/health", "/v1/reproduce", "/v1/shutdown", "/v1/stats",
                        "/v1/validate", "/v1/whatif"}) {
    endpoints.push_back(util::Json(e));
  }
  doc["endpoints"] = std::move(endpoints);
  util::Json models = util::Json::array();
  for (const auto& name : model_names()) models.push_back(util::Json(name));
  doc["models"] = std::move(models);
  return doc;
}

util::Json Server::stats_json() {
  util::Json cache = util::Json::object();
  util::Json models = util::Json::object();
  {
    util::MutexLock lock(&cache_mutex_);
    cache["entries"] = util::Json(static_cast<std::uint64_t>(cache_.size()));
  }
  cache["capacity"] = util::Json(static_cast<std::uint64_t>(options_.max_cache_entries));
  {
    util::MutexLock lock(&models_mutex_);
    models["registered"] = util::Json(static_cast<std::uint64_t>(registry_.size()));
    models["resident"] = util::Json(static_cast<std::uint64_t>(resident_.size()));
  }
  models["max_resident"] = util::Json(static_cast<std::uint64_t>(options_.max_resident_models));
  util::Json doc = util::Json::object();
  doc["api"] = util::Json(api::kApiVersionString);
  {
    util::MutexLock lock(&stats_mutex_);
    doc["requests"] = util::Json(requests_);
    doc["errors"] = util::Json(errors_);
    cache["hits"] = util::Json(cache_hits_);
    cache["misses"] = util::Json(cache_misses_);
    models["loads"] = util::Json(model_loads_);
  }
  doc["cache"] = std::move(cache);
  doc["models"] = std::move(models);
  return doc;
}

void Server::start() {
  http_.start([this](const HttpRequest& request) { return handle(request); });
}

void Server::wait_for_shutdown() {
  util::MutexLock lock(&shutdown_mutex_);
  while (!shutdown_requested_) shutdown_cv_.wait(shutdown_mutex_);
}

void Server::request_shutdown() {
  {
    util::MutexLock lock(&shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Server::stop() { http_.stop(); }

int run_serve_command(const util::Args& args, std::ostream& out, std::ostream& err) {
  ServeOptions options;
  options.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  options.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  options.model_bank_file = args.get("model-bank", "");
  options.max_resident_models = static_cast<std::size_t>(args.get_int("max-models", 8));
  options.max_cache_entries = static_cast<std::size_t>(args.get_int("cache-entries", 128));
  for (const auto& path : util::split(args.get("models", ""), ',')) {
    if (!path.empty()) options.model_files.push_back(path);
  }
  args.reject_unknown();

  Server server(std::move(options));
  server.start();
  out << "keddah serve listening on http://127.0.0.1:" << server.port() << "\n";
  const auto models = server.model_names();
  if (!models.empty()) out << "models: " << util::join(models, ", ") << "\n";
  out.flush();
  server.wait_for_shutdown();
  server.stop();
  out << "keddah serve: shutdown complete\n";
  (void)err;
  return 0;
}

}  // namespace keddah::serve
