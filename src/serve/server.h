// `keddah serve`: a resident what-if query daemon.
//
// The batch CLI pays scenario parsing, model loading, and process startup
// on every question. The daemon keeps a bank of trained models hot behind a
// small LRU, answers Spec-API (api/specs.h) requests over embedded HTTP,
// and memoizes whole responses keyed by a content hash of (endpoint,
// canonical request, model), so repeated what-ifs — the common interactive
// pattern — return cached bytes.
//
// Endpoints (all JSON, wire format v1):
//   GET  /v1/health    liveness + the registered model names
//   GET  /v1/stats     request/cache/model-bank counters
//   POST /v1/whatif    scenario document -> core::run_scenario outcome
//   POST /v1/reproduce model sample + fabric replay (api::ReproduceRequest)
//   POST /v1/validate  model vs saved capture    (api::ValidateRequest)
//   POST /v1/shutdown  clean stop
//
// Determinism contract: a /v1/whatif response body is byte-identical to
// `keddah run-scenario --file X --json` for the same document — both sides
// are api::to_body(api::whatif_response(core::run_scenario(...))) and the
// daemon adds no request-dependent state to the body. Request bodies are
// vetted by keddah-lint before execution, so a malformed scenario gets a
// 400 naming every defective key path instead of a first-throw message.
//
// Caching assumes the daemon's inputs are immutable for its lifetime:
// model files are hashed once at registration, and /v1/validate run files
// are re-read per miss but never invalidate earlier cache entries. Restart
// the daemon after retraining.
//
// Overload survival (DESIGN.md "Serving robustness"): the transport
// budgets every socket phase (408 on slow clients, 413 on oversized
// input, 429 past the connection bound), and this layer adds work-level
// admission — cold heavy requests pay endpoint cost units into a bounded
// budget (429 when full), overload mode sheds cold /v1/whatif-class work
// with 503 while health, stats, and cache hits keep answering, and a
// request that outlives its wall-clock budget is shed before its heavy
// work starts. Every non-200 is an api::ErrorCode envelope.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/keddah_model.h"
#include "serve/admission.h"
#include "serve/http.h"
#include "util/json.h"
#include "util/mutex.h"

namespace keddah::util {
class Args;
}

namespace keddah::serve {

struct ServeOptions {
  /// Listen port; 0 asks the kernel for an ephemeral port.
  std::uint16_t port = 0;
  /// Connection/handler worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Standalone model files (each a KeddahModel JSON document).
  std::vector<std::string> model_files;
  /// Optional model-bank file ({"models": [...]}); every entry registers.
  std::string model_bank_file;
  /// Resident-model LRU capacity (models beyond it reload on demand).
  std::size_t max_resident_models = 8;
  /// Whole-response cache capacity (entries, LRU-evicted).
  std::size_t max_cache_entries = 128;

  // Robustness knobs (see DESIGN.md "Serving robustness"). Non-positive
  // timeouts disable that budget.
  /// Handler wall-clock budget per request (--request-timeout); a request
  /// that outlives it before its heavy work starts is shed with a 503.
  std::int64_t request_timeout_ms = 30000;
  /// Budget to receive the full header block (--header-timeout; 408).
  std::int64_t header_timeout_ms = 5000;
  /// Budget to receive the declared body (408).
  std::int64_t body_timeout_ms = 10000;
  /// SO_SNDTIMEO while writing a response (stalled readers).
  std::int64_t write_timeout_ms = 10000;
  /// How long stop() waits for in-flight requests (--drain-timeout).
  std::int64_t drain_timeout_ms = 5000;
  /// Accepted-but-unfinished connection bound (--max-pending; 429 beyond).
  std::size_t max_pending = 256;
  /// Admission budget in endpoint cost units (--queue-depth; 429 beyond).
  std::size_t queue_depth = 64;
  /// In-flight cost where overload mode starts; 0 = (3*queue_depth)/4.
  std::size_t shed_threshold = 0;
  /// What overload mode does to cold heavy work (--overload-policy).
  OverloadPolicy overload_policy = OverloadPolicy::kShed;
  /// Transport caps (413 beyond; not CLI-exposed, tests tighten them).
  std::size_t max_header_bytes = 1u << 20;
  std::size_t max_body_bytes = 64u << 20;
  /// SO_SNDBUF for accepted sockets; 0 = kernel default (chaos-test knob).
  std::size_t sndbuf_bytes = 0;
};

/// Point-in-time counters for tests, benches, and /v1/stats. All values
/// are monotonic totals since construction except the queue/overload
/// fields, which are instantaneous.
struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t model_loads = 0;
  /// Requests shed because they outlived their wall-clock budget (503).
  std::uint64_t deadline_expired = 0;
  /// Admission verdict counters and occupancy (429/503 sources).
  AdmissionController::Snapshot admission;
  /// Transport-level failures (408/413/429/400 before the handler).
  TransportStats transport;
};

/// The daemon. Construction registers models (reading each file once to
/// name and hash it); start()/stop() manage the HTTP front end; handle()
/// is the transport-free entry point tests and benches drive in-process.
class Server {
 public:
  explicit Server(ServeOptions options);

  /// Answers one request. Thread-safe; usable without start().
  HttpResponse handle(const HttpRequest& request);

  /// Boots the HTTP listener.
  void start();
  /// The bound port (valid after construction).
  std::uint16_t port() const { return http_.port(); }

  /// Blocks until a /v1/shutdown request (or request_shutdown()) arrives.
  void wait_for_shutdown();
  /// Unblocks wait_for_shutdown().
  void request_shutdown();
  /// Stops the HTTP listener and drains in-flight requests. Idempotent.
  void stop();

  /// Registered model names, sorted.
  std::vector<std::string> model_names() const;

  /// Counter snapshot (the same numbers /v1/stats serializes).
  ServerStats stats() const;

 private:
  /// Where a registered model lives on disk; models reload from here when
  /// they fall out of the resident LRU.
  struct ModelSource {
    std::string path;
    /// Index into the file's "models" array for bank entries.
    std::optional<std::size_t> bank_index;
    /// FNV-1a over the model's canonical JSON — part of every cache key
    /// that involves the model.
    std::uint64_t content_hash = 0;
  };

  void register_model_file(const std::string& path, bool expect_bank)
      REQUIRES(models_mutex_);
  void register_model_doc(const util::Json& doc, const std::string& path,
                          std::optional<std::size_t> bank_index) REQUIRES(models_mutex_);
  /// Resident-LRU model lookup; loads from disk on miss. Returns nullptr
  /// for unregistered names. The shared_ptr keeps an evicted model alive
  /// while a request still uses it.
  std::shared_ptr<const model::KeddahModel> acquire_model(const std::string& name)
      EXCLUDES(models_mutex_);
  std::uint64_t model_hash(const std::string& name) const EXCLUDES(models_mutex_);
  /// True when `name` is registered — a cheap existence probe that lets
  /// 404s and cache hits resolve before any model is loaded from disk.
  bool model_registered(const std::string& name) const EXCLUDES(models_mutex_);

  std::shared_ptr<const std::string> cache_lookup(std::uint64_t key) EXCLUDES(cache_mutex_);
  void cache_store(std::uint64_t key, const std::string& body) EXCLUDES(cache_mutex_);

  HttpResponse handle_whatif(const HttpRequest& request);
  HttpResponse handle_reproduce(const HttpRequest& request);
  HttpResponse handle_validate(const HttpRequest& request);
  /// The admission/deadline gate every cold heavy request passes after its
  /// cache lookup missed: queue-full -> 429, overload shed -> 503, expired
  /// wall-clock budget -> 503. Returns nullopt when the request may run
  /// (with `*ticket` holding its cost units).
  std::optional<HttpResponse> admit_cold_work(const HttpRequest& request,
                                              AdmissionController::Ticket* ticket);
  util::Json health_json() const;
  util::Json stats_json() EXCLUDES(stats_mutex_, cache_mutex_, models_mutex_);

  ServeOptions options_;
  HttpServer http_;
  AdmissionController admission_;

  // Capability map (see DESIGN.md "Concurrency model"): models_mutex_
  // guards the registry + resident LRU, cache_mutex_ the response cache,
  // stats_mutex_ the counters, shutdown_mutex_ the shutdown flag.
  // stats_mutex_ is a leaf: it is acquired inside models_mutex_
  // (acquire_model) and inside cache_mutex_ (cache_lookup) and never the
  // other way around.
  mutable util::Mutex models_mutex_;
  std::map<std::string, ModelSource> registry_ GUARDED_BY(models_mutex_);
  std::list<std::string> model_lru_ GUARDED_BY(models_mutex_);  // front = MRU
  std::map<std::string, std::pair<std::shared_ptr<const model::KeddahModel>,
                                  std::list<std::string>::iterator>>
      resident_ GUARDED_BY(models_mutex_);

  util::Mutex cache_mutex_;
  std::list<std::uint64_t> cache_lru_ GUARDED_BY(cache_mutex_);  // front = MRU
  struct CacheEntry {
    // Shared so a cache hit hands out a refcount bump under cache_mutex_
    // instead of copying a multi-kilobyte response body while holding it.
    std::shared_ptr<const std::string> body;
    std::list<std::uint64_t>::iterator lru_it;
  };
  std::map<std::uint64_t, CacheEntry> cache_ GUARDED_BY(cache_mutex_);

  mutable util::Mutex stats_mutex_;
  std::uint64_t requests_ GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t errors_ GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t cache_hits_ GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t cache_misses_ GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t model_loads_ GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t deadline_expired_ GUARDED_BY(stats_mutex_) = 0;

  util::Mutex shutdown_mutex_;
  util::CondVar shutdown_cv_;
  bool shutdown_requested_ GUARDED_BY(shutdown_mutex_) = false;
};

/// The `keddah serve` subcommand: builds ServeOptions from flags, boots the
/// daemon, prints the listen line ("keddah serve listening on
/// http://127.0.0.1:PORT"), and blocks until shutdown.
int run_serve_command(const util::Args& args, std::ostream& out, std::ostream& err);

}  // namespace keddah::serve
