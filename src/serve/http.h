// A minimal embedded HTTP/1.1 server for the `keddah serve` daemon.
//
// Deliberately small: IPv4 loopback only, one request per connection
// (Connection: close), bodies sized by Content-Length, no TLS, no chunked
// transfer. That is exactly enough for a localhost JSON query daemon and
// keeps the whole transport auditable in one file. The accept loop runs on
// a dedicated thread; each accepted connection is handed to a
// util::ThreadPool worker which reads the request, invokes the handler,
// writes the response, and closes the socket.
//
// Overload-survival contract (see DESIGN.md "Serving robustness"):
//   - Every socket phase is budgeted. Header and body reads carry overall
//     deadlines (not per-read timers, so a drip-feeding slow-loris client
//     cannot reset them) and time out with a 408; response writes carry
//     SO_SNDTIMEO so a stalled reader cannot pin a worker.
//   - Malformed framing is answered, not dropped: a torn request line or a
//     non-numeric Content-Length gets a 400 envelope, an oversized header
//     block or declared body gets a 413 — each with the api::ErrorCode
//     taxonomy, never a silent close.
//   - Admission is bounded: at most `max_pending` accepted connections may
//     be queued or in flight; beyond that the accept loop answers a canned
//     429 inline instead of growing the pool queue without bound.
//   - Writes use ::send with MSG_NOSIGNAL and retry EINTR, so a peer that
//     closes mid-response costs one write_aborts counter tick, not a
//     SIGPIPE that kills the daemon.
//   - stop() closes the listener (unblocking accept), then waits up to
//     `drain_timeout_ms` for in-flight connections to finish before the
//     final pool join. Workers cannot hang past their socket budgets, so
//     the join is bounded too.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "util/deadline.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace keddah::serve {

/// Transport knobs. The defaults suit an interactive localhost daemon; the
/// chaos suite tightens them to force the failure paths quickly. A
/// non-positive timeout disables that budget.
struct HttpOptions {
  /// Listen port; 0 = kernel-assigned ephemeral port.
  std::uint16_t port = 0;
  /// Connection/handler worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Overall budget to receive the full header block (slow-loris defence).
  std::int64_t header_timeout_ms = 5000;
  /// Overall budget to receive the declared body after the headers.
  std::int64_t body_timeout_ms = 10000;
  /// SO_SNDTIMEO per send() while writing the response.
  std::int64_t write_timeout_ms = 10000;
  /// Wall-clock budget handed to the handler via HttpRequest::deadline;
  /// the policy layer sheds requests that outlive it (503).
  std::int64_t handler_budget_ms = 30000;
  /// Hard caps; exceeding either is a 413, not a silent close.
  std::size_t max_header_bytes = 1u << 20;
  std::size_t max_body_bytes = 64u << 20;
  /// Accepted-but-unfinished connection bound; beyond it new connections
  /// get a canned 429 from the accept loop.
  std::size_t max_pending = 256;
  /// How long stop() waits for in-flight connections before joining.
  std::int64_t drain_timeout_ms = 5000;
  /// SO_SNDBUF for accepted sockets; 0 = kernel default. The chaos suite
  /// shrinks it so a stalled reader forces the write-timeout path without
  /// needing megabyte responses.
  std::size_t sndbuf_bytes = 0;
};

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string path;    ///< Request target, e.g. "/v1/whatif".
  std::string body;    ///< Raw body (Content-Length bytes).
  /// Wall-clock budget for answering this request. The transport arms it
  /// when the connection is accepted; in-process callers (tests, benches)
  /// default to never(), i.e. no budget.
  util::Deadline deadline = util::Deadline::never();
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// When > 0, emitted as a "Retry-After: N" header (408/429/503 carry a
  /// fixed value so response bytes stay deterministic).
  std::int64_t retry_after_s = 0;
};

/// Transport-level failure counters, mirrored into /v1/stats. Snapshot
/// semantics: values are monotonically increasing totals since start.
struct TransportStats {
  std::uint64_t accepted = 0;           ///< Connections handed to the pool.
  std::uint64_t rejected_pending = 0;   ///< 429s written from the accept loop.
  std::uint64_t header_timeouts = 0;    ///< 408: header budget exhausted.
  std::uint64_t body_timeouts = 0;      ///< 408: body budget exhausted.
  std::uint64_t oversized = 0;          ///< 413: header or body over cap.
  std::uint64_t malformed = 0;          ///< 400: framing/Content-Length defects.
  std::uint64_t early_disconnects = 0;  ///< Peer vanished before owing a response.
  std::uint64_t write_aborts = 0;       ///< Response write failed or timed out.
};

/// Standard reason phrase for the statuses the daemon emits.
const char* status_text(int status);

/// Request handler; runs on a pool worker. Must not throw (the server wraps
/// handler exceptions into a 500 envelope, but well-behaved handlers map
/// their own failures to 4xx/5xx bodies).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  /// Binds and listens on 127.0.0.1:`options.port`. Throws
  /// std::runtime_error when the socket cannot be bound.
  explicit HttpServer(const HttpOptions& options);

  /// Stops the server if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (the actual one when constructed with port 0).
  std::uint16_t port() const { return port_; }

  /// Spawns the accept thread. Call once.
  void start(HttpHandler handler);

  /// Closes the listening socket, joins the accept thread, waits up to
  /// drain_timeout_ms for in-flight connections, then joins the pool.
  /// Idempotent.
  void stop();

  /// Point-in-time copy of the failure counters.
  TransportStats transport_stats() const;

 private:
  void accept_loop() EXCLUDES(state_mutex_);
  void handle_connection(int fd);
  /// Serializes and sends `response`; counts write_aborts on failure.
  void respond(int fd, const HttpResponse& response);
  void finish_connection() EXCLUDES(pending_mutex_);

  // Shutdown handshake: stop() wins the stopping_ exchange, then closes
  // listen_fd_ under state_mutex_ (unblocking a pending accept), joins the
  // acceptor, and finally drains the pool. The acceptor re-reads
  // listen_fd_ under the same mutex each round, so a closed-and-reset fd
  // is observed as -1 rather than a stale descriptor number.
  HttpOptions options_;
  HttpHandler handler_;  // set in start() before the acceptor spawns
  mutable util::Mutex state_mutex_;
  int listen_fd_ GUARDED_BY(state_mutex_) = -1;
  std::uint16_t port_ = 0;  // written once in the constructor
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::unique_ptr<util::ThreadPool> pool_;

  // Admission bound + drain handshake: pending_ counts accepted
  // connections not yet finished; stop() waits on drained_cv_ for it to
  // reach zero (bounded by drain_timeout_ms).
  mutable util::Mutex pending_mutex_;
  std::size_t pending_ GUARDED_BY(pending_mutex_) = 0;
  util::CondVar drained_cv_;

  // Counters are plain atomics: incremented from workers and the accept
  // loop, snapshotted by transport_stats() without ordering requirements.
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_pending_{0};
  std::atomic<std::uint64_t> header_timeouts_{0};
  std::atomic<std::uint64_t> body_timeouts_{0};
  std::atomic<std::uint64_t> oversized_{0};
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> early_disconnects_{0};
  std::atomic<std::uint64_t> write_aborts_{0};
};

}  // namespace keddah::serve
