// A minimal embedded HTTP/1.1 server for the `keddah serve` daemon.
//
// Deliberately small: IPv4 loopback only, one request per connection
// (Connection: close), bodies sized by Content-Length, no TLS, no chunked
// transfer. That is exactly enough for a localhost JSON query daemon and
// keeps the whole transport auditable in one file. The accept loop runs on
// a dedicated thread; each accepted connection is handed to a
// util::ThreadPool worker which reads the request, invokes the handler,
// writes the response, and closes the socket. stop() closes the listener
// (unblocking accept) and drains in-flight connections before returning.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "util/mutex.h"
#include "util/thread_pool.h"

namespace keddah::serve {

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string path;    ///< Request target, e.g. "/v1/whatif".
  std::string body;    ///< Raw body (Content-Length bytes).
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Standard reason phrase for the handful of statuses the daemon emits.
const char* status_text(int status);

/// Request handler; runs on a pool worker. Must not throw (the server wraps
/// handler exceptions into a 500, but well-behaved handlers map their own
/// failures to 4xx/5xx bodies).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
  /// port, readable via port() immediately). `threads` sizes the connection
  /// pool (0 = hardware concurrency). Throws std::runtime_error when the
  /// socket cannot be bound.
  HttpServer(std::uint16_t port, std::size_t threads);

  /// Stops the server if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (the actual one when constructed with port 0).
  std::uint16_t port() const { return port_; }

  /// Spawns the accept thread. Call once.
  void start(HttpHandler handler);

  /// Closes the listening socket, joins the accept thread, and drains
  /// in-flight connections. Idempotent.
  void stop();

 private:
  void accept_loop() EXCLUDES(state_mutex_);
  void handle_connection(int fd);

  // Shutdown handshake: stop() wins the stopping_ exchange, then closes
  // listen_fd_ under state_mutex_ (unblocking a pending accept), joins the
  // acceptor, and finally drains the pool. The acceptor re-reads
  // listen_fd_ under the same mutex each round, so a closed-and-reset fd
  // is observed as -1 rather than a stale descriptor number.
  HttpHandler handler_;  // set in start() before the acceptor spawns
  mutable util::Mutex state_mutex_;
  int listen_fd_ GUARDED_BY(state_mutex_) = -1;
  std::uint16_t port_ = 0;  // written once in the constructor
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace keddah::serve
