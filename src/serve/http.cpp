#include "serve/http.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/strings.h"

namespace keddah::serve {

namespace {

/// Reads until `fd` yields EOF, an error, or `stop` returns true.
bool read_some(int fd, std::string& buffer) {
  char chunk[4096];
  const ssize_t n = ::read(fd, chunk, sizeof(chunk));
  if (n <= 0) return false;
  buffer.append(chunk, static_cast<std::size_t>(n));
  return true;
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) return;  // peer went away; nothing useful to do
    off += static_cast<std::size_t>(n);
  }
}

/// Case-insensitive Content-Length lookup over the raw header block.
std::size_t content_length(const std::string& headers) {
  for (const auto& line : util::split(headers, '\n')) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (util::to_lower(util::trim(line.substr(0, colon))) != "content-length") continue;
    const auto value = util::trim(line.substr(colon + 1));
    std::size_t length = 0;
    for (const char c : value) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return 0;
      length = length * 10 + static_cast<std::size_t>(c - '0');
    }
    return length;
  }
  return 0;
}

}  // namespace

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

HttpServer::HttpServer(std::uint16_t port, std::size_t threads) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(util::format("serve: cannot bind 127.0.0.1:%u (%s)",
                                          static_cast<unsigned>(port), detail.c_str()));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  pool_ = std::make_unique<util::ThreadPool>(util::resolved_threads(threads));
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start(HttpHandler handler) {
  handler_ = std::move(handler);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  {
    util::MutexLock lock(&state_mutex_);
    if (listen_fd_ >= 0) {
      // shutdown() unblocks a pending accept(); close() releases the port.
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  // The pool destructor drains connections still being answered.
  pool_.reset();
}

void HttpServer::accept_loop() {
  while (!stopping_.load()) {
    int listen_fd = -1;
    {
      util::MutexLock lock(&state_mutex_);
      listen_fd = listen_fd_;
    }
    if (listen_fd < 0) break;  // stop() already closed the listener
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // listener is gone; nothing to accept on
    }
    pool_->submit([this, fd] { handle_connection(fd); });
  }
}

void HttpServer::handle_connection(int fd) {
  // Read the header block, then exactly Content-Length body bytes.
  std::string data;
  std::size_t header_end = std::string::npos;
  while ((header_end = data.find("\r\n\r\n")) == std::string::npos) {
    if (!read_some(fd, data) || data.size() > (1u << 20)) {
      ::close(fd);
      return;
    }
  }
  const std::size_t body_start = header_end + 4;
  const std::size_t body_length = content_length(data.substr(0, header_end));
  while (data.size() < body_start + body_length) {
    if (!read_some(fd, data) || data.size() > (64u << 20)) {
      ::close(fd);
      return;
    }
  }

  HttpRequest request;
  const auto line_end = data.find("\r\n");
  const auto request_line = data.substr(0, line_end);
  const auto first_space = request_line.find(' ');
  const auto second_space =
      first_space == std::string::npos ? std::string::npos
                                       : request_line.find(' ', first_space + 1);
  HttpResponse response;
  if (second_space == std::string::npos) {
    response = HttpResponse{400, "application/json",
                            "{\"error\": {\"message\": \"malformed request line\"}}\n"};
  } else {
    request.method = request_line.substr(0, first_space);
    request.path = request_line.substr(first_space + 1, second_space - first_space - 1);
    request.body = data.substr(body_start, body_length);
    try {
      response = handler_(request);
    } catch (const std::exception& e) {
      response.status = 500;
      response.body = std::string("{\"error\": {\"message\": \"") + e.what() + "\"}}\n";
    }
  }

  std::string out = util::format("HTTP/1.1 %d %s\r\n", response.status,
                                 status_text(response.status));
  out += "Content-Type: " + response.content_type + "\r\n";
  out += util::format("Content-Length: %zu\r\n", response.body.size());
  out += "Connection: close\r\n\r\n";
  out += response.body;
  write_all(fd, out);
  ::close(fd);
}

}  // namespace keddah::serve
