#include "serve/http.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "api/error.h"
#include "util/strings.h"

namespace keddah::serve {

namespace {

/// Applies `ms` as a socket timeout option (SO_RCVTIMEO / SO_SNDTIMEO).
/// Clamped to at least 1 ms: a zero timeval means "block forever", which
/// is exactly what a budgeted read must never do.
void set_socket_timeout_ms(int fd, int option, std::int64_t ms) {
  if (ms < 1) ms = 1;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

enum class ReadStatus { kData, kClosed, kTimeout, kError };

/// One budgeted read: arms SO_RCVTIMEO with the deadline's remainder, then
/// reads a chunk. Retries EINTR; reports a timeout both when the socket
/// timer fires and when the overall deadline has lapsed (so a drip-feeding
/// client cannot reset the budget by landing one byte per read).
ReadStatus read_some(int fd, std::string& buffer, const util::Deadline& deadline) {
  if (deadline.expired()) return ReadStatus::kTimeout;
  set_socket_timeout_ms(fd, SO_RCVTIMEO, deadline.remaining_ms(1000));
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
      return ReadStatus::kData;
    }
    if (n == 0) return ReadStatus::kClosed;
    if (errno == EINTR) {
      if (deadline.expired()) return ReadStatus::kTimeout;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadStatus::kTimeout;
    return ReadStatus::kError;
  }
}

/// Sends the whole buffer. MSG_NOSIGNAL turns a peer that closed
/// mid-response into an EPIPE return instead of a process-killing SIGPIPE;
/// EINTR retries; SO_SNDTIMEO (armed by the caller) bounds a stalled
/// reader. Returns false when any byte could not be delivered.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;  // peer gone, stalled past SO_SNDTIMEO, or error
    off += static_cast<std::size_t>(n);
  }
  return true;
}

enum class LengthStatus { kOk, kMalformed, kOverflow };

/// Case-insensitive Content-Length lookup over the raw header block. A
/// missing header is a valid zero-length body; a non-numeric value is a
/// protocol defect the caller answers with 400 (never silently treated as
/// 0); an overflowing value is reported as kOverflow for a 413.
LengthStatus content_length(const std::string& headers, std::size_t* out) {
  *out = 0;
  for (const auto& line : util::split(headers, '\n')) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (util::to_lower(util::trim(line.substr(0, colon))) != "content-length") continue;
    const auto value = util::trim(line.substr(colon + 1));
    if (value.empty()) return LengthStatus::kMalformed;
    std::size_t length = 0;
    for (const char c : value) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return LengthStatus::kMalformed;
      const auto digit = static_cast<std::size_t>(c - '0');
      if (length > (std::numeric_limits<std::size_t>::max() - digit) / 10) {
        return LengthStatus::kOverflow;
      }
      length = length * 10 + digit;
    }
    *out = length;
    return LengthStatus::kOk;
  }
  return LengthStatus::kOk;
}

/// Canned error response for transport-detected defects. Retryable codes
/// carry a fixed Retry-After so the bytes stay deterministic.
HttpResponse transport_error(api::ErrorCode code, const std::string& message) {
  HttpResponse response;
  response.status = api::error_http_status(code);
  response.body = api::error_body(code, message);
  if (api::error_retryable(code)) response.retry_after_s = 1;
  return response;
}

}  // namespace

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpServer::HttpServer(const HttpOptions& options) : options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(util::format("serve: cannot bind 127.0.0.1:%u (%s)",
                                          static_cast<unsigned>(options_.port),
                                          detail.c_str()));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  pool_ = std::make_unique<util::ThreadPool>(util::resolved_threads(options_.threads));
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start(HttpHandler handler) {
  handler_ = std::move(handler);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  {
    util::MutexLock lock(&state_mutex_);
    if (listen_fd_ >= 0) {
      // shutdown() unblocks a pending accept(); close() releases the port.
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  // Drain handshake: in-flight connections finish under a deadline. Their
  // socket phases are individually budgeted, so even a hostile peer cannot
  // hold a worker past header/body/write timeouts; the wait below exists
  // so a clean shutdown returns as soon as the last response is written.
  {
    const auto drain = util::Deadline::after_ms(options_.drain_timeout_ms);
    util::MutexLock lock(&pending_mutex_);
    while (pending_ > 0 && !drain.expired()) {
      drained_cv_.wait_for_ms(pending_mutex_, drain.remaining_ms(100));
    }
  }
  // The pool destructor joins workers; any connection still running past
  // the drain deadline finishes its (budgeted) phase first.
  pool_.reset();
}

TransportStats HttpServer::transport_stats() const {
  TransportStats stats;
  stats.accepted = accepted_.load();
  stats.rejected_pending = rejected_pending_.load();
  stats.header_timeouts = header_timeouts_.load();
  stats.body_timeouts = body_timeouts_.load();
  stats.oversized = oversized_.load();
  stats.malformed = malformed_.load();
  stats.early_disconnects = early_disconnects_.load();
  stats.write_aborts = write_aborts_.load();
  return stats;
}

void HttpServer::accept_loop() {
  while (!stopping_.load()) {
    int listen_fd = -1;
    {
      util::MutexLock lock(&state_mutex_);
      listen_fd = listen_fd_;
    }
    if (listen_fd < 0) break;  // stop() already closed the listener
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // listener is gone; nothing to accept on
    }
    // Admission bound: beyond max_pending accepted-but-unfinished
    // connections, answer a canned 429 here instead of queueing unbounded
    // work behind the pool. The write is bounded by SO_SNDTIMEO and the
    // body is tiny, so the accept loop is not meaningfully stalled.
    bool admit = false;
    {
      util::MutexLock lock(&pending_mutex_);
      if (pending_ < options_.max_pending) {
        ++pending_;
        admit = true;
      }
    }
    if (options_.sndbuf_bytes > 0) {
      const int sndbuf = static_cast<int>(options_.sndbuf_bytes);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
    }
    if (!admit) {
      rejected_pending_.fetch_add(1);
      respond(fd, transport_error(api::ErrorCode::kQueueFull,
                                  "connection queue at capacity; retry later"));
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1);
    pool_->submit([this, fd] {
      handle_connection(fd);
      finish_connection();
    });
  }
}

void HttpServer::finish_connection() {
  {
    util::MutexLock lock(&pending_mutex_);
    --pending_;
    if (pending_ > 0) return;
  }
  drained_cv_.notify_all();
}

void HttpServer::respond(int fd, const HttpResponse& response) {
  set_socket_timeout_ms(fd, SO_SNDTIMEO, options_.write_timeout_ms);
  std::string out = util::format("HTTP/1.1 %d %s\r\n", response.status,
                                 status_text(response.status));
  out += "Content-Type: " + response.content_type + "\r\n";
  out += util::format("Content-Length: %zu\r\n", response.body.size());
  if (response.retry_after_s > 0) {
    out += util::format("Retry-After: %lld\r\n",
                        static_cast<long long>(response.retry_after_s));
  }
  out += "Connection: close\r\n\r\n";
  out += response.body;
  if (!write_all(fd, out)) write_aborts_.fetch_add(1);
}

void HttpServer::handle_connection(int fd) {
  // Phase 1: the header block, under one overall budget. A peer that
  // dribbles bytes (slow-loris) exhausts the deadline, not a worker.
  const auto request_deadline = util::Deadline::after_ms(options_.handler_budget_ms);
  const auto header_deadline = util::Deadline::after_ms(options_.header_timeout_ms);
  std::string data;
  std::size_t header_end = std::string::npos;
  while ((header_end = data.find("\r\n\r\n")) == std::string::npos) {
    if (data.size() > options_.max_header_bytes) {
      oversized_.fetch_add(1);
      respond(fd, transport_error(api::ErrorCode::kPayloadTooLarge,
                                  util::format("header block exceeds %zu bytes",
                                               options_.max_header_bytes)));
      ::close(fd);
      return;
    }
    switch (read_some(fd, data, header_deadline)) {
      case ReadStatus::kData: continue;
      case ReadStatus::kClosed:
        if (data.empty()) {
          // Probe/port-scan connection: nothing was asked, nothing is owed.
          early_disconnects_.fetch_add(1);
        } else {
          // The peer half-closed mid-header; it may still be reading, so
          // answer the framing defect instead of silently dropping it.
          malformed_.fetch_add(1);
          respond(fd, transport_error(api::ErrorCode::kBadRequest,
                                      "truncated request: header block never "
                                      "terminated with CRLFCRLF"));
        }
        ::close(fd);
        return;
      case ReadStatus::kTimeout:
        header_timeouts_.fetch_add(1);
        respond(fd, transport_error(api::ErrorCode::kRequestTimeout,
                                    "request header read budget exhausted"));
        ::close(fd);
        return;
      case ReadStatus::kError:
        early_disconnects_.fetch_add(1);
        ::close(fd);
        return;
    }
  }

  // The cap applies to the finished block too: a whole oversized header
  // landing in one read must not slip past the mid-read check above.
  if (header_end > options_.max_header_bytes) {
    oversized_.fetch_add(1);
    respond(fd, transport_error(api::ErrorCode::kPayloadTooLarge,
                                util::format("header block exceeds %zu bytes",
                                             options_.max_header_bytes)));
    ::close(fd);
    return;
  }

  // Phase 2: framing. Both defects are answered, not swallowed: a
  // malformed Content-Length is a 400 (treating it as 0 would desync the
  // connection), an oversized declaration is a 413 before reading a byte
  // of the body.
  std::size_t body_length = 0;
  switch (content_length(data.substr(0, header_end), &body_length)) {
    case LengthStatus::kOk: break;
    case LengthStatus::kMalformed:
      malformed_.fetch_add(1);
      respond(fd, transport_error(api::ErrorCode::kBadRequest,
                                  "malformed Content-Length: value is not a "
                                  "non-negative integer"));
      ::close(fd);
      return;
    case LengthStatus::kOverflow:
      oversized_.fetch_add(1);
      respond(fd, transport_error(api::ErrorCode::kPayloadTooLarge,
                                  "declared Content-Length overflows"));
      ::close(fd);
      return;
  }
  if (body_length > options_.max_body_bytes) {
    oversized_.fetch_add(1);
    respond(fd, transport_error(api::ErrorCode::kPayloadTooLarge,
                                util::format("declared body of %zu bytes exceeds the "
                                             "%zu byte cap",
                                             body_length, options_.max_body_bytes)));
    ::close(fd);
    return;
  }

  // Phase 3: the body, under its own budget.
  const std::size_t body_start = header_end + 4;
  const auto body_deadline = util::Deadline::after_ms(options_.body_timeout_ms);
  while (data.size() < body_start + body_length) {
    switch (read_some(fd, data, body_deadline)) {
      case ReadStatus::kData: continue;
      case ReadStatus::kClosed:
        malformed_.fetch_add(1);
        respond(fd, transport_error(api::ErrorCode::kBadRequest,
                                    "request body shorter than the declared "
                                    "Content-Length"));
        ::close(fd);
        return;
      case ReadStatus::kTimeout:
        body_timeouts_.fetch_add(1);
        respond(fd, transport_error(api::ErrorCode::kRequestTimeout,
                                    "request body read budget exhausted"));
        ::close(fd);
        return;
      case ReadStatus::kError:
        early_disconnects_.fetch_add(1);
        ::close(fd);
        return;
    }
  }

  // Phase 4: parse the request line and dispatch.
  HttpRequest request;
  const auto line_end = data.find("\r\n");
  const auto request_line = data.substr(0, line_end);
  const auto first_space = request_line.find(' ');
  const auto second_space =
      first_space == std::string::npos ? std::string::npos
                                       : request_line.find(' ', first_space + 1);
  HttpResponse response;
  if (second_space == std::string::npos || first_space == 0) {
    malformed_.fetch_add(1);
    response = transport_error(api::ErrorCode::kBadRequest,
                               "malformed request line (want METHOD TARGET VERSION)");
  } else {
    request.method = request_line.substr(0, first_space);
    request.path = request_line.substr(first_space + 1, second_space - first_space - 1);
    request.body = data.substr(body_start, body_length);
    request.deadline = request_deadline;
    try {
      response = handler_(request);
    } catch (const std::exception& e) {
      // Exception text flows through util::Json, so quotes/backslashes in
      // e.what() are escaped instead of corrupting the envelope.
      response = transport_error(api::ErrorCode::kInternal, e.what());
    }
  }
  respond(fd, response);
  ::close(fd);
}

}  // namespace keddah::serve
