// Admission control for the `keddah serve` policy layer.
//
// The transport bounds *connections* (HttpOptions::max_pending); this
// class bounds *work*. Every endpoint has a cost class: light endpoints
// (/v1/health, /v1/stats, /v1/shutdown) cost 0 and are always admitted —
// they are the daemon's pulse and must keep answering under any load —
// while the heavy endpoints (/v1/whatif, /v1/reproduce, /v1/validate) pay
// their cost into a bounded budget of in-flight units. Response-cache hits
// never reach admission at all: the server answers them before asking.
//
// Three verdicts:
//   kAdmit   the ticket holds `cost` units until released (RAII).
//   kReject  admitting would exceed `capacity` — the caller answers 429
//            with Retry-After; the client should back off and retry.
//   kShed    capacity remains, but the controller is in overload mode
//            (in-flight cost >= shed_threshold) and the policy is kShed —
//            cold heavy work is turned away with a 503 so that health,
//            stats, and cache hits stay fast. Graceful degradation, not
//            failure.
//
// Determinism: verdicts depend only on the instantaneous in-flight cost,
// never on wall time or randomness, and 200-response bodies are identical
// whether or not a request ever waited.
#pragma once

#include <cstdint>
#include <string>

#include "util/mutex.h"

namespace keddah::serve {

/// What to do when heavy load approaches capacity.
enum class OverloadPolicy {
  kShed,    ///< Degrade: shed cold heavy work at shed_threshold (503).
  kReject,  ///< Hard bound only: 429 at capacity, no early shedding.
  kNone,    ///< Admit everything (benchmark/debug escape hatch).
};

/// Parses "shed" | "reject" | "none"; throws std::invalid_argument
/// naming the valid spellings otherwise.
OverloadPolicy parse_overload_policy(const std::string& text);
const char* overload_policy_name(OverloadPolicy policy);

struct AdmissionOptions {
  /// Cost units that may be in flight at once (the bounded pending-work
  /// queue in front of the pool, measured in endpoint cost units).
  std::size_t capacity = 64;
  /// In-flight cost at which overload mode begins; 0 = (3*capacity)/4.
  std::size_t shed_threshold = 0;
  OverloadPolicy policy = OverloadPolicy::kShed;
};

class AdmissionController {
 public:
  enum class Verdict { kAdmit, kReject, kShed };

  /// Cost units an endpoint pays. Light endpoints (and unknown paths,
  /// which terminate in cheap 404s) cost 0; /v1/validate costs more than
  /// /v1/whatif and /v1/reproduce because it also re-reads a capture run
  /// from disk.
  static std::size_t endpoint_cost(const std::string& path);

  explicit AdmissionController(AdmissionOptions options);

  /// RAII hold on admitted cost units; releases on destruction. An empty
  /// ticket (default-constructed or from a non-admit verdict) holds
  /// nothing.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept;
    Ticket& operator=(Ticket&& other) noexcept;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket();

    bool admitted() const { return controller_ != nullptr; }

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, std::size_t cost)
        : controller_(controller), cost_(cost) {}

    AdmissionController* controller_ = nullptr;
    std::size_t cost_ = 0;
  };

  /// Decides one request. On kAdmit, `*ticket` holds the cost until it is
  /// destroyed; on kReject/kShed the ticket is left empty. A zero cost is
  /// always admitted without touching the budget.
  Verdict try_admit(std::size_t cost, Ticket* ticket) EXCLUDES(mutex_);

  /// True while in-flight cost >= shed_threshold (any policy; informs
  /// /v1/stats even when the policy never sheds).
  bool overloaded() const EXCLUDES(mutex_);

  struct Snapshot {
    std::size_t capacity = 0;
    std::size_t shed_threshold = 0;
    std::size_t in_flight_cost = 0;
    bool overloaded = false;
    const char* policy = "";
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shed = 0;
  };
  Snapshot snapshot() const EXCLUDES(mutex_);

 private:
  void release(std::size_t cost) EXCLUDES(mutex_);

  AdmissionOptions options_;
  mutable util::Mutex mutex_;
  std::size_t in_flight_cost_ GUARDED_BY(mutex_) = 0;
  std::uint64_t admitted_ GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ GUARDED_BY(mutex_) = 0;
  std::uint64_t shed_ GUARDED_BY(mutex_) = 0;
};

}  // namespace keddah::serve
