// TrafficGenerator: samples a trained KeddahModel into a synthetic flow
// schedule for an arbitrary scenario (input size, task counts, cluster
// size) — the input to a network simulator replay.
#pragma once

#include <span>
#include <vector>

#include "model/keddah_model.h"
#include "net/flow.h"
#include "util/rng.h"

namespace keddah::gen {

/// The what-if scenario to synthesize traffic for.
struct Scenario {
  /// Job input size; drives counts, volumes, and duration via the model's
  /// scaling laws.
  double input_bytes = 0.0;
  /// Task counts. Zero derives them from the model context (maps from
  /// block size) and a reducers-per-GB heuristic.
  std::size_t num_maps = 0;
  std::size_t num_reducers = 0;
  /// Hosts available for endpoint placement.
  std::size_t num_hosts = 16;
};

/// One synthetic flow: host indices (to be mapped onto a topology), class,
/// size, and start time relative to job start.
struct SyntheticFlow {
  std::size_t src_host = 0;
  std::size_t dst_host = 0;
  net::FlowKind kind = net::FlowKind::kOther;
  double bytes = 0.0;
  double start = 0.0;
};

/// A generated job's traffic schedule.
struct SyntheticTrafficSchedule {
  std::vector<SyntheticFlow> flows;
  /// Model-predicted job duration used as the temporal canvas.
  double predicted_duration = 0.0;

  double total_bytes() const;
  std::size_t count(net::FlowKind kind) const;
  double bytes_of(net::FlowKind kind) const;
};

/// Generator options.
struct GeneratorOptions {
  /// When true, per-class flow sizes are rescaled (uniformly) so that each
  /// class's total matches the model's volume scaling law for the scenario
  /// input size. Keeps aggregate volume faithful even when count x mean
  /// drifts; distribution shape is preserved up to the scale factor.
  bool normalize_volume = false;
};

/// Samples flow schedules from a model. Deterministic in (model, scenario,
/// rng seed).
class TrafficGenerator {
 public:
  TrafficGenerator(const model::KeddahModel& model, util::Rng rng, GeneratorOptions options = {});

  /// Generates one job's worth of traffic.
  SyntheticTrafficSchedule generate(const Scenario& scenario);

 private:
  /// Fills in zero fields of the scenario from model context.
  Scenario resolve(const Scenario& scenario) const;

  const model::KeddahModel& model_;
  util::Rng rng_;
  GeneratorOptions options_;
};

/// One job of a synthetic multi-job mix.
struct MixEntry {
  /// Model to sample (borrowed; must outlive the call).
  const model::KeddahModel* model = nullptr;
  Scenario scenario;
  /// Job start offset within the mix, seconds.
  double submit_at = 0.0;
};

/// Generates a combined schedule for several (possibly overlapping) jobs —
/// the "realistic scenario" workloads Keddah targets. Each entry is sampled
/// with an independent RNG stream and shifted to its submit time; the merged
/// schedule is sorted by start.
SyntheticTrafficSchedule generate_mix(std::span<const MixEntry> entries, util::Rng rng,
                                      GeneratorOptions options = {});

}  // namespace keddah::gen
