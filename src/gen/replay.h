// ReplayEngine: plays a synthetic traffic schedule through the flow-level
// network simulator — the in-tree equivalent of the paper's ns-3 replay —
// and captures what actually happened on the wire.
#pragma once

#include <string>
#include <vector>

#include "capture/trace.h"
#include "gen/generator.h"
#include "net/topology.h"

namespace keddah::gen {

/// Outcome of replaying one schedule.
struct ReplayResult {
  /// What a capture of the replay saw (flow records with ports stamped by
  /// class, so the normal classifier applies).
  capture::Trace trace;
  /// Time the last flow finished.
  double makespan = 0.0;
  /// Per-flow completion times (end - start), in completion order.
  std::vector<double> flow_completion_times;
  /// Spill results when a spill_dir was configured: records written and the
  /// finalized spill file (trace above is empty in that mode; read it back
  /// with capture::SpillReader).
  std::uint64_t spilled_records = 0;
  std::string spill_path;

  double mean_fct() const;
  double p99_fct() const;
};

/// Replays `schedule` on `topology`, mapping host index i to the i-th host
/// (modulo host count). Flows are injected at their scheduled start times
/// and share bandwidth max-min fairly (OPEN-loop replay: arrival times are
/// fixed regardless of how congested the fabric is).
/// `spill_dir`, when non-empty, streams the capture to an mmap'd spill file
/// there instead of accumulating it in ReplayResult::trace (long replays on
/// big fabrics; see capture/spill.h).
ReplayResult replay(const SyntheticTrafficSchedule& schedule, const net::Topology& topology,
                    double loopback_bps = 40.0e9, const std::string& spill_dir = "");

/// Closed-loop replay options.
struct ClosedLoopOptions {
  /// Concurrent shuffle fetches per destination host (the reducer's
  /// parallel-copies limit). Shuffle flows beyond it queue until a slot
  /// frees, exactly like real reducers back off under congestion.
  std::size_t shuffle_fetch_slots = 5;
  double loopback_bps = 40.0e9;
  /// When non-empty, the capture spills to `<spill_dir>/capture.kspill`
  /// instead of ReplayResult::trace (see capture/spill.h).
  std::string spill_dir;
};

/// CLOSED-loop replay: scheduled start times are treated as earliest-start
/// times, and shuffle flows additionally respect a per-destination fetch
/// window. On an underprovisioned fabric the shuffle self-paces (stretching
/// the makespan) instead of piling up unbounded in-flight transfers — the
/// behaviour a real Hadoop cluster, and a full ns-3 replay with application
/// feedback, would exhibit.
ReplayResult replay_closed_loop(const SyntheticTrafficSchedule& schedule,
                                const net::Topology& topology, ClosedLoopOptions options = {});

/// Assigns the port pair matching a traffic class (inverse of the
/// classifier), so replayed flows classify identically to captured ones.
net::FlowMeta meta_for_kind(net::FlowKind kind, std::uint32_t job_id = 1);

}  // namespace keddah::gen
