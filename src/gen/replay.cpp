#include "gen/replay.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "capture/collector.h"
#include "capture/spill.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "stats/summary.h"

namespace keddah::gen {

namespace {
/// Finalizes a spill-mode capture and fills the result's spill fields plus
/// makespan, streamed off the mmap'd file rather than loaded into RAM.
void finish_spill(capture::FlowCollector& collector, ReplayResult& result) {
  collector.finalize_spill();
  result.spilled_records = collector.spilled();
  result.spill_path = collector.spill_path();
  capture::SpillReader reader(result.spill_path);
  double last_end = 0.0;
  for (std::uint64_t i = 0; i < reader.size(); ++i) {
    last_end = std::max(last_end, reader.record(i).end);
  }
  result.makespan = last_end;
}
}  // namespace

double ReplayResult::mean_fct() const { return stats::mean(flow_completion_times); }

double ReplayResult::p99_fct() const {
  if (flow_completion_times.empty()) return 0.0;
  return stats::quantile(flow_completion_times, 0.99);
}

net::FlowMeta meta_for_kind(net::FlowKind kind, std::uint32_t job_id) {
  net::FlowMeta meta;
  meta.job_id = job_id;
  meta.kind = kind;
  switch (kind) {
    case net::FlowKind::kHdfsRead:
      meta.src_port = net::ports::kDataNodeXfer;
      meta.dst_port = net::ports::kEphemeralBase;
      break;
    case net::FlowKind::kHdfsWrite:
      meta.src_port = net::ports::kEphemeralBase;
      meta.dst_port = net::ports::kDataNodeXfer;
      break;
    case net::FlowKind::kShuffle:
      meta.src_port = net::ports::kShuffle;
      meta.dst_port = net::ports::kEphemeralBase;
      break;
    case net::FlowKind::kControl:
      meta.src_port = net::ports::kEphemeralBase;
      meta.dst_port = net::ports::kRmTracker;
      break;
    case net::FlowKind::kOther:
      meta.src_port = net::ports::kEphemeralBase;
      meta.dst_port = net::ports::kEphemeralBase + 1;
      break;
  }
  return meta;
}

ReplayResult replay_closed_loop(const SyntheticTrafficSchedule& schedule,
                                const net::Topology& topology, ClosedLoopOptions options) {
  sim::Simulator sim;
  net::NetworkOptions net_options;
  net_options.loopback = util::Rate::bps(options.loopback_bps);
  net::Network network(sim, topology, net_options);
  capture::CollectorOptions capture_options;
  capture_options.spill_dir = options.spill_dir;
  capture::FlowCollector collector(network, capture_options);

  const auto hosts = network.topology().hosts();
  ReplayResult result;
  if (hosts.empty()) return result;

  // Per-destination shuffle fetch windows: in-flight count + FIFO backlog.
  struct FetchWindow {
    std::size_t inflight = 0;
    std::deque<SyntheticFlow> backlog;
  };
  auto windows = std::make_shared<std::unordered_map<std::size_t, FetchWindow>>();

  // Launch one flow onto the fabric; shuffle completions pump the window.
  auto launch = std::make_shared<std::function<void(const SyntheticFlow&)>>();
  *launch = [&network, &result, &hosts, windows, launch, options](const SyntheticFlow& f) {
    const net::NodeId src = hosts[f.src_host % hosts.size()];
    net::NodeId dst = hosts[f.dst_host % hosts.size()];
    if (dst == src) dst = hosts[(f.dst_host + 1) % hosts.size()];
    const bool gated = f.kind == net::FlowKind::kShuffle;
    const std::size_t window_key = f.dst_host % hosts.size();
    network.start_flow(src, dst, util::Bytes(f.bytes), meta_for_kind(f.kind),
                       [&result, windows, launch, gated, window_key](const net::Flow& flow) {
                         result.flow_completion_times.push_back(flow.end_time -
                                                                flow.submit_time);
                         if (!gated) return;
                         auto& window = (*windows)[window_key];
                         --window.inflight;
                         if (!window.backlog.empty()) {
                           const SyntheticFlow next = window.backlog.front();
                           window.backlog.pop_front();
                           ++window.inflight;
                           (*launch)(next);
                         }
                       });
  };

  for (const auto& f : schedule.flows) {
    sim.schedule_at(f.start, [launch, windows, f, options, &hosts] {
      if (f.kind != net::FlowKind::kShuffle) {
        (*launch)(f);
        return;
      }
      auto& window = (*windows)[f.dst_host % hosts.size()];
      if (window.inflight < options.shuffle_fetch_slots) {
        ++window.inflight;
        (*launch)(f);
      } else {
        window.backlog.push_back(f);
      }
    });
  }
  sim.run();
  if (collector.spilling()) {
    finish_spill(collector, result);
  } else {
    result.trace = collector.take();
    result.makespan = result.trace.empty() ? 0.0 : result.trace.last_end();
  }
  // Break the launch lambda's self-reference so the shared state frees.
  *launch = nullptr;
  return result;
}

ReplayResult replay(const SyntheticTrafficSchedule& schedule, const net::Topology& topology,
                    double loopback_bps, const std::string& spill_dir) {
  sim::Simulator sim;
  net::NetworkOptions options;
  options.loopback = util::Rate::bps(loopback_bps);
  // The topology is borrowed per call; copy it into the engine.
  net::Network network(sim, topology, options);
  capture::CollectorOptions capture_options;
  capture_options.spill_dir = spill_dir;
  capture::FlowCollector collector(network, capture_options);

  const auto hosts = network.topology().hosts();
  ReplayResult result;
  if (hosts.empty()) return result;

  for (const auto& f : schedule.flows) {
    const net::NodeId src = hosts[f.src_host % hosts.size()];
    net::NodeId dst = hosts[f.dst_host % hosts.size()];
    if (dst == src) dst = hosts[(f.dst_host + 1) % hosts.size()];
    sim.schedule_at(f.start, [&network, &result, src, dst, f] {
      network.start_flow(src, dst, util::Bytes(f.bytes), meta_for_kind(f.kind),
                         [&result](const net::Flow& flow) {
                           result.flow_completion_times.push_back(flow.end_time -
                                                                  flow.submit_time);
                         });
    });
  }
  sim.run();
  if (collector.spilling()) {
    finish_spill(collector, result);
  } else {
    result.trace = collector.take();
    result.makespan = result.trace.empty() ? 0.0 : result.trace.last_end();
  }
  return result;
}

}  // namespace keddah::gen
