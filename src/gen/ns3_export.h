// ns-3 export: emits a Keddah flow schedule in a form a stock ns-3 build
// can replay — a CSV schedule plus a self-contained ns-3 C++ replay program
// (scratch/keddah-replay.cc) that loads the CSV and drives one
// BulkSendApplication per flow. This is the "for use with network
// simulators" integration deliverable; the in-tree ReplayEngine mirrors its
// semantics at flow level for offline experiments.
#pragma once

#include <string>

#include "gen/generator.h"

namespace keddah::gen {

/// Export knobs (topology parameters baked into the generated program).
struct Ns3ExportOptions {
  std::size_t num_hosts = 16;
  std::string link_rate = "1Gbps";
  std::string link_delay = "100us";
};

/// Renders the flow schedule as CSV text: one row per flow,
/// "start,src,dst,bytes,kind,port".
std::string schedule_to_csv(const SyntheticTrafficSchedule& schedule);

/// Parses the CSV format written by schedule_to_csv (the CLI round-trips
/// generated schedules through disk). Throws std::runtime_error on
/// malformed input.
SyntheticTrafficSchedule schedule_from_csv(const std::string& text);

/// Renders a complete ns-3 program (C++) that loads the CSV schedule and
/// replays it over a star topology with per-class TCP sinks.
std::string render_ns3_program(const Ns3ExportOptions& options);

/// Writes both artefacts: `<basename>.csv` and `<basename>.cc`. Throws
/// std::runtime_error on I/O failure.
void export_ns3(const SyntheticTrafficSchedule& schedule, const std::string& basename,
                const Ns3ExportOptions& options = {});

}  // namespace keddah::gen
