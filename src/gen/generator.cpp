#include "gen/generator.h"

#include <algorithm>
#include <cmath>

#include "model/builder.h"
#include "util/log.h"

namespace keddah::gen {

double SyntheticTrafficSchedule::total_bytes() const {
  double total = 0.0;
  for (const auto& f : flows) total += f.bytes;
  return total;
}

std::size_t SyntheticTrafficSchedule::count(net::FlowKind kind) const {
  std::size_t n = 0;
  for (const auto& f : flows) n += (f.kind == kind);
  return n;
}

double SyntheticTrafficSchedule::bytes_of(net::FlowKind kind) const {
  double total = 0.0;
  for (const auto& f : flows) {
    if (f.kind == kind) total += f.bytes;
  }
  return total;
}

TrafficGenerator::TrafficGenerator(const model::KeddahModel& model, util::Rng rng,
                                   GeneratorOptions options)
    : model_(model), rng_(rng), options_(options) {}

Scenario TrafficGenerator::resolve(const Scenario& scenario) const {
  Scenario out = scenario;
  if (out.num_maps == 0) {
    const double block = static_cast<double>(
        model_.context().block_size != 0 ? model_.context().block_size : 128ull << 20);
    out.num_maps = static_cast<std::size_t>(std::max(1.0, std::ceil(out.input_bytes / block)));
  }
  if (out.num_reducers == 0) {
    const double gb = out.input_bytes / (1024.0 * 1024.0 * 1024.0);
    out.num_reducers =
        std::clamp<std::size_t>(static_cast<std::size_t>(std::max(1.0, gb)) * 4, 4, 64);
  }
  if (out.num_hosts == 0) out.num_hosts = std::max<std::size_t>(model_.context().cluster_nodes, 2);
  return out;
}

SyntheticTrafficSchedule TrafficGenerator::generate(const Scenario& raw) {
  const Scenario scenario = resolve(raw);
  SyntheticTrafficSchedule schedule;
  schedule.predicted_duration = model_.predict_duration(scenario.input_bytes);
  const double duration = std::max(schedule.predicted_duration, 1.0);

  // Build a pseudo training-run carrying the scenario's regressor inputs.
  model::TrainingRun regressor_inputs;
  regressor_inputs.input_bytes = scenario.input_bytes;
  regressor_inputs.num_maps = scenario.num_maps;
  regressor_inputs.num_reducers = scenario.num_reducers;
  regressor_inputs.job_start = 0.0;
  regressor_inputs.job_end = duration;

  for (const net::FlowKind kind : model::kModelledClasses) {
    const auto& cm = model_.class_model(kind);
    if (cm.training_flows == 0) continue;
    const double x = model::class_regressor(kind, regressor_inputs);
    const std::size_t count = cm.count.predict(x);
    if (count == 0) continue;

    std::vector<SyntheticFlow> class_flows;
    class_flows.reserve(count);
    double class_bytes = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      SyntheticFlow f;
      f.kind = kind;
      f.bytes = cm.size.sample(rng_);
      f.start = cm.temporal.sample_start(rng_, duration);
      // Endpoints: uniform over hosts with src != dst. Host-local transfers
      // never appear in captures, so the model only ever sees cross-host
      // flows; uniform placement mirrors hash partitioning / random
      // container placement.
      f.src_host = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(scenario.num_hosts) - 1));
      f.dst_host = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(scenario.num_hosts) - 2));
      if (f.dst_host >= f.src_host) ++f.dst_host;
      class_bytes += f.bytes;
      class_flows.push_back(f);
    }

    if (options_.normalize_volume && class_bytes > 0.0) {
      const double target = model_.predict_volume(kind, scenario.input_bytes);
      if (target > 0.0) {
        const double scale = target / class_bytes;
        for (auto& f : class_flows) f.bytes *= scale;
      }
    }
    schedule.flows.insert(schedule.flows.end(), class_flows.begin(), class_flows.end());
  }

  std::sort(schedule.flows.begin(), schedule.flows.end(),
            [](const SyntheticFlow& a, const SyntheticFlow& b) { return a.start < b.start; });
  return schedule;
}

SyntheticTrafficSchedule generate_mix(std::span<const MixEntry> entries, util::Rng rng,
                                      GeneratorOptions options) {
  SyntheticTrafficSchedule mix;
  for (const auto& entry : entries) {
    if (entry.model == nullptr) throw std::invalid_argument("generate_mix: null model");
    TrafficGenerator generator(*entry.model, rng.split(), options);
    auto schedule = generator.generate(entry.scenario);
    for (auto& flow : schedule.flows) {
      flow.start += entry.submit_at;
      mix.flows.push_back(flow);
    }
    mix.predicted_duration = std::max(
        mix.predicted_duration, entry.submit_at + schedule.predicted_duration);
  }
  std::sort(mix.flows.begin(), mix.flows.end(),
            [](const SyntheticFlow& a, const SyntheticFlow& b) { return a.start < b.start; });
  return mix;
}

}  // namespace keddah::gen
