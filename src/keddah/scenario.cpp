#include "keddah/scenario.h"

#include <memory>
#include <stdexcept>

#include "hadoop/config_json.h"
#include "hadoop/faults.h"
#include "util/log.h"
#include "util/strings.h"

namespace keddah::core {

namespace {

std::uint64_t parse_size_field(const util::Json& doc, const std::string& key,
                               std::uint64_t fallback, bool required = false) {
  if (!doc.contains(key)) {
    if (required) throw std::invalid_argument("scenario: missing required field '" + key + "'");
    return fallback;
  }
  const auto& field = doc.at(key);
  if (field.is_number()) return static_cast<std::uint64_t>(field.as_number());
  std::uint64_t bytes = 0;
  if (!util::parse_bytes(field.as_string(), &bytes)) {
    throw std::invalid_argument("scenario: bad size in '" + key + "'");
  }
  return bytes;
}

}  // namespace

ScenarioSpec parse_scenario(const util::Json& doc, const std::string& context) {
  ScenarioSpec spec;
  spec.cluster = doc.contains("cluster")
                     ? hadoop::parse_cluster_config(doc.at("cluster"), context)
                     : hadoop::default_scenario_cluster();
  spec.seed = static_cast<std::uint64_t>(doc.get_number("seed", 1));
  spec.threads = static_cast<std::size_t>(doc.get_number("threads", 0));
  if (!doc.contains("jobs") || doc.at("jobs").size() == 0) {
    throw std::invalid_argument("scenario: needs a non-empty 'jobs' array");
  }
  for (const auto& entry : doc.at("jobs").as_array()) {
    ScenarioSpec::JobEntry job;
    if (!entry.contains("workload")) {
      throw std::invalid_argument("scenario: job missing 'workload'");
    }
    job.workload = workloads::workload_from_name(entry.at("workload").as_string());
    job.input_bytes = parse_size_field(entry, "input", 0, /*required=*/true);
    if (job.input_bytes == 0) throw std::invalid_argument("scenario: job input must be > 0");
    job.num_reducers = static_cast<std::size_t>(entry.get_number("reducers", 0));
    job.submit_at = entry.get_number("submit_at", 0.0);
    job.iterations = static_cast<std::size_t>(entry.get_number("iterations", 1));
    if (job.iterations == 0) throw std::invalid_argument("scenario: iterations must be >= 1");
    spec.jobs.push_back(job);
  }
  if (doc.contains("faults")) {
    spec.faults = hadoop::parse_fault_plan(doc.at("faults"), context);
  }
  if (doc.contains("failures")) {
    // Legacy alias: each {"worker", "at"} entry is a permanent crash.
    const hadoop::FaultPlan legacy =
        hadoop::parse_fault_plan(doc.at("failures"), context + " (failures)");
    spec.faults.events.insert(spec.faults.events.end(), legacy.events.begin(),
                              legacy.events.end());
  }
  // Range-check worker indices against the cluster described alongside them,
  // so a bad scenario file fails at parse time with its own name attached.
  hadoop::validate_fault_plan(spec.faults, spec.cluster.num_workers(), context);
  return spec;
}

ScenarioSpec load_scenario(const std::string& path) {
  return parse_scenario(util::Json::load_file(path), path);
}

ScenarioOutcome run_scenario(const ScenarioSpec& spec) {
  capture::CollectorOptions capture_options;
  capture_options.spill_dir = spec.spill_dir;
  hadoop::HadoopCluster cluster(spec.cluster, spec.seed, capture_options);
  ScenarioOutcome outcome;

  // Total completions expected = sum of iterations across entries.
  std::size_t expected = 0;
  for (const auto& job : spec.jobs) expected += job.iterations;

  cluster.schedule_fault_plan(spec.faults);

  std::size_t done = 0;
  cluster.control().enable();

  // Iterative chains submit their next round from the completion callback;
  // the chain state lives in a shared context per entry.
  struct Chain {
    workloads::Workload workload;
    std::size_t reducers;
    std::size_t remaining;
    std::size_t total;
    std::size_t index;
  };
  // submit_round is recursive through job completions; break the lambda
  // self-reference by storing it in a shared holder cleared at the end.
  auto submit_round = std::make_shared<
      std::function<void(std::shared_ptr<Chain>, std::vector<std::string>)>>();
  *submit_round = [&cluster, &outcome, &done, &expected, submit_round](
                      std::shared_ptr<Chain> chain, std::vector<std::string> inputs) {
    hadoop::JobSpec job_spec;
    job_spec.profile = workloads::profile(chain->workload);
    job_spec.profile.name =
        util::format("%s_j%zu_i%zu", workloads::workload_name(chain->workload), chain->index,
                     chain->total - chain->remaining);
    job_spec.input_file = inputs.front();
    job_spec.extra_inputs.assign(inputs.begin() + 1, inputs.end());
    job_spec.num_reducers = chain->reducers;
    cluster.runner().submit(job_spec, [&cluster, &outcome, &done, &expected, submit_round,
                                       chain](const hadoop::JobResult& result) {
      outcome.results.push_back(result);
      ++done;
      if (--chain->remaining > 0 && !result.output_files.empty()) {
        (*submit_round)(chain, result.output_files);
      }
      if (done == expected) cluster.control().disable();
    });
  };

  for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
    const auto& entry = spec.jobs[i];
    const std::string input = cluster.ensure_input(entry.input_bytes);
    auto chain = std::make_shared<Chain>();
    chain->workload = entry.workload;
    chain->reducers = entry.num_reducers == 0 ? workloads::default_reducers(entry.input_bytes)
                                              : entry.num_reducers;
    chain->remaining = entry.iterations;
    chain->total = entry.iterations;
    chain->index = i;
    cluster.simulator().schedule_at(entry.submit_at, [submit_round, chain, input] {
      (*submit_round)(chain, {input});
    });
  }

  cluster.simulator().run();
  if (done != expected) throw std::logic_error("scenario: not every job completed");
  *submit_round = nullptr;  // break the self-reference cycle
  if (cluster.collector().spilling()) {
    cluster.collector().finalize_spill();
    outcome.spilled_records = cluster.collector().spilled();
    outcome.spill_path = cluster.collector().spill_path();
  }
  outcome.trace = cluster.take_trace();
  outcome.history = cluster.history();
  outcome.rereplications = cluster.hdfs().rereplications();
  outcome.faults = cluster.fault_stats();
  outcome.scheduler = cluster.network().scheduler_stats();
  return outcome;
}

}  // namespace keddah::core
