// Declarative experiment scenarios: a JSON file describes the cluster, the
// job mix (with submit times), and fault injections; run_scenario() builds
// the cluster, executes everything, and returns the capture + per-job
// results. This is how downstream users script reproducible experiments
// without writing C++ (CLI: `keddah run-scenario --file exp.json`).
//
// Schema (all fields optional unless noted):
//   {
//     "seed": 42,
//     "threads": 0,                  // worker threads when this scenario is
//                                    // part of a batch sweep (run_scenarios /
//                                    // `keddah run-scenario --file a.json,b.json`);
//                                    // 0 = hardware concurrency. A single
//                                    // scenario is one deterministic
//                                    // simulation and always runs serially.
//                                    // CLI --threads overrides this field.
//     "cluster": {
//       "topology": "racktree" | "star" | "fattree",
//       "racks": 4, "hosts_per_rack": 4, "fat_tree_k": 4,
//       "access_gbps": 1.0, "core_gbps": 10.0,
//       "block_size": "128MB", "replication": 3, "containers": 4,
//       "slowstart": 0.05, "locality_delay_s": 2.0,
//       "compress_ratio": 1.0, "speculative": false,
//       "straggler_fraction": 0.0
//     },
//     "jobs": [                      // required, >= 1
//       { "workload": "sort",       // required
//         "input": "4GB",           // required
//         "reducers": 8,            // 0/absent = auto
//         "submit_at": 0.0,
//         "iterations": 1 }         // > 1 chains output -> input
//     ],
//     "failures": [ { "worker": 5, "at": 12.5 } ]
//   }
#pragma once

#include <string>
#include <vector>

#include "capture/trace.h"
#include "hadoop/cluster.h"
#include "hadoop/joblog.h"
#include "util/json.h"
#include "workloads/profiles.h"

namespace keddah::core {

/// Parsed scenario description.
struct ScenarioSpec {
  hadoop::ClusterConfig cluster;
  std::uint64_t seed = 1;
  /// Worker-thread budget when this scenario runs as part of a batch sweep
  /// (core::run_scenarios); 0 = hardware concurrency.
  std::size_t threads = 0;

  struct JobEntry {
    workloads::Workload workload = workloads::Workload::kSort;
    std::uint64_t input_bytes = 0;
    std::size_t num_reducers = 0;  // 0 = auto
    double submit_at = 0.0;
    std::size_t iterations = 1;
  };
  std::vector<JobEntry> jobs;

  struct Failure {
    std::size_t worker_index = 0;
    double at = 0.0;
  };
  std::vector<Failure> failures;
};

/// Parses a scenario document; throws std::invalid_argument /
/// std::runtime_error with a field-specific message on malformed input.
ScenarioSpec parse_scenario(const util::Json& doc);

/// Convenience: load + parse a scenario file.
ScenarioSpec load_scenario(const std::string& path);

/// Everything a scenario run produces.
struct ScenarioOutcome {
  /// One result per completed job (iterations expand to one result each),
  /// in completion order.
  std::vector<hadoop::JobResult> results;
  capture::Trace trace;
  hadoop::JobHistoryLog history;
  /// Background repair transfers triggered by injected failures.
  std::size_t rereplications = 0;
};

/// Builds the cluster and runs the whole scenario to completion.
ScenarioOutcome run_scenario(const ScenarioSpec& spec);

}  // namespace keddah::core
