// Declarative experiment scenarios: a JSON file describes the cluster, the
// job mix (with submit times), and fault injections; run_scenario() builds
// the cluster, executes everything, and returns the capture + per-job
// results. This is how downstream users script reproducible experiments
// without writing C++ (CLI: `keddah run-scenario --file exp.json`).
//
// Schema (all fields optional unless noted):
//   {
//     "seed": 42,
//     "threads": 0,                  // worker threads when this scenario is
//                                    // part of a batch sweep (run_scenarios /
//                                    // `keddah run-scenario --file a.json,b.json`);
//                                    // 0 = hardware concurrency. A single
//                                    // scenario is one deterministic
//                                    // simulation and always runs serially.
//                                    // CLI --threads overrides this field.
//     "cluster": {
//       "topology": "racktree" | "star" | "fattree",
//       "racks": 4, "hosts_per_rack": 4, "fat_tree_k": 4,
//       "access_gbps": 1.0, "core_gbps": 10.0,
//       "block_size": "128MB", "replication": 3, "containers": 4,
//       "slowstart": 0.05, "locality_delay_s": 2.0,
//       "compress_ratio": 1.0, "speculative": false,
//       "straggler_fraction": 0.0
//     },
//     "jobs": [                      // required, >= 1
//       { "workload": "sort",       // required
//         "input": "4GB",           // required
//         "reducers": 8,            // 0/absent = auto
//         "submit_at": 0.0,
//         "iterations": 1 }         // > 1 chains output -> input
//     ],
//     "faults": [                    // scripted fault injections
//       { "kind": "crash",        "worker": 5, "at": 12.5 },
//       { "kind": "outage",       "worker": 3, "at": 10.0, "duration": 15.0 },
//       { "kind": "degrade_link", "worker": 2, "at": 5.0,
//         "duration": 20.0, "factor": 0.1 },
//       { "kind": "slow_node",    "worker": 1, "at": 0.0,
//         "duration": 30.0, "factor": 4.0 }
//     ],
//     "failures": [ { "worker": 5, "at": 12.5 } ]   // legacy alias:
//                                    // each entry is a crash fault
//   }
#pragma once

#include <string>
#include <vector>

#include "capture/trace.h"
#include "hadoop/cluster.h"
#include "hadoop/joblog.h"
#include "util/json.h"
#include "workloads/profiles.h"

namespace keddah::core {

/// Parsed scenario description.
struct ScenarioSpec {
  hadoop::ClusterConfig cluster;
  std::uint64_t seed = 1;
  /// Worker-thread budget when this scenario runs as part of a batch sweep
  /// (core::run_scenarios); 0 = hardware concurrency.
  std::size_t threads = 0;

  struct JobEntry {
    workloads::Workload workload = workloads::Workload::kSort;
    std::uint64_t input_bytes = 0;
    std::size_t num_reducers = 0;  // 0 = auto
    double submit_at = 0.0;
    std::size_t iterations = 1;
  };
  std::vector<JobEntry> jobs;

  /// Scripted faults ("faults" array; legacy "failures" entries become crash
  /// events). Worker indices are validated against the cluster size at parse
  /// time and again when the plan is scheduled.
  hadoop::FaultPlan faults;

  /// When non-empty, the capture spills to `<spill_dir>/capture.kspill`
  /// (mmap'd, append-only; see capture/spill.h) instead of accumulating in
  /// RAM, and ScenarioOutcome::trace comes back empty. Not part of the JSON
  /// schema: set by hosting code (CLI --spill-dir), so scenario documents
  /// stay portable across machines.
  std::string spill_dir;
};

/// Parses a scenario document; throws std::invalid_argument /
/// std::runtime_error with a field-specific message on malformed input.
/// `context` names the source (file path, ...) in those messages.
ScenarioSpec parse_scenario(const util::Json& doc,
                            const std::string& context = "scenario");

/// Convenience: load + parse a scenario file. Parse errors name the file.
ScenarioSpec load_scenario(const std::string& path);

/// Everything a scenario run produces.
struct ScenarioOutcome {
  /// One result per completed job (iterations expand to one result each),
  /// in completion order.
  std::vector<hadoop::JobResult> results;
  capture::Trace trace;
  hadoop::JobHistoryLog history;
  /// Background repair transfers triggered by injected failures.
  std::size_t rereplications = 0;
  /// Injected faults and the recovery work they caused (all zero on clean
  /// runs).
  hadoop::FaultStats faults;
  /// Fair-share scheduler perf counters for the run (reshares, links
  /// touched, heap ops; see net::SchedulerStats).
  net::SchedulerStats scheduler;
  /// Spill results when ScenarioSpec::spill_dir was set: records written
  /// and the finalized spill file (trace above is empty in that mode).
  std::uint64_t spilled_records = 0;
  std::string spill_path;
};

/// Builds the cluster and runs the whole scenario to completion.
ScenarioOutcome run_scenario(const ScenarioSpec& spec);

}  // namespace keddah::core
