// Validation metrics: how closely does Keddah-generated traffic match the
// captured ground truth? Per-class flow count, volume, size-distribution
// distance (two-sample KS), and temporal-span comparisons.
#pragma once

#include <array>
#include <iosfwd>
#include <string>

#include "capture/trace.h"

namespace keddah::core {

/// Per-class comparison of two traces.
struct ClassComparison {
  net::FlowKind kind = net::FlowKind::kOther;
  std::size_t captured_flows = 0;
  std::size_t generated_flows = 0;
  double captured_bytes = 0.0;
  double generated_bytes = 0.0;
  /// Two-sample KS distance between flow-size samples (1.0 when either
  /// side is empty but not both; 0.0 when both empty).
  double size_ks = 0.0;
  /// Two-sample KS p-value (0 when not computable).
  double size_ks_pvalue = 0.0;

  /// Relative errors, in [-1, inf): (generated - captured) / captured.
  double count_error() const;
  double volume_error() const;
};

/// Whole-trace comparison.
struct ValidationReport {
  std::array<ClassComparison, net::kNumFlowKinds> classes{};
  double captured_total_bytes = 0.0;
  double generated_total_bytes = 0.0;
  double captured_span_s = 0.0;
  double generated_span_s = 0.0;

  double total_volume_error() const;

  const ClassComparison& of(net::FlowKind kind) const {
    return classes[static_cast<std::size_t>(kind)];
  }

  /// Renders an aligned table of the per-class rows.
  void print(std::ostream& out) const;
};

/// Compares generated against captured traffic. Classes are derived with
/// the port classifier on both sides.
ValidationReport compare_traces(const capture::Trace& captured, const capture::Trace& generated);

}  // namespace keddah::core
