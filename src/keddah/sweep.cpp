#include "keddah/sweep.h"

#include "keddah/scenario.h"

namespace keddah::core {

std::vector<ScenarioOutcome> run_scenarios(std::span<const ScenarioSpec> specs,
                                           std::size_t threads, SweepProgress progress) {
  if (threads == 0) {
    // No caller override: honour the specs' own thread budgets. Several
    // specs may disagree; the sweep is one pool, so take the largest.
    for (const auto& spec : specs) {
      if (spec.threads > threads) threads = spec.threads;
    }
  }
  SweepRunner runner({.threads = threads, .progress = std::move(progress)});
  return runner.map(specs.size(), [&](std::size_t i) { return run_scenario(specs[i]); });
}

}  // namespace keddah::core
