#include "keddah/compare.h"

#include <cmath>
#include <ostream>

#include "stats/kstest.h"
#include "util/strings.h"
#include "util/table.h"

namespace keddah::core {

double ClassComparison::count_error() const {
  if (captured_flows == 0) return generated_flows == 0 ? 0.0 : 1.0;
  return (static_cast<double>(generated_flows) - static_cast<double>(captured_flows)) /
         static_cast<double>(captured_flows);
}

double ClassComparison::volume_error() const {
  if (captured_bytes <= 0.0) return generated_bytes <= 0.0 ? 0.0 : 1.0;
  return (generated_bytes - captured_bytes) / captured_bytes;
}

double ValidationReport::total_volume_error() const {
  if (captured_total_bytes <= 0.0) return generated_total_bytes <= 0.0 ? 0.0 : 1.0;
  return (generated_total_bytes - captured_total_bytes) / captured_total_bytes;
}

ValidationReport compare_traces(const capture::Trace& captured, const capture::Trace& generated) {
  ValidationReport report;
  report.captured_total_bytes = captured.total_bytes();
  report.generated_total_bytes = generated.total_bytes();
  report.captured_span_s = captured.last_end() - captured.first_start();
  report.generated_span_s = generated.last_end() - generated.first_start();

  for (std::size_t i = 0; i < net::kNumFlowKinds; ++i) {
    const auto kind = static_cast<net::FlowKind>(i);
    auto& cc = report.classes[i];
    cc.kind = kind;
    const auto cap = captured.filter_kind(kind);
    const auto gen = generated.filter_kind(kind);
    cc.captured_flows = cap.size();
    cc.generated_flows = gen.size();
    cc.captured_bytes = cap.total_bytes();
    cc.generated_bytes = gen.total_bytes();
    if (!cap.empty() && !gen.empty()) {
      const auto cap_sizes = cap.sizes();
      const auto gen_sizes = gen.sizes();
      cc.size_ks = stats::ks_statistic_two_sample(cap_sizes, gen_sizes);
      cc.size_ks_pvalue =
          stats::ks_pvalue_two_sample(cc.size_ks, cap_sizes.size(), gen_sizes.size());
    } else if (cap.empty() != gen.empty()) {
      cc.size_ks = 1.0;
    }
  }
  return report;
}

void ValidationReport::print(std::ostream& out) const {
  util::TextTable table({"class", "flows(cap)", "flows(gen)", "count_err", "bytes(cap)",
                         "bytes(gen)", "vol_err", "size_KS"});
  for (const auto& cc : classes) {
    if (cc.captured_flows == 0 && cc.generated_flows == 0) continue;
    table.add_row({net::flow_kind_name(cc.kind), std::to_string(cc.captured_flows),
                   std::to_string(cc.generated_flows),
                   util::format("%+.1f%%", 100.0 * cc.count_error()),
                   util::human_bytes(cc.captured_bytes), util::human_bytes(cc.generated_bytes),
                   util::format("%+.1f%%", 100.0 * cc.volume_error()),
                   util::format("%.3f", cc.size_ks)});
  }
  table.add_row({"total", "", "", "", util::human_bytes(captured_total_bytes),
                 util::human_bytes(generated_total_bytes),
                 util::format("%+.1f%%", 100.0 * total_volume_error()), ""});
  table.print(out);
}

}  // namespace keddah::core
