// Scenario-file fan-out on top of the core sweep engine.
//
// The generic deterministic runner (core::SweepRunner) lives in
// core/sweep.h so low layers can use it; this header adds the one
// scenario-aware entry point, implemented in sweep.cpp (keddah_core).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/sweep.h"

namespace keddah::core {

struct ScenarioSpec;
struct ScenarioOutcome;

/// Fans a batch of declarative scenarios (scenario.h) out across cores and
/// returns their outcomes in spec order. `threads` 0 defers to the largest
/// `threads` field among the specs (which itself defaults to 0 = hardware
/// concurrency). Backs `keddah run-scenario --file a.json,b.json --threads N`.
std::vector<ScenarioOutcome> run_scenarios(std::span<const ScenarioSpec> specs,
                                           std::size_t threads = 0, SweepProgress progress = {});

}  // namespace keddah::core
