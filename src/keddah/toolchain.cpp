#include "keddah/toolchain.h"

#include <cmath>

#include "util/log.h"
#include "util/rng.h"

namespace keddah::core {

namespace {

/// Element-wise mean of per-repetition validation reports. The captured
/// side is identical in every report (same reference trace); the generated
/// side is averaged so repeated validation damps sampling noise.
ValidationReport mean_report(std::span<const ValidationReport> reports) {
  ValidationReport mean = reports[0];
  if (reports.size() == 1) return mean;
  const double n = static_cast<double>(reports.size());
  for (std::size_t k = 0; k < mean.classes.size(); ++k) {
    double flows = 0.0;
    double bytes = 0.0;
    double ks = 0.0;
    double pvalue = 0.0;
    for (const auto& report : reports) {
      flows += static_cast<double>(report.classes[k].generated_flows);
      bytes += report.classes[k].generated_bytes;
      ks += report.classes[k].size_ks;
      pvalue += report.classes[k].size_ks_pvalue;
    }
    mean.classes[k].generated_flows = static_cast<std::size_t>(std::llround(flows / n));
    mean.classes[k].generated_bytes = bytes / n;
    mean.classes[k].size_ks = ks / n;
    mean.classes[k].size_ks_pvalue = pvalue / n;
  }
  double total_bytes = 0.0;
  double span_s = 0.0;
  for (const auto& report : reports) {
    total_bytes += report.generated_total_bytes;
    span_s += report.generated_span_s;
  }
  mean.generated_total_bytes = total_bytes / n;
  mean.generated_span_s = span_s / n;
  return mean;
}

}  // namespace

model::TrainingRun to_training_run(const workloads::RunOutcome& outcome) {
  model::TrainingRun run;
  run.trace = outcome.trace;
  run.input_bytes = static_cast<double>(outcome.input_bytes);
  run.num_maps = outcome.result.num_maps;
  run.num_reducers = outcome.result.num_reducers;
  run.job_start = outcome.result.submit_time;
  run.job_end = outcome.result.end_time;
  return run;
}

std::vector<model::TrainingRun> capture_runs(const hadoop::ClusterConfig& config,
                                             const CaptureSpec& spec) {
  const workloads::Workload workload = spec.workload;
  const auto outcomes =
      workloads::run_grid(config, std::span(&workload, 1), spec.input_sizes, spec.repetitions,
                          spec.seed, spec.threads, spec.progress, spec.faults);
  std::vector<model::TrainingRun> runs;
  runs.reserve(outcomes.size());
  for (const auto& outcome : outcomes) runs.push_back(to_training_run(outcome));
  return runs;
}

model::KeddahModel train(const std::string& job_name, std::span<const model::TrainingRun> runs,
                         const hadoop::ClusterConfig& config,
                         const model::BuilderOptions& base_options) {
  model::BuilderOptions options = base_options;
  options.block_size = config.block_size;
  options.replication = config.replication;
  options.cluster_nodes = config.num_workers();
  return model::build_model(job_name, runs, options);
}

ReproduceResult generate_and_replay(const model::KeddahModel& model, const ReproduceSpec& spec,
                                    const net::Topology& topology) {
  ReproduceResult result;
  gen::TrafficGenerator generator(model, util::Rng(spec.seed), spec.gen_options);
  result.schedule = generator.generate(spec.scenario);
  result.replay = gen::replay(result.schedule, topology, 40.0e9, spec.spill_dir);
  return result;
}

ValidationReport validate_model(const model::KeddahModel& model,
                                const model::TrainingRun& reference,
                                const hadoop::ClusterConfig& config, const ValidateSpec& spec) {
  gen::Scenario scenario;
  scenario.input_bytes = reference.input_bytes;
  scenario.num_maps = reference.num_maps;
  scenario.num_reducers = reference.num_reducers;
  scenario.num_hosts = config.num_workers();
  const net::Topology topology = config.build_topology();

  const std::size_t repetitions = spec.repetitions == 0 ? 1 : spec.repetitions;
  SweepRunner runner({.threads = spec.threads, .progress = spec.progress});
  const auto reports = runner.map(repetitions, [&](std::size_t rep) {
    ReproduceSpec reproduce;
    reproduce.scenario = scenario;
    reproduce.seed = util::derive_seed(spec.seed, rep);
    reproduce.gen_options = spec.gen_options;
    const auto reproduced = generate_and_replay(model, reproduce, topology);
    return compare_traces(reference.trace, reproduced.replay.trace);
  });
  return mean_report(reports);
}

void save_run(const model::TrainingRun& run, const std::string& basename) {
  run.trace.save(basename + ".csv");
  util::Json meta = util::Json::object();
  meta["input_bytes"] = util::Json(run.input_bytes);
  meta["num_maps"] = util::Json(static_cast<std::uint64_t>(run.num_maps));
  meta["num_reducers"] = util::Json(static_cast<std::uint64_t>(run.num_reducers));
  meta["job_start"] = util::Json(run.job_start);
  meta["job_end"] = util::Json(run.job_end);
  meta.save_file(basename + ".meta.json");
}

model::TrainingRun load_run(const std::string& basename) {
  model::TrainingRun run;
  run.trace = capture::Trace::load(basename + ".csv");
  const auto meta = util::Json::load_file(basename + ".meta.json");
  run.input_bytes = meta.at("input_bytes").as_number();
  run.num_maps = static_cast<std::size_t>(meta.at("num_maps").as_number());
  run.num_reducers = static_cast<std::size_t>(meta.at("num_reducers").as_number());
  run.job_start = meta.at("job_start").as_number();
  run.job_end = meta.at("job_end").as_number();
  return run;
}

}  // namespace keddah::core
