#include "keddah/toolchain.h"

#include "util/log.h"

namespace keddah::core {

model::TrainingRun to_training_run(const workloads::RunOutcome& outcome) {
  model::TrainingRun run;
  run.trace = outcome.trace;
  run.input_bytes = static_cast<double>(outcome.input_bytes);
  run.num_maps = outcome.result.num_maps;
  run.num_reducers = outcome.result.num_reducers;
  run.job_start = outcome.result.submit_time;
  run.job_end = outcome.result.end_time;
  return run;
}

std::vector<model::TrainingRun> capture_runs(const hadoop::ClusterConfig& config,
                                             workloads::Workload workload,
                                             std::span<const std::uint64_t> input_sizes,
                                             std::size_t repetitions, std::uint64_t seed) {
  const auto outcomes =
      workloads::run_grid(config, std::span(&workload, 1), input_sizes, repetitions, seed);
  std::vector<model::TrainingRun> runs;
  runs.reserve(outcomes.size());
  for (const auto& outcome : outcomes) runs.push_back(to_training_run(outcome));
  return runs;
}

model::KeddahModel train(const std::string& job_name, std::span<const model::TrainingRun> runs,
                         const hadoop::ClusterConfig& config,
                         const model::BuilderOptions& base_options) {
  model::BuilderOptions options = base_options;
  options.block_size = config.block_size;
  options.replication = config.replication;
  options.cluster_nodes = config.num_workers();
  return model::build_model(job_name, runs, options);
}

ReproduceResult generate_and_replay(const model::KeddahModel& model,
                                    const gen::Scenario& scenario,
                                    const net::Topology& topology, std::uint64_t seed,
                                    gen::GeneratorOptions gen_options) {
  ReproduceResult result;
  gen::TrafficGenerator generator(model, util::Rng(seed), gen_options);
  result.schedule = generator.generate(scenario);
  result.replay = gen::replay(result.schedule, topology);
  return result;
}

ValidationReport validate_model(const model::KeddahModel& model,
                                const model::TrainingRun& reference,
                                const hadoop::ClusterConfig& config, std::uint64_t seed,
                                gen::GeneratorOptions gen_options) {
  gen::Scenario scenario;
  scenario.input_bytes = reference.input_bytes;
  scenario.num_maps = reference.num_maps;
  scenario.num_reducers = reference.num_reducers;
  scenario.num_hosts = config.num_workers();
  const auto reproduced =
      generate_and_replay(model, scenario, config.build_topology(), seed, gen_options);
  return compare_traces(reference.trace, reproduced.replay.trace);
}

void save_run(const model::TrainingRun& run, const std::string& basename) {
  run.trace.save(basename + ".csv");
  util::Json meta = util::Json::object();
  meta["input_bytes"] = util::Json(run.input_bytes);
  meta["num_maps"] = util::Json(static_cast<std::uint64_t>(run.num_maps));
  meta["num_reducers"] = util::Json(static_cast<std::uint64_t>(run.num_reducers));
  meta["job_start"] = util::Json(run.job_start);
  meta["job_end"] = util::Json(run.job_end);
  meta.save_file(basename + ".meta.json");
}

model::TrainingRun load_run(const std::string& basename) {
  model::TrainingRun run;
  run.trace = capture::Trace::load(basename + ".csv");
  const auto meta = util::Json::load_file(basename + ".meta.json");
  run.input_bytes = meta.at("input_bytes").as_number();
  run.num_maps = static_cast<std::size_t>(meta.at("num_maps").as_number());
  run.num_reducers = static_cast<std::size_t>(meta.at("num_reducers").as_number());
  run.job_start = meta.at("job_start").as_number();
  run.job_end = meta.at("job_end").as_number();
  return run;
}

}  // namespace keddah::core
