// The Keddah toolchain facade: capture -> model -> reproduce in three calls.
//
//   auto runs  = keddah::core::capture_runs(cfg, workload, sizes, reps, seed);
//   auto model = keddah::core::train(workload_name, runs, cfg);
//   auto replayed = keddah::core::generate_and_replay(model, scenario, topo, seed);
//
// This is the public API the examples and benches drive.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "gen/generator.h"
#include "gen/replay.h"
#include "hadoop/config.h"
#include "keddah/compare.h"
#include "model/builder.h"
#include "workloads/suite.h"

namespace keddah::core {

/// Adapts a suite run into the trainer's input form.
model::TrainingRun to_training_run(const workloads::RunOutcome& outcome);

/// CAPTURE: runs `repetitions` jobs of `workload` for every input size on
/// fresh emulated clusters, capturing each run's flows.
std::vector<model::TrainingRun> capture_runs(const hadoop::ClusterConfig& config,
                                             workloads::Workload workload,
                                             std::span<const std::uint64_t> input_sizes,
                                             std::size_t repetitions, std::uint64_t seed);

/// MODEL: trains a KeddahModel from captured runs, recording the cluster
/// configuration in the model context.
model::KeddahModel train(const std::string& job_name, std::span<const model::TrainingRun> runs,
                         const hadoop::ClusterConfig& config,
                         const model::BuilderOptions& base_options = {});

/// REPRODUCE: samples the model for `scenario` and replays the schedule on
/// `topology`, returning both the schedule and the replay capture.
struct ReproduceResult {
  gen::SyntheticTrafficSchedule schedule;
  gen::ReplayResult replay;
};
ReproduceResult generate_and_replay(const model::KeddahModel& model,
                                    const gen::Scenario& scenario,
                                    const net::Topology& topology, std::uint64_t seed,
                                    gen::GeneratorOptions gen_options = {});

/// End-to-end validation: captures fresh runs at `validation_input`, trains
/// on `runs`, reproduces at the same scale, and compares.
ValidationReport validate_model(const model::KeddahModel& model,
                                const model::TrainingRun& reference,
                                const hadoop::ClusterConfig& config, std::uint64_t seed,
                                gen::GeneratorOptions gen_options = {});

/// Persists a captured run as `<basename>.csv` (flows) plus
/// `<basename>.meta.json` (job-log metadata), the on-disk interchange
/// format of the keddah CLI.
void save_run(const model::TrainingRun& run, const std::string& basename);

/// Loads a run persisted by save_run. Throws std::runtime_error on missing
/// or malformed files.
model::TrainingRun load_run(const std::string& basename);

}  // namespace keddah::core
