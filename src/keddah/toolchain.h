// The Keddah toolchain facade: capture -> model -> reproduce in three calls.
//
//   core::CaptureSpec capture{.workload = workloads::Workload::kSort,
//                             .input_sizes = {1ull << 30},
//                             .repetitions = 2, .seed = 42, .threads = 0};
//   auto runs  = keddah::core::capture_runs(cfg, capture);
//   auto model = keddah::core::train(workload_name, runs, cfg);
//   auto replayed = keddah::core::generate_and_replay(
//       model, core::ReproduceSpec{.scenario = scenario, .seed = 7}, topo);
//
// This is the public API the examples and benches drive. Knobs live in spec
// structs (CaptureSpec / ReproduceSpec / ValidateSpec) so new options —
// thread counts, progress callbacks — never grow an argument list again.
// Sweep-shaped calls (capture_runs, validate_model repetitions) fan out
// across cores via core::SweepRunner; per-task seeds come from
// util::derive_seed, so output is bit-identical at any thread count.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "gen/generator.h"
#include "gen/replay.h"
#include "hadoop/config.h"
#include "keddah/compare.h"
#include "keddah/sweep.h"
#include "model/builder.h"
#include "workloads/suite.h"

namespace keddah::core {

/// Adapts a suite run into the trainer's input form.
model::TrainingRun to_training_run(const workloads::RunOutcome& outcome);

/// What to capture: `repetitions` jobs of `workload` at every input size,
/// each on a fresh emulated cluster seeded with derive_seed(seed, index).
struct CaptureSpec {
  workloads::Workload workload = workloads::Workload::kSort;
  std::vector<std::uint64_t> input_sizes;
  std::size_t repetitions = 1;
  std::uint64_t seed = 1;
  /// Worker threads for the size x repetition sweep; 0 = hardware
  /// concurrency. Results are identical at any value.
  std::size_t threads = 0;
  SweepProgress progress;
  /// Optional fault plan injected into every captured run, so models can be
  /// trained on traffic as it looks under faults (retries, reruns, repair).
  hadoop::FaultPlan faults;
};

/// CAPTURE: runs the spec's sweep, capturing each run's flows. Outcomes are
/// ordered size-major then repetition, independent of thread count.
std::vector<model::TrainingRun> capture_runs(const hadoop::ClusterConfig& config,
                                             const CaptureSpec& spec);

/// MODEL: trains a KeddahModel from captured runs, recording the cluster
/// configuration in the model context.
model::KeddahModel train(const std::string& job_name, std::span<const model::TrainingRun> runs,
                         const hadoop::ClusterConfig& config,
                         const model::BuilderOptions& base_options = {});

/// What to reproduce: one scenario sampled from a model with `seed`.
struct ReproduceSpec {
  gen::Scenario scenario;
  std::uint64_t seed = 1;
  gen::GeneratorOptions gen_options;
  /// When non-empty, the replay capture spills to
  /// `<spill_dir>/capture.kspill` instead of RAM (capture/spill.h). Omitted
  /// from the serialized JSON when empty, so specs without it round-trip
  /// byte-identically.
  std::string spill_dir;
};

/// REPRODUCE: samples the model for the spec's scenario and replays the
/// schedule on `topology`, returning both the schedule and the capture.
struct ReproduceResult {
  gen::SyntheticTrafficSchedule schedule;
  gen::ReplayResult replay;
};
ReproduceResult generate_and_replay(const model::KeddahModel& model, const ReproduceSpec& spec,
                                    const net::Topology& topology);

/// How to validate: reproduce the reference run `repetitions` times (seeds
/// derive_seed(seed, rep), fanned across `threads` workers) and compare
/// against the capture. With repetitions > 1 the generated-side columns of
/// the report are means over the repetitions, damping sampling noise.
struct ValidateSpec {
  std::uint64_t seed = 1;
  std::size_t repetitions = 1;
  /// Worker threads for the repetition sweep; 0 = hardware concurrency.
  std::size_t threads = 0;
  gen::GeneratorOptions gen_options;
  SweepProgress progress;
};

/// End-to-end validation: reproduces at the reference run's scale on the
/// config's topology and compares generated against captured traffic.
ValidationReport validate_model(const model::KeddahModel& model,
                                const model::TrainingRun& reference,
                                const hadoop::ClusterConfig& config, const ValidateSpec& spec);

/// Persists a captured run as `<basename>.csv` (flows) plus
/// `<basename>.meta.json` (job-log metadata), the on-disk interchange
/// format of the keddah CLI.
void save_run(const model::TrainingRun& run, const std::string& basename);

/// Loads a run persisted by save_run. Throws std::runtime_error on missing
/// or malformed files.
model::TrainingRun load_run(const std::string& basename);

}  // namespace keddah::core
