// The keddah command-line toolchain — subcommands mirroring the paper's
// capture / model / reproduce workflow, plus replay and ns-3 export:
//
//   keddah capture  --job sort --input 2GB --reps 2 --out /tmp/run
//   keddah train    --runs /tmp/run_0,/tmp/run_1 --name sort --out model.json
//   keddah generate --model model.json --input 8GB --out schedule.csv
//   keddah replay   --schedule schedule.csv --topology racktree --racks 4
//   keddah validate --model model.json --run /tmp/run_0
//   keddah export-ns3 --schedule schedule.csv --out /tmp/keddah-replay
//
// The implementation is a library function so tests can drive it
// in-process; tools/keddah_cli.cpp is the thin binary wrapper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace keddah::cli {

/// Runs one CLI invocation. `tokens` is argv[1..] (subcommand first).
/// Writes human output to `out` and diagnostics to `err`; returns the
/// process exit code (0 = success).
int run(const std::vector<std::string>& tokens, std::ostream& out, std::ostream& err);

/// argv-style convenience wrapper used by the binary.
int run_main(int argc, const char* const* argv);

/// The usage text (printed on `keddah help` and errors).
std::string usage();

}  // namespace keddah::cli
