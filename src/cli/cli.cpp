#include "cli/cli.h"

#include <fstream>
#include <iostream>
#include <sstream>

#include <algorithm>
#include <cmath>

#include "api/specs.h"
#include "capture/matrix.h"
#include "gen/ns3_export.h"
#include "hadoop/attribution.h"
#include "hadoop/faults.h"
#include "keddah/scenario.h"
#include "keddah/sweep.h"
#include "model/calibration.h"
#include "keddah/toolchain.h"
#include "serve/server.h"
#include "stats/fitting.h"
#include "stats/summary.h"
#include "util/args.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace keddah::cli {

namespace {

hadoop::ClusterConfig config_from_args(const util::Args& args) {
  hadoop::ClusterConfig cfg;
  cfg.racks = static_cast<std::size_t>(args.get_int("racks", 4));
  cfg.hosts_per_rack = static_cast<std::size_t>(args.get_int("hosts-per-rack", 4));
  cfg.access_bps = args.get_double("access-gbps", 1.0) * 1e9;
  cfg.core_bps = args.get_double("core-gbps", 10.0) * 1e9;
  cfg.block_size = args.get_bytes("block-size", 128ull << 20);
  cfg.replication = static_cast<std::uint32_t>(args.get_int("replication", 3));
  cfg.containers_per_node = static_cast<std::size_t>(args.get_int("containers", 4));
  cfg.slowstart = args.get_double("slowstart", 0.05);
  cfg.locality_delay_s = args.get_double("locality-delay", 2.0);
  cfg.map_output_compress_ratio = args.get_double("compress-ratio", 1.0);
  cfg.speculative_execution = args.get_bool("speculative", false);
  cfg.straggler_fraction = args.get_double("straggler-fraction", 0.0);
  cfg.fetch_failure_threshold =
      static_cast<std::uint32_t>(args.get_int("fetch-failure-threshold", 3));
  cfg.fetch_retry_initial_s = args.get_double("fetch-backoff", 1.0);
  cfg.fetch_retry_cap_s = args.get_double("fetch-backoff-cap", 10.0);
  const std::string topo = args.get("topology", "racktree");
  if (topo == "star") {
    cfg.topology = hadoop::TopologyKind::kStar;
  } else if (topo == "fattree") {
    cfg.topology = hadoop::TopologyKind::kFatTree;
    cfg.fat_tree_k = static_cast<std::size_t>(args.get_int("fat-tree-k", 4));
  } else if (topo == "racktree") {
    cfg.topology = hadoop::TopologyKind::kRackTree;
  } else {
    throw std::invalid_argument("unknown --topology '" + topo + "'");
  }
  return cfg;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  for (const auto& part : util::split(text, ',')) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

/// Loads `--faults FILE` (a JSON array of fault events, same schema as a
/// scenario's "faults" field) and range-checks it against the cluster size.
hadoop::FaultPlan faults_from_args(const util::Args& args,
                                   const hadoop::ClusterConfig& cfg) {
  const std::string path = args.get("faults", "");
  if (path.empty()) return {};
  const auto plan = hadoop::parse_fault_plan(util::Json::load_file(path), path);
  hadoop::validate_fault_plan(plan, cfg.num_workers(), path);
  return plan;
}

int cmd_capture(const util::Args& args, std::ostream& out, std::ostream& err) {
  (void)err;  // kept for subcommand-signature uniformity
  const auto cfg = config_from_args(args);
  const auto workload = workloads::workload_from_name(args.get("job", "sort"));
  const std::uint64_t input = args.get_bytes("input", 2ull << 30);
  const auto reps = static_cast<std::size_t>(args.get_int("reps", 1));
  const auto reducers = static_cast<std::size_t>(args.get_int("reducers", 0));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 1));
  const std::string out_base = args.get("out", "keddah_run");
  const auto faults = faults_from_args(args, cfg);
  args.reject_unknown();

  core::CaptureSpec spec;
  spec.workload = workload;
  spec.input_sizes = {input};
  spec.repetitions = reps;
  spec.seed = seed;
  spec.threads = threads;
  spec.faults = faults;
  // `capture` ignores --reducers only in the auto (0) case; a non-default
  // reducer count needs per-run control, so fall back to single runs.
  std::vector<model::TrainingRun> runs;
  if (reducers == 0) {
    runs = core::capture_runs(cfg, spec);
  } else {
    for (std::size_t rep = 0; rep < reps; ++rep) {
      runs.push_back(core::to_training_run(workloads::run_single(
          cfg, workload, input, reducers, util::derive_seed(seed, rep), faults)));
    }
  }
  for (std::size_t rep = 0; rep < runs.size(); ++rep) {
    const auto& run = runs[rep];
    const std::string basename = util::format("%s_%zu", out_base.c_str(), rep);
    core::save_run(run, basename);
    out << "captured " << workloads::workload_name(workload) << " rep " << rep << ": "
        << run.trace.size() << " flows, " << util::human_bytes(run.trace.total_bytes())
        << ", job " << util::human_seconds(run.duration()) << " -> " << basename
        << ".{csv,meta.json}\n";
  }
  return 0;
}

int cmd_train(const util::Args& args, std::ostream& out, std::ostream& err) {
  const auto cfg = config_from_args(args);
  const auto bases = split_list(args.get("runs", ""));
  const std::string name = args.get("name", "job");
  const std::string model_path = args.get("out", "keddah_model.json");
  const std::string size_kind = args.get("size-model", "parametric");
  args.reject_unknown();
  if (bases.empty()) {
    err << "error: --runs requires a comma-separated list of run basenames\n";
    return 2;
  }
  std::vector<model::TrainingRun> runs;
  for (const auto& base : bases) runs.push_back(core::load_run(base));
  model::BuilderOptions options;
  options.size_kind = size_kind == "empirical" ? model::SizeModelKind::kEmpirical
                                               : model::SizeModelKind::kParametric;
  const auto model = core::train(name, runs, cfg, options);
  model.save(model_path);
  out << "trained '" << name << "' from " << runs.size() << " runs -> " << model_path << "\n";
  util::TextTable table({"class", "flows", "size model", "KS"});
  for (const auto kind : model::kModelledClasses) {
    const auto& cm = model.class_model(kind);
    if (cm.training_flows == 0) continue;
    table.add_row({net::flow_kind_name(kind), std::to_string(cm.training_flows),
                   cm.size.parametric ? cm.size.parametric->describe() : "(empirical)",
                   util::format("%.3f", cm.size.ks)});
  }
  table.print(out);
  return 0;
}

int cmd_generate(const util::Args& args, std::ostream& out, std::ostream& err) {
  const std::string model_path = args.get("model", "keddah_model.json");
  const double input = static_cast<double>(args.get_bytes("input", 8ull << 30));
  const auto hosts = static_cast<std::size_t>(args.get_int("hosts", 16));
  const auto maps = static_cast<std::size_t>(args.get_int("maps", 0));
  const auto reducers = static_cast<std::size_t>(args.get_int("reducers", 0));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const bool normalize = args.get_bool("normalize-volume", false);
  const std::string schedule_path = args.get("out", "keddah_schedule.csv");
  args.reject_unknown();

  const auto model = model::KeddahModel::load(model_path);
  gen::Scenario scenario;
  scenario.input_bytes = input;
  scenario.num_hosts = hosts;
  scenario.num_maps = maps;
  scenario.num_reducers = reducers;
  gen::GeneratorOptions options;
  options.normalize_volume = normalize;
  gen::TrafficGenerator generator(model, util::Rng(seed), options);
  const auto schedule = generator.generate(scenario);
  std::ofstream file(schedule_path);
  if (!file) {
    err << "error: cannot write " << schedule_path << "\n";
    return 1;
  }
  file << gen::schedule_to_csv(schedule);
  out << "generated " << schedule.flows.size() << " flows ("
      << util::human_bytes(schedule.total_bytes()) << ", predicted duration "
      << util::human_seconds(schedule.predicted_duration) << ") -> " << schedule_path << "\n";
  return 0;
}

gen::SyntheticTrafficSchedule load_schedule(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return gen::schedule_from_csv(buffer.str());
}

int cmd_replay(const util::Args& args, std::ostream& out, std::ostream& err) {
  (void)err;  // kept for subcommand-signature uniformity
  const std::string schedule_path = args.get("schedule", "keddah_schedule.csv");
  const std::string spill_dir = args.get("spill-dir", "");
  const auto cfg = config_from_args(args);
  args.reject_unknown();
  const auto schedule = load_schedule(schedule_path);
  const auto result = gen::replay(schedule, cfg.build_topology(), 40.0e9, spill_dir);
  const auto replayed =
      result.spill_path.empty() ? result.trace.size() : result.spilled_records;
  out << "replayed " << replayed << " flows\n";
  if (!result.spill_path.empty()) {
    out << "spilled " << result.spilled_records << " records: " << result.spill_path << "\n";
  }
  util::TextTable table({"metric", "value"});
  // In spill mode the trace lives on disk; byte totals come from the reader.
  if (result.spill_path.empty()) {
    table.add_row({"bytes", util::human_bytes(result.trace.total_bytes())});
  }
  table.add_row({"makespan", util::human_seconds(result.makespan)});
  table.add_row({"mean FCT", util::format("%.3f s", result.mean_fct())});
  table.add_row({"p99 FCT", util::format("%.3f s", result.p99_fct())});
  table.print(out);
  return 0;
}

int cmd_validate(const util::Args& args, std::ostream& out, std::ostream& err) {
  const auto cfg = config_from_args(args);
  const std::string model_path = args.get("model", "keddah_model.json");
  const std::string run_base = args.get("run", "");
  core::ValidateSpec spec;
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  spec.repetitions = static_cast<std::size_t>(args.get_int("reps", 1));
  spec.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  args.reject_unknown();
  if (run_base.empty()) {
    err << "error: --run <basename> is required\n";
    return 2;
  }
  const auto model = model::KeddahModel::load(model_path);
  const auto reference = core::load_run(run_base);
  const auto report = core::validate_model(model, reference, cfg, spec);
  report.print(out);
  return 0;
}

int cmd_export_ns3(const util::Args& args, std::ostream& out, std::ostream& err) {
  (void)err;  // kept for subcommand-signature uniformity
  const std::string schedule_path = args.get("schedule", "keddah_schedule.csv");
  const std::string out_base = args.get("out", "keddah-replay");
  gen::Ns3ExportOptions options;
  options.num_hosts = static_cast<std::size_t>(args.get_int("hosts", 16));
  options.link_rate = args.get("link-rate", "1Gbps");
  options.link_delay = args.get("link-delay", "100us");
  args.reject_unknown();
  const auto schedule = load_schedule(schedule_path);
  gen::export_ns3(schedule, out_base, options);
  out << "wrote " << out_base << ".csv and " << out_base << ".cc (" << schedule.flows.size()
      << " flows)\n";
  return 0;
}

int cmd_analyze(const util::Args& args, std::ostream& out, std::ostream& err) {
  const std::string trace_path = args.get("trace", "");
  const std::string history_path = args.get("history", "");
  const auto hosts = static_cast<std::size_t>(args.get_int("hosts", 0));
  args.reject_unknown();
  if (trace_path.empty()) {
    err << "error: --trace <file.csv> is required\n";
    return 2;
  }
  const auto trace = capture::Trace::load(trace_path);
  out << "Trace: " << trace.size() << " flows, " << util::human_bytes(trace.total_bytes())
      << " over " << util::human_seconds(trace.last_end() - trace.first_start()) << "\n\n";

  // Per-class decomposition + size summaries + best fit.
  util::TextTable classes(
      {"class", "flows", "bytes", "share", "median", "p99", "best fit", "KS"});
  const double total = std::max(trace.total_bytes(), 1.0);
  for (std::size_t k = 0; k < net::kNumFlowKinds; ++k) {
    const auto kind = static_cast<net::FlowKind>(k);
    const auto class_trace = trace.filter_kind(kind);
    if (class_trace.empty()) continue;
    const auto sizes = class_trace.sizes();
    const auto best = stats::fit_best(sizes);
    classes.add_row(
        {net::flow_kind_name(kind), std::to_string(class_trace.size()),
         util::human_bytes(class_trace.total_bytes()),
         util::format("%.1f%%", 100.0 * class_trace.total_bytes() / total),
         util::human_bytes(stats::quantile(sizes, 0.5)),
         util::human_bytes(stats::quantile(sizes, 0.99)),
         best ? best->dist.describe() : "(none)",
         best ? util::format("%.3f", best->ks) : "-"});
  }
  classes.print(out);

  // Hotspots (needs node ids; infer the matrix size from the records).
  std::size_t max_node = 0;
  for (const auto& r : trace.records()) {
    max_node = std::max<std::size_t>(max_node, std::max(r.src_id, r.dst_id));
  }
  const std::size_t num_nodes = hosts > 0 ? hosts : max_node + 1;
  const auto matrix = capture::TrafficMatrix::from_trace(trace, num_nodes);
  out << util::format("\nhotspot factor (max node load / mean): %.2f\n", matrix.imbalance());
  util::TextTable pairs({"src", "dst", "bytes", "share"});
  for (const auto& p : matrix.hottest_pairs(5)) {
    pairs.add_row({std::to_string(p.src), std::to_string(p.dst), util::human_bytes(p.bytes),
                   util::format("%.1f%%", 100.0 * p.bytes / std::max(matrix.total(), 1.0))});
  }
  pairs.print(out);

  // Temporal profile (ASCII).
  const double span = trace.last_end() - trace.first_start();
  const double bin = std::max(1.0, std::ceil(span / 20.0));
  const auto series = trace.throughput_series(bin);
  double peak = 1.0;
  for (const double b : series) peak = std::max(peak, b);
  out << "\nthroughput profile (bin " << bin << " s):\n";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto bar = static_cast<std::size_t>(40.0 * series[i] / peak);
    out << util::format("%6.0fs |%s %s\n", static_cast<double>(i) * bin,
                        std::string(bar, '#').c_str(), util::human_bytes(series[i]).c_str());
  }

  // Attribution against a history log, when provided.
  if (!history_path.empty()) {
    const auto history = hadoop::JobHistoryLog::load(history_path);
    const auto attribution = hadoop::attribute_flows(trace, history);
    out << util::format(
        "\nattribution vs %s: %zu/%zu flows attributed, precision %.1f%%, recall %.1f%%\n",
        history_path.c_str(), attribution.attributed, trace.size(),
        100.0 * attribution.precision(), 100.0 * attribution.recall());
  }
  return 0;
}

int cmd_calibrate(const util::Args& args, std::ostream& out, std::ostream& err) {
  const std::string run_base = args.get("run", "");
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 16));
  const auto replication = static_cast<std::uint32_t>(args.get_int("replication", 3));
  const double compress = args.get_double("compress-ratio", 1.0);
  args.reject_unknown();
  if (run_base.empty()) {
    err << "error: --run <basename> is required\n";
    return 2;
  }
  const auto run = core::load_run(run_base);
  model::CalibrationContext context;
  context.cluster_nodes = nodes;
  context.replication = replication;
  context.map_output_compress_ratio = compress;
  const auto profile = model::calibrate_profile(run, context);
  util::TextTable table({"quantity", "value"});
  table.add_row({"map selectivity", util::format("%.4f", profile.map_selectivity)});
  table.add_row({"reduce selectivity", util::format("%.4f", profile.reduce_selectivity)});
  table.add_row({"partition skew (zipf)", util::format("%.2f", profile.partition_skew)});
  table.add_row({"shuffle bytes (wire)", util::human_bytes(profile.shuffle_bytes)});
  table.add_row({"est. map output", util::human_bytes(profile.estimated_map_output)});
  table.add_row({"write bytes (wire)", util::human_bytes(profile.write_bytes)});
  table.add_row({"est. job output", util::human_bytes(profile.estimated_job_output)});
  table.print(out);
  return 0;
}

void print_scenario_outcome(const core::ScenarioOutcome& outcome, std::ostream& out) {
  util::TextTable table({"job", "id", "submit_s", "duration_s", "maps", "reducers", "input",
                         "output"});
  for (const auto& r : outcome.results) {
    table.add_row({r.job_name, std::to_string(r.job_id), util::format("%.1f", r.submit_time),
                   util::format("%.1f", r.duration()), std::to_string(r.num_maps),
                   std::to_string(r.num_reducers),
                   util::human_bytes(static_cast<double>(r.input_bytes)),
                   util::human_bytes(static_cast<double>(r.output_bytes))});
  }
  table.print(out);
  if (!outcome.spill_path.empty()) {
    out << "\ncaptured " << outcome.spilled_records << " flows, spilled to "
        << outcome.spill_path;
  } else {
    const auto stats = outcome.trace.class_stats();
    out << "\ncaptured " << outcome.trace.size() << " flows, "
        << util::human_bytes(outcome.trace.total_bytes()) << " (shuffle "
        << util::human_bytes(stats[static_cast<std::size_t>(net::FlowKind::kShuffle)].bytes)
        << ", hdfs_write "
        << util::human_bytes(stats[static_cast<std::size_t>(net::FlowKind::kHdfsWrite)].bytes)
        << ")";
  }
  if (outcome.rereplications > 0) {
    out << "; " << outcome.rereplications << " re-replication transfers";
  }
  out << "\n";
  const auto& f = outcome.faults;
  if (f.crashes + f.outages + f.link_degradations + f.slow_nodes > 0) {
    out << "\nfault injections: " << f.crashes << " crashes, " << f.outages << " outages, "
        << f.link_degradations << " link degradations, " << f.slow_nodes << " slow nodes\n";
    util::TextTable recovery({"recovery metric", "value"});
    recovery.add_row({"aborted flows", std::to_string(f.aborted_flows)});
    recovery.add_row({"aborted bytes", util::human_bytes(f.aborted_bytes.value())});
    recovery.add_row({"fetch retries", std::to_string(f.fetch_retries)});
    recovery.add_row({"fetch backoff", util::human_seconds(f.fetch_backoff_s)});
    recovery.add_row({"fetch-failure reruns", std::to_string(f.fetch_failure_reruns)});
    recovery.add_row({"map reruns", std::to_string(f.map_reruns)});
    recovery.add_row({"reducer restarts", std::to_string(f.reducer_restarts)});
    recovery.add_row({"pipeline rebuilds", std::to_string(f.pipeline_rebuilds)});
    recovery.add_row({"hdfs read retries", std::to_string(f.hdfs_read_retries)});
    recovery.add_row({"re-replications", std::to_string(f.rereplications)});
    recovery.print(out);
  }
  const auto& s = outcome.scheduler;
  out << "\nscheduler: " << s.reshares << " reshares (" << s.solves << " solves, "
      << s.empty_reshares << " no-ops), " << util::format("%.1f", s.links_per_reshare())
      << " links/reshare, " << s.flows_rerated << "/" << s.flows_visited
      << " flows re-rated, " << s.heap_ops << " heap ops\n";
}

int cmd_run_scenario(const util::Args& args, std::ostream& out, std::ostream& err) {
  const std::string file = args.get("file", "");
  const std::string trace_path = args.get("trace-out", "");
  const std::string history_path = args.get("history-out", "");
  const std::string spill_dir = args.get("spill-dir", "");
  // Overrides the scenarios' own "threads" fields for the batch sweep.
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));
  // --json prints the Spec-API response document instead of tables; the
  // bytes are identical to a `keddah serve` /v1/whatif response for the
  // same scenario (api/specs.h).
  const bool as_json = args.get_bool("json", false);
  args.reject_unknown();
  if (file.empty()) {
    err << "error: --file <scenario.json>[,more.json...] is required\n";
    return 2;
  }
  const auto files = split_list(file);
  std::vector<core::ScenarioSpec> specs;
  specs.reserve(files.size());
  for (const auto& path : files) specs.push_back(core::load_scenario(path));
  if (!spill_dir.empty()) {
    // One spill file per scenario: with several files each gets its own
    // numbered subdirectory so the captures never clobber each other.
    for (std::size_t i = 0; i < specs.size(); ++i) {
      specs[i].spill_dir =
          specs.size() == 1 ? spill_dir : spill_dir + "/" + std::to_string(i);
    }
  }
  const auto outcomes = core::run_scenarios(specs, threads);

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (as_json) {
      out << api::to_body(api::whatif_response(outcomes[i]));
      continue;
    }
    if (outcomes.size() > 1) out << (i > 0 ? "\n" : "") << "=== " << files[i] << " ===\n";
    print_scenario_outcome(outcomes[i], out);
  }
  // Artefact outputs keep their single-scenario meaning: with several
  // scenarios the first one's capture is written (one file, one trace).
  if (!trace_path.empty()) {
    if (!outcomes.front().spill_path.empty()) {
      err << "warning: --trace-out ignored with --spill-dir (capture already on disk: "
          << outcomes.front().spill_path << ")\n";
    } else {
      outcomes.front().trace.save(trace_path);
      out << "trace written: " << trace_path << "\n";
    }
  }
  if (!history_path.empty()) {
    outcomes.front().history.save(history_path);
    out << "history written: " << history_path << "\n";
  }
  return 0;
}

int cmd_report(const util::Args& args, std::ostream& out, std::ostream& err) {
  (void)err;  // kept for subcommand-signature uniformity
  const std::string model_path = args.get("model", "keddah_model.json");
  args.reject_unknown();
  const auto model = model::KeddahModel::load(model_path);
  const auto& ctx = model.context();
  out << "# Keddah model report: " << model.job_name() << "\n\n";
  out << "Trained on " << ctx.num_runs << " runs, inputs "
      << util::human_bytes(ctx.min_input_bytes) << " .. "
      << util::human_bytes(ctx.max_input_bytes) << "; cluster " << ctx.cluster_nodes
      << " nodes, " << util::human_bytes(static_cast<double>(ctx.block_size)) << " blocks, "
      << "replication " << ctx.replication << ".\n\n";
  out << util::format("Job duration model: %.2f s + %.3g s/GB (R^2 %.3f)\n\n",
                      model.duration_model().intercept,
                      model.duration_model().slope * 1e9 * 1.073741824,
                      model.duration_model().r2);
  util::TextTable table({"class", "flows", "count law", "size model", "KS", "repr",
                         "bytes/GB input"});
  for (const auto kind : model::kModelledClasses) {
    const auto& cm = model.class_model(kind);
    if (cm.training_flows == 0) continue;
    table.add_row(
        {net::flow_kind_name(kind), std::to_string(cm.training_flows),
         util::format("%.3g x %s", cm.count.fit.slope, cm.count.regressor.c_str()),
         cm.size.parametric ? cm.size.parametric->describe() : "(none)",
         util::format("%.3f", cm.size.ks),
         cm.size.kind == model::SizeModelKind::kParametric ? "parametric" : "empirical",
         util::human_bytes(model.volume_model(kind).slope * (1ull << 30))});
  }
  table.print(out);
  out << "\nPhase windows (fraction of job duration):\n";
  util::TextTable phases({"class", "start", "end"});
  for (const auto kind : model::kModelledClasses) {
    const auto& cm = model.class_model(kind);
    if (!cm.temporal.trained()) continue;
    phases.add_row({net::flow_kind_name(kind),
                    util::format("%.2f", cm.temporal.phase_start_frac),
                    util::format("%.2f", cm.temporal.phase_end_frac)});
  }
  phases.print(out);
  return 0;
}

}  // namespace

std::string usage() {
  return
      "keddah — capture, model, and reproduce Hadoop network traffic\n"
      "\n"
      "subcommands:\n"
      "  capture    run emulated MapReduce jobs and capture their flows\n"
      "             --job NAME --input SIZE [--reps N] [--reducers N] [--seed N]\n"
      "             [--threads N] [--out BASENAME] [--faults FILE] [cluster flags]\n"
      "             --faults FILE injects a JSON fault plan (crash / outage /\n"
      "             degrade_link / slow_node events; see src/hadoop/faults.h)\n"
      "             into every captured run\n"
      "  train      fit a Keddah model from captured runs\n"
      "             --runs base0,base1,... --name NAME [--out FILE]\n"
      "             [--size-model parametric|empirical] [cluster flags]\n"
      "  generate   sample a model into a flow schedule\n"
      "             --model FILE --input SIZE [--hosts N] [--maps N]\n"
      "             [--reducers N] [--normalize-volume] [--seed N] [--out FILE]\n"
      "  replay     replay a schedule on a simulated fabric. --spill-dir\n"
      "             streams the capture to an mmap'd spill file there\n"
      "             instead of RAM (capture/spill.h).\n"
      "             --schedule FILE [--spill-dir DIR] [cluster flags]\n"
      "  validate   compare generated traffic against a captured run\n"
      "             --model FILE --run BASENAME [--reps N] [--threads N]\n"
      "             [cluster flags]\n"
      "  export-ns3 emit an ns-3 replay program + schedule CSV\n"
      "             --schedule FILE [--out BASENAME] [--hosts N]\n"
      "             [--link-rate R] [--link-delay D]\n"
      "  report     summarize a trained model (fits, laws, phases)\n"
      "             --model FILE\n"
      "  run-scenario  execute JSON-described experiments (cluster, job\n"
      "             mix, iterations, fault injections; see src/keddah/scenario.h).\n"
      "             Several comma-separated files run in parallel across\n"
      "             --threads workers (0 = all cores); results print in file\n"
      "             order and are identical at any thread count. --json\n"
      "             prints the Spec-API response document (byte-identical\n"
      "             to a `keddah serve` /v1/whatif response).\n"
      "             --spill-dir streams each capture to an mmap'd spill\n"
      "             file (numbered subdirectories with several files).\n"
      "             --file FILE[,FILE...] [--threads N] [--json]\n"
      "             [--trace-out FILE] [--history-out FILE] [--spill-dir DIR]\n"
      "  serve      resident what-if daemon: keeps models hot, answers\n"
      "             Spec-API queries over HTTP (/v1/health /v1/stats\n"
      "             /v1/whatif /v1/reproduce /v1/validate /v1/shutdown),\n"
      "             and caches responses by request content hash.\n"
      "             [--port N (0 = ephemeral)] [--threads N]\n"
      "             [--models FILE,FILE...] [--model-bank FILE]\n"
      "             [--max-models N] [--cache-entries N]\n"
      "  analyze    characterize a captured trace (classes, fits, hotspots,\n"
      "             temporal profile; attribution when a history is given)\n"
      "             --trace FILE [--history FILE] [--hosts N]\n"
      "  calibrate  estimate a job's selectivities/skew from a captured run\n"
      "             --run BASENAME [--nodes N] [--replication N]\n"
      "             [--compress-ratio F]\n"
      "\n"
      "cluster flags: --topology star|racktree|fattree --racks N\n"
      "  --hosts-per-rack N --access-gbps G --core-gbps G --block-size SIZE\n"
      "  --replication N --containers N --slowstart F --locality-delay S\n"
      "  --compress-ratio F --speculative --straggler-fraction F --fat-tree-k K\n"
      "  --fetch-failure-threshold N --fetch-backoff S --fetch-backoff-cap S\n";
}

int run(const std::vector<std::string>& tokens, std::ostream& out, std::ostream& err) {
  if (tokens.empty() || tokens[0] == "help" || tokens[0] == "--help") {
    out << usage();
    return tokens.empty() ? 2 : 0;
  }
  const std::string command = tokens[0];
  const std::vector<std::string> rest(tokens.begin() + 1, tokens.end());
  try {
    const auto args = util::Args::parse(rest);
    if (command == "capture") return cmd_capture(args, out, err);
    if (command == "train") return cmd_train(args, out, err);
    if (command == "generate") return cmd_generate(args, out, err);
    if (command == "replay") return cmd_replay(args, out, err);
    if (command == "validate") return cmd_validate(args, out, err);
    if (command == "export-ns3") return cmd_export_ns3(args, out, err);
    if (command == "report") return cmd_report(args, out, err);
    if (command == "run-scenario") return cmd_run_scenario(args, out, err);
    if (command == "analyze") return cmd_analyze(args, out, err);
    if (command == "calibrate") return cmd_calibrate(args, out, err);
    if (command == "serve") return serve::run_serve_command(args, out, err);
    err << "error: unknown subcommand '" << command << "'\n" << usage();
    return 2;
  } catch (const util::UsageError& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

int run_main(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return run(tokens, std::cout, std::cerr);
}

}  // namespace keddah::cli
