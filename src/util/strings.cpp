#include "util/strings.h"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace keddah::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string human_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double value = bytes;
  int unit = 0;
  while (std::fabs(value) >= 1024.0 && unit < 5) {
    value /= 1024.0;
    ++unit;
  }
  return format(unit == 0 ? "%.0f %s" : "%.2f %s", value, kUnits[unit]);
}

std::string human_seconds(double seconds) {
  if (seconds < 0.0) return "-" + human_seconds(-seconds);
  if (seconds < 120.0) return format("%.2f s", seconds);
  const int whole = static_cast<int>(seconds);
  return format("%dm%02ds", whole / 60, whole % 60);
}

bool parse_bytes(std::string_view text, std::uint64_t* out) {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty() || out == nullptr) return false;
  std::size_t pos = 0;
  while (pos < trimmed.size() &&
         (std::isdigit(static_cast<unsigned char>(trimmed[pos])) || trimmed[pos] == '.')) {
    ++pos;
  }
  if (pos == 0) return false;
  double value = 0.0;
  try {
    value = std::stod(std::string(trimmed.substr(0, pos)));
  } catch (...) {
    return false;
  }
  const std::string unit = to_lower(trim(trimmed.substr(pos)));
  double mult = 1.0;
  if (unit.empty() || unit == "b") {
    mult = 1.0;
  } else if (unit == "k" || unit == "kb") {
    mult = 1024.0;
  } else if (unit == "m" || unit == "mb") {
    mult = 1024.0 * 1024.0;
  } else if (unit == "g" || unit == "gb") {
    mult = 1024.0 * 1024.0 * 1024.0;
  } else if (unit == "t" || unit == "tb") {
    mult = 1024.0 * 1024.0 * 1024.0 * 1024.0;
  } else {
    return false;
  }
  const double bytes = value * mult;
  if (bytes < 0.0 || bytes > 9.0e18) return false;
  *out = static_cast<std::uint64_t>(bytes);
  return true;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  // Single-row dynamic program: row[j] = distance(a[0..i), b[0..j)).
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];  // distance(a[0..i-1), b[0..j-1))
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      const std::size_t remove = row[j] + 1;     // delete from a
      const std::size_t insert = row[j - 1] + 1; // insert into a
      row[j] = substitute < remove ? substitute : remove;
      if (insert < row[j]) row[j] = insert;
    }
  }
  return row[b.size()];
}

}  // namespace keddah::util
