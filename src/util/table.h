// Aligned plain-text table printer used by the bench harness to render
// paper-style tables and figure series on stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace keddah::util {

/// Collects rows of string cells and prints them with column alignment.
/// Numeric-looking cells are right-aligned, everything else left-aligned.
class TextTable {
 public:
  /// Column names; printed with a separating rule.
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row (padded/truncated to header width).
  void add_row(std::vector<std::string> row);

  /// Convenience: formats each double with the given precision.
  void add_numeric_row(const std::string& label, const std::vector<double>& values,
                       int precision = 3);

  /// Renders the table to a stream.
  void print(std::ostream& out) const;

  /// Renders to a string (for tests).
  std::string str() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "## <title>" section marker understood by the experiment
/// post-processing scripts and by humans skimming bench output.
void print_section(std::ostream& out, const std::string& title);

}  // namespace keddah::util
