#include "util/thread_pool.h"

namespace keddah::util {

std::size_t resolved_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = num_threads == 0 ? 1 : num_threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    MutexLock lock(&mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(&mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(&mutex_);
  while (!idle()) idle_cv_.wait(mutex_);
}

void ThreadPool::worker_loop() {
  mutex_.lock();
  for (;;) {
    while (!stopping_ && queue_.empty()) work_cv_.wait(mutex_);
    if (queue_.empty()) {  // stopping_ and drained
      mutex_.unlock();
      return;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    mutex_.unlock();
    task();
    mutex_.lock();
    --in_flight_;
    if (idle()) idle_cv_.notify_all();
  }
}

}  // namespace keddah::util
