#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace keddah::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t task_index) {
  // +1 keeps task 0 from collapsing onto the bare base seed, so the parent
  // stream and the first child stream never coincide.
  std::uint64_t x = base_seed + 0x9e3779b97f4a7c15ULL * (task_index + 1);
  return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split() {
  // Mix the parent seed with a per-parent split counter so sibling streams
  // are independent and insertion of new consumers is non-perturbing.
  std::uint64_t base = seed_ ^ 0xa0761d6478bd642fULL;
  std::uint64_t mixed = base + 0x9e3779b97f4a7c15ULL * (++split_sequence_);
  return Rng(splitmix64(mixed));
}

double Rng::uniform() {
  // 53 random bits into the mantissa: uniform on [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - ((~0ULL) % span + 1) % span;
  std::uint64_t draw;
  do {
    draw = next();
  } while (draw > limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) { return mean + sigma * normal(); }

double Rng::exponential(double lambda) {
  assert(lambda > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::weibull(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double Rng::gamma(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then apply the standard power correction.
    const double u = std::max(uniform(), 1e-300);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000) squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return scale * d * v;
  }
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  if (s <= 0.0) return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  // Inverse-CDF over the finite harmonic weights; n here is small (reducer
  // counts), so the linear scan is fine.
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) total += 1.0 / std::pow(static_cast<double>(k), s);
  double target = uniform() * total;
  for (std::size_t k = 1; k <= n; ++k) {
    target -= 1.0 / std::pow(static_cast<double>(k), s);
    if (target <= 0.0) return k - 1;
  }
  return n - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace keddah::util
