// Deterministic, splittable random number generation.
//
// Every stochastic component in the toolchain (block placement, task
// durations, model sampling) draws from an Rng handed to it explicitly, so a
// whole capture->model->replay run is reproducible from a single seed.
// Streams are derived with SplitMix64 so that adding a consumer does not
// perturb the draws seen by existing consumers.
#pragma once

#include <cstdint>
#include <vector>

namespace keddah::util {

/// Derives an independent per-task seed from a base seed and a task index
/// (SplitMix64 finalizer over base + golden-ratio stride). Pure function of
/// its inputs, identical on every platform and at every thread count — the
/// foundation of the parallel sweep determinism guarantee: task i draws the
/// same stream whether it runs serially or on any worker thread.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t task_index);

/// xoshiro256** engine seeded via SplitMix64. Satisfies
/// UniformRandomBitGenerator so it can feed <random> distributions, but the
/// convenience members below are preferred: they have stable cross-platform
/// behaviour (libstdc++ distribution algorithms are not portable).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the stream; equal seeds yield equal draw sequences.
  explicit Rng(std::uint64_t seed = 0xdecafbadULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Derives an independent child stream; deterministic in (parent seed,
  /// number of prior split() calls).
  Rng split();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability p (clamped to [0, 1]).
  bool chance(double p);

  /// Standard normal via Box-Muller (deterministic, portable).
  double normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Exponential with the given rate lambda > 0.
  double exponential(double lambda);

  /// Lognormal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Weibull with shape k > 0 and scale lambda > 0 (inverse CDF method).
  double weibull(double shape, double scale);

  /// Gamma with shape k > 0 and scale theta > 0 (Marsaglia-Tsang).
  double gamma(double shape, double scale);

  /// Pareto with minimum xm > 0 and tail index alpha > 0.
  double pareto(double xm, double alpha);

  /// Zipf-like rank draw in [0, n) with exponent s >= 0 (s == 0 is uniform).
  /// Used for reducer-partition skew.
  std::size_t zipf(std::size_t n, double s);

  /// Samples k distinct indices from [0, n) without replacement
  /// (partial Fisher-Yates). Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  std::uint64_t split_sequence_ = 0;
  std::uint64_t seed_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace keddah::util
