// Runtime invariant auditing, gated by the KEDDAH_CHECK build option.
//
// `cmake -DKEDDAH_CHECK=ON` defines KEDDAH_CHECK=1 on every target and
// compiles in conservation/monotonicity audits at the network and job-runner
// seams (DESIGN.md invariant catalogue), plus NaN/sign checks inside the
// util/units.h wrappers. A failed audit throws util::AuditError naming the
// violated invariant and the source location — loud and immediate, because a
// conservation breach invalidates every byte count downstream of it.
//
// The audit entry points (net::Network::audit(), hadoop::audit_fault_stats,
// ...) are ordinary functions that exist in every build; KEDDAH_CHECK only
// controls whether the hot paths call them automatically.
#pragma once

#include <stdexcept>
#include <string>

namespace keddah::util {

/// Thrown when a compiled-in invariant audit fails.
class AuditError : public std::logic_error {
 public:
  explicit AuditError(const std::string& what) : std::logic_error(what) {}
};

/// Formats and throws an AuditError; the out-of-line body keeps the macro's
/// expansion (and hence the audited hot paths) small.
[[noreturn]] inline void audit_fail(const char* message, const char* file, int line) {
  throw AuditError("keddah audit failed: " + std::string(message) + " (" + file + ":" +
                   std::to_string(line) + ")");
}

#if defined(KEDDAH_CHECK) && KEDDAH_CHECK
inline constexpr bool kAuditEnabled = true;
#else
inline constexpr bool kAuditEnabled = false;
#endif

}  // namespace keddah::util

/// Audits `cond` in KEDDAH_CHECK builds; compiles to nothing otherwise.
#if defined(KEDDAH_CHECK) && KEDDAH_CHECK
#define KEDDAH_AUDIT(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) ::keddah::util::audit_fail((msg), __FILE__, __LINE__); \
  } while (0)
#else
#define KEDDAH_AUDIT(cond, msg) ((void)0)
#endif

/// Unit-wrapper flavour: used inside constexpr constructors in units.h, so
/// violations in constant expressions fail the build and violations at
/// runtime throw.
#define KEDDAH_AUDIT_UNIT(cond, msg) KEDDAH_AUDIT(cond, msg)
