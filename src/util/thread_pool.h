// Fixed-size worker thread pool for fan-out of independent tasks.
//
// The pool is deliberately minimal: submit() enqueues a task, wait_idle()
// blocks until the queue is drained AND every worker has finished its
// current task, after which the pool is reusable for the next batch.
// Determinism is the caller's job — the pool makes no ordering promises
// about *execution*, so callers that need reproducible output must write
// results into per-task slots keyed by task index (see core::SweepRunner).
//
// Concurrency: one capability (`mutex_`) guards the queue, the in-flight
// counter, and the stop flag; the GUARDED_BY annotations below make
// `clang -Wthread-safety` prove that discipline at compile time.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace keddah::util {

/// Resolves a requested thread count: 0 means "use hardware concurrency"
/// (at least 1); any other value is returned unchanged.
std::size_t resolved_threads(std::size_t requested);

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is clamped to 1). Workers live until
  /// destruction.
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw (wrap and capture exceptions at
  /// the call site); an escaping exception terminates the process.
  void submit(std::function<void()> task) EXCLUDES(mutex_);

  /// Blocks until the queue is empty and no worker is mid-task. The pool
  /// accepts new work afterwards.
  void wait_idle() EXCLUDES(mutex_);

 private:
  void worker_loop() EXCLUDES(mutex_);

  /// True when every task has been picked up and finished.
  bool idle() const REQUIRES(mutex_) { return queue_.empty() && in_flight_ == 0; }

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  CondVar work_cv_;  // signalled when work arrives / shutdown
  CondVar idle_cv_;  // signalled when the pool may be idle
  std::size_t in_flight_ GUARDED_BY(mutex_) = 0;
  bool stopping_ GUARDED_BY(mutex_) = false;
};

}  // namespace keddah::util
