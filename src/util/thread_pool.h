// Fixed-size worker thread pool for fan-out of independent tasks.
//
// The pool is deliberately minimal: submit() enqueues a task, wait_idle()
// blocks until the queue is drained AND every worker has finished its
// current task, after which the pool is reusable for the next batch.
// Determinism is the caller's job — the pool makes no ordering promises
// about *execution*, so callers that need reproducible output must write
// results into per-task slots keyed by task index (see core::SweepRunner).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace keddah::util {

/// Resolves a requested thread count: 0 means "use hardware concurrency"
/// (at least 1); any other value is returned unchanged.
std::size_t resolved_threads(std::size_t requested);

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is clamped to 1). Workers live until
  /// destruction.
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw (wrap and capture exceptions at
  /// the call site); an escaping exception terminates the process.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no worker is mid-task. The pool
  /// accepts new work afterwards.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // signalled when work arrives / shutdown
  std::condition_variable idle_cv_;  // signalled when the pool may be idle
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace keddah::util
