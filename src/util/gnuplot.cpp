#include "util/gnuplot.h"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "util/strings.h"

namespace keddah::util {

GnuplotFigure::GnuplotFigure(std::string title, std::string xlabel, std::string ylabel)
    : title_(std::move(title)), xlabel_(std::move(xlabel)), ylabel_(std::move(ylabel)) {}

void GnuplotFigure::add_series(const std::string& name) {
  series_.push_back(Series{name, {}});
}

void GnuplotFigure::add_point(double x, double y) {
  if (series_.empty()) throw std::logic_error("gnuplot: add_series before add_point");
  series_.back().points.emplace_back(x, y);
}

void GnuplotFigure::add_series(const std::string& name,
                               const std::vector<std::pair<double, double>>& points) {
  series_.push_back(Series{name, points});
}

std::string GnuplotFigure::data() const {
  std::string out;
  for (std::size_t s = 0; s < series_.size(); ++s) {
    out += "# series: " + series_[s].name + "\n";
    for (const auto& [x, y] : series_[s].points) {
      out += format("%.9g %.9g\n", x, y);
    }
    if (s + 1 != series_.size()) out += "\n\n";  // gnuplot index separator
  }
  return out;
}

std::string GnuplotFigure::script(const std::string& basename) const {
  std::string out;
  out += "set terminal pngcairo size 900,600 enhanced\n";
  out += "set output '" + basename + ".png'\n";
  out += "set title '" + title_ + "'\n";
  out += "set xlabel '" + xlabel_ + "'\n";
  out += "set ylabel '" + ylabel_ + "'\n";
  out += "set key outside right\n";
  out += "set grid\n";
  if (logscale_x_) out += "set logscale x\n";
  if (logscale_y_) out += "set logscale y\n";
  out += "plot ";
  for (std::size_t s = 0; s < series_.size(); ++s) {
    if (s != 0) out += ", \\\n     ";
    out += format("'%s.dat' index %zu with %s title '%s'", basename.c_str(), s, style_.c_str(),
                  series_[s].name.c_str());
  }
  out += "\n";
  return out;
}

void GnuplotFigure::write(const std::string& basename) const {
  {
    std::ofstream dat(basename + ".dat");
    if (!dat) throw std::runtime_error("gnuplot: cannot write " + basename + ".dat");
    dat << data();
  }
  {
    std::ofstream gp(basename + ".gp");
    if (!gp) throw std::runtime_error("gnuplot: cannot write " + basename + ".gp");
    gp << script(basename);
  }
}

std::string plot_dir_from_env() {
  const char* dir = std::getenv("KEDDAH_PLOT_DIR");
  return dir == nullptr ? std::string() : std::string(dir);
}

}  // namespace keddah::util
