#include "util/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace keddah::util {

CsvTable::CsvTable(std::vector<std::string> header) : header_(std::move(header)) {
  for (std::size_t i = 0; i < header_.size(); ++i) index_[header_[i]] = i;
}

CsvTable CsvTable::parse(std::istream& in) {
  CsvTable table;
  std::string line;
  bool saw_header = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    auto fields = split(stripped, ',');
    for (auto& f : fields) f = std::string(trim(f));
    if (!saw_header) {
      table = CsvTable(std::move(fields));
      saw_header = true;
      continue;
    }
    if (fields.size() != table.header_.size()) {
      throw std::runtime_error("csv: ragged row at line " + std::to_string(line_no) + " (" +
                               std::to_string(fields.size()) + " fields, expected " +
                               std::to_string(table.header_.size()) + ")");
    }
    table.rows_.push_back(std::move(fields));
  }
  return table;
}

CsvTable CsvTable::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("csv: cannot open " + path);
  return parse(in);
}

std::size_t CsvTable::column(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) throw std::out_of_range("csv: no column named '" + name + "'");
  return it->second;
}

bool CsvTable::has_column(const std::string& name) const { return index_.count(name) != 0; }

double CsvTable::cell_double(std::size_t row, const std::string& col) const {
  return std::stod(cell(row, col));
}

std::int64_t CsvTable::cell_int(std::size_t row, const std::string& col) const {
  return std::stoll(cell(row, col));
}

void CsvTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("csv: row width " + std::to_string(row.size()) +
                                " does not match header width " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

void CsvTable::write(std::ostream& out) const {
  out << join(header_, ",") << "\n";
  for (const auto& row : rows_) out << join(row, ",") << "\n";
}

void CsvTable::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("csv: cannot write " + path);
  write(out);
}

}  // namespace keddah::util
