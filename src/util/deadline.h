// Steady-clock deadlines for the serving layer.
//
// Simulation time flows exclusively through sim::Clock and never through
// this header. Deadline exists for the one part of the system where real
// elapsed time *is* the domain rather than a determinism hazard: request
// budgets in the `keddah serve` transport and handler path (slow-loris
// defence, handler wall-clock budgets, drain-on-shutdown). Two rules keep
// the serve bit-identity pin intact:
//
//   1. No 200-response body ever embeds a reading of this clock; deadlines
//      only decide *whether* work runs, never what its output contains.
//   2. Error responses triggered by deadlines (408/503) carry fixed
//      Retry-After values, not measured remainders.
//
// keddah-detlint's wall-clock rule is deliberately suppressed on the lines
// below; every other use site goes through this type, so the suppression
// surface stays one file.
#pragma once

#include <chrono>
#include <cstdint>

namespace keddah::util {

/// A point in real time after which work should be refused. Value type;
/// default-constructed deadlines never expire (the in-process test/bench
/// path, which has no transport to enforce budgets for).
class Deadline {
 public:
  // detlint:allow(wall-clock) request timeouts are real time by definition; see file comment
  using Clock = std::chrono::steady_clock;

  /// A deadline that never expires.
  static Deadline never() { return Deadline(); }

  /// Expires `budget_ms` milliseconds from now; a non-positive budget means
  /// "never" (0 is the CLI spelling of "disable this timeout").
  static Deadline after_ms(std::int64_t budget_ms) {
    Deadline d;
    if (budget_ms > 0) {
      d.at_ = Clock::now() + std::chrono::milliseconds(budget_ms);
      d.armed_ = true;
    }
    return d;
  }

  /// True when this deadline can expire at all.
  bool armed() const { return armed_; }

  /// True once the budget is exhausted (always false when unarmed).
  bool expired() const { return armed_ && Clock::now() >= at_; }

  /// Milliseconds of budget left, clamped to >= 0; `fallback_ms` when
  /// unarmed (callers use it as the per-read timeout for budget-less
  /// sockets).
  std::int64_t remaining_ms(std::int64_t fallback_ms) const {
    if (!armed_) return fallback_ms;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(at_ - Clock::now()).count();
    return left > 0 ? left : 0;
  }

 private:
  Clock::time_point at_{};
  bool armed_ = false;
};

}  // namespace keddah::util
