// Minimal JSON value, parser, and pretty-printer.
//
// Used to persist trained Keddah models so that models built by one binary
// (e.g. the trainer example) can be replayed by another (e.g. the topology
// case-study bench). Supports the full JSON grammar; \uXXXX escapes —
// including UTF-16 surrogate pairs — decode to UTF-8, and malformed escapes
// fail with the byte offset of the defect.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace keddah::util {

/// A JSON document node. Value-semantic; copy is deep.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  // std::map keeps serialization deterministic (sorted keys).
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), number_(d) {}
  Json(int i) : type_(Type::kNumber), number_(i) {}
  Json(std::int64_t i) : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : type_(Type::kNumber), number_(static_cast<double>(u)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  /// Factory helpers for empty containers.
  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object field access. `at` throws when missing; `get` returns a default.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  double get_number(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;

  /// Mutators (convert the node to the needed container type if null).
  Json& operator[](const std::string& key);
  void push_back(Json value);

  /// Array element access; throws on out-of-range or non-array.
  const Json& at(std::size_t index) const;
  std::size_t size() const;

  /// Serializes. `indent` < 0 means compact single-line output.
  std::string dump(int indent = 2) const;

  /// Parses text; throws std::runtime_error with offset info on bad input.
  /// Duplicate object keys are an error (RFC 8259 leaves them undefined;
  /// last-value-wins would silently drop the first binding), reported with
  /// the offending key name so keddah-lint and scenario parsing can point
  /// at it.
  static Json parse(const std::string& text);

  /// File helpers; throw std::runtime_error on I/O failure.
  static Json load_file(const std::string& path);
  void save_file(const std::string& path, int indent = 2) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace keddah::util
