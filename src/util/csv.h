// CSV reading/writing for flow traces and bench output.
//
// The dialect is deliberately simple: comma separator, no quoting (trace
// fields never contain commas), '#'-prefixed comment lines, first
// non-comment line is the header.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace keddah::util {

/// A parsed CSV document: header names plus row-major string cells.
class CsvTable {
 public:
  CsvTable() = default;

  /// Builds an empty table with the given column names.
  explicit CsvTable(std::vector<std::string> header);

  /// Parses CSV text. Throws std::runtime_error on ragged rows.
  static CsvTable parse(std::istream& in);

  /// Reads and parses a file. Throws std::runtime_error if unreadable.
  static CsvTable load(const std::string& path);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Index of a named column; throws std::out_of_range when absent.
  std::size_t column(const std::string& name) const;

  /// True if the header contains `name`.
  bool has_column(const std::string& name) const;

  const std::string& cell(std::size_t row, std::size_t col) const { return rows_.at(row).at(col); }
  const std::string& cell(std::size_t row, const std::string& col) const {
    return rows_.at(row).at(column(col));
  }

  double cell_double(std::size_t row, const std::string& col) const;
  std::int64_t cell_int(std::size_t row, const std::string& col) const;

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Serializes (header + rows) to a stream.
  void write(std::ostream& out) const;

  /// Serializes to a file; throws std::runtime_error if unwritable.
  void save(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::map<std::string, std::size_t> index_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace keddah::util
