// Tiny command-line flag parser for the keddah CLI and examples.
//
// Grammar: positionals and --key value / --key=value flags; a flag without
// a following value (or followed by another flag) is boolean true.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace keddah::util {

/// A command-line usage mistake (unknown flag, ...). Distinct from
/// std::invalid_argument so the CLI driver can map it to exit code 2
/// (usage) rather than 1 (runtime failure).
class UsageError : public std::invalid_argument {
 public:
  explicit UsageError(const std::string& message) : std::invalid_argument(message) {}
};

/// Parsed command line.
class Args {
 public:
  /// Parses argv[1..). Throws std::invalid_argument on malformed flags
  /// (e.g. "---x").
  static Args parse(int argc, const char* const* argv);

  /// Parses a pre-split token vector (for tests).
  static Args parse(const std::vector<std::string>& tokens);

  const std::vector<std::string>& positionals() const { return positionals_; }

  bool has(const std::string& key) const;

  /// String flag with fallback.
  std::string get(const std::string& key, const std::string& fallback = "") const;

  /// Numeric flags; throw std::invalid_argument on unparsable values.
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;

  /// Byte-size flag ("2GB", "64MB", "4096"); throws on unparsable values.
  std::uint64_t get_bytes(const std::string& key, std::uint64_t fallback) const;

  /// Boolean flag: present without value, or with value true/false/1/0.
  bool get_bool(const std::string& key, bool fallback = false) const;

  /// Keys that were never read by any getter; lets the CLI reject typos.
  std::vector<std::string> unused_keys() const;

  /// Throws UsageError when any flag was never read by a getter. Call after
  /// every getter a command supports has run: the accessed keys define the
  /// command's flag vocabulary, and the nearest one (by edit distance) is
  /// suggested — "unknown flag --reducer (did you mean --reducers?)".
  void reject_unknown() const;

 private:
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> accessed_;
};

}  // namespace keddah::util
