// Small string utilities shared across the toolchain.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace keddah::util {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view text);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders a byte count as a human-friendly quantity ("1.50 GB").
std::string human_bytes(double bytes);

/// Renders seconds as "12.34 s" / "1m23s" style.
std::string human_seconds(double seconds);

/// Parses sizes like "128MB", "1.5GB", "4096" (bytes). Returns false on
/// malformed input.
bool parse_bytes(std::string_view text, std::uint64_t* out);

/// Levenshtein distance (insert/delete/substitute, unit costs). Powers
/// did-you-mean suggestions for mistyped CLI flags.
std::size_t edit_distance(std::string_view a, std::string_view b);

}  // namespace keddah::util
