#include "util/log.h"

#include <algorithm>
#include <cctype>
#include <iostream>

namespace keddah::util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() { return g_level; }

void set_log_level(LogLevel level) { g_level = level; }

LogLevel parse_log_level(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return LogLevel::kWarn;
}

namespace detail {

bool log_enabled(LogLevel level) { return level >= g_level; }

void log_line(LogLevel level, const std::string& msg) {
  std::cerr << "[" << level_name(level) << "] " << msg << "\n";
}

}  // namespace detail

}  // namespace keddah::util
