#include "util/log.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <iostream>

#include "util/mutex.h"

namespace keddah::util {

namespace {
// Atomic so worker threads of a parallel sweep can check the threshold
// while a driver thread (re)configures it; a mutex keeps emitted lines
// whole when several workers log at once.
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_output_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel parse_log_level(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return LogLevel::kWarn;
}

namespace detail {

bool log_enabled(LogLevel level) { return level >= g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  MutexLock lock(&g_output_mutex);
  std::cerr << "[" << level_name(level) << "] " << msg << "\n";
}

}  // namespace detail

}  // namespace keddah::util
