// Clang thread-safety-analysis attribute macros (no-ops elsewhere).
//
// These annotations turn lock discipline into a compile-time property: a
// field declares which mutex guards it (GUARDED_BY), a function declares
// which capabilities it needs (REQUIRES) or manipulates (ACQUIRE/RELEASE),
// and `clang -Wthread-safety` proves every access site consistent. GCC and
// other compilers see empty macros, so the annotations cost nothing where
// the analysis is unavailable. tools/check_static.sh and CI run the Clang
// configuration with KEDDAH_WERROR=ON, where a violation is a build error.
//
// Use the annotated util::Mutex / util::MutexLock / util::CondVar wrappers
// (util/mutex.h) rather than std::mutex directly — keddah-detlint's
// bare-mutex rule enforces this, because only the wrappers carry the
// capability attributes the analysis understands.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define KEDDAH_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define KEDDAH_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability (lockable type).
#define CAPABILITY(x) KEDDAH_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose lifetime holds a capability.
#define SCOPED_CAPABILITY KEDDAH_THREAD_ANNOTATION_(scoped_lockable)

/// Field/variable may only be accessed while holding capability `x`.
#define GUARDED_BY(x) KEDDAH_THREAD_ANNOTATION_(guarded_by(x))

/// Pointed-to data may only be accessed while holding capability `x`.
#define PT_GUARDED_BY(x) KEDDAH_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry.
#define REQUIRES(...) KEDDAH_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held.
#define EXCLUDES(...) KEDDAH_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define ACQUIRE(...) KEDDAH_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (no longer held on return).
#define RELEASE(...) KEDDAH_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function tries to acquire; holds the capabilities iff it returned `b`.
#define TRY_ACQUIRE(b, ...) \
  KEDDAH_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) KEDDAH_THREAD_ANNOTATION_(lock_returned(x))

/// Asserts (at analysis time) that the capability is already held.
#define ASSERT_CAPABILITY(x) KEDDAH_THREAD_ANNOTATION_(assert_capability(x))

/// Opts a function out of the analysis — use only for trusted plumbing
/// (e.g. the CondVar::wait implementation, which hands a held lock to
/// std::condition_variable and takes it back).
#define NO_THREAD_SAFETY_ANALYSIS KEDDAH_THREAD_ANNOTATION_(no_thread_safety_analysis)
