// Minimal leveled logger for the Keddah toolchain.
//
// Each simulation is deterministic and single-threaded, but parallel sweeps
// run many simulations on worker threads at once: the level is an atomic and
// emission is serialized so concurrent log lines stay whole. Output goes to
// stderr so that bench binaries can print machine-readable tables on stdout
// with diagnostics kept apart.
#pragma once

#include <sstream>
#include <string>

namespace keddah::util {

/// Severity of a log statement. Messages below the global threshold are
/// discarded without formatting cost.
enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Returns the current global log threshold (default: kWarn).
LogLevel log_level();

/// Sets the global log threshold. Safe to call while worker threads log.
void set_log_level(LogLevel level);

/// Parses "trace|debug|info|warn|error" (case-insensitive); returns kWarn on
/// unknown input.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
bool log_enabled(LogLevel level);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace keddah::util

// Streaming log macros; evaluate their arguments only when the level is
// enabled, e.g. KLOG_INFO << "fitted " << n << " flows";
#define KLOG_IMPL(lvl)                                       \
  if (!::keddah::util::detail::log_enabled(lvl)) {           \
  } else                                                     \
    ::keddah::util::detail::LogStream(lvl)

#define KLOG_TRACE KLOG_IMPL(::keddah::util::LogLevel::kTrace)
#define KLOG_DEBUG KLOG_IMPL(::keddah::util::LogLevel::kDebug)
#define KLOG_INFO KLOG_IMPL(::keddah::util::LogLevel::kInfo)
#define KLOG_WARN KLOG_IMPL(::keddah::util::LogLevel::kWarn)
#define KLOG_ERROR KLOG_IMPL(::keddah::util::LogLevel::kError)
