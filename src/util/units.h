// Zero-cost strong types for the quantities Keddah's accounting lives or
// dies by: payload sizes (Bytes), simulation durations (Seconds), and
// transfer rates (Rate, bits/second) — plus tagged integer ID types so a
// FileId can never silently travel where a NodeId is expected.
//
// Design rules:
//  - Construction from a raw number is always explicit; mixing units is a
//    compile error, not a runtime surprise.
//  - Reading out is explicit too (`value()`) for the unit wrappers, so every
//    raw-double boundary is greppable. Tagged IDs convert *out* implicitly
//    (they subscript dense arrays all over the hot paths) but never *in*.
//  - Dimensional arithmetic is closed: Bytes +- Bytes, scalar scaling,
//    Bytes / Seconds -> Rate, Rate * Seconds -> Bytes. Anything else does
//    not compile.
//  - Under KEDDAH_CHECK the constructors and arithmetic audit for NaN and
//    negative sizes/durations, turning silent accounting corruption into an
//    immediate failure at the site that produced it. Release builds compile
//    the wrappers down to plain doubles.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "util/check.h"

namespace keddah::util {

/// A payload size in bytes. Double-backed: flow-level simulation works in
/// fractional bytes (compression ratios, partial-delivery accounting).
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(double v) : v_(v) { KEDDAH_AUDIT_UNIT(v_ >= 0.0 && v_ == v_, "Bytes: negative or NaN"); }

  /// Converting factory for integral byte counts (block sizes, file sizes).
  template <typename T>
  static constexpr Bytes of(T raw) {
    return Bytes(static_cast<double>(raw));
  }

  constexpr double value() const { return v_; }
  constexpr double bits() const { return v_ * 8.0; }

  constexpr Bytes& operator+=(Bytes o) {
    v_ += o.v_;
    KEDDAH_AUDIT_UNIT(v_ == v_, "Bytes: NaN after +=");
    return *this;
  }
  constexpr Bytes& operator-=(Bytes o) {
    [[maybe_unused]] const double before = v_;
    v_ -= o.v_;
    // Ledger subtraction may land epsilon-negative from float cancellation
    // (sums of many magnitudes drain in a different order than they grew);
    // only genuinely negative results are accounting bugs.
    KEDDAH_AUDIT_UNIT(v_ == v_ && v_ >= -(1e-9 * (before + o.v_) + 1e-3),
                      "Bytes: negative or NaN after -=");
    return *this;
  }
  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes(a.v_ + b.v_); }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes(a.v_ - b.v_); }
  friend constexpr Bytes operator*(Bytes a, double s) { return Bytes(a.v_ * s); }
  friend constexpr Bytes operator*(double s, Bytes a) { return Bytes(a.v_ * s); }
  friend constexpr double operator/(Bytes a, Bytes b) { return a.v_ / b.v_; }
  friend constexpr auto operator<=>(Bytes a, Bytes b) = default;

 private:
  double v_ = 0.0;
};

/// A duration in seconds (wall-clock of the simulated world).
class Seconds {
 public:
  constexpr Seconds() = default;
  constexpr explicit Seconds(double v) : v_(v) { KEDDAH_AUDIT_UNIT(v_ >= 0.0 && v_ == v_, "Seconds: negative or NaN"); }

  constexpr double value() const { return v_; }

  constexpr Seconds& operator+=(Seconds o) {
    v_ += o.v_;
    return *this;
  }
  friend constexpr Seconds operator+(Seconds a, Seconds b) { return Seconds(a.v_ + b.v_); }
  friend constexpr Seconds operator-(Seconds a, Seconds b) { return Seconds(a.v_ - b.v_); }
  friend constexpr Seconds operator*(Seconds a, double s) { return Seconds(a.v_ * s); }
  friend constexpr Seconds operator*(double s, Seconds a) { return Seconds(a.v_ * s); }
  friend constexpr auto operator<=>(Seconds a, Seconds b) = default;

 private:
  double v_ = 0.0;
};

/// A transfer rate in bits/second (the unit every link capacity, NIC, and
/// disk figure in the paper is quoted in). The only dimensional way to make
/// one is Bytes / Seconds; `Rate::bps()/gbps()` name the raw-number
/// boundaries.
class Rate {
 public:
  constexpr Rate() = default;

  static constexpr Rate bps(double bits_per_second) { return Rate(bits_per_second); }
  static constexpr Rate gbps(double gigabits_per_second) { return Rate(gigabits_per_second * 1e9); }
  static constexpr Rate infinite() { return Rate(kInf); }

  constexpr double bps() const { return v_; }
  constexpr bool finite() const { return v_ < kInf && v_ == v_; }

  friend constexpr Rate operator*(Rate a, double s) { return Rate(a.v_ * s); }
  friend constexpr Rate operator*(double s, Rate a) { return Rate(a.v_ * s); }
  friend constexpr auto operator<=>(Rate a, Rate b) = default;

  /// Time to move `b` at this rate.
  friend constexpr Seconds operator/(Bytes b, Rate r) { return Seconds(b.bits() / r.v_); }
  /// Payload moved in `t` at this rate.
  friend constexpr Bytes operator*(Rate r, Seconds t) { return Bytes(r.v_ * t.value() / 8.0); }
  friend constexpr Bytes operator*(Seconds t, Rate r) { return r * t; }

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr explicit Rate(double v) : v_(v) { KEDDAH_AUDIT_UNIT(v_ >= 0.0, "Rate: negative"); }
  double v_ = 0.0;
};

/// Rate = Bytes / Seconds is the one sanctioned dimensional construction.
constexpr Rate operator/(Bytes b, Seconds t) { return Rate::bps(b.bits() / t.value()); }

/// An integer ID branded with a tag type. Explicit to construct from a raw
/// integer (and from differently-tagged IDs: no conversion path exists), but
/// implicitly readable as its underlying type so dense-array subscripting —
/// the dominant use on hot paths — stays untouched.
template <typename Tag, typename T = std::uint32_t>
class TaggedId {
 public:
  using underlying = T;

  constexpr TaggedId() = default;
  constexpr explicit TaggedId(T raw) : v_(raw) {}

  constexpr operator T() const { return v_; }  // NOLINT(google-explicit-constructor)
  constexpr T value() const { return v_; }

  constexpr TaggedId& operator++() {
    ++v_;
    return *this;
  }
  constexpr TaggedId operator++(int) {
    TaggedId old = *this;
    ++v_;
    return old;
  }
  friend constexpr auto operator<=>(TaggedId a, TaggedId b) = default;

 private:
  T v_ = T{};
};

}  // namespace keddah::util

template <typename Tag, typename T>
struct std::hash<keddah::util::TaggedId<Tag, T>> {
  std::size_t operator()(keddah::util::TaggedId<Tag, T> id) const noexcept {
    return std::hash<T>{}(id.value());
  }
};
