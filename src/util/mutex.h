// Annotated mutex / scoped-lock / condition-variable wrappers.
//
// Thin shims over <mutex> and <condition_variable> that carry the Clang
// thread-safety capability attributes (util/thread_annotations.h). Every
// concurrent component in the repo locks through these types so that a
// `GUARDED_BY(mutex_)` field access outside its lock is a compile error
// under `clang -Wthread-safety` — the compile-time counterpart to the
// TSan gate in tools/check_sanitize.sh. keddah-detlint's bare-mutex rule
// keeps new code from reaching for std::mutex directly (this file is the
// one allowed implementation site).
#pragma once

#include <chrono>              // for the timed wait below
#include <condition_variable>  // detlint:allow(bare-mutex) wrapper implementation
#include <cstdint>
#include <mutex>               // detlint:allow(bare-mutex) wrapper implementation

#include "util/thread_annotations.h"

namespace keddah::util {

/// A std::mutex declared as a thread-safety capability. Prefer MutexLock
/// for scoped sections; the raw lock()/unlock() pair exists for hand-over
/// -hand patterns like ThreadPool::worker_loop.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;  // detlint:allow(bare-mutex) wrapper implementation
};

/// RAII lock over a util::Mutex, analysis-visible as a scoped capability.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with util::Mutex. wait() declares (via
/// REQUIRES) that the caller holds the mutex; the implementation briefly
/// adopts the held lock into a std::unique_lock for the underlying wait
/// and releases ownership back before returning, so the caller's hold is
/// continuous as far as the analysis (and RAII) is concerned.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps, and reacquires `mu` before
  /// returning. Spurious wakeups happen; callers loop on their predicate.
  void wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    // detlint:allow(bare-mutex) wrapper implementation
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the (re-acquired) mutex
  }

  /// Timed wait: like wait(), but gives up after `timeout_ms`. Returns
  /// false on timeout, true when notified (spurious wakeups included —
  /// callers loop on their predicate either way). Powers bounded waits
  /// like the serve drain-on-shutdown handshake.
  bool wait_for_ms(Mutex& mu, std::int64_t timeout_ms) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    // detlint:allow(bare-mutex) wrapper implementation
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const auto status = cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms));
    lock.release();  // the caller still owns the (re-acquired) mutex
    return status == std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // detlint:allow(bare-mutex) wrapper implementation
};

}  // namespace keddah::util
