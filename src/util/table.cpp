#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <iostream>
#include <sstream>

#include "util/strings.h"

namespace keddah::util {

namespace {
bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  std::size_t i = (cell[0] == '-' || cell[0] == '+') ? 1 : 0;
  if (i >= cell.size()) return false;
  bool digit = false;
  for (; i < cell.size(); ++i) {
    const char c = cell[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '+' && c != '-' && c != '%' && c != 'x') {
      return false;
    }
  }
  return digit;
}
}  // namespace

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_numeric_row(const std::string& label, const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (const double v : values) row.push_back(format("%.*f", precision, v));
  add_row(std::move(row));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      const auto pad = widths[c] - cell.size();
      if (looks_numeric(cell)) {
        out << std::string(pad, ' ') << cell;
      } else {
        out << cell << std::string(pad, ' ');
      }
      out << (c + 1 == row.size() ? "" : "  ");
    }
    out << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::str() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

void print_section(std::ostream& out, const std::string& title) {
  out << "\n## " << title << "\n\n";
}

}  // namespace keddah::util
