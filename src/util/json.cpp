#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace keddah::util {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* kNames[] = {"null", "bool", "number", "string", "array", "object"};
  throw std::runtime_error(std::string("json: expected ") + want + ", have " +
                           kNames[static_cast<int>(got)]);
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      if (obj.count(key) != 0) {
        // Last-value-wins would silently drop the first binding — a classic
        // way for a hand-edited scenario to lie about what it configures.
        fail("duplicate object key '" + key + "'");
      }
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(arr));
  }

  /// Reads exactly four hex digits of a \uXXXX escape.
  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = take();
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code += static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code += static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code += static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return code;
  }

  /// Appends `code` (a Unicode scalar value, <= 0x10ffff) as UTF-8.
  static void append_utf8(std::string& out, unsigned code) {
    if (code <= 0x7f) {
      out += static_cast<char>(code);
    } else if (code <= 0x7ff) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code <= 0xffff) {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  std::string parse_string() {
    skip_ws();
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            const unsigned first = parse_hex4();
            unsigned code = first;
            if (first >= 0xd800 && first <= 0xdbff) {
              // High surrogate: RFC 8259 requires an immediately following
              // \uDC00..\uDFFF low surrogate; together they name one
              // supplementary-plane code point.
              if (take() != '\\' || take() != 'u') fail("high surrogate not followed by \\u escape");
              const unsigned low = parse_hex4();
              if (low < 0xdc00 || low > 0xdfff) {
                fail("high surrogate followed by non-low-surrogate \\u escape");
              }
              code = 0x10000 + ((first - 0xd800) << 10) + (low - 0xdc00);
            } else if (first >= 0xdc00 && first <= 0xdfff) {
              fail("lone low surrogate \\u escape");
            }
            append_utf8(out, code);
            break;
          }
          default:
            fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    try {
      return Json(std::stod(text_.substr(start, pos_ - start)));
    } catch (...) {
      fail("bad number");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; persist as null (fits "no data" semantics).
    out += "null";
    return;
  }
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

std::int64_t Json::as_int() const { return static_cast<std::int64_t>(std::llround(as_number())); }

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw std::runtime_error("json: missing key '" + key + "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && object_.count(key) != 0;
}

double Json::get_number(const std::string& key, double fallback) const {
  return contains(key) && at(key).is_number() ? at(key).as_number() : fallback;
}

std::string Json::get_string(const std::string& key, const std::string& fallback) const {
  return contains(key) && at(key).is_string() ? at(key).as_string() : fallback;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  return object_[key];
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
}

const Json& Json::at(std::size_t index) const {
  const auto& arr = as_array();
  if (index >= arr.size()) throw std::runtime_error("json: index out of range");
  return arr[index];
}

std::size_t Json::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  if (is_null()) return 0;
  return 1;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<std::size_t>(indent) * (depth + 1), ' ')
                                 : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent) * depth, ' ') : std::string();
  const char* nl = pretty ? "\n" : "";
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      dump_number(number_, out);
      break;
    case Type::kString:
      dump_string(string_, out);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 != array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      std::size_t i = 0;
      for (const auto& [key, value] : object_) {
        out += pad;
        dump_string(key, out);
        out += pretty ? ": " : ":";
        value.dump_to(out, indent, depth + 1);
        if (++i != object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

Json Json::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("json: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void Json::save_file(const std::string& path, int indent) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("json: cannot write " + path);
  out << dump(indent) << "\n";
}

}  // namespace keddah::util
