// MmapArena: a growable, append-only byte region backed by a memory-mapped
// file. This is the substrate for the capture spill path (capture/spill.h):
// flow records stream to disk through the mapping instead of accumulating in
// RAM, so capture size is bounded by disk, not memory. The idiom follows the
// memory-mapped columnar layout from ExpressionMatrix2's MemoryMappedVector
// (see ROADMAP): one flat file, ftruncate-to-capacity, remap on growth.
//
// Write mode appends at the tail and doubles the file's capacity (ftruncate
// + fresh mmap) when full; `finalize()` shrinks the file to the bytes
// actually written and msyncs. Read mode maps an existing file read-only.
// The base pointer is stable between appends only until a growth remap, so
// callers must address the region by offset, never by retained pointer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace keddah::util {

/// A memory-mapped file region. Move-only; the mapping and descriptor are
/// released on destruction (without shrinking — call finalize() for that).
class MmapArena {
 public:
  /// Creates (or truncates) `path` for writing with `initial_capacity`
  /// bytes of mapped headroom. Throws std::runtime_error naming the path
  /// and errno string on any syscall failure.
  static MmapArena create(const std::string& path, std::size_t initial_capacity = 1u << 20);

  /// Maps an existing file read-only; size() is the file size. Throws
  /// std::runtime_error naming the path when absent or unmappable.
  static MmapArena open_readonly(const std::string& path);

  MmapArena() = default;
  ~MmapArena();
  MmapArena(MmapArena&& other) noexcept;
  MmapArena& operator=(MmapArena&& other) noexcept;
  MmapArena(const MmapArena&) = delete;
  MmapArena& operator=(const MmapArena&) = delete;

  /// Bytes appended so far (write mode) or the file size (read mode).
  std::size_t size() const { return size_; }
  /// Mapped bytes (>= size() in write mode).
  std::size_t capacity() const { return capacity_; }
  bool is_open() const { return data_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Base of the mapping; valid until the next append() that grows.
  const std::uint8_t* data() const { return data_; }

  /// Appends `n` bytes at the tail, growing (capacity doubling, remap) as
  /// needed. Write mode only.
  void append(const void* bytes, std::size_t n);

  /// Overwrites `n` bytes at `offset` (< size()); used to back-patch
  /// headers after the body is written. Write mode only.
  void write_at(std::size_t offset, const void* bytes, std::size_t n);

  /// Flushes dirty pages to disk (msync). Write mode only.
  void flush();

  /// Shrinks the file to size(), flushes, and closes the mapping. The
  /// arena is closed afterwards. Safe to call once; destruction without
  /// finalize() leaves the file at its last ftruncate'd capacity.
  void finalize();

 private:
  void grow_to(std::size_t min_capacity);
  void close() noexcept;

  std::string path_;
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  int fd_ = -1;
  bool writable_ = false;
};

}  // namespace keddah::util
