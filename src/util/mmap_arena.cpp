#include "util/mmap_arena.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace keddah::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("mmap_arena: " + what + " " + path + ": " + std::strerror(errno));
}

std::size_t round_up_page(std::size_t n) {
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ((n + page - 1) / page) * page;
}

}  // namespace

MmapArena MmapArena::create(const std::string& path, std::size_t initial_capacity) {
  MmapArena arena;
  arena.path_ = path;
  arena.writable_ = true;
  arena.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (arena.fd_ < 0) fail("cannot create", path);
  arena.capacity_ = round_up_page(initial_capacity == 0 ? 1 : initial_capacity);
  if (::ftruncate(arena.fd_, static_cast<off_t>(arena.capacity_)) != 0) fail("ftruncate", path);
  void* map =
      ::mmap(nullptr, arena.capacity_, PROT_READ | PROT_WRITE, MAP_SHARED, arena.fd_, 0);
  if (map == MAP_FAILED) fail("mmap", path);
  arena.data_ = static_cast<std::uint8_t*>(map);
  return arena;
}

MmapArena MmapArena::open_readonly(const std::string& path) {
  MmapArena arena;
  arena.path_ = path;
  arena.writable_ = false;
  arena.fd_ = ::open(path.c_str(), O_RDONLY);
  if (arena.fd_ < 0) fail("cannot open", path);
  struct stat st{};
  if (::fstat(arena.fd_, &st) != 0) fail("fstat", path);
  arena.size_ = static_cast<std::size_t>(st.st_size);
  arena.capacity_ = arena.size_;
  if (arena.size_ == 0) {
    // mmap(0) is an error; an empty file maps to an empty (but open) arena.
    // Leave a non-null sentinel so is_open() reports the handle.
    static std::uint8_t empty = 0;
    arena.data_ = &empty;
    return arena;
  }
  void* map = ::mmap(nullptr, arena.size_, PROT_READ, MAP_PRIVATE, arena.fd_, 0);
  if (map == MAP_FAILED) fail("mmap", path);
  arena.data_ = static_cast<std::uint8_t*>(map);
  return arena;
}

MmapArena::~MmapArena() { close(); }

MmapArena::MmapArena(MmapArena&& other) noexcept { *this = std::move(other); }

MmapArena& MmapArena::operator=(MmapArena&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    fd_ = other.fd_;
    writable_ = other.writable_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
    other.fd_ = -1;
  }
  return *this;
}

void MmapArena::close() noexcept {
  if (data_ != nullptr && capacity_ > 0) ::munmap(data_, capacity_);
  if (fd_ >= 0) ::close(fd_);
  data_ = nullptr;
  size_ = 0;
  capacity_ = 0;
  fd_ = -1;
}

void MmapArena::grow_to(std::size_t min_capacity) {
  std::size_t next = capacity_ == 0 ? round_up_page(1) : capacity_;
  while (next < min_capacity) next *= 2;
  if (next == capacity_) return;
  if (::ftruncate(fd_, static_cast<off_t>(next)) != 0) fail("ftruncate (grow)", path_);
  // A plain munmap + mmap keeps this portable; offsets are the stable
  // addressing scheme, so nothing outside this class holds the old base.
  if (data_ != nullptr) ::munmap(data_, capacity_);
  void* map = ::mmap(nullptr, next, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (map == MAP_FAILED) fail("mmap (grow)", path_);
  data_ = static_cast<std::uint8_t*>(map);
  capacity_ = next;
}

void MmapArena::append(const void* bytes, std::size_t n) {
  if (!writable_ || fd_ < 0) throw std::logic_error("mmap_arena: append on a read-only arena");
  if (n == 0) return;
  if (size_ + n > capacity_) grow_to(size_ + n);
  std::memcpy(data_ + size_, bytes, n);
  size_ += n;
}

void MmapArena::write_at(std::size_t offset, const void* bytes, std::size_t n) {
  if (!writable_ || fd_ < 0) throw std::logic_error("mmap_arena: write_at on a read-only arena");
  if (offset + n > size_) throw std::out_of_range("mmap_arena: write_at past the written tail");
  std::memcpy(data_ + offset, bytes, n);
}

void MmapArena::flush() {
  if (!writable_ || data_ == nullptr || capacity_ == 0) return;
  if (::msync(data_, capacity_, MS_SYNC) != 0) fail("msync", path_);
}

void MmapArena::finalize() {
  if (!writable_ || fd_ < 0) return;
  flush();
  if (::ftruncate(fd_, static_cast<off_t>(size_)) != 0) fail("ftruncate (finalize)", path_);
  close();
}

}  // namespace keddah::util
