// Gnuplot figure emission: bench binaries print their series as text and,
// when asked, also write <basename>.dat / <basename>.gp so the figures can
// be rendered with stock gnuplot (`gnuplot figN.gp` -> figN.png).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace keddah::util {

/// A figure with one or more named (x, y) series.
class GnuplotFigure {
 public:
  GnuplotFigure(std::string title, std::string xlabel, std::string ylabel);

  /// Starts a new series; subsequent add_point calls append to it.
  void add_series(const std::string& name);

  /// Appends a point to the current series (add_series must have been
  /// called; throws std::logic_error otherwise).
  void add_point(double x, double y);

  /// Convenience: a whole series at once.
  void add_series(const std::string& name, const std::vector<std::pair<double, double>>& points);

  void set_logscale_x(bool on = true) { logscale_x_ = on; }
  void set_logscale_y(bool on = true) { logscale_y_ = on; }
  /// "linespoints" (default), "points", "steps" (CDFs), "boxes".
  void set_style(std::string style) { style_ = std::move(style); }

  /// Writes <basename>.dat (series separated by double blank lines, gnuplot
  /// `index` convention) and <basename>.gp (renders <basename>.png).
  /// Throws std::runtime_error on I/O failure.
  void write(const std::string& basename) const;

  /// The .gp script text (for tests).
  std::string script(const std::string& basename) const;

  /// The .dat payload text (for tests).
  std::string data() const;

 private:
  struct Series {
    std::string name;
    std::vector<std::pair<double, double>> points;
  };
  std::string title_;
  std::string xlabel_;
  std::string ylabel_;
  std::string style_ = "linespoints";
  bool logscale_x_ = false;
  bool logscale_y_ = false;
  std::vector<Series> series_;
};

/// Returns the plot output directory requested via the KEDDAH_PLOT_DIR
/// environment variable, or empty when plotting is off. Bench binaries
/// call this and skip figure emission when it returns empty.
std::string plot_dir_from_env();

}  // namespace keddah::util
