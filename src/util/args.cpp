#include "util/args.h"

#include <stdexcept>

#include "util/strings.h"

namespace keddah::util {

Args Args::parse(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return parse(tokens);
}

Args Args::parse(const std::vector<std::string>& tokens) {
  Args args;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (!starts_with(token, "--")) {
      args.positionals_.push_back(token);
      continue;
    }
    std::string body = token.substr(2);
    if (body.empty() || body[0] == '-') {
      throw std::invalid_argument("args: malformed flag '" + token + "'");
    }
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      args.flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" unless the next token is itself a flag (then boolean).
    if (i + 1 < tokens.size() && !starts_with(tokens[i + 1], "--")) {
      args.flags_[body] = tokens[++i];
    } else {
      args.flags_[body] = "true";
    }
  }
  return args;
}

bool Args::has(const std::string& key) const {
  accessed_[key] = true;
  return flags_.count(key) != 0;
}

std::string Args::get(const std::string& key, const std::string& fallback) const {
  accessed_[key] = true;
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

double Args::get_double(const std::string& key, double fallback) const {
  accessed_[key] = true;
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (...) {
    throw std::invalid_argument("args: --" + key + " expects a number, got '" + it->second + "'");
  }
}

std::int64_t Args::get_int(const std::string& key, std::int64_t fallback) const {
  accessed_[key] = true;
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (...) {
    throw std::invalid_argument("args: --" + key + " expects an integer, got '" + it->second +
                                "'");
  }
}

std::uint64_t Args::get_bytes(const std::string& key, std::uint64_t fallback) const {
  accessed_[key] = true;
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  std::uint64_t value = 0;
  if (!parse_bytes(it->second, &value)) {
    throw std::invalid_argument("args: --" + key + " expects a size, got '" + it->second + "'");
  }
  return value;
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  accessed_[key] = true;
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  const std::string lower = to_lower(it->second);
  if (lower == "true" || lower == "1" || lower == "yes") return true;
  if (lower == "false" || lower == "0" || lower == "no") return false;
  throw std::invalid_argument("args: --" + key + " expects a boolean, got '" + it->second + "'");
}

std::vector<std::string> Args::unused_keys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : flags_) {
    (void)value;
    if (accessed_.count(key) == 0) unused.push_back(key);
  }
  return unused;
}

void Args::reject_unknown() const {
  const auto unknown = unused_keys();
  if (unknown.empty()) return;
  std::string message = "unknown flag(s):";
  for (const auto& key : unknown) {
    message += " --" + key;
    // Suggest the closest flag this command actually reads, when one is
    // plausibly a typo (distance scales with the flag's length).
    std::size_t best_distance = std::string::npos;
    std::string best;
    for (const auto& [candidate, read] : accessed_) {
      (void)read;
      const std::size_t distance = edit_distance(key, candidate);
      if (distance < best_distance || (distance == best_distance && candidate < best)) {
        best_distance = distance;
        best = candidate;
      }
    }
    const std::size_t threshold = key.size() / 3 > 2 ? key.size() / 3 : 2;
    if (!best.empty() && best_distance <= threshold) {
      message += " (did you mean --" + best + "?)";
    }
  }
  throw UsageError(message);
}

}  // namespace keddah::util
