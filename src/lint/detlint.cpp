#include "lint/detlint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

#include "lint/diagnostic.h"
#include "util/strings.h"

namespace keddah::lint {

namespace {

// ---------------------------------------------------------------------------
// Source preparation: blank comments and literals, harvest allow-comments.
// ---------------------------------------------------------------------------

/// A source file after lexical cleanup. `clean` is the original text with
/// comments, string literals, and char literals replaced by spaces
/// (newlines kept, so offsets map to the same lines). Allow-comments are
/// harvested per line before blanking.
struct CleanSource {
  std::string path;
  std::string stem;   ///< basename without extension, for header/impl pairing
  std::string clean;
  std::vector<std::size_t> line_starts;           ///< offset of each line start
  std::map<std::size_t, std::set<std::string>> allows;  ///< line -> allowed rules
  std::set<std::size_t> comment_only_lines;       ///< whole line is a comment
};

std::string path_stem(const std::string& path) {
  return std::filesystem::path(path).stem().string();
}

std::size_t line_of(const CleanSource& src, std::size_t offset) {
  const auto it = std::upper_bound(src.line_starts.begin(), src.line_starts.end(), offset);
  return static_cast<std::size_t>(it - src.line_starts.begin());
}

/// Extracts every `detlint:allow(<rule>)` marker from one comment's text.
void harvest_allows(const std::string& comment, std::size_t line,
                    std::map<std::size_t, std::set<std::string>>& allows) {
  static const std::regex allow_re(R"(detlint:allow\(([a-z][a-z-]*)\))");
  for (auto it = std::sregex_iterator(comment.begin(), comment.end(), allow_re);
       it != std::sregex_iterator(); ++it) {
    allows[line].insert((*it)[1].str());
  }
}

CleanSource clean_source(const std::string& path, const std::string& text) {
  CleanSource out;
  out.path = path;
  out.stem = path_stem(path);
  out.clean = text;
  out.line_starts.push_back(0);

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;          // for R"delim( ... )delim"
  std::string comment_buffer;     // text of the comment currently being read
  std::size_t comment_line = 1;   // line the current comment started on
  std::size_t line = 1;
  // Per-line bookkeeping for comment_only_lines.
  std::map<std::size_t, bool> line_has_comment;
  std::map<std::size_t, bool> line_has_code;

  const auto flush_comment = [&] {
    harvest_allows(comment_buffer, comment_line, out.allows);
    comment_buffer.clear();
  };

  std::string& s = out.clean;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) {
        flush_comment();
        state = State::kCode;
      }
      out.line_starts.push_back(i + 1);
      ++line;
      continue;
    }
    switch (state) {
      case State::kCode: {
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_line = line;
          line_has_comment[line] = true;
          s[i] = s[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_line = line;
          line_has_comment[line] = true;
          s[i] = s[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(s[i - 1])) &&
                               s[i - 1] != '_'))) {
          // Raw string literal: R"delim( ... )delim".
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < s.size() && s[j] != '(') raw_delim += s[j++];
          state = State::kRawString;
          line_has_code[line] = true;
          for (std::size_t k = i; k <= j && k < s.size(); ++k) {
            if (s[k] != '\n') s[k] = ' ';
          }
          i = j;
        } else if (c == '"') {
          state = State::kString;
          line_has_code[line] = true;
          s[i] = ' ';
        } else if (c == '\'' && i > 0 &&
                   (std::isalnum(static_cast<unsigned char>(s[i - 1])) || s[i - 1] == '_')) {
          // Digit separator (1'000) or suffix position: not a char literal.
          line_has_code[line] = true;
        } else if (c == '\'') {
          state = State::kChar;
          line_has_code[line] = true;
          s[i] = ' ';
        } else {
          if (!std::isspace(static_cast<unsigned char>(c))) line_has_code[line] = true;
        }
        break;
      }
      case State::kLineComment:
        comment_buffer += c;
        s[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          flush_comment();
          state = State::kCode;
          line_has_comment[line] = true;
          s[i] = s[i + 1] = ' ';
          ++i;
        } else {
          comment_buffer += c;
          line_has_comment[line] = true;
          s[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          s[i] = ' ';
          if (next != '\n' && i + 1 < s.size()) s[++i] = ' ';
        } else if (c == '"') {
          state = State::kCode;
          s[i] = ' ';
        } else {
          s[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          s[i] = ' ';
          if (next != '\n' && i + 1 < s.size()) s[++i] = ' ';
        } else if (c == '\'') {
          state = State::kCode;
          s[i] = ' ';
        } else {
          s[i] = ' ';
        }
        break;
      case State::kRawString:
        if (c == ')' && s.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < s.size() && s[i + 1 + raw_delim.size()] == '"') {
          const std::size_t end = i + 1 + raw_delim.size();
          for (std::size_t k = i; k <= end; ++k) {
            if (s[k] != '\n') s[k] = ' ';
          }
          i = end;
          state = State::kCode;
        } else if (c != '\n') {
          s[i] = ' ';
        }
        break;
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) flush_comment();

  for (const auto& [ln, has_comment] : line_has_comment) {
    if (has_comment && !line_has_code[ln]) out.comment_only_lines.insert(ln);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Phase 1: symbol collection.
// ---------------------------------------------------------------------------

/// Where unordered-container names live: variables are matched within the
/// declaring file or its header/impl partner (same stem); functions whose
/// declared return type is unordered match call sites anywhere.
struct Registry {
  std::map<std::string, std::set<std::string>> vars;  ///< name -> declaring stems
  std::set<std::string> fns;                          ///< unordered-returning functions
};

/// Finds the offset just past the `>` matching the `<` at `open`.
std::size_t match_angle(const std::string& s, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

std::size_t skip_space(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

/// Reads a (possibly qualified) identifier at `i`; returns its last
/// component and advances `i` past it. Empty when `i` is not at one.
std::string read_identifier(const std::string& s, std::size_t& i) {
  std::string last;
  for (;;) {
    std::size_t j = i;
    std::string word;
    while (j < s.size() &&
           (std::isalnum(static_cast<unsigned char>(s[j])) || s[j] == '_')) {
      word += s[j++];
    }
    if (word.empty()) return last;
    last = word;
    i = j;
    const std::size_t after = skip_space(s, i);
    if (after + 1 < s.size() && s[after] == ':' && s[after + 1] == ':') {
      i = skip_space(s, after + 2);
      continue;
    }
    return last;
  }
}

void collect_symbols(const CleanSource& src, Registry& registry) {
  static const std::regex decl_re(R"(std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<)");
  const std::string& s = src.clean;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), decl_re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open = static_cast<std::size_t>(it->position()) + it->length() - 1;
    std::size_t pos = match_angle(s, open);
    if (pos == std::string::npos) continue;
    pos = skip_space(s, pos);
    if (pos < s.size() && s[pos] == '>') continue;  // nested in another template
    while (pos < s.size() && (s[pos] == '&' || s[pos] == '*')) pos = skip_space(s, pos + 1);
    std::size_t id_end = pos;
    const std::string name = read_identifier(s, id_end);
    if (name.empty()) continue;
    const std::size_t after = skip_space(s, id_end);
    const char tail = after < s.size() ? s[after] : '\0';
    if (tail == '(') {
      registry.fns.insert(name);  // function returning an unordered container
    } else if (tail == ';' || tail == '=' || tail == '{' || tail == ',' || tail == ')') {
      registry.vars[name].insert(src.stem);
    }
  }
}

/// `auto x = <unordered-returning-fn>(...)` makes `x` unordered too.
void propagate_auto_vars(const CleanSource& src, Registry& registry) {
  for (const auto& fn : registry.fns) {
    const std::regex auto_re("auto\\s*&?&?\\s+(\\w+)\\s*=\\s*[^;]{0,160}?\\b" + fn + "\\s*\\(");
    const std::string& s = src.clean;
    for (auto it = std::sregex_iterator(s.begin(), s.end(), auto_re);
         it != std::sregex_iterator(); ++it) {
      registry.vars[(*it)[1].str()].insert(src.stem);
    }
  }
}

bool var_in_scope(const Registry& registry, const std::string& name, const std::string& stem) {
  const auto it = registry.vars.find(name);
  return it != registry.vars.end() && it->second.count(stem) != 0;
}

// ---------------------------------------------------------------------------
// Phase 2: rule checks.
// ---------------------------------------------------------------------------

struct Finding {
  std::size_t line;
  std::string rule;
  std::string message;
  std::string hint;
};

const char* const kUnorderedIterHint =
    "sort keys into a vector (or use std::map) before iterating, or justify an "
    "order-insensitive use with // detlint:allow(unordered-iter)";

/// Root identifier of a range expression: "net.topology().hosts_by_rack()"
/// -> ("hosts_by_rack", was_call=true); "files_" -> ("files_", false).
std::string range_root(const std::string& expr, bool* was_call) {
  static const std::regex tail_re(R"(([A-Za-z_]\w*)\s*(\(\s*\))?\s*$)");
  std::smatch m;
  if (!std::regex_search(expr, m, tail_re)) return "";
  *was_call = m[2].matched;
  return m[1].str();
}

void check_range_for(const CleanSource& src, const Registry& registry,
                     std::vector<Finding>& out) {
  const std::string& s = src.clean;
  std::size_t pos = 0;
  while ((pos = s.find("for", pos)) != std::string::npos) {
    const bool word_start = pos == 0 || (!std::isalnum(static_cast<unsigned char>(s[pos - 1])) &&
                                         s[pos - 1] != '_');
    const std::size_t after_kw = pos + 3;
    const bool word_end = after_kw >= s.size() ||
                          (!std::isalnum(static_cast<unsigned char>(s[after_kw])) &&
                           s[after_kw] != '_');
    if (!word_start || !word_end) {
      pos = after_kw;
      continue;
    }
    const std::size_t open = skip_space(s, after_kw);
    if (open >= s.size() || s[open] != '(') {
      pos = after_kw;
      continue;
    }
    // Bracket-match the for(...) group; find a top-level ':' (not '::').
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t i = open; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        if (--depth == 0 && c == ')') {
          close = i;
          break;
        }
      }
      if (c == ':' && depth == 1) {
        const bool double_colon = (i + 1 < s.size() && s[i + 1] == ':') ||
                                  (i > 0 && s[i - 1] == ':');
        if (!double_colon && colon == std::string::npos) colon = i;
      }
    }
    if (colon != std::string::npos && close != std::string::npos) {
      const std::string expr = s.substr(colon + 1, close - colon - 1);
      bool was_call = false;
      const std::string root = range_root(expr, &was_call);
      const bool hit = !root.empty() && (was_call ? registry.fns.count(root) != 0
                                                  : var_in_scope(registry, root, src.stem));
      if (hit) {
        out.push_back(Finding{
            line_of(src, pos), "unordered-iter",
            "range-for over unordered container '" + root +
                "' iterates in platform-dependent bucket order",
            kUnorderedIterHint});
      }
    }
    pos = close == std::string::npos ? after_kw : close;
  }
}

void check_begin_iteration(const CleanSource& src, const Registry& registry,
                           std::vector<Finding>& out) {
  static const std::regex begin_re(R"((\w+)\s*(?:\.|->)\s*c?begin\s*\()");
  const std::string& s = src.clean;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), begin_re);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    if (!var_in_scope(registry, name, src.stem)) continue;
    out.push_back(Finding{line_of(src, static_cast<std::size_t>(it->position())),
                          "unordered-iter",
                          "iterator walk over unordered container '" + name +
                              "' visits elements in platform-dependent bucket order",
                          kUnorderedIterHint});
  }
}

void check_pointer_key(const CleanSource& src, std::vector<Finding>& out) {
  static const std::regex ordered_re(R"(std\s*::\s*(map|set|multimap|multiset)\s*<)");
  const std::string& s = src.clean;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), ordered_re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open = static_cast<std::size_t>(it->position()) + it->length() - 1;
    // First top-level template argument: up to a depth-1 ',' or the close.
    int depth = 0;
    std::string key_type;
    for (std::size_t i = open; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '<') {
        if (depth++ > 0) key_type += c;
        continue;
      }
      if (c == '>') {
        if (--depth == 0) break;
        key_type += c;
        continue;
      }
      if (c == ',' && depth == 1) break;
      if (depth >= 1) key_type += c;
    }
    const std::string trimmed{util::trim(key_type)};
    if (trimmed.empty() || trimmed.back() != '*') continue;
    out.push_back(Finding{
        line_of(src, static_cast<std::size_t>(it->position())), "pointer-key",
        "ordered std::" + (*it)[1].str() + " keyed by pointer type '" + trimmed +
            "' sorts by address, which ASLR changes every run",
        "key by a stable id (NodeId, FlowId, slot index) instead of an address"});
  }
}

void check_regex_rule(const CleanSource& src, const std::regex& re, const char* rule,
                      const std::string& message, const std::string& hint,
                      std::vector<Finding>& out) {
  const std::string& s = src.clean;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), re); it != std::sregex_iterator();
       ++it) {
    out.push_back(
        Finding{line_of(src, static_cast<std::size_t>(it->position())), rule, message, hint});
  }
}

void check_file(const CleanSource& src, const Registry& registry, DetlintReport& report) {
  std::vector<Finding> findings;
  check_range_for(src, registry, findings);
  check_begin_iteration(src, registry, findings);
  check_pointer_key(src, findings);

  static const std::regex random_device_re(R"(std\s*::\s*random_device\b)");
  check_regex_rule(src, random_device_re, "random-device",
                   "std::random_device draws nondeterministic seeds",
                   "derive all randomness from util::derive_seed(base_seed, index)", findings);

  static const std::regex chrono_clock_re(
      R"(std\s*::\s*chrono\s*::\s*(?:system_clock|steady_clock|high_resolution_clock)\b)");
  static const std::regex c_time_re(
      R"((?:\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bstd\s*::\s*time\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)))");
  const std::string wall_msg = "wall-clock time in simulation code breaks replay determinism";
  const std::string wall_hint =
      "simulated time comes from sim::Simulator::now(); benches measuring real "
      "elapsed time belong under bench/, not src/";
  check_regex_rule(src, chrono_clock_re, "wall-clock", wall_msg, wall_hint, findings);
  check_regex_rule(src, c_time_re, "wall-clock", wall_msg, wall_hint, findings);

  static const std::regex bare_mutex_re(
      R"(std\s*::\s*(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|shared_mutex|shared_timed_mutex|condition_variable|condition_variable_any|lock_guard|unique_lock|scoped_lock|shared_lock)\b)");
  static const std::regex mutex_include_re(
      R"(#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>)");
  const std::string mutex_msg =
      "bare standard-library synchronization bypasses the annotated wrappers";
  const std::string mutex_hint =
      "use util::Mutex / util::MutexLock / util::CondVar (util/mutex.h) so "
      "clang -Wthread-safety can prove the lock discipline";
  check_regex_rule(src, bare_mutex_re, "bare-mutex", mutex_msg, mutex_hint, findings);
  check_regex_rule(src, mutex_include_re, "bare-mutex", mutex_msg, mutex_hint, findings);

  // Dedupe (one finding per rule per line), then apply allow-comments.
  std::set<std::pair<std::size_t, std::string>> seen;
  for (const auto& f : findings) {
    if (!seen.insert({f.line, f.rule}).second) continue;
    const auto allowed = [&](std::size_t line) {
      const auto it = src.allows.find(line);
      return it != src.allows.end() && it->second.count(f.rule) != 0;
    };
    const bool same_line = allowed(f.line);
    const bool previous_comment_line =
        f.line > 1 && src.comment_only_lines.count(f.line - 1) != 0 && allowed(f.line - 1);
    if (same_line || previous_comment_line) {
      ++report.suppressions_used;
      continue;
    }
    report.diagnostics.push_back(Diagnostic{.file = src.path,
                                            .message = f.message,
                                            .hint = f.hint,
                                            .line = f.line,
                                            .rule = f.rule});
  }
}

}  // namespace

const std::vector<std::string>& detlint_rule_ids() {
  static const std::vector<std::string> kRules = {
      "bare-mutex", "pointer-key", "random-device", "unordered-iter", "wall-clock"};
  return kRules;
}

DetlintReport detlint_sources(const std::vector<SourceFile>& sources) {
  std::vector<CleanSource> cleaned;
  cleaned.reserve(sources.size());
  for (const auto& file : sources) cleaned.push_back(clean_source(file.path, file.text));

  Registry registry;
  for (const auto& src : cleaned) collect_symbols(src, registry);
  for (const auto& src : cleaned) propagate_auto_vars(src, registry);

  DetlintReport report;
  report.files_scanned = cleaned.size();
  for (const auto& src : cleaned) check_file(src, registry, report);
  std::sort(report.diagnostics.begin(), report.diagnostics.end(),
            [](const DetDiagnostic& a, const DetDiagnostic& b) {
              return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
            });
  return report;
}

DetlintReport detlint_paths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  const std::set<std::string> kExtensions = {".h", ".hpp", ".cc", ".cpp"};
  std::vector<std::string> files;
  for (const auto& path : paths) {
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() &&
            kExtensions.count(entry.path().extension().string()) != 0) {
          files.push_back(entry.path().string());
        }
      }
    } else if (fs::is_regular_file(path)) {
      files.push_back(path);
    } else {
      throw std::runtime_error("detlint: cannot read " + path);
    }
  }
  std::sort(files.begin(), files.end());  // directory iteration order is unspecified
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) throw std::runtime_error("detlint: cannot read " + file);
    std::ostringstream text;
    text << in.rdbuf();
    sources.push_back(SourceFile{file, text.str()});
  }
  return detlint_sources(sources);
}

}  // namespace keddah::lint
