#include "lint/lint.h"

#include "lint/diagnostic.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <set>
#include <stdexcept>

#include "hadoop/config.h"
#include "hadoop/faults.h"
#include "net/flow.h"
#include "util/strings.h"
#include "workloads/profiles.h"

namespace keddah::lint {

namespace {

void add(std::vector<Diagnostic>& out, const std::string& file, std::string key,
         std::string message, std::string hint = "",
         Severity severity = Severity::kError) {
  out.push_back(Diagnostic{severity, file, std::move(key), std::move(message), std::move(hint)});
}

/// True when `doc` is a JSON number with a finite value. JSON cannot carry
/// NaN/inf, so the serializer writes them as null — catching nulls here is
/// what surfaces NaN model parameters.
bool finite_number(const util::Json& doc) {
  return doc.is_number() && std::isfinite(doc.as_number());
}

/// Fetches `key` as a finite number. Missing keys return `fallback` silently
/// (the parsers default them); present-but-broken values diagnose and return
/// fallback.
double checked_number(const util::Json& doc, const std::string& prefix, const std::string& key,
                      double fallback, const std::string& file, std::vector<Diagnostic>& out) {
  if (!doc.is_object() || !doc.contains(key)) return fallback;
  const auto& v = doc.at(key);
  if (!finite_number(v)) {
    add(out, file, prefix.empty() ? key : prefix + "." + key,
        v.is_null() ? "null where a number is expected (NaN/inf serializes as null)"
                    : "must be a finite number",
        "replace with a finite numeric value");
    return fallback;
  }
  return v.as_number();
}

/// Warns about keys the runtime parser would silently ignore — almost always
/// a typo of a real key.
void warn_unknown_keys(const util::Json& doc, const std::string& prefix,
                       const std::set<std::string>& known, const std::string& file,
                       std::vector<Diagnostic>& out) {
  if (!doc.is_object()) return;
  for (const auto& [key, value] : doc.as_object()) {
    if (known.count(key) == 0) {
      add(out, file, prefix.empty() ? key : prefix + "." + key,
          "unknown key (the parser ignores it)", "check the spelling against the schema",
          Severity::kWarning);
    }
  }
}

/// Byte-size fields accept either a number or a "128 MB"-style string.
void check_size_field(const util::Json& parent, const std::string& prefix, const std::string& key,
                      const std::string& file, std::vector<Diagnostic>& out,
                      bool required = false) {
  const std::string path = prefix.empty() ? key : prefix + "." + key;
  if (!parent.contains(key)) {
    if (required) {
      add(out, file, path, "missing required key", "add e.g. \"" + key + "\": \"256 MB\"");
    }
    return;
  }
  const auto& v = parent.at(key);
  if (v.is_number()) {
    if (!std::isfinite(v.as_number()) || v.as_number() < 0.0) {
      add(out, file, path, "byte size must be finite and >= 0");
    } else if (required && v.as_number() == 0.0) {
      add(out, file, path, "byte size must be > 0");
    }
    return;
  }
  std::uint64_t bytes = 0;
  if (!v.is_string() || !util::parse_bytes(v.as_string(), &bytes)) {
    add(out, file, path, "unparseable byte size",
        "use a number of bytes or a string like \"128 MB\"");
  } else if (required && bytes == 0) {
    add(out, file, path, "byte size must be > 0");
  }
}

/// Cluster size implied by the (possibly partial) cluster object, mirroring
/// ClusterConfig defaults. `cluster` may be null (no "cluster" key: all
/// defaults). Returns 0 when the sizing fields are too broken to tell —
/// callers then skip range checks instead of cascading errors.
std::size_t sniff_cluster_size(const util::Json* cluster) {
  hadoop::ClusterConfig cfg;
  if (cluster == nullptr) return cfg.num_workers();
  const auto& c = *cluster;
  if (!c.is_object()) return 0;
  const std::string topo = c.get_string("topology", "racktree");
  if (topo == "star") {
    cfg.topology = hadoop::TopologyKind::kStar;
  } else if (topo == "fattree") {
    cfg.topology = hadoop::TopologyKind::kFatTree;
  } else if (topo != "racktree") {
    return 0;
  }
  const double racks = c.get_number("racks", 4.0);
  const double hosts = c.get_number("hosts_per_rack", 4.0);
  const double k = c.get_number("fat_tree_k", 4.0);
  if (racks < 1.0 || hosts < 1.0 || k < 2.0) return 0;
  cfg.racks = static_cast<std::size_t>(racks);
  cfg.hosts_per_rack = static_cast<std::size_t>(hosts);
  cfg.fat_tree_k = static_cast<std::size_t>(k);
  return cfg.num_workers();
}

void lint_cluster(const util::Json& c, const std::string& file, std::vector<Diagnostic>& out) {
  if (!c.is_object()) {
    add(out, file, "cluster", "must be an object");
    return;
  }
  warn_unknown_keys(c, "cluster",
                    {"topology", "racks", "hosts_per_rack", "fat_tree_k", "access_gbps",
                     "core_gbps", "block_size", "replication", "containers", "slowstart",
                     "locality_delay_s", "compress_ratio", "speculative", "straggler_fraction"},
                    file, out);
  const std::string topo = c.get_string("topology", "racktree");
  if (topo != "star" && topo != "racktree" && topo != "fattree") {
    add(out, file, "cluster.topology", "unknown topology '" + topo + "'",
        "one of: star, racktree, fattree");
  }
  const double racks = checked_number(c, "cluster", "racks", 4.0, file, out);
  const double hosts = checked_number(c, "cluster", "hosts_per_rack", 4.0, file, out);
  const double k = checked_number(c, "cluster", "fat_tree_k", 4.0, file, out);
  if (racks < 1.0) add(out, file, "cluster.racks", "must be >= 1");
  if (hosts < 1.0) add(out, file, "cluster.hosts_per_rack", "must be >= 1");
  if (topo == "fattree") {
    if (k < 2.0 || std::fmod(k, 2.0) != 0.0) {
      add(out, file, "cluster.fat_tree_k", "fat-tree arity must be an even integer >= 2");
    }
  }
  if (checked_number(c, "cluster", "access_gbps", 1.0, file, out) <= 0.0) {
    add(out, file, "cluster.access_gbps", "access link rate must be > 0");
  }
  if (checked_number(c, "cluster", "core_gbps", 10.0, file, out) <= 0.0) {
    add(out, file, "cluster.core_gbps", "core link rate must be > 0");
  }
  check_size_field(c, "cluster", "block_size", file, out);
  const double replication = checked_number(c, "cluster", "replication", 3.0, file, out);
  if (replication < 1.0) {
    add(out, file, "cluster.replication", "replication factor must be >= 1");
  }
  const std::size_t cluster_size = sniff_cluster_size(&c);
  if (cluster_size != 0 && replication > static_cast<double>(cluster_size)) {
    add(out, file, "cluster.replication",
        util::format("replication %d exceeds the cluster size (%zu workers)",
                     static_cast<int>(replication), cluster_size),
        "lower replication or add racks/hosts");
  }
  if (checked_number(c, "cluster", "containers", 4.0, file, out) < 1.0) {
    add(out, file, "cluster.containers", "containers per node must be >= 1");
  }
  const double slowstart = checked_number(c, "cluster", "slowstart", 0.05, file, out);
  if (slowstart < 0.0 || slowstart > 1.0) {
    add(out, file, "cluster.slowstart", "slowstart must be in [0, 1]",
        "it is the map-completion fraction that releases reducers");
  }
  if (checked_number(c, "cluster", "locality_delay_s", 2.0, file, out) < 0.0) {
    add(out, file, "cluster.locality_delay_s", "must be >= 0");
  }
  if (checked_number(c, "cluster", "compress_ratio", 1.0, file, out) <= 0.0) {
    add(out, file, "cluster.compress_ratio", "map-output compression ratio must be > 0");
  }
  const double straggler = checked_number(c, "cluster", "straggler_fraction", 0.0, file, out);
  if (straggler < 0.0 || straggler > 1.0) {
    add(out, file, "cluster.straggler_fraction", "must be in [0, 1]");
  }
  if (c.contains("speculative") && !c.at("speculative").is_bool()) {
    add(out, file, "cluster.speculative", "must be a boolean");
  }
}

void lint_jobs(const util::Json& doc, double horizon, const std::string& file,
               std::vector<Diagnostic>& out) {
  if (!doc.contains("jobs") || !doc.at("jobs").is_array() || doc.at("jobs").size() == 0) {
    add(out, file, "jobs", "a scenario needs a non-empty 'jobs' array",
        "add at least one {\"workload\": ..., \"input\": ...} entry");
    return;
  }
  const auto& jobs = doc.at("jobs").as_array();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::string prefix = util::format("jobs[%zu]", i);
    const auto& job = jobs[i];
    if (!job.is_object()) {
      add(out, file, prefix, "must be an object");
      continue;
    }
    warn_unknown_keys(job, prefix, {"workload", "input", "reducers", "submit_at", "iterations"},
                      file, out);
    if (!job.contains("workload") || !job.at("workload").is_string()) {
      add(out, file, prefix + ".workload", "missing workload name",
          "one of the names in workloads::all_workloads()");
    } else {
      const std::string name = job.at("workload").as_string();
      try {
        (void)workloads::workload_from_name(name);
      } catch (const std::invalid_argument&) {
        std::vector<std::string> names;
        for (const auto w : workloads::all_workloads()) {
          names.emplace_back(workloads::workload_name(w));
        }
        add(out, file, prefix + ".workload", "unknown workload '" + name + "'",
            "one of: " + util::join(names, ", "));
      }
    }
    check_size_field(job, prefix, "input", file, out, /*required=*/true);
    if (checked_number(job, prefix, "reducers", 0.0, file, out) < 0.0) {
      add(out, file, prefix + ".reducers", "must be >= 0 (0 = auto)");
    }
    const double submit_at = checked_number(job, prefix, "submit_at", 0.0, file, out);
    if (submit_at < 0.0) {
      add(out, file, prefix + ".submit_at", "must be >= 0");
    } else if (horizon > 0.0 && submit_at >= horizon) {
      add(out, file, prefix + ".submit_at",
          util::format("submits at %g s, outside the scenario horizon of %g s", submit_at,
                       horizon),
          "move the submission before the horizon or raise it");
    }
    if (checked_number(job, prefix, "iterations", 1.0, file, out) < 1.0) {
      add(out, file, prefix + ".iterations", "must be >= 1");
    }
  }
}

/// Per-event and cross-event fault checks shared by embedded fault arrays
/// and standalone fault-plan files. `num_workers` == 0 skips range checks;
/// `horizon` <= 0 skips window checks.
void lint_fault_array(const util::Json& array, const std::string& prefix,
                      std::size_t num_workers, double horizon, const std::string& file,
                      std::vector<Diagnostic>& out) {
  struct Crash {
    std::size_t worker;
    double at;
    std::size_t index;
  };
  std::vector<Crash> crashes;
  std::set<std::string> seen;
  const auto& events = array.as_array();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::string p = util::format("%s[%zu]", prefix.c_str(), i);
    const auto& e = events[i];
    if (!e.is_object()) {
      add(out, file, p, "must be an object");
      continue;
    }
    warn_unknown_keys(e, p, {"kind", "worker", "at", "duration", "factor"}, file, out);
    std::string kind = e.get_string("kind", "crash");
    try {
      (void)hadoop::fault_kind_from_name(kind);
    } catch (const std::invalid_argument&) {
      add(out, file, p + ".kind", "unknown fault kind '" + kind + "'",
          "one of: crash, outage, degrade_link, slow_node");
      continue;
    }
    if (!e.contains("worker")) {
      add(out, file, p + ".worker", "missing required key",
          "index into the cluster's worker list");
      continue;
    }
    const double worker_raw = checked_number(e, p, "worker", -1.0, file, out);
    if (worker_raw < 0.0 || std::fmod(worker_raw, 1.0) != 0.0) {
      add(out, file, p + ".worker", "must be a non-negative integer");
      continue;
    }
    const std::size_t worker = static_cast<std::size_t>(worker_raw);
    if (worker == 0) {
      add(out, file, p + ".worker", "worker 0 co-hosts the master and cannot be faulted",
          "fault a worker index >= 1");
    } else if (num_workers != 0 && worker >= num_workers) {
      add(out, file, p + ".worker",
          util::format("worker %zu does not exist (cluster has workers 0..%zu)", worker,
                       num_workers - 1),
          "use an index below the cluster size or grow the cluster");
    }
    const double at = checked_number(e, p, "at", 0.0, file, out);
    const double duration = checked_number(e, p, "duration", 0.0, file, out);
    const double factor = checked_number(e, p, "factor", 0.0, file, out);
    if (at < 0.0) add(out, file, p + ".at", "injection time must be >= 0");
    if (kind == "crash") {
      if (duration != 0.0) {
        add(out, file, p + ".duration", "crashes are permanent; 'duration' is ignored",
            "use kind \"outage\" for a transient failure", Severity::kWarning);
      }
      crashes.push_back({worker, at, i});
    } else {
      if (duration <= 0.0) {
        add(out, file, p + ".duration", "transient faults need a window length > 0");
      }
      if (kind == "degrade_link" && (factor <= 0.0 || factor >= 1.0)) {
        add(out, file, p + ".factor", "degrade_link factor must be in (0, 1)",
            "it multiplies the access-link capacity");
      }
      if (kind == "slow_node" && factor <= 1.0) {
        add(out, file, p + ".factor", "slow_node factor must be > 1",
            "it multiplies compute time");
      }
    }
    if (horizon > 0.0 && at + duration > horizon) {
      add(out, file, p,
          util::format("fault window [%g, %g] extends past the scenario horizon of %g s", at,
                       at + duration, horizon),
          "shorten the window or raise the horizon");
    }
    const std::string signature = util::format("%s w%zu at%g", kind.c_str(), worker, at);
    if (!seen.insert(signature).second) {
      add(out, file, p,
          util::format("duplicate fault: %s on worker %zu at %g s already scheduled",
                       kind.c_str(), worker, at),
          "remove the repeated entry");
    }
  }
  // Nothing can be injected into a permanently crashed node: a crash at t
  // followed by any event on the same worker at a later time never fires
  // (and a "recovery" the author expected silently does not happen).
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    if (!e.is_object() || !e.contains("worker") || !finite_number(e.at("worker"))) continue;
    const auto worker = static_cast<std::size_t>(e.at("worker").as_number());
    const double at = e.get_number("at", 0.0);
    for (const auto& crash : crashes) {
      if (crash.index != i && crash.worker == worker && crash.at <= at) {
        add(out, file, util::format("%s[%zu]", prefix.c_str(), i),
            util::format("worker %zu is permanently crashed by %s[%zu] at %g s; this event "
                         "never takes effect",
                         worker, prefix.c_str(), crash.index, crash.at),
            "use kind \"outage\" for a recoverable failure, or retarget the event");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Model linting.

/// Family-specific parameter domains, from stats::Distribution's factories.
void lint_distribution(const util::Json& d, const std::string& prefix, const std::string& file,
                       std::vector<Diagnostic>& out) {
  if (!d.is_object()) {
    add(out, file, prefix, "must be an object {family, p1, p2}");
    return;
  }
  warn_unknown_keys(d, prefix, {"family", "p1", "p2"}, file, out);
  const std::string family = d.get_string("family", "");
  static const std::set<std::string> kFamilies = {"exponential", "normal", "lognormal",
                                                  "weibull",     "gamma",  "pareto",
                                                  "uniform",     "constant"};
  if (kFamilies.count(family) == 0) {
    add(out, file, prefix + ".family", "unknown distribution family '" + family + "'",
        "one of: " + util::join({kFamilies.begin(), kFamilies.end()}, ", "));
    return;
  }
  if (!d.contains("p1") || !finite_number(d.at("p1"))) {
    add(out, file, prefix + ".p1",
        "parameter must be a finite number (NaN/inf serializes as null)",
        "refit the distribution or drop the parametric block");
    return;
  }
  const double p1 = d.at("p1").as_number();
  const double p2 =
      d.contains("p2") && finite_number(d.at("p2")) ? d.at("p2").as_number() : 0.0;
  if (d.contains("p2") && !finite_number(d.at("p2"))) {
    add(out, file, prefix + ".p2",
        "parameter must be a finite number (NaN/inf serializes as null)");
    return;
  }
  if (family == "exponential" && p1 <= 0.0) {
    add(out, file, prefix + ".p1", "exponential rate must be > 0");
  } else if ((family == "normal" || family == "lognormal") && p2 < 0.0) {
    add(out, file, prefix + ".p2", family + " spread must be >= 0");
  } else if ((family == "weibull" || family == "gamma" || family == "pareto") &&
             (p1 <= 0.0 || p2 <= 0.0)) {
    add(out, file, prefix + (p1 <= 0.0 ? ".p1" : ".p2"),
        family + " parameters must both be > 0");
  } else if (family == "uniform" && p2 < p1) {
    add(out, file, prefix + ".p2", "uniform upper bound is below the lower bound",
        "swap p1 and p2");
  }
}

void lint_linear_fit(const util::Json& f, const std::string& prefix, const std::string& file,
                     std::vector<Diagnostic>& out) {
  if (!f.is_object()) {
    add(out, file, prefix, "must be an object {slope, intercept, r2, n}");
    return;
  }
  for (const char* key : {"slope", "intercept"}) {
    if (!f.contains(key) || !finite_number(f.at(key))) {
      add(out, file, prefix + "." + key,
          "must be a finite number (NaN/inf serializes as null)", "refit the regression");
    }
  }
  if (f.contains("r2") && finite_number(f.at("r2")) && f.at("r2").as_number() > 1.0 + 1e-9) {
    add(out, file, prefix + ".r2", "coefficient of determination cannot exceed 1");
  }
  if (checked_number(f, prefix, "n", 0.0, file, out) < 0.0) {
    add(out, file, prefix + ".n", "sample count must be >= 0");
  }
}

/// An ECDF serialized as its sorted sample values: every entry finite and
/// the sequence non-decreasing.
void lint_ecdf(const util::Json& arr, const std::string& prefix, const std::string& file,
               std::vector<Diagnostic>& out) {
  if (!arr.is_array()) {
    add(out, file, prefix, "must be an array of sorted sample values");
    return;
  }
  const auto& values = arr.as_array();
  double prev = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!finite_number(values[i])) {
      add(out, file, util::format("%s[%zu]", prefix.c_str(), i),
          "ECDF sample must be a finite number (NaN/inf serializes as null)");
      return;
    }
    const double v = values[i].as_number();
    if (v < prev) {
      add(out, file, util::format("%s[%zu]", prefix.c_str(), i),
          util::format("ECDF is not non-decreasing: %g after %g", v, prev),
          "re-sort the samples; quantile lookups binary-search this array");
      return;
    }
    prev = v;
  }
}

void lint_class_model(const util::Json& cls, const std::string& prefix, const std::string& file,
                      std::vector<Diagnostic>& out) {
  if (!cls.is_object()) {
    add(out, file, prefix, "must be an object {size, count, temporal, ...}");
    return;
  }
  warn_unknown_keys(cls, prefix, {"size", "count", "temporal", "training_flows", "training_bytes"},
                    file, out);
  if (cls.contains("size")) {
    const auto& size = cls.at("size");
    const std::string sp = prefix + ".size";
    if (!size.is_object()) {
      add(out, file, sp, "must be an object");
    } else {
      if (size.contains("parametric")) {
        lint_distribution(size.at("parametric"), sp + ".parametric", file, out);
      }
      const double ks = checked_number(size, sp, "ks", 0.0, file, out);
      if (ks < 0.0 || ks > 1.0) {
        add(out, file, sp + ".ks", "a KS distance lies in [0, 1]");
      }
      const double pvalue = checked_number(size, sp, "ks_pvalue", 0.0, file, out);
      if (pvalue < 0.0 || pvalue > 1.0) {
        add(out, file, sp + ".ks_pvalue", "a p-value lies in [0, 1]");
      }
      const std::string kind = size.get_string("kind", "parametric");
      if (kind != "parametric" && kind != "empirical") {
        add(out, file, sp + ".kind", "unknown size-model kind '" + kind + "'",
            "one of: parametric, empirical");
      }
      if (kind == "parametric" && !size.contains("parametric")) {
        add(out, file, sp + ".parametric", "kind is \"parametric\" but no distribution is given",
            "add a {family, p1, p2} block or switch kind to \"empirical\"");
      }
      if (size.contains("empirical")) lint_ecdf(size.at("empirical"), sp + ".empirical", file, out);
      if (kind == "empirical" &&
          (!size.contains("empirical") || size.at("empirical").size() == 0)) {
        add(out, file, sp + ".empirical", "kind is \"empirical\" but the sample array is empty");
      }
    }
  }
  if (cls.contains("count")) {
    const auto& count = cls.at("count");
    const std::string cp = prefix + ".count";
    if (!count.is_object()) {
      add(out, file, cp, "must be an object");
    } else {
      if (count.contains("fit")) lint_linear_fit(count.at("fit"), cp + ".fit", file, out);
    }
  }
  if (cls.contains("temporal")) {
    const auto& temporal = cls.at("temporal");
    const std::string tp = prefix + ".temporal";
    if (!temporal.is_object()) {
      add(out, file, tp, "must be an object");
    } else {
      if (temporal.contains("offsets")) lint_ecdf(temporal.at("offsets"), tp + ".offsets", file, out);
      const double start = checked_number(temporal, tp, "phase_start_frac", 0.0, file, out);
      const double end = checked_number(temporal, tp, "phase_end_frac", 1.0, file, out);
      if (start < 0.0 || start > 1.0) {
        add(out, file, tp + ".phase_start_frac", "phase fraction must be in [0, 1]");
      }
      if (end < 0.0 || end > 1.0) {
        add(out, file, tp + ".phase_end_frac", "phase fraction must be in [0, 1]");
      }
      if (start > end) {
        add(out, file, tp + ".phase_start_frac", "phase starts after it ends",
            "swap phase_start_frac and phase_end_frac");
      }
    }
  }
  if (checked_number(cls, prefix, "training_bytes", 0.0, file, out) < 0.0) {
    add(out, file, prefix + ".training_bytes", "must be >= 0");
  }
}

std::set<std::string> modelled_class_keys() {
  std::set<std::string> keys;
  for (std::size_t i = 0; i < net::kNumFlowKinds; ++i) {
    keys.insert(net::flow_kind_name(static_cast<net::FlowKind>(i)));
  }
  return keys;
}

}  // namespace

const char* file_kind_name(FileKind kind) {
  switch (kind) {
    case FileKind::kScenario:
      return "scenario";
    case FileKind::kFaultPlan:
      return "fault_plan";
    case FileKind::kModel:
      return "model";
    case FileKind::kModelBank:
      return "model_bank";
    case FileKind::kUnknown:
      return "unknown";
  }
  return "unknown";
}

std::size_t LintReport::num_errors() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) { return d.severity == Severity::kError; }));
}

std::size_t LintReport::num_warnings() const {
  return diagnostics.size() - num_errors();
}

void lint_scenario(const util::Json& doc, const std::string& file,
                   std::vector<Diagnostic>& out) {
  if (!doc.is_object()) {
    add(out, file, "$", "a scenario must be a JSON object");
    return;
  }
  // "api" admits Spec-API request envelopes (api/specs.h): a /v1/whatif
  // request body is a scenario document optionally tagged with its wire
  // version.
  warn_unknown_keys(doc, "",
                    {"api", "seed", "threads", "cluster", "jobs", "faults", "failures", "horizon"},
                    file, out);
  if (checked_number(doc, "", "seed", 1.0, file, out) < 0.0) {
    add(out, file, "seed", "must be >= 0");
  }
  if (checked_number(doc, "", "threads", 0.0, file, out) < 0.0) {
    add(out, file, "threads", "must be >= 0 (0 = serial)");
  }
  const double horizon = checked_number(doc, "", "horizon", 0.0, file, out);
  if (doc.contains("horizon") && horizon <= 0.0) {
    add(out, file, "horizon", "the scenario horizon must be > 0 seconds");
  }
  if (doc.contains("cluster")) lint_cluster(doc.at("cluster"), file, out);
  lint_jobs(doc, horizon, file, out);
  const std::size_t num_workers =
      sniff_cluster_size(doc.contains("cluster") ? &doc.at("cluster") : nullptr);
  for (const char* key : {"faults", "failures"}) {
    if (!doc.contains(key)) continue;
    if (!doc.at(key).is_array()) {
      add(out, file, key, "must be an array of fault events");
      continue;
    }
    lint_fault_array(doc.at(key), key, num_workers, horizon, file, out);
  }
}

void lint_fault_plan(const util::Json& array, const std::string& file,
                     std::vector<Diagnostic>& out) {
  if (!array.is_array()) {
    add(out, file, "$", "a fault plan must be a JSON array of events");
    return;
  }
  // Standalone plans carry no cluster, so worker range and horizon checks
  // wait until the plan is paired with a scenario.
  lint_fault_array(array, "$", /*num_workers=*/0, /*horizon=*/0.0, file, out);
}

void lint_model(const util::Json& doc, const std::string& file, std::vector<Diagnostic>& out) {
  if (!doc.is_object()) {
    add(out, file, "$", "a model must be a JSON object");
    return;
  }
  warn_unknown_keys(doc, "",
                    {"job_name", "context", "duration_vs_input", "classes", "volume_vs_input"},
                    file, out);
  if (!doc.contains("job_name") || !doc.at("job_name").is_string() ||
      doc.at("job_name").as_string().empty()) {
    add(out, file, "job_name", "missing or empty job name",
        "name the workload the model was trained on");
  }
  if (doc.contains("context")) {
    const auto& ctx = doc.at("context");
    if (!ctx.is_object()) {
      add(out, file, "context", "must be an object");
    } else {
      warn_unknown_keys(ctx, "context",
                        {"block_size", "replication", "cluster_nodes", "num_runs",
                         "min_input_bytes", "max_input_bytes"},
                        file, out);
      if (checked_number(ctx, "context", "block_size", 1.0, file, out) <= 0.0) {
        add(out, file, "context.block_size", "must be > 0");
      }
      const double replication = checked_number(ctx, "context", "replication", 1.0, file, out);
      const double nodes = checked_number(ctx, "context", "cluster_nodes", 1.0, file, out);
      if (replication < 1.0) add(out, file, "context.replication", "must be >= 1");
      if (nodes < 1.0) add(out, file, "context.cluster_nodes", "must be >= 1");
      if (nodes >= 1.0 && replication > nodes) {
        add(out, file, "context.replication",
            util::format("replication %g exceeds the training cluster size (%g nodes)",
                         replication, nodes),
            "the model was trained under an impossible configuration; retrain");
      }
      const double lo = checked_number(ctx, "context", "min_input_bytes", 0.0, file, out);
      const double hi = checked_number(ctx, "context", "max_input_bytes", 0.0, file, out);
      if (lo > hi) {
        add(out, file, "context.min_input_bytes", "training input range is inverted");
      }
    }
  }
  if (doc.contains("duration_vs_input")) {
    lint_linear_fit(doc.at("duration_vs_input"), "duration_vs_input", file, out);
  }
  const std::set<std::string> class_keys = modelled_class_keys();
  if (doc.contains("classes")) {
    const auto& classes = doc.at("classes");
    if (!classes.is_object()) {
      add(out, file, "classes", "must map class names to class models");
    } else {
      for (const auto& [key, cls] : classes.as_object()) {
        if (class_keys.count(key) == 0) {
          add(out, file, "classes." + key,
              "unknown traffic class (the loader ignores it)",
              "one of: " + util::join({class_keys.begin(), class_keys.end()}, ", "),
              Severity::kWarning);
          continue;
        }
        lint_class_model(cls, "classes." + key, file, out);
      }
    }
  }
  if (doc.contains("volume_vs_input")) {
    const auto& volumes = doc.at("volume_vs_input");
    if (!volumes.is_object()) {
      add(out, file, "volume_vs_input", "must map class names to linear fits");
    } else {
      for (const auto& [key, fit] : volumes.as_object()) {
        if (class_keys.count(key) == 0) {
          add(out, file, "volume_vs_input." + key, "unknown traffic class (the loader ignores it)",
              "", Severity::kWarning);
          continue;
        }
        lint_linear_fit(fit, "volume_vs_input." + key, file, out);
      }
    }
  }
}

void lint_model_bank(const util::Json& doc, const std::string& file,
                     std::vector<Diagnostic>& out) {
  if (!doc.is_object() || !doc.contains("models") || !doc.at("models").is_array()) {
    add(out, file, "models", "a model bank is an object with a 'models' array");
    return;
  }
  const auto& models = doc.at("models").as_array();
  for (std::size_t i = 0; i < models.size(); ++i) {
    std::vector<Diagnostic> entry;
    lint_model(models[i], file, entry);
    for (auto& d : entry) {
      d.key = util::format("models[%zu].%s", i, d.key.c_str());
      out.push_back(std::move(d));
    }
  }
}

LintReport lint_document(const util::Json& doc, const std::string& file) {
  LintReport report;
  if (doc.is_array()) {
    report.kind = FileKind::kFaultPlan;
    lint_fault_plan(doc, file, report.diagnostics);
  } else if (doc.is_object() && doc.contains("jobs")) {
    report.kind = FileKind::kScenario;
    lint_scenario(doc, file, report.diagnostics);
  } else if (doc.is_object() && doc.contains("models")) {
    report.kind = FileKind::kModelBank;
    lint_model_bank(doc, file, report.diagnostics);
  } else if (doc.is_object() && (doc.contains("classes") || doc.contains("job_name"))) {
    report.kind = FileKind::kModel;
    lint_model(doc, file, report.diagnostics);
  } else {
    report.kind = FileKind::kUnknown;
    add(report.diagnostics, file, "$",
        "unrecognized document: not a scenario, fault plan, model, or model bank",
        "scenarios have \"jobs\", models \"classes\", banks \"models\"; fault plans are arrays");
  }
  return report;
}

LintReport lint_file(const std::string& path) {
  util::Json doc;
  try {
    doc = util::Json::load_file(path);
  } catch (const std::exception& e) {
    // I/O and syntax failures (including duplicate object keys) are lint
    // findings like any other, so a broken file still produces a located,
    // actionable report instead of an exception.
    LintReport report;
    add(report.diagnostics, path, "$", e.what(),
        "fix the JSON syntax before semantic checks can run");
    return report;
  }
  return lint_document(doc, path);
}

void print_report(const LintReport& report, std::ostream& os) {
  for (const auto severity : {Severity::kError, Severity::kWarning}) {
    for (const auto& d : report.diagnostics) {
      if (d.severity != severity) continue;
      print_diagnostic_line(os, d.severity == Severity::kError, d.to_string());
    }
  }
}

}  // namespace keddah::lint
