// keddah-detlint: a determinism-hazard checker for the C++ sources.
//
// Keddah's reproducibility story (golden traces, differential suites, the
// serve bit-identity pin) rests on the engine having no hidden sources of
// nondeterminism. detlint walks the sources and flags the constructs that
// historically smuggle nondeterminism into simulators:
//
//   unordered-iter   iteration over a std::unordered_{map,set} — bucket
//                    order is implementation- and run-dependent, so any
//                    iteration that feeds output, scheduling, or
//                    serialization order is a portability hazard
//   pointer-key      std::map/std::set keyed by a pointer type — ordered
//                    by address, which ASLR changes every run
//   random-device    std::random_device — nondeterministic seeding; all
//                    randomness must derive from util::derive_seed
//   wall-clock       std::chrono::{system,steady,high_resolution}_clock,
//                    time(nullptr), gettimeofday, clock_gettime — wall
//                    time inside simulation code breaks replay
//   bare-mutex       std::mutex / std::condition_variable / std::lock_guard
//                    and friends outside the annotated util/mutex.h
//                    wrappers — bypasses the Clang thread-safety analysis
//
// The scan is a two-phase lexical analysis, not a full parser: phase one
// collects every unordered-container variable declaration and every
// function whose declared return type is an unordered container (so a
// member declared in foo.h is recognized when foo.cpp iterates it); phase
// two re-walks the sources and reports hazards. Comments and string
// literals are stripped before matching, so naming a pattern in a comment
// or diagnostic string is not a finding.
//
// Escape hatch: `// detlint:allow(<rule>)` suppresses that rule on its own
// line — or, when the comment stands alone on a line, on the line below.
// Intentionally-unordered iteration (e.g. an order-insensitive sum) should
// carry an allow comment with a justification; tools/check_static.sh fails
// the build on any unsuppressed finding.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/diagnostic.h"

namespace keddah::lint {

/// One determinism finding: the shared lint::Diagnostic with `line` + `rule`
/// set ("file: line N: [rule] message (hint)" via the one formatter).
using DetDiagnostic = Diagnostic;

/// Result of one scan.
struct DetlintReport {
  std::vector<DetDiagnostic> diagnostics;  // sorted by (file, line, rule)
  std::size_t files_scanned = 0;
  /// Findings silenced by detlint:allow comments.
  std::size_t suppressions_used = 0;

  bool ok() const { return diagnostics.empty(); }
};

/// The stable rule ids, sorted ("bare-mutex", "pointer-key", ...).
const std::vector<std::string>& detlint_rule_ids();

/// An in-memory source file. `path` scopes member lookups (foo.h pairs
/// with foo.cpp by stem) and names diagnostics.
struct SourceFile {
  std::string path;
  std::string text;
};

/// Scans the given sources as one program (two-phase; see file comment).
DetlintReport detlint_sources(const std::vector<SourceFile>& sources);

/// Loads files and directories (directories recurse into *.h, *.hpp, *.cc,
/// *.cpp, visited in sorted order so output is deterministic) and scans
/// them together. Unreadable paths throw std::runtime_error.
DetlintReport detlint_paths(const std::vector<std::string>& paths);

}  // namespace keddah::lint
