#include "lint/archlint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "util/strings.h"

namespace keddah::lint {

namespace {

// ---------------------------------------------------------------------------
// Source preparation. Like detlint's cleaner, with two differences: string
// literals keep their quote characters (only the contents are blanked) so
// the hot-string-concat rule can see `"..." + x`, and comments are harvested
// for archlint:allow(<rule>): <justification> and keddah:hot markers.
// ---------------------------------------------------------------------------

struct HotMarker {
  std::size_t line = 0;
  std::string label;
};

struct ASource {
  std::string path;
  std::string stem;
  std::string clean;
  std::vector<std::size_t> line_starts;
  /// line -> rule -> justification (empty when none was written).
  std::map<std::size_t, std::map<std::string, std::string>> allows;
  std::set<std::size_t> comment_only_lines;
  std::vector<HotMarker> hot_markers;
  /// (1-based line, include path) for every quoted #include.
  std::vector<std::pair<std::size_t, std::string>> includes;
};

std::string path_stem(const std::string& path) {
  return std::filesystem::path(path).stem().string();
}

std::size_t line_of(const ASource& src, std::size_t offset) {
  const auto it = std::upper_bound(src.line_starts.begin(), src.line_starts.end(), offset);
  return static_cast<std::size_t>(it - src.line_starts.begin());
}

void harvest_markers(const std::string& comment, std::size_t line, ASource& out) {
  static const std::regex allow_re(R"(archlint:allow\(([a-z][a-z-]*)\)(?::[ \t]*(.*))?)");
  for (auto it = std::sregex_iterator(comment.begin(), comment.end(), allow_re);
       it != std::sregex_iterator(); ++it) {
    out.allows[line][(*it)[1].str()] = std::string(util::trim((*it)[2].str()));
  }
  // Anchored to the start of the comment so prose *mentioning* the marker
  // (this checker's own docs, DESIGN.md excerpts) doesn't create a region.
  static const std::regex hot_re(R"((?:^|\n)[ \t]*keddah:hot(?:\(([A-Za-z0-9_.-]+)\))?)");
  for (auto it = std::sregex_iterator(comment.begin(), comment.end(), hot_re);
       it != std::sregex_iterator(); ++it) {
    out.hot_markers.push_back(HotMarker{line, (*it)[1].str()});
  }
}

void harvest_includes(const std::string& text, ASource& out) {
  static const std::regex inc_re(R"re(^[ \t]*#[ \t]*include[ \t]*"([^"]+)")re");
  std::size_t pos = 0;
  std::size_t line = 1;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string ln = text.substr(pos, eol == std::string::npos ? eol : eol - pos);
    std::smatch m;
    if (std::regex_search(ln, m, inc_re)) out.includes.emplace_back(line, m[1].str());
    if (eol == std::string::npos) break;
    pos = eol + 1;
    ++line;
  }
}

ASource clean_source(const std::string& path, const std::string& text) {
  ASource out;
  out.path = path;
  out.stem = path_stem(path);
  out.clean = text;
  out.line_starts.push_back(0);
  harvest_includes(text, out);

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;
  std::string comment_buffer;
  std::size_t comment_line = 1;
  std::size_t line = 1;
  std::map<std::size_t, bool> line_has_comment;
  std::map<std::size_t, bool> line_has_code;

  const auto flush_comment = [&] {
    harvest_markers(comment_buffer, comment_line, out);
    comment_buffer.clear();
  };

  std::string& s = out.clean;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) {
        flush_comment();
        state = State::kCode;
      }
      out.line_starts.push_back(i + 1);
      ++line;
      continue;
    }
    switch (state) {
      case State::kCode: {
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_line = line;
          line_has_comment[line] = true;
          s[i] = s[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_line = line;
          line_has_comment[line] = true;
          s[i] = s[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(s[i - 1])) &&
                               s[i - 1] != '_'))) {
          // Raw string literal: blank it entirely but keep the quotes.
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < s.size() && s[j] != '(') raw_delim += s[j++];
          state = State::kRawString;
          line_has_code[line] = true;
          s[i] = ' ';  // the 'R'
          if (i + 1 < s.size()) s[i + 1] = '"';
          for (std::size_t k = i + 2; k <= j && k < s.size(); ++k) {
            if (s[k] != '\n') s[k] = ' ';
          }
          i = j;
        } else if (c == '"') {
          state = State::kString;
          line_has_code[line] = true;
          // Keep the opening quote so concat patterns stay visible.
        } else if (c == '\'' && i > 0 &&
                   (std::isalnum(static_cast<unsigned char>(s[i - 1])) || s[i - 1] == '_')) {
          line_has_code[line] = true;  // digit separator / suffix, not a char
        } else if (c == '\'') {
          state = State::kChar;
          line_has_code[line] = true;
          s[i] = ' ';
        } else {
          if (!std::isspace(static_cast<unsigned char>(c))) line_has_code[line] = true;
        }
        break;
      }
      case State::kLineComment:
        comment_buffer += c;
        s[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          flush_comment();
          state = State::kCode;
          line_has_comment[line] = true;
          s[i] = s[i + 1] = ' ';
          ++i;
        } else {
          comment_buffer += c;
          line_has_comment[line] = true;
          s[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          s[i] = ' ';
          if (next != '\n' && i + 1 < s.size()) s[++i] = ' ';
        } else if (c == '"') {
          state = State::kCode;  // keep the closing quote
        } else {
          s[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          s[i] = ' ';
          if (next != '\n' && i + 1 < s.size()) s[++i] = ' ';
        } else if (c == '\'') {
          state = State::kCode;
          s[i] = ' ';
        } else {
          s[i] = ' ';
        }
        break;
      case State::kRawString:
        if (c == ')' && s.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < s.size() && s[i + 1 + raw_delim.size()] == '"') {
          const std::size_t end = i + 1 + raw_delim.size();
          for (std::size_t k = i; k < end; ++k) {
            if (s[k] != '\n') s[k] = ' ';
          }
          // s[end] is the closing quote; keep it.
          i = end;
          state = State::kCode;
        } else if (c != '\n') {
          s[i] = ' ';
        }
        break;
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) flush_comment();

  for (const auto& [ln, has_comment] : line_has_comment) {
    if (has_comment && !line_has_code[ln]) out.comment_only_lines.insert(ln);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Small lexical helpers shared by the passes.
// ---------------------------------------------------------------------------

/// Offset just past the `>` matching the `<` at `open`, or npos.
std::size_t match_angle(const std::string& s, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

std::size_t skip_space(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string read_ident(const std::string& s, std::size_t& i) {
  std::string out;
  while (i < s.size() && ident_char(s[i])) out += s[i++];
  return out;
}

/// The declared identifier after a container's closing `>`, when the match
/// is a declaration (`std::map<K,V> name;` / `... name{...}` / `... name =`
/// / `... name(...)`). Empty otherwise (references, parameters past `&`,
/// return types followed by `::`, etc.).
std::string declared_name_after(const std::string& s, std::size_t after_angle) {
  std::size_t i = skip_space(s, after_angle);
  if (i < s.size() && (s[i] == '&' || s[i] == '*')) return "";  // ref/ptr binding
  std::string name = read_ident(s, i);
  if (name.empty()) return "";
  i = skip_space(s, i);
  if (i >= s.size()) return "";
  const char c = s[i];
  if (c == ';' || c == '=' || c == '{' || c == '(' || c == ',') return name;
  return "";
}

// ---------------------------------------------------------------------------
// Phase 1 registry: node-container variables and visible reserve() calls,
// scoped by file stem (network.h pairs with network.cpp).
// ---------------------------------------------------------------------------

struct Registry {
  /// variable name -> stems that declare it as a node-based container.
  std::map<std::string, std::set<std::string>> node_vars;
  /// stem -> variable names with a visible `.reserve(` in the stem group.
  std::map<std::string, std::set<std::string>> reserved;
};

void collect_symbols(const ASource& src, Registry& registry) {
  static const std::regex decl_re(
      R"(\bstd::(unordered_map|unordered_set|unordered_multimap|unordered_multiset|multimap|multiset|map|set|list)\s*<)");
  const std::string& s = src.clean;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), decl_re); it != std::sregex_iterator();
       ++it) {
    const std::size_t open = static_cast<std::size_t>(it->position()) + it->length() - 1;
    const std::size_t after = match_angle(s, open);
    if (after == std::string::npos) continue;
    const std::string name = declared_name_after(s, after);
    if (!name.empty()) registry.node_vars[name].insert(src.stem);
  }
  static const std::regex reserve_re(R"((\w+)\s*\.\s*reserve\s*\()");
  for (auto it = std::sregex_iterator(s.begin(), s.end(), reserve_re);
       it != std::sregex_iterator(); ++it) {
    registry.reserved[src.stem].insert((*it)[1].str());
  }
}

bool is_node_var(const Registry& registry, const ASource& src, const std::string& name) {
  const auto it = registry.node_vars.find(name);
  return it != registry.node_vars.end() && it->second.count(src.stem) != 0;
}

bool has_reserve(const Registry& registry, const ASource& src, const std::string& name) {
  const auto it = registry.reserved.find(src.stem);
  return it != registry.reserved.end() && it->second.count(name) != 0;
}

// ---------------------------------------------------------------------------
// Modules and the layer pass.
// ---------------------------------------------------------------------------

std::vector<std::string> path_parts(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

/// A file's module: the directory component after the last `src/`, else the
/// parent directory's name, else "".
std::string module_of(const std::string& path) {
  const std::vector<std::string> parts = path_parts(path);
  if (parts.size() < 2) return "";
  for (std::size_t i = parts.size() - 1; i-- > 0;) {
    if (parts[i] == "src" && i + 2 < parts.size()) return parts[i + 1];
  }
  return parts[parts.size() - 2];
}

/// An include path's module: its first directory component, if any.
std::string include_module(const std::string& inc) {
  const auto slash = inc.find('/');
  return slash == std::string::npos ? std::string() : inc.substr(0, slash);
}

struct RawFinding {
  std::size_t line = 0;
  std::string rule;
  std::string message;
  std::string hint;
};

/// Iterative Tarjan SCC over the module graph; returns components with
/// more than one member (sorted for determinism).
std::vector<std::vector<std::string>> module_cycles(
    const std::map<std::string, std::set<std::string>>& adj) {
  std::vector<std::string> names;
  names.reserve(adj.size());
  for (const auto& [m, _] : adj) names.push_back(m);
  std::map<std::string, int> id;
  for (std::size_t i = 0; i < names.size(); ++i) id[names[i]] = static_cast<int>(i);

  const int n = static_cast<int>(names.size());
  std::vector<int> index(n, -1), low(n, 0), on_stack(n, 0);
  std::vector<int> stack;
  int next_index = 0;
  std::vector<std::vector<std::string>> cycles;

  struct Frame {
    int v;
    std::vector<int> succ;
    std::size_t next = 0;
  };
  for (int root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames;
    const auto push_vertex = [&](int v) {
      index[v] = low[v] = next_index++;
      stack.push_back(v);
      on_stack[v] = 1;
      Frame f;
      f.v = v;
      for (const auto& t : adj.at(names[static_cast<std::size_t>(v)])) {
        const auto it = id.find(t);
        if (it != id.end()) f.succ.push_back(it->second);
      }
      frames.push_back(std::move(f));
    };
    push_vertex(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next < f.succ.size()) {
        const int w = f.succ[f.next++];
        if (index[w] == -1) {
          push_vertex(w);
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          std::vector<std::string> comp;
          int w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            comp.push_back(names[static_cast<std::size_t>(w)]);
          } while (w != f.v);
          if (comp.size() > 1) {
            std::sort(comp.begin(), comp.end());
            cycles.push_back(std::move(comp));
          }
        }
        const int v = f.v;
        frames.pop_back();
        if (!frames.empty()) low[frames.back().v] = std::min(low[frames.back().v], low[v]);
      }
    }
  }
  std::sort(cycles.begin(), cycles.end());
  return cycles;
}

// ---------------------------------------------------------------------------
// Hot-region pass.
// ---------------------------------------------------------------------------

struct Region {
  std::size_t open = 0;   ///< offset of the opening '{'
  std::size_t close = 0;  ///< offset just past the matching '}'
  std::size_t begin_line = 0;
  std::size_t end_line = 0;
  std::string label;
};

/// Finds the braced region a keddah:hot marker covers: the first '{' at or
/// after the marker line, brace-matched (to EOF when unbalanced). Returns
/// false when no '{' follows the marker.
bool find_region(const ASource& src, const HotMarker& marker, Region& out) {
  const std::string& s = src.clean;
  const std::size_t from =
      marker.line - 1 < src.line_starts.size() ? src.line_starts[marker.line - 1] : s.size();
  const std::size_t open = s.find('{', from);
  if (open == std::string::npos) return false;
  int depth = 0;
  std::size_t close = s.size();
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '{') ++depth;
    if (s[i] == '}' && --depth == 0) {
      close = i + 1;
      break;
    }
  }
  out.open = open;
  out.close = close;
  out.begin_line = line_of(src, open);
  out.end_line = line_of(src, close == 0 ? 0 : close - 1);
  out.label = marker.label;
  return true;
}

void scan_region_hazards(const ASource& src, const Registry& registry, const Region& region,
                         std::vector<RawFinding>& out) {
  const std::string body = src.clean.substr(region.open, region.close - region.open);
  const auto emit = [&](std::size_t body_off, const std::string& rule, std::string message,
                        std::string hint) {
    out.push_back(RawFinding{line_of(src, region.open + body_off), rule, std::move(message),
                             std::move(hint)});
  };

  static const std::regex member_op_re(
      R"((\w+)\s*\.\s*(insert|emplace|try_emplace|emplace_hint|erase|push_back|emplace_back)\s*\()");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), member_op_re);
       it != std::sregex_iterator(); ++it) {
    const std::string var = (*it)[1].str();
    const std::string op = (*it)[2].str();
    const std::size_t off = static_cast<std::size_t>(it->position());
    if (op == "push_back" || op == "emplace_back") {
      if (is_node_var(registry, src, var)) {
        emit(off, "hot-node-container",
             util::format("'%s.%s' on a node-based container allocates a node per call",
                          var.c_str(), op.c_str()),
             "prefer flat/indexed storage (slot map, sorted vector) on hot paths");
      } else if (!has_reserve(registry, src, var)) {
        emit(off, "hot-push-back",
             util::format("'%s.%s' with no visible '%s.reserve(' in this file or its stem pair",
                          var.c_str(), op.c_str(), var.c_str()),
             "reserve capacity up front or reuse a member scratch buffer");
      }
    } else if (is_node_var(registry, src, var)) {
      emit(off, "hot-node-container",
           util::format("'%s.%s' on a node-based container allocates/frees a node per call",
                        var.c_str(), op.c_str()),
           "prefer flat/indexed storage (slot map, sorted vector) on hot paths");
    }
  }

  static const std::regex local_re(
      R"(\bstd::(vector|deque|map|set|multimap|multiset|list|unordered_map|unordered_set|unordered_multimap|unordered_multiset)\s*<)");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), local_re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t pos = static_cast<std::size_t>(it->position());
    // `static` locals allocate once, not per invocation.
    const std::size_t line_start = body.rfind('\n', pos);
    const std::string prefix =
        body.substr(line_start == std::string::npos ? 0 : line_start + 1,
                    pos - (line_start == std::string::npos ? 0 : line_start + 1));
    if (prefix.find("static") != std::string::npos) continue;
    const std::size_t open = pos + static_cast<std::size_t>(it->length()) - 1;
    const std::size_t after = match_angle(body, open);
    if (after == std::string::npos) continue;
    const std::string name = declared_name_after(body, after);
    if (name.empty()) continue;
    emit(pos, "hot-local-container",
         util::format("'std::%s %s' constructs a fresh container per invocation",
                      (*it)[1].str().c_str(), name.c_str()),
         "hoist to a reused member scratch buffer");
  }

  static const std::regex fn_re(R"(\bstd::function\s*<)");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), fn_re);
       it != std::sregex_iterator(); ++it) {
    emit(static_cast<std::size_t>(it->position()), "hot-std-function",
         "std::function construction (type-erased callable; heap allocation beyond SBO)",
         "use a concrete callable or an index into a handler table");
  }

  static const std::regex concat_re(R"(("\s*\+)|(\+=?\s*"))");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), concat_re);
       it != std::sregex_iterator(); ++it) {
    emit(static_cast<std::size_t>(it->position()), "hot-string-concat",
         "string concatenation with a literal allocates per call",
         "build into a reused buffer or defer formatting off the hot path");
  }

  static const std::regex sp_re(R"(\bstd::(make_shared|shared_ptr)\s*<)");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), sp_re);
       it != std::sregex_iterator(); ++it) {
    emit(static_cast<std::size_t>(it->position()), "hot-shared-ptr",
         (*it)[1].str() == "make_shared"
             ? std::string("make_shared allocates a control block and bumps atomic refcounts")
             : std::string("shared_ptr construction/copy (atomic refcount traffic)"),
         "pass by reference/raw pointer, or keep ownership outside the hot loop");
  }
}

// ---------------------------------------------------------------------------
// Allow lookup.
// ---------------------------------------------------------------------------

/// Returns true when `rule` is allowed at `line`: an allow on the same
/// line, or anywhere in the contiguous block of comment-only lines directly
/// above it (justifications routinely wrap). `justification` is filled
/// from the allow comment.
bool find_allow(const ASource& src, std::size_t line, const std::string& rule,
                std::size_t* allow_line, std::string* justification) {
  const auto check = [&](std::size_t ln) {
    const auto it = src.allows.find(ln);
    if (it == src.allows.end()) return false;
    const auto rit = it->second.find(rule);
    if (rit == it->second.end()) return false;
    *allow_line = ln;
    *justification = rit->second;
    return true;
  };
  if (check(line)) return true;
  std::size_t ln = line;
  while (ln > 1 && src.comment_only_lines.count(ln - 1) != 0) {
    --ln;
    if (check(ln)) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

int LayerSpec::layer_of(const std::string& module) const {
  for (std::size_t i = 0; i < layers.size(); ++i) {
    for (const auto& m : layers[i]) {
      if (m == module) return static_cast<int>(i);
    }
  }
  return -1;
}

LayerSpec default_layer_spec() {
  LayerSpec spec;
  // The repo's layer DAG, low to high (DESIGN.md "Layer DAG"). Modules
  // sharing a rank are independent siblings and must not include each other.
  spec.layers = {
      {"util"},
      {"core", "sim", "stats"},
      {"net"},
      {"capture"},
      {"hadoop"},
      {"model"},
      {"gen", "workloads"},
      {"keddah"},
      {"api"},
      {"lint"},
      {"serve"},
      {"cli"},
  };
  // Highest measured transitive fan-in is util/check.h at 63 of 122 files;
  // 80 leaves headroom for organic growth while catching a new "everything
  // includes it" hub before it congeals.
  spec.max_fanin = 80;
  return spec;
}

LayerSpec layer_spec_from_json(const util::Json& doc) {
  LayerSpec spec;
  if (!doc.is_object() || !doc.contains("layers")) {
    throw std::runtime_error("layer spec: expected an object with a \"layers\" array");
  }
  for (const auto& rank : doc.at("layers").as_array()) {
    std::vector<std::string> names;
    for (const auto& name : rank.as_array()) names.push_back(name.as_string());
    spec.layers.push_back(std::move(names));
  }
  spec.max_fanin = static_cast<std::size_t>(doc.get_number("max_fanin", 0));
  if (doc.contains("strict_modules")) spec.strict_modules = doc.at("strict_modules").as_bool();
  return spec;
}

const std::vector<std::string>& archlint_rule_ids() {
  static const std::vector<std::string> kRules = {
      "allow-unjustified", "cpp-include",        "fanin-budget",   "hot-local-container",
      "hot-marker",        "hot-node-container", "hot-push-back",  "hot-shared-ptr",
      "hot-std-function",  "hot-string-concat",  "layer-cycle",    "layer-unknown",
      "layer-upward"};
  return kRules;
}

ArchlintReport archlint_sources(const std::vector<SourceFile>& sources, const LayerSpec& spec) {
  std::vector<ASource> cleaned;
  cleaned.reserve(sources.size());
  for (const auto& file : sources) cleaned.push_back(clean_source(file.path, file.text));

  Registry registry;
  for (const auto& src : cleaned) collect_symbols(src, registry);

  ArchlintReport report;
  report.files_scanned = cleaned.size();

  // Findings are gathered raw per file, then filtered through allows once.
  std::map<std::string, std::vector<RawFinding>> raw;  // path -> findings
  const auto is_header = [](const std::string& path) {
    return path.size() >= 2 &&
           (path.rfind(".h") == path.size() - 2 ||
            (path.size() >= 4 && path.rfind(".hpp") == path.size() - 4));
  };

  // --- Layer pass -----------------------------------------------------------
  std::map<std::string, std::set<std::string>> module_adj;
  // (from-module, to-module) -> representative (file, line), first lexically.
  std::map<std::pair<std::string, std::string>, std::pair<std::string, std::size_t>> edge_rep;
  std::set<std::string> scanned_modules;
  for (const auto& src : cleaned) {
    const std::string mod = module_of(src.path);
    if (mod.empty()) continue;
    scanned_modules.insert(mod);
    module_adj[mod];  // ensure vertex
    report.modules[mod].files++;
    for (const auto& [line, inc] : src.includes) {
      if (inc.size() > 4 && inc.compare(inc.size() - 4, 4, ".cpp") == 0) {
        raw[src.path].push_back(RawFinding{
            line, "cpp-include",
            util::format("#include names a translation unit '%s'", inc.c_str()),
            "include the header instead"});
      } else if (inc.size() > 3 && inc.compare(inc.size() - 3, 3, ".cc") == 0) {
        raw[src.path].push_back(RawFinding{
            line, "cpp-include",
            util::format("#include names a translation unit '%s'", inc.c_str()),
            "include the header instead"});
      }
      const std::string target = include_module(inc);
      if (target.empty() || target == mod) continue;
      module_adj[mod].insert(target);
      const auto key = std::make_pair(mod, target);
      if (edge_rep.find(key) == edge_rep.end()) edge_rep[key] = {src.path, line};
      const int from_rank = spec.layer_of(mod);
      const int to_rank = spec.layer_of(target);
      if (from_rank >= 0 && to_rank >= 0 && to_rank >= from_rank) {
        raw[src.path].push_back(RawFinding{
            line, "layer-upward",
            to_rank == from_rank
                ? util::format("include of '%s' reaches sibling module '%s' (same layer %d as "
                               "'%s')",
                               inc.c_str(), target.c_str(), from_rank, mod.c_str())
                : util::format("include of '%s' reaches module '%s' (layer %d) from '%s' (layer "
                               "%d)",
                               inc.c_str(), target.c_str(), to_rank, mod.c_str(), from_rank),
            "dependencies point down only; move the shared piece to a lower layer or invert "
            "the dependency"});
      }
    }
  }
  for (const auto& mod : scanned_modules) {
    report.modules[mod].layer = spec.layer_of(mod);
    for (const auto& t : module_adj[mod]) {
      if (scanned_modules.count(t) != 0) report.modules[mod].deps.push_back(t);
    }
    if (spec.strict_modules && spec.layer_of(mod) < 0) {
      // Anchor at the lexically-first file of the module.
      std::string rep_file;
      for (const auto& src : cleaned) {
        if (module_of(src.path) == mod && (rep_file.empty() || src.path < rep_file)) {
          rep_file = src.path;
        }
      }
      raw[rep_file].push_back(RawFinding{
          1, "layer-unknown",
          util::format("module '%s' is not in the layer table", mod.c_str()),
          "add it to the layer spec (see DESIGN.md \"Layer DAG\")"});
    }
  }
  for (const auto& cycle : module_cycles(module_adj)) {
    // Anchor at the lexically-first intra-cycle include edge.
    std::string rep_file;
    std::size_t rep_line = 1;
    const std::set<std::string> members(cycle.begin(), cycle.end());
    for (const auto& [edge, rep] : edge_rep) {
      if (members.count(edge.first) != 0 && members.count(edge.second) != 0) {
        if (rep_file.empty() || rep.first < rep_file) {
          rep_file = rep.first;
          rep_line = rep.second;
        }
      }
    }
    raw[rep_file.empty() ? cycle.front() : rep_file].push_back(RawFinding{
        rep_line, "layer-cycle",
        util::format("module cycle: {%s} — the include graph is not a DAG",
                     util::join(cycle, ", ").c_str()),
        "split the shared piece into a lower layer so all edges point down"});
  }

  // --- Fan-in budget --------------------------------------------------------
  // Resolve includes to scanned files, then count transitive includers.
  std::map<std::string, std::size_t> path_index;
  for (std::size_t i = 0; i < cleaned.size(); ++i) path_index[cleaned[i].path] = i;
  const auto resolve = [&](const std::string& inc) -> int {
    int best = -1;
    for (std::size_t i = 0; i < cleaned.size(); ++i) {
      const std::string& p = cleaned[i].path;
      if (p == inc || (p.size() > inc.size() + 1 &&
                       p.compare(p.size() - inc.size() - 1, inc.size() + 1, "/" + inc) == 0)) {
        if (best < 0 || p < cleaned[static_cast<std::size_t>(best)].path) {
          best = static_cast<int>(i);
        }
      }
    }
    return best;
  };
  std::vector<std::vector<int>> file_adj(cleaned.size());
  for (std::size_t i = 0; i < cleaned.size(); ++i) {
    for (const auto& [line, inc] : cleaned[i].includes) {
      (void)line;
      const int t = resolve(inc);
      if (t >= 0 && static_cast<std::size_t>(t) != i) file_adj[i].push_back(t);
    }
  }
  std::vector<std::size_t> fanin(cleaned.size(), 0);
  for (std::size_t i = 0; i < cleaned.size(); ++i) {
    std::vector<int> stack(file_adj[i].begin(), file_adj[i].end());
    std::set<int> seen;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      if (!seen.insert(v).second) continue;
      for (int w : file_adj[static_cast<std::size_t>(v)]) stack.push_back(w);
    }
    for (int v : seen) fanin[static_cast<std::size_t>(v)]++;
  }
  for (std::size_t i = 0; i < cleaned.size(); ++i) {
    if (!is_header(cleaned[i].path)) continue;
    report.header_fanin[cleaned[i].path] = fanin[i];
    if (spec.max_fanin > 0 && fanin[i] > spec.max_fanin) {
      raw[cleaned[i].path].push_back(RawFinding{
          1, "fanin-budget",
          util::format("transitive include fan-in %zu exceeds the budget %zu", fanin[i],
                       spec.max_fanin),
          "trim includes (iosfwd, forward declarations) or split the header"});
    }
  }

  // --- Hot pass -------------------------------------------------------------
  std::set<std::string> hot_stems;
  std::map<std::string, std::vector<std::pair<HotRegion, std::vector<RawFinding>>>> hot_by_file;
  for (const auto& src : cleaned) {
    for (const auto& marker : src.hot_markers) {
      Region region;
      if (!find_region(src, marker, region)) {
        raw[src.path].push_back(
            RawFinding{marker.line, "hot-marker",
                       "keddah:hot marker with no braced region after it",
                       "place the marker immediately before a function or block"});
        continue;
      }
      hot_stems.insert(src.stem);
      std::vector<RawFinding> hazards;
      scan_region_hazards(src, registry, region, hazards);
      HotRegion hr;
      hr.file = src.path;
      hr.label = region.label;
      hr.begin_line = region.begin_line;
      hr.end_line = region.end_line;
      hot_by_file[src.path].emplace_back(std::move(hr), std::move(hazards));
    }
  }

  // --- Apply allows, dedupe, and assemble -----------------------------------
  std::vector<std::set<std::pair<std::size_t, std::string>>> seen_per_file(cleaned.size());
  // Returns false when the finding is a duplicate (same file/line/rule).
  const auto admit = [&](const std::string& path, const RawFinding& f, HotHazard* hazard_out) {
    const auto idx_it = path_index.find(path);
    bool allowed = false;
    std::string justification;
    std::size_t allow_line = 0;
    if (idx_it != path_index.end()) {
      if (!seen_per_file[idx_it->second].insert({f.line, f.rule}).second) {
        return false;  // dedupe
      }
      allowed = find_allow(cleaned[idx_it->second], f.line, f.rule, &allow_line, &justification);
    }
    if (hazard_out != nullptr) {
      hazard_out->line = f.line;
      hazard_out->rule = f.rule;
      hazard_out->message = f.message;
      hazard_out->allowed = allowed;
      hazard_out->justification = justification;
    }
    if (allowed) {
      ++report.suppressions_used;
      return true;
    }
    report.diagnostics.push_back(Diagnostic{
        .file = path, .message = f.message, .hint = f.hint, .line = f.line, .rule = f.rule});
    return true;
  };

  for (const auto& src : cleaned) {
    auto it = raw.find(src.path);
    if (it != raw.end()) {
      for (const auto& f : it->second) admit(src.path, f, nullptr);
    }
    auto hit = hot_by_file.find(src.path);
    if (hit != hot_by_file.end()) {
      for (auto& [region, hazards] : hit->second) {
        for (const auto& f : hazards) {
          HotHazard hazard;
          if (admit(src.path, f, &hazard)) region.hazards.push_back(std::move(hazard));
        }
        report.hot_regions.push_back(std::move(region));
      }
    }
    // Every unjustified allow is itself a finding, used or not: a silent
    // allow with no written reason defeats the audit trail.
    for (const auto& [line, rules] : src.allows) {
      for (const auto& [rule, justification] : rules) {
        if (!justification.empty()) continue;
        report.diagnostics.push_back(Diagnostic{
            .file = src.path,
            .message = util::format("archlint:allow(%s) without a justification", rule.c_str()),
            .hint = "write '// archlint:allow(<rule>): <why>'",
            .line = line,
            .rule = "allow-unjustified"});
      }
    }
  }

  // --- Pointer-heavy inventory (files in stem groups that contain hot
  // regions): the columnar-arena input artifact. ----------------------------
  static const std::regex heavy_re(
      R"(\bstd::(unordered_map|unordered_set|unordered_multimap|unordered_multiset|multimap|multiset|map|set|list|deque|shared_ptr|unique_ptr|function)\s*<)");
  for (const auto& src : cleaned) {
    if (hot_stems.count(src.stem) == 0) continue;
    const std::string& s = src.clean;
    for (auto it = std::sregex_iterator(s.begin(), s.end(), heavy_re);
         it != std::sregex_iterator(); ++it) {
      const std::size_t open = static_cast<std::size_t>(it->position()) + it->length() - 1;
      const std::size_t after = match_angle(s, open);
      if (after == std::string::npos) continue;
      const std::string name = declared_name_after(s, after);
      if (name.empty()) continue;
      report.pointer_heavy.push_back(PointerHeavyDecl{
          src.path, line_of(src, static_cast<std::size_t>(it->position())),
          "std::" + (*it)[1].str(), name});
    }
  }

  for (auto& [mod, info] : report.modules) {
    (void)mod;
    std::sort(info.deps.begin(), info.deps.end());
  }
  std::sort(report.diagnostics.begin(), report.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
            });
  std::sort(report.pointer_heavy.begin(), report.pointer_heavy.end(),
            [](const PointerHeavyDecl& a, const PointerHeavyDecl& b) {
              return std::tie(a.file, a.line, a.name) < std::tie(b.file, b.line, b.name);
            });
  std::sort(report.hot_regions.begin(), report.hot_regions.end(),
            [](const HotRegion& a, const HotRegion& b) {
              return std::tie(a.file, a.begin_line) < std::tie(b.file, b.begin_line);
            });
  return report;
}

util::Json ArchlintReport::to_json() const {
  util::Json doc = util::Json::object();
  doc["tool"] = "keddah-archlint";
  doc["files_scanned"] = static_cast<std::uint64_t>(files_scanned);
  doc["suppressions_used"] = static_cast<std::uint64_t>(suppressions_used);

  util::Json findings = util::Json::array();
  for (const auto& d : diagnostics) {
    util::Json f = util::Json::object();
    f["file"] = d.file;
    f["line"] = static_cast<std::uint64_t>(d.line);
    f["rule"] = d.rule;
    f["message"] = d.message;
    f["hint"] = d.hint;
    findings.push_back(std::move(f));
  }
  doc["findings"] = std::move(findings);

  util::Json mods = util::Json::object();
  for (const auto& [name, info] : modules) {
    util::Json m = util::Json::object();
    m["layer"] = info.layer;
    m["files"] = static_cast<std::uint64_t>(info.files);
    util::Json deps = util::Json::array();
    for (const auto& d : info.deps) deps.push_back(d);
    m["deps"] = std::move(deps);
    mods[name] = std::move(m);
  }
  doc["modules"] = std::move(mods);

  util::Json fanin = util::Json::object();
  for (const auto& [path, count] : header_fanin) {
    fanin[path] = static_cast<std::uint64_t>(count);
  }
  doc["header_fanin"] = std::move(fanin);

  util::Json regions = util::Json::array();
  for (const auto& r : hot_regions) {
    util::Json hr = util::Json::object();
    hr["file"] = r.file;
    hr["label"] = r.label;
    hr["begin_line"] = static_cast<std::uint64_t>(r.begin_line);
    hr["end_line"] = static_cast<std::uint64_t>(r.end_line);
    util::Json hazards = util::Json::array();
    for (const auto& h : r.hazards) {
      util::Json hz = util::Json::object();
      hz["line"] = static_cast<std::uint64_t>(h.line);
      hz["rule"] = h.rule;
      hz["message"] = h.message;
      hz["allowed"] = h.allowed;
      hz["justification"] = h.justification;
      hazards.push_back(std::move(hz));
    }
    hr["hazards"] = std::move(hazards);
    regions.push_back(std::move(hr));
  }
  doc["hot_regions"] = std::move(regions);

  util::Json heavy = util::Json::array();
  for (const auto& p : pointer_heavy) {
    util::Json d = util::Json::object();
    d["file"] = p.file;
    d["line"] = static_cast<std::uint64_t>(p.line);
    d["type"] = p.type;
    d["name"] = p.name;
    heavy.push_back(std::move(d));
  }
  doc["pointer_heavy"] = std::move(heavy);
  return doc;
}

ArchlintReport archlint_paths(const std::vector<std::string>& paths, const LayerSpec* spec) {
  namespace fs = std::filesystem;
  const std::set<std::string> kExtensions = {".h", ".hpp", ".cc", ".cpp"};
  std::vector<std::string> files;
  LayerSpec resolved = spec != nullptr ? *spec : default_layer_spec();
  for (const auto& path : paths) {
    if (fs::is_directory(path)) {
      if (spec == nullptr) {
        const fs::path table = fs::path(path) / "layers.json";
        if (fs::exists(table)) resolved = layer_spec_from_json(util::Json::load_file(table));
      }
      std::vector<std::string> dir_files;
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (!entry.is_regular_file()) continue;
        if (kExtensions.count(entry.path().extension().string()) == 0) continue;
        dir_files.push_back(entry.path().string());
      }
      std::sort(dir_files.begin(), dir_files.end());
      files.insert(files.end(), dir_files.begin(), dir_files.end());
    } else if (fs::exists(path)) {
      files.push_back(path);
    } else {
      throw std::runtime_error("archlint: no such file or directory: " + path);
    }
  }
  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in) throw std::runtime_error("archlint: cannot read " + file);
    std::ostringstream text;
    text << in.rdbuf();
    sources.push_back(SourceFile{file, text.str()});
  }
  return archlint_sources(sources, resolved);
}

}  // namespace keddah::lint
