// Shared diagnostic type + formatting for the keddah static tools.
//
// keddah-lint (JSON artifacts, locus = key path), keddah-detlint and
// keddah-archlint (C++ sources, locus = "line N: [rule-id]") all report
// through one Diagnostic struct and one formatter so tool output is uniform
// and greppable:
//
//   <file>: <locus>: <message> (<hint>)
//
// The hint parenthetical is omitted when empty. print_diagnostic_line adds
// the "error: " / "warning: " severity prefix the CLIs emit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace keddah::lint {

/// Diagnostic severity. Errors fail the lint (CLI exit 1); warnings flag
/// suspicious-but-runnable constructs.
enum class Severity : std::uint8_t { kWarning = 0, kError = 1 };

/// One finding from any of the three checkers. JSON-artifact checkers set
/// `key` (the JSON key path); source checkers set `line` + `rule` and leave
/// `key` empty. to_string() picks the locus accordingly.
struct Diagnostic {
  Severity severity = Severity::kError;
  /// Source file (or caller-supplied context string).
  std::string file;
  /// JSON key path of the offending value, e.g. "faults[2].at" or
  /// "classes.shuffle.size.parametric.p1". Empty for source checkers.
  std::string key;
  /// What is wrong.
  std::string message;
  /// How to fix it; empty when the message is self-explanatory.
  std::string hint;
  /// 1-based source line (detlint/archlint); 0 when the locus is `key`.
  std::size_t line = 0;
  /// Stable rule id (detlint/archlint); empty when the locus is `key`.
  std::string rule;

  /// "file: key: message (hint)" or "file: line N: [rule] message (hint)".
  std::string to_string() const;
};

/// "<file>: <locus>: <message> (<hint>)"; no parenthetical when `hint` is
/// empty.
std::string format_diagnostic(const std::string& file, const std::string& locus,
                              const std::string& message, const std::string& hint);

/// Writes "error: <formatted>\n" (or "warning: ...") to `os`.
void print_diagnostic_line(std::ostream& os, bool is_error, const std::string& formatted);

}  // namespace keddah::lint
