// Shared diagnostic formatting for the keddah static tools.
//
// keddah-lint (JSON artifacts, locus = key path) and keddah-detlint (C++
// sources, locus = "line: rule-id") print through the same formatter so
// tool output is uniform and greppable:
//
//   <file>: <locus>: <message> (<hint>)
//
// The hint parenthetical is omitted when empty. print_diagnostic_line adds
// the "error: " / "warning: " severity prefix the CLIs emit.
#pragma once

#include <iosfwd>
#include <string>

namespace keddah::lint {

/// "<file>: <locus>: <message> (<hint>)"; no parenthetical when `hint` is
/// empty.
std::string format_diagnostic(const std::string& file, const std::string& locus,
                              const std::string& message, const std::string& hint);

/// Writes "error: <formatted>\n" (or "warning: ...") to `os`.
void print_diagnostic_line(std::ostream& os, bool is_error, const std::string& formatted);

}  // namespace keddah::lint
