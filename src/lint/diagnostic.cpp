#include "lint/diagnostic.h"

#include <ostream>

#include "util/strings.h"

namespace keddah::lint {

std::string Diagnostic::to_string() const {
  if (!rule.empty()) {
    return format_diagnostic(file, util::format("line %zu: [%s]", line, rule.c_str()), message,
                             hint);
  }
  return format_diagnostic(file, key, message, hint);
}

std::string format_diagnostic(const std::string& file, const std::string& locus,
                              const std::string& message, const std::string& hint) {
  std::string line = file + ": " + locus + ": " + message;
  if (!hint.empty()) line += " (" + hint + ")";
  return line;
}

void print_diagnostic_line(std::ostream& os, bool is_error, const std::string& formatted) {
  os << (is_error ? "error: " : "warning: ") << formatted << "\n";
}

}  // namespace keddah::lint
