#include "lint/diagnostic.h"

#include <ostream>

namespace keddah::lint {

std::string format_diagnostic(const std::string& file, const std::string& locus,
                              const std::string& message, const std::string& hint) {
  std::string line = file + ": " + locus + ": " + message;
  if (!hint.empty()) line += " (" + hint + ")";
  return line;
}

void print_diagnostic_line(std::ostream& os, bool is_error, const std::string& formatted) {
  os << (is_error ? "error: " : "warning: ") << formatted << "\n";
}

}  // namespace keddah::lint
