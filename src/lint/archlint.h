// keddah-archlint: architecture-layering + hot-path-allocation checker.
//
// Keddah's scaling roadmap (ROADMAP.md: columnar flow arena, mmap'd trace
// spill) needs two invariants kept machine-checked: the module graph must
// stay a DAG that matches the declared layering, and the scheduler/serve
// hot paths must not silently re-grow per-event heap allocation. archlint
// is the third static pass (after keddah-lint and keddah-detlint), sharing
// the lint/diagnostic formatter and the fixture/CI replay pattern.
//
// Pass 1 — layering. The `#include` graph over the scanned sources is
// collapsed to modules (a file's module is the directory component after
// `src/`, or its parent directory otherwise) and checked against a declared
// low-to-high layer table (LayerSpec; the repo's table is
// default_layer_spec(), documented in DESIGN.md):
//
//   layer-cycle      a strongly-connected component in the module graph
//   layer-upward     an include whose target sits in the same or a higher
//                    layer (different module) — dependencies point down only
//   layer-unknown    (strict mode) a module missing from the layer table
//   cpp-include      a `.cpp`/`.cc` file named in an #include
//   fanin-budget     a header whose *transitive* includer count exceeds
//                    LayerSpec::max_fanin — compile-time blast radius
//
// Pass 2 — hot-path allocation. A `// keddah:hot` (or `keddah:hot(label)`)
// comment marks the next braced region (typically a function body) as a
// steady-state hot path. Inside it archlint flags allocation-prone
// constructs:
//
//   hot-node-container  insert/erase/emplace on a std::map/set/list/
//                       unordered_* variable (node allocation per op)
//   hot-push-back       push_back/emplace_back on a vector with no visible
//                       `.reserve(` anywhere in the file or its stem pair
//   hot-local-container a container constructed inside the region (fresh
//                       heap allocation per invocation; hoist to scratch)
//   hot-std-function    std::function construction/mention (type-erased
//                       callable: heap allocation beyond SBO)
//   hot-string-concat   string concatenation via `+`/`+=` with a literal
//   hot-shared-ptr      shared_ptr construction/copy (atomic refcount, and
//                       make_shared allocates a control block)
//   hot-marker          a keddah:hot marker with no braced region after it
//
// Escape hatch: `// archlint:allow(<rule>): <justification>` on the finding
// line or alone on the line above. The justification text is mandatory —
// an allow without one is itself a finding (allow-unjustified). Suppressed
// findings stay visible in the --report=json inventory, which also lists
// every pointer-heavy member declared by hot files: that inventory is the
// input artifact for the columnar-arena work.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint/detlint.h"  // SourceFile
#include "lint/diagnostic.h"
#include "util/json.h"

namespace keddah::lint {

/// The declared layering, ordered low to high. Modules in the same inner
/// vector share a rank and must not include each other.
struct LayerSpec {
  std::vector<std::vector<std::string>> layers;
  /// Max transitive includer count per header; 0 disables fanin-budget.
  std::size_t max_fanin = 0;
  /// When true, every scanned module must appear in `layers`
  /// (layer-unknown otherwise). Off by default so fixtures and
  /// out-of-tree scans work without a table.
  bool strict_modules = false;

  /// Rank of `module` (0 = lowest), or -1 when absent from the table.
  int layer_of(const std::string& module) const;
};

/// The repo's committed layer table (see DESIGN.md "Layer DAG").
LayerSpec default_layer_spec();

/// Parses {"layers": [["util"], ["core","sim"], ...], "max_fanin": N,
/// "strict_modules": bool}. Throws std::runtime_error on bad shape.
LayerSpec layer_spec_from_json(const util::Json& doc);

/// One allocation hazard inside a hot region (suppressed ones included —
/// the JSON inventory reports them with their justification).
struct HotHazard {
  std::size_t line = 0;
  std::string rule;
  std::string message;
  bool allowed = false;
  std::string justification;
};

/// One `// keddah:hot` region.
struct HotRegion {
  std::string file;
  std::string label;  ///< from keddah:hot(label); empty when unlabeled
  std::size_t begin_line = 0;
  std::size_t end_line = 0;
  std::vector<HotHazard> hazards;
};

/// A pointer-heavy declaration (node container / smart pointer /
/// std::function) in a file whose stem group contains a hot region.
struct PointerHeavyDecl {
  std::string file;
  std::size_t line = 0;
  std::string type;  ///< e.g. "std::unordered_map"
  std::string name;  ///< declared identifier; empty when not parseable
};

/// Per-module summary for the report.
struct ModuleInfo {
  int layer = -1;
  std::size_t files = 0;
  std::vector<std::string> deps;  ///< modules it includes, sorted
};

/// Result of one archlint scan.
struct ArchlintReport {
  std::vector<Diagnostic> diagnostics;  ///< sorted by (file, line, rule)
  std::size_t files_scanned = 0;
  std::size_t suppressions_used = 0;
  std::map<std::string, ModuleInfo> modules;
  /// Transitive includer count per scanned header.
  std::map<std::string, std::size_t> header_fanin;
  std::vector<HotRegion> hot_regions;
  std::vector<PointerHeavyDecl> pointer_heavy;

  bool ok() const { return diagnostics.empty(); }

  /// The --report=json document: findings (suppressed included), module
  /// graph + layers, fan-in table, hot regions with hazards, and the
  /// pointer-heavy hot-path state inventory for the columnar-arena work.
  util::Json to_json() const;
};

/// The stable rule ids, sorted.
const std::vector<std::string>& archlint_rule_ids();

/// Scans the given sources as one program against `spec`.
ArchlintReport archlint_sources(const std::vector<SourceFile>& sources, const LayerSpec& spec);

/// Loads files and directories (recursing into *.h, *.hpp, *.cc, *.cpp in
/// sorted order) and scans them together. When `spec` is null, uses a
/// `layers.json` found directly inside a scanned directory if present,
/// else default_layer_spec(). Unreadable paths throw std::runtime_error.
ArchlintReport archlint_paths(const std::vector<std::string>& paths,
                              const LayerSpec* spec = nullptr);

}  // namespace keddah::lint
