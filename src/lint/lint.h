// keddah-lint: static validation of the JSON artifacts the toolchain
// consumes — scenario files, standalone fault plans, fitted model files, and
// model banks. The runtime parsers throw on the first malformed field; the
// linter instead walks the whole document and reports *every* defect, each
// naming the file, the JSON key path, what is wrong, and how to fix it, so a
// scenario author can repair a file in one pass without running anything.
//
// The checks encode invariants the simulator depends on (DESIGN.md §"Static
// checks"): fault plans must reference live workers inside the scenario
// horizon and must not schedule recovery of a permanently crashed node;
// fitted ECDFs must be non-decreasing; distribution parameters must be
// finite and within their family's domain; replication cannot exceed the
// cluster size.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "lint/diagnostic.h"
#include "util/json.h"

namespace keddah::lint {

/// What kind of document a file was recognized as.
enum class FileKind : std::uint8_t {
  kScenario = 0,   // object with "jobs"
  kFaultPlan = 1,  // top-level array of fault events
  kModel = 2,      // object with "classes"/"job_name"
  kModelBank = 3,  // object with "models"
  kUnknown = 4,
};

/// Stable kind name ("scenario", "fault_plan", "model", "model_bank").
const char* file_kind_name(FileKind kind);

// Diagnostic + Severity live in lint/diagnostic.h, shared with detlint and
// archlint. keddah-lint findings set the `key` locus (JSON key path).

/// Result of linting one document.
struct LintReport {
  FileKind kind = FileKind::kUnknown;
  std::vector<Diagnostic> diagnostics;

  bool ok() const { return num_errors() == 0; }
  std::size_t num_errors() const;
  std::size_t num_warnings() const;
};

/// Lints an already-parsed document. `file` names the source in every
/// diagnostic. The document kind is sniffed from its shape (see FileKind);
/// unrecognized documents yield a single unknown-kind error.
LintReport lint_document(const util::Json& doc, const std::string& file);

/// Loads, parses, and lints one file. I/O and JSON syntax errors (including
/// duplicate object keys) become diagnostics instead of exceptions.
LintReport lint_file(const std::string& path);

/// Individual document linters, usable when the kind is known.
void lint_scenario(const util::Json& doc, const std::string& file,
                   std::vector<Diagnostic>& out);
void lint_fault_plan(const util::Json& array, const std::string& file,
                     std::vector<Diagnostic>& out);
void lint_model(const util::Json& doc, const std::string& file,
                std::vector<Diagnostic>& out);
void lint_model_bank(const util::Json& doc, const std::string& file,
                     std::vector<Diagnostic>& out);

/// Prints every diagnostic, one per line, errors first.
void print_report(const LintReport& report, std::ostream& os);

}  // namespace keddah::lint
