// keddah-lint: static validation of the JSON artifacts the toolchain
// consumes — scenario files, standalone fault plans, fitted model files, and
// model banks. The runtime parsers throw on the first malformed field; the
// linter instead walks the whole document and reports *every* defect, each
// naming the file, the JSON key path, what is wrong, and how to fix it, so a
// scenario author can repair a file in one pass without running anything.
//
// The checks encode invariants the simulator depends on (DESIGN.md §"Static
// checks"): fault plans must reference live workers inside the scenario
// horizon and must not schedule recovery of a permanently crashed node;
// fitted ECDFs must be non-decreasing; distribution parameters must be
// finite and within their family's domain; replication cannot exceed the
// cluster size.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/json.h"

namespace keddah::lint {

/// Diagnostic severity. Errors fail the lint (CLI exit 1); warnings flag
/// suspicious-but-runnable constructs.
enum class Severity : std::uint8_t { kWarning = 0, kError = 1 };

/// What kind of document a file was recognized as.
enum class FileKind : std::uint8_t {
  kScenario = 0,   // object with "jobs"
  kFaultPlan = 1,  // top-level array of fault events
  kModel = 2,      // object with "classes"/"job_name"
  kModelBank = 3,  // object with "models"
  kUnknown = 4,
};

/// Stable kind name ("scenario", "fault_plan", "model", "model_bank").
const char* file_kind_name(FileKind kind);

/// One finding: file, JSON key path, message, and a fix hint.
struct Diagnostic {
  Severity severity = Severity::kError;
  /// Source file (or caller-supplied context string).
  std::string file;
  /// JSON key path of the offending value, e.g. "faults[2].at" or
  /// "classes.shuffle.size.parametric.p1".
  std::string key;
  /// What is wrong.
  std::string message;
  /// How to fix it; empty when the message is self-explanatory.
  std::string hint;

  /// "file: key: message (hint)" — the CLI output line.
  std::string to_string() const;
};

/// Result of linting one document.
struct LintReport {
  FileKind kind = FileKind::kUnknown;
  std::vector<Diagnostic> diagnostics;

  bool ok() const { return num_errors() == 0; }
  std::size_t num_errors() const;
  std::size_t num_warnings() const;
};

/// Lints an already-parsed document. `file` names the source in every
/// diagnostic. The document kind is sniffed from its shape (see FileKind);
/// unrecognized documents yield a single unknown-kind error.
LintReport lint_document(const util::Json& doc, const std::string& file);

/// Loads, parses, and lints one file. I/O and JSON syntax errors (including
/// duplicate object keys) become diagnostics instead of exceptions.
LintReport lint_file(const std::string& path);

/// Individual document linters, usable when the kind is known.
void lint_scenario(const util::Json& doc, const std::string& file,
                   std::vector<Diagnostic>& out);
void lint_fault_plan(const util::Json& array, const std::string& file,
                     std::vector<Diagnostic>& out);
void lint_model(const util::Json& doc, const std::string& file,
                std::vector<Diagnostic>& out);
void lint_model_bank(const util::Json& doc, const std::string& file,
                     std::vector<Diagnostic>& out);

/// Prints every diagnostic, one per line, errors first.
void print_report(const LintReport& report, std::ostream& os);

}  // namespace keddah::lint
