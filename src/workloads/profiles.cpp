#include "workloads/profiles.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace keddah::workloads {

std::span<const Workload> all_workloads() {
  static constexpr std::array<Workload, 7> kAll = {
      Workload::kWordCount, Workload::kGrep,   Workload::kSort,      Workload::kTeraSort,
      Workload::kPageRank,  Workload::kKMeans, Workload::kNutchIndex};
  return kAll;
}

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kWordCount:
      return "wordcount";
    case Workload::kGrep:
      return "grep";
    case Workload::kSort:
      return "sort";
    case Workload::kTeraSort:
      return "terasort";
    case Workload::kPageRank:
      return "pagerank";
    case Workload::kKMeans:
      return "kmeans";
    case Workload::kNutchIndex:
      return "nutchindex";
  }
  return "unknown";
}

Workload workload_from_name(const std::string& name) {
  for (const Workload w : all_workloads()) {
    if (name == workload_name(w)) return w;
  }
  throw std::invalid_argument("workloads: unknown workload '" + name + "'");
}

hadoop::JobProfile profile(Workload w) {
  hadoop::JobProfile p;
  p.name = workload_name(w);
  switch (w) {
    case Workload::kWordCount:
      // Combiner collapses word counts: small shuffle, smaller output,
      // CPU-heavy maps (tokenization).
      p.map_selectivity = 0.15;
      p.reduce_selectivity = 0.35;
      p.map_cpu_s_per_mb = 0.055;
      p.reduce_cpu_s_per_mb = 0.03;
      p.partition_skew = 0.5;  // word frequency skew survives hashing a bit
      break;
    case Workload::kGrep:
      // Rare matches: near-empty shuffle; cheap scan.
      p.map_selectivity = 0.002;
      p.reduce_selectivity = 1.0;
      p.map_cpu_s_per_mb = 0.02;
      p.reduce_cpu_s_per_mb = 0.01;
      p.partition_skew = 0.0;
      break;
    case Workload::kSort:
      // Identity map/reduce: everything is shuffled and rewritten.
      p.map_selectivity = 1.0;
      p.reduce_selectivity = 1.0;
      p.map_cpu_s_per_mb = 0.012;
      p.reduce_cpu_s_per_mb = 0.02;
      p.partition_skew = 0.1;
      break;
    case Workload::kTeraSort:
      // Range-partitioned sort: balanced partitions, slightly cheaper CPU.
      p.map_selectivity = 1.0;
      p.reduce_selectivity = 1.0;
      p.map_cpu_s_per_mb = 0.01;
      p.reduce_cpu_s_per_mb = 0.018;
      p.partition_skew = 0.0;
      break;
    case Workload::kPageRank:
      // One rank-propagation iteration: contributions expand in flight and
      // the in-link distribution is heavy-tailed.
      p.map_selectivity = 1.2;
      p.reduce_selectivity = 0.7;
      p.map_cpu_s_per_mb = 0.03;
      p.reduce_cpu_s_per_mb = 0.035;
      p.partition_skew = 0.8;
      break;
    case Workload::kKMeans:
      // One Lloyd iteration: maps emit partial centroid sums only.
      p.map_selectivity = 0.01;
      p.reduce_selectivity = 0.2;
      p.map_cpu_s_per_mb = 0.08;
      p.reduce_cpu_s_per_mb = 0.02;
      p.partition_skew = 0.0;
      break;
    case Workload::kNutchIndex:
      // Indexing: documents reshaped into postings; moderate everything.
      p.map_selectivity = 0.6;
      p.reduce_selectivity = 0.9;
      p.map_cpu_s_per_mb = 0.04;
      p.reduce_cpu_s_per_mb = 0.04;
      p.partition_skew = 0.4;
      break;
  }
  return p;
}

std::size_t default_reducers(std::uint64_t input_bytes) {
  const auto gb = static_cast<std::size_t>(input_bytes >> 30);
  return std::clamp<std::size_t>(std::max<std::size_t>(gb, 1) * 4, 4, 64);
}

hadoop::JobSpec make_spec(Workload w, const std::string& input_file, std::size_t num_reducers) {
  hadoop::JobSpec spec;
  spec.profile = profile(w);
  spec.input_file = input_file;
  spec.num_reducers = num_reducers;
  return spec;
}

}  // namespace keddah::workloads
