#include "workloads/scale.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"

namespace keddah::workloads {

std::size_t fat_tree_k_for_hosts(std::size_t hosts) {
  std::size_t k = 2;
  while (k * k * k / 4 < hosts) k += 2;
  return k;
}

net::Topology make_scale_topology(const ScaleSpec& spec) {
  const std::size_t k = fat_tree_k_for_hosts(spec.target_hosts);
  return net::make_fat_tree(k, spec.link_gbps * 1e9, spec.latency_s, spec.oversubscription);
}

namespace {

/// Sorts all four columns by (start, generation order) through one
/// permutation — the columnar counterpart of sorting a vector of structs.
void sort_by_start(ScaleSchedule& s) {
  std::vector<std::uint32_t> order(s.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) { return s.start[a] < s.start[b]; });
  ScaleSchedule out;
  out.src.reserve(s.size());
  out.dst.reserve(s.size());
  out.bytes.reserve(s.size());
  out.start.reserve(s.size());
  for (const std::uint32_t i : order) {
    out.src.push_back(s.src[i]);
    out.dst.push_back(s.dst[i]);
    out.bytes.push_back(s.bytes[i]);
    out.start.push_back(s.start[i]);
  }
  s = std::move(out);
}

}  // namespace

ScaleSchedule make_scale_schedule(const net::Topology& topo, const ScaleSpec& spec) {
  const std::size_t k = fat_tree_k_for_hosts(spec.target_hosts);
  const std::size_t half = k / 2;

  // Racks in rack-index order; hosts within a rack in creation order.
  std::vector<std::vector<net::NodeId>> racks;
  for (auto& [rack, hosts] : topo.hosts_by_rack()) {
    (void)rack;
    racks.push_back(std::move(hosts));
  }
  if (racks.empty()) throw std::invalid_argument("scale: topology has no hosts");
  const std::size_t num_pods = std::max<std::size_t>(1, racks.size() / half);

  const double local_mu = std::log(spec.local_flow_median_bytes);
  const double cross_mu = std::log(spec.cross_flow_median_bytes);

  util::Rng rng(spec.seed);
  ScaleSchedule sched;

  // Rack-local waves: every host sources flows to uniform rack peers. The
  // sharing graph of one wave decomposes per rack (no flow leaves its edge
  // switch), so solver components stay rack-sized no matter how many hosts
  // the fabric has.
  for (std::size_t wave = 0; wave < spec.local_waves; ++wave) {
    const double t0 = static_cast<double>(wave) * spec.wave_spacing_s;
    for (const auto& rack : racks) {
      if (rack.size() < 2) continue;
      for (std::size_t h = 0; h < rack.size(); ++h) {
        for (std::size_t f = 0; f < spec.flows_per_host_per_wave; ++f) {
          std::size_t peer =
              static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(rack.size()) - 2));
          if (peer >= h) ++peer;  // uniform over rack \ {h}
          sched.src.push_back(rack[h]);
          sched.dst.push_back(rack[peer]);
          sched.bytes.push_back(rng.lognormal(local_mu, spec.flow_sigma));
          sched.start.push_back(t0 + rng.uniform(0.0, spec.wave_jitter_s));
        }
      }
    }
  }

  // Cross-pod waves: uniform sources, destinations forced into another pod
  // so every flow crosses the oversubscribed agg/core tiers. Each wave gets
  // its own window after the local waves so the giant cross-fabric
  // component never overlaps the rack-local traffic.
  std::vector<net::NodeId> all_hosts = topo.hosts();
  for (std::size_t wave = 0; wave < spec.cross_waves; ++wave) {
    const double t0 = static_cast<double>(spec.local_waves + wave) * spec.wave_spacing_s;
    for (std::size_t f = 0; f < spec.cross_flows_per_wave; ++f) {
      const std::size_t si =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(all_hosts.size()) - 1));
      const net::NodeId src = all_hosts[si];
      const std::size_t src_pod =
          static_cast<std::size_t>(topo.node(src).rack) / half;
      net::NodeId dst = src;
      for (int attempt = 0; attempt < 64; ++attempt) {
        const std::size_t di = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(all_hosts.size()) - 1));
        dst = all_hosts[di];
        if (dst == src) continue;
        if (num_pods < 2) break;  // degenerate single-pod fabric: any peer
        if (static_cast<std::size_t>(topo.node(dst).rack) / half != src_pod) break;
      }
      if (dst == src) continue;  // pathological tiny topology; skip the flow
      sched.src.push_back(src);
      sched.dst.push_back(dst);
      sched.bytes.push_back(rng.lognormal(cross_mu, spec.flow_sigma));
      sched.start.push_back(t0 + rng.uniform(0.0, spec.wave_jitter_s));
    }
  }

  sort_by_start(sched);
  return sched;
}

}  // namespace keddah::workloads
