#include "workloads/suite.h"

#include <stdexcept>

#include "util/log.h"

namespace keddah::workloads {

RunOutcome run_single(const hadoop::ClusterConfig& config, Workload workload,
                      std::uint64_t input_bytes, std::size_t num_reducers, std::uint64_t seed,
                      const hadoop::FaultPlan& faults) {
  RunOutcome outcome;
  outcome.workload = workload;
  outcome.input_bytes = input_bytes;
  outcome.seed = seed;
  outcome.num_reducers = num_reducers == 0 ? default_reducers(input_bytes) : num_reducers;

  hadoop::HadoopCluster cluster(config, seed);
  const std::string input = cluster.ensure_input(input_bytes);
  cluster.schedule_fault_plan(faults);
  const auto spec = make_spec(workload, input, outcome.num_reducers);
  outcome.result = cluster.run_job(spec);
  outcome.faults = cluster.fault_stats();
  outcome.trace = cluster.take_trace();
  KLOG_INFO << "run " << workload_name(workload) << " input=" << input_bytes
            << " seed=" << seed << ": " << outcome.trace.size() << " flows, "
            << outcome.result.duration() << " s";
  return outcome;
}

MixOutcome run_mix(const hadoop::ClusterConfig& config, std::span<const MixJob> jobs,
                   std::uint64_t seed) {
  MixOutcome outcome;
  outcome.results.resize(jobs.size());
  outcome.job_ids.resize(jobs.size());
  if (jobs.empty()) return outcome;

  hadoop::HadoopCluster cluster(config, seed);
  // Ingest every distinct input before time starts.
  std::vector<std::string> inputs;
  inputs.reserve(jobs.size());
  for (const auto& job : jobs) inputs.push_back(cluster.ensure_input(job.input_bytes));

  std::size_t done = 0;
  cluster.control().enable();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto spec = make_spec(jobs[i].workload, inputs[i],
                                jobs[i].num_reducers == 0
                                    ? default_reducers(jobs[i].input_bytes)
                                    : jobs[i].num_reducers);
    cluster.simulator().schedule_at(jobs[i].submit_at, [&cluster, &outcome, &done, spec, i,
                                                        total = jobs.size()] {
      outcome.job_ids[i] =
          cluster.runner().submit(spec, [&outcome, &done, i, total, &cluster](
                                            const hadoop::JobResult& result) {
            outcome.results[i] = result;
            if (++done == total) cluster.control().disable();
          });
    });
  }
  cluster.simulator().run();
  if (done != jobs.size()) throw std::logic_error("run_mix: not all jobs completed");
  outcome.trace = cluster.take_trace();
  return outcome;
}

std::vector<MixJob> sample_poisson_mix(const PoissonMixSpec& spec, util::Rng& rng) {
  if (spec.workloads.empty() || spec.input_sizes.empty() || spec.arrival_rate <= 0.0) {
    throw std::invalid_argument("poisson mix: need workloads, sizes, positive rate");
  }
  std::vector<MixJob> jobs;
  double t = rng.exponential(spec.arrival_rate);
  while (t < spec.horizon_s && (spec.max_jobs == 0 || jobs.size() < spec.max_jobs)) {
    MixJob job;
    job.workload = spec.workloads[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(spec.workloads.size()) - 1))];
    job.input_bytes = spec.input_sizes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(spec.input_sizes.size()) - 1))];
    job.submit_at = t;
    jobs.push_back(job);
    t += rng.exponential(spec.arrival_rate);
  }
  return jobs;
}

std::vector<hadoop::JobResult> run_iterative(hadoop::HadoopCluster& cluster, Workload workload,
                                             const std::string& initial_input,
                                             std::size_t iterations,
                                             std::size_t num_reducers) {
  if (iterations == 0) throw std::invalid_argument("run_iterative: need >= 1 iteration");
  std::vector<hadoop::JobResult> results;
  results.reserve(iterations);
  std::vector<std::string> inputs = {initial_input};
  for (std::size_t i = 0; i < iterations; ++i) {
    hadoop::JobSpec spec;
    spec.profile = profile(workload);
    spec.profile.name = std::string(workload_name(workload)) + "_iter" + std::to_string(i);
    spec.input_file = inputs.front();
    spec.extra_inputs.assign(inputs.begin() + 1, inputs.end());
    spec.num_reducers = num_reducers;
    results.push_back(cluster.run_job(spec));
    inputs = results.back().output_files;
    if (inputs.empty()) throw std::logic_error("run_iterative: iteration produced no output");
  }
  return results;
}

std::vector<RunOutcome> run_grid(const hadoop::ClusterConfig& config,
                                 std::span<const Workload> workloads,
                                 std::span<const std::uint64_t> input_sizes,
                                 std::size_t repetitions, std::uint64_t base_seed,
                                 std::size_t threads, core::SweepProgress progress,
                                 const hadoop::FaultPlan& faults) {
  const std::size_t cells = workloads.size() * input_sizes.size() * repetitions;
  core::SweepRunner runner({.threads = threads, .progress = std::move(progress)});
  // Flattened (workload, size, repetition) cell -> independent simulation;
  // the derived seed depends only on the cell index, never on scheduling.
  return runner.map(cells, [&](std::size_t cell) {
    const std::size_t per_workload = input_sizes.size() * repetitions;
    const Workload w = workloads[cell / per_workload];
    const std::uint64_t bytes = input_sizes[(cell % per_workload) / repetitions];
    return run_single(config, w, bytes, 0, util::derive_seed(base_seed, cell), faults);
  });
}

}  // namespace keddah::workloads
