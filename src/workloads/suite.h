// Experiment suite driver: runs (workload, input size) grids on fresh
// emulated clusters and returns (result, trace) pairs — the raw material
// for Keddah's modelling stage and for every bench.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "capture/trace.h"
#include "hadoop/cluster.h"
#include "core/sweep.h"
#include "util/rng.h"
#include "workloads/profiles.h"

namespace keddah::workloads {

/// One captured job run.
struct RunOutcome {
  Workload workload = Workload::kSort;
  std::uint64_t input_bytes = 0;
  std::size_t num_reducers = 0;
  std::uint64_t seed = 0;
  hadoop::JobResult result;
  capture::Trace trace;
  /// Injected faults and recovery counters (all zero on clean runs).
  hadoop::FaultStats faults;
};

/// Runs one job on a fresh cluster built from `config`, capturing its
/// flows. `num_reducers == 0` selects default_reducers(input_bytes). A
/// non-empty `faults` plan is scheduled on the cluster before the job runs.
RunOutcome run_single(const hadoop::ClusterConfig& config, Workload workload,
                      std::uint64_t input_bytes, std::size_t num_reducers, std::uint64_t seed,
                      const hadoop::FaultPlan& faults = {});

/// Runs `repetitions` seeds of every (workload, input size) combination,
/// fanned out across `threads` workers (0 = hardware concurrency, 1 =
/// serial). Each cell runs on a fresh cluster seeded with
/// util::derive_seed(base_seed, cell index), so the outcome vector —
/// ordered workload-major, then size, then repetition — is bit-identical
/// at any thread count. The same `faults` plan (if any) is injected into
/// every cell, so a whole capture grid can run under identical faults.
std::vector<RunOutcome> run_grid(const hadoop::ClusterConfig& config,
                                 std::span<const Workload> workloads,
                                 std::span<const std::uint64_t> input_sizes,
                                 std::size_t repetitions, std::uint64_t base_seed,
                                 std::size_t threads = 1, core::SweepProgress progress = {},
                                 const hadoop::FaultPlan& faults = {});

/// One job of a concurrent mix.
struct MixJob {
  Workload workload = Workload::kSort;
  std::uint64_t input_bytes = 0;
  /// 0 selects default_reducers(input_bytes).
  std::size_t num_reducers = 0;
  /// Submission time, seconds from simulation start.
  double submit_at = 0.0;
};

/// A captured concurrent-jobs run: per-job results (in MixJob order) plus
/// the single cluster-wide trace (jobs distinguishable via job_id).
struct MixOutcome {
  std::vector<hadoop::JobResult> results;
  /// job id assigned to each MixJob, in order.
  std::vector<std::uint32_t> job_ids;
  capture::Trace trace;
};

/// Runs several jobs CONCURRENTLY on one cluster (contending for containers
/// and bandwidth), submitting each at its `submit_at` time.
MixOutcome run_mix(const hadoop::ClusterConfig& config, std::span<const MixJob> jobs,
                   std::uint64_t seed);

/// Cluster-load description for sampled mixes: each arrival draws a
/// workload uniformly from `workloads` and an input size uniformly from
/// `input_sizes`.
struct PoissonMixSpec {
  std::vector<Workload> workloads;
  std::vector<std::uint64_t> input_sizes;
  /// Mean job arrival rate, jobs/second.
  double arrival_rate = 0.01;
  /// Arrivals are drawn on [0, horizon_s).
  double horizon_s = 600.0;
  /// Cap on generated jobs (0 = unlimited).
  std::size_t max_jobs = 0;
};

/// Samples a Poisson-arrival job mix (the "realistic scenario" load shape:
/// memoryless job submissions, as in production cluster traces).
std::vector<MixJob> sample_poisson_mix(const PoissonMixSpec& spec, util::Rng& rng);

/// Runs an ITERATIVE workload (PageRank/KMeans style): iteration k+1 reads
/// iteration k's output part files as its input. Returns one result per
/// iteration, all captured in the cluster's single trace. The cluster must
/// already hold the initial input file.
std::vector<hadoop::JobResult> run_iterative(hadoop::HadoopCluster& cluster, Workload workload,
                                             const std::string& initial_input,
                                             std::size_t iterations, std::size_t num_reducers);

}  // namespace keddah::workloads
