// Multi-rack scale scenario generator: a 10k-host oversubscribed fat-tree
// plus a columnar flow schedule of rack-local shuffle waves and dedicated
// cross-pod waves. This is the workload behind bench/perf_scale and the
// scale-smoke CI job: large enough to need the columnar flow arena and the
// mmap'd capture spill, shaped so the fair-share solver's connected
// components stay bounded (rack-local waves never merge racks; the cross
// waves run in their own time windows and stress the oversubscribed core).
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"

namespace keddah::workloads {

/// Knobs for the scale scenario. Defaults produce a k=36 fat-tree
/// (11664 hosts) and just over one million flows.
struct ScaleSpec {
  /// Minimum host count; rounded up to the next fat-tree size (k^3/4).
  std::size_t target_hosts = 10000;
  /// Fat-tree uplink oversubscription (edge->agg and agg->core tiers run at
  /// access rate / this); 1.0 is full bisection.
  double oversubscription = 4.0;
  /// Host access-link rate.
  double link_gbps = 10.0;
  /// Per-link one-way latency.
  double latency_s = 20e-6;

  /// Rack-local all-to-all waves (each host sources flows to rack peers).
  std::size_t local_waves = 16;
  std::size_t flows_per_host_per_wave = 5;
  /// Cross-pod waves exercising the oversubscribed core, each in its own
  /// time window after the local waves.
  std::size_t cross_waves = 2;
  std::size_t cross_flows_per_wave = 35000;

  /// Wave start spacing and per-flow start jitter within a wave.
  double wave_spacing_s = 0.5;
  double wave_jitter_s = 0.3;

  /// Flow sizes are lognormal around these medians.
  double local_flow_median_bytes = 2.0e6;
  double cross_flow_median_bytes = 1.0e6;
  double flow_sigma = 0.6;

  std::uint64_t seed = 1;
};

/// Smallest even k with k^3/4 >= hosts (fat-tree sizing).
std::size_t fat_tree_k_for_hosts(std::size_t hosts);

/// Builds the spec's oversubscribed fat-tree.
net::Topology make_scale_topology(const ScaleSpec& spec);

/// The generated schedule, struct-of-arrays like everything else on the
/// scale path: four parallel columns, one row per flow, sorted by start
/// time (ties keep generation order, so the schedule is deterministic in
/// the spec alone).
struct ScaleSchedule {
  std::vector<net::NodeId> src;
  std::vector<net::NodeId> dst;
  std::vector<double> bytes;
  std::vector<double> start;

  std::size_t size() const { return src.size(); }
};

/// Generates the wave schedule for `topo` (which must be the spec's
/// topology or one shaped like it).
ScaleSchedule make_scale_schedule(const net::Topology& topo, const ScaleSpec& spec);

}  // namespace keddah::workloads
