// HiBench-style workload profiles: the MapReduce job families the paper
// captures (WordCount, Grep, Sort, TeraSort, PageRank iteration, KMeans
// iteration, Nutch indexing), with selectivities/CPU costs chosen to match
// their well-known traffic shapes:
//   - Sort/TeraSort shuffle ~ their input and write ~ their input,
//   - Grep/WordCount/KMeans shuffle a tiny fraction of the input,
//   - PageRank expands records in flight and exhibits key skew.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "hadoop/job.h"

namespace keddah::workloads {

/// Stable workload identifiers.
enum class Workload {
  kWordCount,
  kGrep,
  kSort,
  kTeraSort,
  kPageRank,
  kKMeans,
  kNutchIndex,
};

/// All workloads in canonical order.
std::span<const Workload> all_workloads();

/// Canonical name ("wordcount", "sort", ...).
const char* workload_name(Workload w);

/// Inverse of workload_name; throws std::invalid_argument on unknown names.
Workload workload_from_name(const std::string& name);

/// The job profile (selectivities, CPU costs, skew) for a workload.
hadoop::JobProfile profile(Workload w);

/// Suggested reducer count for a given input size (mirrors how operators
/// scale reducers with data: ~1 reducer per GB, clamped to [4, 64]).
std::size_t default_reducers(std::uint64_t input_bytes);

/// Builds a ready-to-submit JobSpec (input file must exist or be ingested
/// by the cluster facade).
hadoop::JobSpec make_spec(Workload w, const std::string& input_file, std::size_t num_reducers);

}  // namespace keddah::workloads
