// Tests for keddah-detlint: every seeded-hazard fixture under
// tests/fixtures/detlint must produce exactly the finding its `// expect:`
// header names, the allow-comment fixture must scan clean with one recorded
// suppression, and the real sources under src/ must have zero unsuppressed
// findings. Fixture/source locations come from compile definitions set by
// tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "lint/detlint.h"

namespace kl = keddah::lint;

namespace {

std::string fixture(const std::string& name) {
  return std::string(KEDDAH_DETLINT_FIXTURES) + "/" + name;
}

/// Scans one fixture (plus its paired header, for the member fixture) and
/// asserts every finding carries the expected rule, with at least one.
kl::DetlintReport expect_only_rule(const std::vector<std::string>& names,
                                   const std::string& rule) {
  std::vector<std::string> paths;
  paths.reserve(names.size());
  for (const auto& n : names) paths.push_back(fixture(n));
  const kl::DetlintReport report = kl::detlint_paths(paths);
  EXPECT_FALSE(report.ok()) << names.front() << " should trigger " << rule;
  for (const auto& d : report.diagnostics) {
    EXPECT_EQ(d.rule, rule) << d.to_string();
    EXPECT_GT(d.line, 0u);
    EXPECT_NE(d.file.find(KEDDAH_DETLINT_FIXTURES), std::string::npos);
  }
  return report;
}

TEST(DetlintFixtures, MemberIterationAcrossHeaderPair) {
  const auto report =
      expect_only_rule({"unordered_member_iter.h", "unordered_member_iter.cpp"},
                       "unordered-iter");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  // The declaration lives in the header; the hazard is the .cpp iteration.
  EXPECT_NE(report.diagnostics[0].file.find(".cpp"), std::string::npos);
  EXPECT_NE(report.diagnostics[0].message.find("entries"), std::string::npos);
}

TEST(DetlintFixtures, LocalIteration) {
  const auto report = expect_only_rule({"unordered_local_iter.cpp"}, "unordered-iter");
  EXPECT_EQ(report.diagnostics.size(), 1u);
}

TEST(DetlintFixtures, ReturnValueIteration) {
  const auto report = expect_only_rule({"unordered_return_iter.cpp"}, "unordered-iter");
  EXPECT_EQ(report.diagnostics.size(), 1u);
}

TEST(DetlintFixtures, ExplicitBeginIteration) {
  expect_only_rule({"unordered_begin_iter.cpp"}, "unordered-iter");
}

TEST(DetlintFixtures, PointerKeyedMap) {
  const auto report = expect_only_rule({"pointer_key_map.cpp"}, "pointer-key");
  EXPECT_EQ(report.diagnostics.size(), 1u);
}

TEST(DetlintFixtures, PointerKeyedSet) {
  const auto report = expect_only_rule({"pointer_key_set.cpp"}, "pointer-key");
  EXPECT_EQ(report.diagnostics.size(), 1u);
}

TEST(DetlintFixtures, RandomDevice) {
  expect_only_rule({"random_device_seed.cpp"}, "random-device");
}

TEST(DetlintFixtures, WallClock) {
  expect_only_rule({"wall_clock_now.cpp"}, "wall-clock");
}

TEST(DetlintFixtures, BareMutexMember) {
  // The fixture suppresses its own <mutex> include; only the raw member
  // declaration should remain.
  const auto report = expect_only_rule({"bare_mutex_member.cpp"}, "bare-mutex");
  EXPECT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.suppressions_used, 1u);
}

TEST(DetlintFixtures, AllowCommentSuppresses) {
  const kl::DetlintReport report =
      kl::detlint_paths({fixture("allowed_unordered_iter.cpp")});
  EXPECT_TRUE(report.ok())
      << (report.diagnostics.empty() ? "" : report.diagnostics[0].to_string());
  EXPECT_EQ(report.suppressions_used, 1u);
}

// Every fixture's first line declares the rule it seeds (`// expect: <rule>`
// or `// expect: clean`), so the fixture set stays self-describing and
// tools/check_static.sh can replay the same contract from the shell.
TEST(DetlintFixtures, ExpectHeadersNameKnownRules) {
  const auto& rules = kl::detlint_rule_ids();
  const std::vector<std::string> names = {
      "unordered_member_iter.cpp", "unordered_local_iter.cpp",
      "unordered_return_iter.cpp", "unordered_begin_iter.cpp",
      "pointer_key_map.cpp",       "pointer_key_set.cpp",
      "random_device_seed.cpp",    "wall_clock_now.cpp",
      "bare_mutex_member.cpp",     "allowed_unordered_iter.cpp"};
  for (const auto& name : names) {
    std::ifstream in(fixture(name));
    ASSERT_TRUE(in.good()) << name;
    std::string first_line;
    std::getline(in, first_line);
    const std::string prefix = "// expect: ";
    ASSERT_EQ(first_line.rfind(prefix, 0), 0u) << name;
    const std::string expected = first_line.substr(prefix.size());
    const bool known =
        expected == "clean" ||
        std::find(rules.begin(), rules.end(), expected) != rules.end();
    EXPECT_TRUE(known) << name << " declares unknown rule " << expected;
  }
}

TEST(DetlintRules, RuleIdsAreSortedAndStable) {
  const auto& rules = kl::detlint_rule_ids();
  const std::vector<std::string> expected = {"bare-mutex", "pointer-key",
                                             "random-device", "unordered-iter",
                                             "wall-clock"};
  EXPECT_EQ(rules, expected);
}

TEST(DetlintSources, DiagnosticFormatMatchesLintStyle) {
  const kl::DetlintReport report = kl::detlint_sources(
      {{"demo.cpp", "#include <random>\nstd::random_device rd;\n"}});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const std::string s = report.diagnostics[0].to_string();
  EXPECT_NE(s.find("demo.cpp: line 2: [random-device]"), std::string::npos) << s;
}

// The contract the CI gate enforces: the shipped sources carry zero
// unsuppressed determinism hazards.
TEST(DetlintSources, RepoSourcesScanClean) {
  const kl::DetlintReport report = kl::detlint_paths({KEDDAH_SRC_DIR});
  for (const auto& d : report.diagnostics) ADD_FAILURE() << d.to_string();
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.files_scanned, 50u);
}

}  // namespace
