// Tests for ModelBank (config-conditional model registry) and the HDFS
// balancer / storage accounting extensions.
#include <gtest/gtest.h>

#include <cstdio>

#include "capture/collector.h"
#include "hadoop/hdfs.h"
#include "model/model_bank.h"
#include "net/network.h"

namespace km = keddah::model;
namespace kh = keddah::hadoop;
namespace kn = keddah::net;
namespace kc = keddah::capture;
namespace ks = keddah::sim;
namespace ku = keddah::util;

namespace {

km::KeddahModel make_model(const std::string& job, std::uint64_t block, std::uint32_t repl,
                           std::size_t nodes, double duration_intercept) {
  km::KeddahModel m;
  m.set_job_name(job);
  m.context().block_size = block;
  m.context().replication = repl;
  m.context().cluster_nodes = nodes;
  m.duration_model().intercept = duration_intercept;
  return m;
}

}  // namespace

TEST(ModelBank, AddAndEnumerate) {
  km::ModelBank bank;
  EXPECT_TRUE(bank.empty());
  bank.add(make_model("sort", 128 << 20, 3, 16, 1));
  bank.add(make_model("sort", 64 << 20, 3, 16, 2));
  bank.add(make_model("grep", 128 << 20, 3, 16, 3));
  EXPECT_EQ(bank.size(), 3u);
  EXPECT_EQ(bank.job_names(), (std::vector<std::string>{"grep", "sort"}));
  EXPECT_EQ(bank.models_for("sort").size(), 2u);
  EXPECT_TRUE(bank.models_for("hive").empty());
}

TEST(ModelBank, ExactMatch) {
  km::ModelBank bank;
  bank.add(make_model("sort", 128 << 20, 3, 16, 1));
  bank.add(make_model("sort", 64 << 20, 2, 8, 2));
  const auto* hit = bank.find_exact("sort", 64 << 20, 2, 8);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->duration_model().intercept, 2.0);
  EXPECT_EQ(bank.find_exact("sort", 256 << 20, 3, 16), nullptr);
  EXPECT_EQ(bank.find_exact("grep", 128 << 20, 3, 16), nullptr);
}

TEST(ModelBank, SelectsNearestConfiguration) {
  km::ModelBank bank;
  bank.add(make_model("sort", 128 << 20, 3, 16, 1));   // reference
  bank.add(make_model("sort", 64 << 20, 3, 16, 2));    // block off by 1 octave
  bank.add(make_model("sort", 128 << 20, 1, 16, 3));   // replication off by 2
  // Asking for 128MB/r3/32 nodes: nearest is the reference (1 octave on
  // nodes) vs block-64 (1 octave block + 1 octave nodes).
  const auto* pick = bank.select("sort", 128 << 20, 3, 32);
  ASSERT_NE(pick, nullptr);
  EXPECT_DOUBLE_EQ(pick->duration_model().intercept, 1.0);
  // Exact config always wins.
  EXPECT_DOUBLE_EQ(bank.select("sort", 64 << 20, 3, 16)->duration_model().intercept, 2.0);
  EXPECT_EQ(bank.select("hive", 128 << 20, 3, 16), nullptr);
}

TEST(ModelBank, ConfigDistanceProperties) {
  km::TrainingContext ctx;
  ctx.block_size = 128 << 20;
  ctx.replication = 3;
  ctx.cluster_nodes = 16;
  EXPECT_DOUBLE_EQ(km::ModelBank::config_distance(ctx, 128 << 20, 3, 16), 0.0);
  EXPECT_DOUBLE_EQ(km::ModelBank::config_distance(ctx, 256 << 20, 3, 16), 1.0);
  EXPECT_DOUBLE_EQ(km::ModelBank::config_distance(ctx, 128 << 20, 1, 16), 2.0);
  EXPECT_DOUBLE_EQ(km::ModelBank::config_distance(ctx, 128 << 20, 3, 64), 2.0);
}

TEST(ModelBank, FileRoundTrip) {
  km::ModelBank bank;
  bank.add(make_model("sort", 128 << 20, 3, 16, 7));
  bank.add(make_model("grep", 64 << 20, 2, 8, 9));
  const std::string path = ::testing::TempDir() + "/keddah_bank.json";
  bank.save(path);
  const auto loaded = km::ModelBank::load(path);
  EXPECT_EQ(loaded.size(), 2u);
  const auto* sort_model = loaded.select("sort", 128 << 20, 3, 16);
  ASSERT_NE(sort_model, nullptr);
  EXPECT_DOUBLE_EQ(sort_model->duration_model().intercept, 7.0);
  std::remove(path.c_str());
}

TEST(ModelBank, PointersStableAcrossAdds) {
  km::ModelBank bank;
  bank.add(make_model("sort", 128 << 20, 3, 16, 1));
  const auto* first = bank.select("sort", 128 << 20, 3, 16);
  for (int i = 0; i < 50; ++i) bank.add(make_model("grep", 128 << 20, 3, 16, i));
  EXPECT_EQ(bank.select("sort", 128 << 20, 3, 16), first);
}

// ---------------------------------------------------------------- balancer

namespace {

struct BalancerHarness {
  ks::Simulator sim;
  kh::ClusterConfig config;
  std::unique_ptr<kn::Network> net;
  std::unique_ptr<kc::FlowCollector> collector;
  std::unique_ptr<kh::HdfsCluster> hdfs;

  BalancerHarness() {
    config.racks = 2;
    config.hosts_per_rack = 4;
    config.block_size = 64ull << 20;
    config.replication = 2;
    net = std::make_unique<kn::Network>(sim, config.build_topology());
    collector = std::make_unique<kc::FlowCollector>(*net);
    hdfs = std::make_unique<kh::HdfsCluster>(*net, net->topology().hosts(), config,
                                             ku::Rng(3));
  }
};

}  // namespace

TEST(Balancer, UsageAccounting) {
  BalancerHarness h;
  h.hdfs->ingest_file("f", 512ull << 20);  // 8 blocks x 2 replicas x 64 MB
  const auto usage = h.hdfs->datanode_usage();
  EXPECT_EQ(usage.size(), 8u);
  std::uint64_t total = 0;
  for (const auto& [node, bytes] : usage) {
    (void)node;
    total += bytes;
  }
  EXPECT_EQ(total, 2ull * 512ull * (1 << 20));
  EXPECT_GE(h.hdfs->storage_imbalance(), 1.0);
}

TEST(Balancer, ReducesImbalanceAndEmitsTraffic) {
  BalancerHarness h;
  // Many files: random placement leaves residual imbalance.
  for (int i = 0; i < 12; ++i) {
    h.hdfs->ingest_file("f" + std::to_string(i), 256ull << 20);
  }
  const double before = h.hdfs->storage_imbalance();
  const auto moves = h.hdfs->run_balancer(0.05, 100);
  h.sim.run();
  const double after = h.hdfs->storage_imbalance();
  if (before > 1.10) {
    EXPECT_GT(moves, 0u);
    EXPECT_LT(after, before);
  }
  // Every balancer move is an HDFS-write flow with job_id 0.
  EXPECT_EQ(h.collector->trace().size(), moves);
  for (const auto& r : h.collector->trace().records()) {
    EXPECT_EQ(kc::classify_by_ports(r), kn::FlowKind::kHdfsWrite);
    EXPECT_EQ(r.job_id, 0u);
  }
}

TEST(Balancer, NoopWhenBalanced) {
  BalancerHarness h;
  // Empty filesystem: nothing to move.
  EXPECT_EQ(h.hdfs->run_balancer(), 0u);
  EXPECT_DOUBLE_EQ(h.hdfs->storage_imbalance(), 0.0);
}

TEST(Balancer, RespectsMoveCap) {
  BalancerHarness h;
  for (int i = 0; i < 12; ++i) {
    h.hdfs->ingest_file("g" + std::to_string(i), 256ull << 20);
  }
  const auto moves = h.hdfs->run_balancer(0.0, 3);
  EXPECT_LE(moves, 3u);
}

TEST(Balancer, PreservesReplicaCountAndDistinctness) {
  BalancerHarness h;
  for (int i = 0; i < 8; ++i) {
    h.hdfs->ingest_file("h" + std::to_string(i), 256ull << 20);
  }
  h.hdfs->run_balancer(0.0, 200);
  h.sim.run();
  for (int i = 0; i < 8; ++i) {
    for (const auto& block : h.hdfs->file_by_name("h" + std::to_string(i)).blocks) {
      EXPECT_EQ(block.replicas.size(), 2u);
      EXPECT_NE(block.replicas[0], block.replicas[1]);
    }
  }
}
