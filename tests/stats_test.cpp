// Unit and property tests for the statistics library: special functions,
// summaries, ECDF, histograms, distribution objects, MLE fitting, KS tests,
// regression. Parameterized suites sweep distribution families to check the
// fit-recovers-parameters property.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/distributions.h"
#include "stats/ecdf.h"
#include "stats/fitting.h"
#include "stats/histogram.h"
#include "stats/kstest.h"
#include "stats/regression.h"
#include "stats/special.h"
#include "stats/summary.h"
#include "util/rng.h"

namespace kst = keddah::stats;
namespace ku = keddah::util;

// ---------------------------------------------------------------- special

TEST(Special, DigammaKnownValues) {
  // psi(1) = -gamma_E, psi(2) = 1 - gamma_E.
  const double euler = 0.5772156649015329;
  EXPECT_NEAR(kst::digamma(1.0), -euler, 1e-10);
  EXPECT_NEAR(kst::digamma(2.0), 1.0 - euler, 1e-10);
  EXPECT_NEAR(kst::digamma(0.5), -euler - 2.0 * std::log(2.0), 1e-10);
}

TEST(Special, DigammaRecurrence) {
  // psi(x+1) = psi(x) + 1/x.
  for (const double x : {0.3, 1.7, 4.2, 11.0}) {
    EXPECT_NEAR(kst::digamma(x + 1.0), kst::digamma(x) + 1.0 / x, 1e-10);
  }
}

TEST(Special, TrigammaKnownValues) {
  EXPECT_NEAR(kst::trigamma(1.0), M_PI * M_PI / 6.0, 1e-9);
  for (const double x : {0.4, 2.3, 7.7}) {
    EXPECT_NEAR(kst::trigamma(x + 1.0), kst::trigamma(x) - 1.0 / (x * x), 1e-9);
  }
}

TEST(Special, DigammaDomain) {
  EXPECT_THROW(kst::digamma(0.0), std::domain_error);
  EXPECT_THROW(kst::trigamma(-1.0), std::domain_error);
}

TEST(Special, IncompleteGammaMatchesExponential) {
  // P(1, x) = 1 - e^{-x}.
  for (const double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(kst::reg_lower_incomplete_gamma(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(Special, IncompleteGammaMatchesChiSquared) {
  // Chi^2_2 CDF at x is P(1, x/2); chi^2_4 CDF is P(2, x/2).
  EXPECT_NEAR(kst::reg_lower_incomplete_gamma(2.0, 1.0), 1.0 - 2.0 * std::exp(-1.0), 1e-12);
}

TEST(Special, IncompleteGammaEdges) {
  EXPECT_DOUBLE_EQ(kst::reg_lower_incomplete_gamma(2.0, 0.0), 0.0);
  EXPECT_NEAR(kst::reg_lower_incomplete_gamma(2.0, 1e3), 1.0, 1e-12);
  EXPECT_THROW(kst::reg_lower_incomplete_gamma(0.0, 1.0), std::domain_error);
  EXPECT_THROW(kst::reg_lower_incomplete_gamma(1.0, -1.0), std::domain_error);
}

TEST(Special, KolmogorovQBehaviour) {
  EXPECT_DOUBLE_EQ(kst::kolmogorov_q(0.0), 1.0);
  EXPECT_NEAR(kst::kolmogorov_q(1.36), 0.05, 0.002);  // classic 5% critical value
  EXPECT_LT(kst::kolmogorov_q(3.0), 1e-6);
  EXPECT_GT(kst::kolmogorov_q(0.5), 0.95);
}

TEST(Special, NormalCdfQuantileInverse) {
  for (const double p : {0.001, 0.05, 0.3, 0.5, 0.77, 0.999}) {
    EXPECT_NEAR(kst::normal_cdf(kst::normal_quantile(p)), p, 1e-9);
  }
  EXPECT_THROW(kst::normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(kst::normal_quantile(1.0), std::domain_error);
}

// ---------------------------------------------------------------- summary

TEST(Summary, BasicMoments) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const auto s = kst::summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.variance, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.sum, 15.0);
}

TEST(Summary, EmptyIsZeroed) {
  const auto s = kst::summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summary, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(kst::quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(kst::quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(kst::quantile(xs, 1.0), 10.0);
}

TEST(Summary, QuantileEmptyThrows) {
  EXPECT_THROW(kst::quantile_sorted({}, 0.5), std::invalid_argument);
}

// ---------------------------------------------------------------- ecdf

TEST(Ecdf, StepFunction) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  kst::Ecdf e(xs);
  EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.cdf(99.0), 1.0);
}

TEST(Ecdf, QuantileRoundTrip) {
  ku::Rng rng(1);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.normal(50.0, 10.0);
  kst::Ecdf e(xs);
  EXPECT_NEAR(e.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(e.cdf(e.quantile(0.9)), 0.9, 0.01);
}

TEST(Ecdf, SampleMatchesSource) {
  ku::Rng rng(2);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.exponential(0.1);
  kst::Ecdf e(xs);
  ku::Rng rng2(3);
  std::vector<double> resampled(2000);
  for (auto& x : resampled) x = e.sample(rng2);
  EXPECT_LT(kst::ks_statistic_two_sample(xs, resampled), 0.05);
}

TEST(Ecdf, EmptyThrows) {
  kst::Ecdf e;
  EXPECT_TRUE(e.empty());
  EXPECT_THROW(e.cdf(1.0), std::logic_error);
  EXPECT_THROW(e.quantile(0.5), std::logic_error);
}

TEST(Ecdf, CurveIsMonotone) {
  ku::Rng rng(4);
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.lognormal(10.0, 2.0);
  kst::Ecdf e(xs);
  const auto curve = e.curve(40);
  ASSERT_EQ(curve.size(), 40u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
}

// ---------------------------------------------------------------- histogram

TEST(Histogram, LinearBinning) {
  const std::vector<double> xs = {0.5, 1.5, 1.6, 2.5, 9.9};
  const auto h = kst::Histogram::linear(xs, 0.0, 10.0, 10);
  EXPECT_EQ(h.num_bins(), 10u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.4);
}

TEST(Histogram, OutOfRangeClamps) {
  const std::vector<double> xs = {-5.0, 100.0};
  const auto h = kst::Histogram::linear(xs, 0.0, 10.0, 2);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, LogBinsSpanDecades) {
  const std::vector<double> xs = {10.0, 100.0, 1000.0, 150.0};
  const auto h = kst::Histogram::log10(xs, 10.0, 10000.0, 3);
  EXPECT_EQ(h.count(0), 1u);   // [10, 100)
  EXPECT_EQ(h.count(1), 2u);   // [100, 1000)
  EXPECT_EQ(h.count(2), 1u);   // [1000, 10000)
  EXPECT_NEAR(h.edge(1), 100.0, 1e-9);
}

TEST(Histogram, BadSpecsThrow) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(kst::Histogram::linear(xs, 5.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(kst::Histogram::linear(xs, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(kst::Histogram::log10(xs, 0.0, 10.0, 2), std::invalid_argument);
}

TEST(Histogram, AsciiRenders) {
  const std::vector<double> xs = {1.0, 1.0, 2.0};
  const auto h = kst::Histogram::linear(xs, 0.0, 4.0, 4);
  EXPECT_NE(h.ascii().find('#'), std::string::npos);
}

// ---------------------------------------------------------------- distributions

TEST(Distribution, ExponentialBasics) {
  const auto d = kst::Distribution::exponential(2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.5);
  EXPECT_NEAR(d.cdf(d.quantile(0.3)), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(d.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.pdf(0.0), 2.0);
}

TEST(Distribution, LognormalQuantileCdfInverse) {
  const auto d = kst::Distribution::lognormal(12.0, 1.5);
  for (const double q : {0.05, 0.3, 0.5, 0.95}) {
    EXPECT_NEAR(d.cdf(d.quantile(q)), q, 1e-8);
  }
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
}

TEST(Distribution, WeibullMedian) {
  const auto d = kst::Distribution::weibull(2.0, 3.0);
  EXPECT_NEAR(d.quantile(0.5), 3.0 * std::pow(std::log(2.0), 0.5), 1e-10);
}

TEST(Distribution, GammaQuantileInvertsCdf) {
  const auto d = kst::Distribution::gamma_dist(3.5, 2.0);
  for (const double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(d.cdf(d.quantile(q)), q, 1e-9);
  }
}

TEST(Distribution, ParetoSupportAndMean) {
  const auto d = kst::Distribution::pareto(5.0, 3.0);
  EXPECT_DOUBLE_EQ(d.cdf(4.0), 0.0);
  EXPECT_DOUBLE_EQ(d.mean(), 7.5);
  const auto heavy = kst::Distribution::pareto(5.0, 0.9);
  EXPECT_TRUE(std::isinf(heavy.mean()));
}

TEST(Distribution, UniformAndConstant) {
  const auto u = kst::Distribution::uniform(2.0, 6.0);
  EXPECT_DOUBLE_EQ(u.mean(), 4.0);
  EXPECT_DOUBLE_EQ(u.cdf(4.0), 0.5);
  EXPECT_DOUBLE_EQ(u.quantile(0.25), 3.0);
  const auto c = kst::Distribution::constant(7.0);
  EXPECT_DOUBLE_EQ(c.mean(), 7.0);
  EXPECT_DOUBLE_EQ(c.cdf(6.9), 0.0);
  EXPECT_DOUBLE_EQ(c.cdf(7.0), 1.0);
  ku::Rng rng(1);
  EXPECT_DOUBLE_EQ(c.sample(rng), 7.0);
}

TEST(Distribution, InvalidParamsThrow) {
  EXPECT_THROW(kst::Distribution::exponential(0.0), std::invalid_argument);
  EXPECT_THROW(kst::Distribution::weibull(-1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(kst::Distribution::pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(kst::Distribution::uniform(3.0, 1.0), std::invalid_argument);
}

TEST(Distribution, JsonRoundTrip) {
  const auto d = kst::Distribution::lognormal(13.25, 0.75);
  const auto restored = kst::Distribution::from_json(d.to_json());
  EXPECT_EQ(restored.family(), kst::DistFamily::kLognormal);
  EXPECT_DOUBLE_EQ(restored.param1(), 13.25);
  EXPECT_DOUBLE_EQ(restored.param2(), 0.75);
}

TEST(Distribution, FamilyNamesRoundTrip) {
  for (const auto f : kst::all_families()) {
    EXPECT_EQ(kst::family_from_name(kst::family_name(f)), f);
  }
  EXPECT_THROW(kst::family_from_name("cauchy"), std::invalid_argument);
}

TEST(Distribution, DescribeMentionsFamily) {
  EXPECT_NE(kst::Distribution::weibull(1.0, 2.0).describe().find("weibull"), std::string::npos);
}

// Property: sampling N draws from each family and computing the one-sample
// KS statistic against the same distribution should be small.
class DistributionSampling : public ::testing::TestWithParam<kst::DistFamily> {};

TEST_P(DistributionSampling, SamplesMatchCdf) {
  const auto family = GetParam();
  kst::Distribution d;
  switch (family) {
    case kst::DistFamily::kExponential:
      d = kst::Distribution::exponential(0.01);
      break;
    case kst::DistFamily::kNormal:
      d = kst::Distribution::normal(100.0, 15.0);
      break;
    case kst::DistFamily::kLognormal:
      d = kst::Distribution::lognormal(10.0, 1.0);
      break;
    case kst::DistFamily::kWeibull:
      d = kst::Distribution::weibull(1.5, 200.0);
      break;
    case kst::DistFamily::kGamma:
      d = kst::Distribution::gamma_dist(2.5, 40.0);
      break;
    case kst::DistFamily::kPareto:
      d = kst::Distribution::pareto(10.0, 2.5);
      break;
    case kst::DistFamily::kUniform:
      d = kst::Distribution::uniform(5.0, 25.0);
      break;
    case kst::DistFamily::kConstant:
      GTEST_SKIP() << "degenerate family";
  }
  ku::Rng rng(99);
  std::vector<double> xs(4000);
  for (auto& x : xs) x = d.sample(rng);
  const double ks = kst::ks_statistic(xs, d);
  // 1% critical value for n=4000 is ~0.0258.
  EXPECT_LT(ks, 0.026) << d.describe();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DistributionSampling,
                         ::testing::Values(kst::DistFamily::kExponential,
                                           kst::DistFamily::kNormal,
                                           kst::DistFamily::kLognormal,
                                           kst::DistFamily::kWeibull, kst::DistFamily::kGamma,
                                           kst::DistFamily::kPareto, kst::DistFamily::kUniform),
                         [](const auto& info) { return kst::family_name(info.param); });

// ---------------------------------------------------------------- fitting

// Property: MLE applied to samples of a known distribution recovers its
// parameters to a few percent.
class FitRecovery : public ::testing::TestWithParam<kst::DistFamily> {};

TEST_P(FitRecovery, RecoverParameters) {
  const auto family = GetParam();
  kst::Distribution truth;
  switch (family) {
    case kst::DistFamily::kExponential:
      truth = kst::Distribution::exponential(0.02);
      break;
    case kst::DistFamily::kNormal:
      truth = kst::Distribution::normal(500.0, 60.0);
      break;
    case kst::DistFamily::kLognormal:
      truth = kst::Distribution::lognormal(11.0, 0.7);
      break;
    case kst::DistFamily::kWeibull:
      truth = kst::Distribution::weibull(1.8, 300.0);
      break;
    case kst::DistFamily::kGamma:
      truth = kst::Distribution::gamma_dist(3.0, 50.0);
      break;
    case kst::DistFamily::kPareto:
      truth = kst::Distribution::pareto(100.0, 2.2);
      break;
    case kst::DistFamily::kUniform:
      truth = kst::Distribution::uniform(10.0, 90.0);
      break;
    case kst::DistFamily::kConstant:
      GTEST_SKIP();
  }
  ku::Rng rng(7);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = truth.sample(rng);
  const auto fit = kst::fit_family(family, xs);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->dist.param1() / truth.param1(), 1.0, 0.05) << fit->dist.describe();
  if (truth.num_params() > 1) {
    EXPECT_NEAR(fit->dist.param2() / truth.param2(), 1.0, 0.05) << fit->dist.describe();
  }
  EXPECT_LT(fit->ks, 0.02);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FitRecovery,
                         ::testing::Values(kst::DistFamily::kExponential,
                                           kst::DistFamily::kNormal,
                                           kst::DistFamily::kLognormal,
                                           kst::DistFamily::kWeibull, kst::DistFamily::kGamma,
                                           kst::DistFamily::kPareto, kst::DistFamily::kUniform),
                         [](const auto& info) { return kst::family_name(info.param); });

TEST(Fitting, SelectsGeneratingFamilyLognormal) {
  ku::Rng rng(11);
  std::vector<double> xs(8000);
  const auto truth = kst::Distribution::lognormal(12.0, 1.2);
  for (auto& x : xs) x = truth.sample(rng);
  const auto best = kst::fit_best(xs, kst::SelectBy::kKs);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->dist.family(), kst::DistFamily::kLognormal) << best->dist.describe();
}

TEST(Fitting, SelectsConstantForDegenerateSample) {
  const std::vector<double> xs(50, 128.0 * 1024 * 1024);
  const auto best = kst::fit_best(xs);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->dist.family(), kst::DistFamily::kConstant);
  EXPECT_DOUBLE_EQ(best->dist.param1(), 128.0 * 1024 * 1024);
}

TEST(Fitting, LognormalRejectsNonPositive) {
  const std::vector<double> xs = {1.0, -2.0, 3.0};
  EXPECT_FALSE(kst::fit_family(kst::DistFamily::kLognormal, xs).has_value());
  EXPECT_FALSE(kst::fit_family(kst::DistFamily::kPareto, xs).has_value());
  // Normal still applies.
  EXPECT_TRUE(kst::fit_family(kst::DistFamily::kNormal, xs).has_value());
}

TEST(Fitting, EmptySampleYieldsNothing) {
  EXPECT_FALSE(kst::fit_best({}).has_value());
  EXPECT_TRUE(kst::fit_all({}).empty());
}

TEST(Fitting, FitAllSortedByCriterion) {
  ku::Rng rng(13);
  std::vector<double> xs(3000);
  for (auto& x : xs) x = rng.exponential(0.005);
  const auto results = kst::fit_all(xs, kst::SelectBy::kKs);
  ASSERT_GE(results.size(), 3u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].ks, results[i].ks);
  }
}

TEST(Fitting, AicPenalizesParameters) {
  ku::Rng rng(17);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.exponential(0.1);
  const auto exp_fit = kst::fit_family(kst::DistFamily::kExponential, xs);
  const auto gamma_fit = kst::fit_family(kst::DistFamily::kGamma, xs);
  ASSERT_TRUE(exp_fit && gamma_fit);
  // Gamma nests exponential, so its likelihood is >= but AIC should not be
  // much better; exponential should win or nearly tie on AIC.
  EXPECT_LT(exp_fit->aic, gamma_fit->aic + 4.0);
}

// ---------------------------------------------------------------- KS tests

TEST(KsTest, ZeroDistanceForPerfectMatch) {
  std::vector<double> xs(1000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i + 1) / static_cast<double>(xs.size() + 1);
  }
  const double d = kst::ks_statistic(xs, [](double x) { return std::clamp(x, 0.0, 1.0); });
  EXPECT_LT(d, 0.01);
}

TEST(KsTest, DetectsMismatch) {
  ku::Rng rng(19);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.exponential(1.0);
  const auto wrong = kst::Distribution::normal(1.0, 1.0);
  EXPECT_GT(kst::ks_statistic(xs, wrong), 0.1);
}

TEST(KsTest, TwoSampleSameSourceSmall) {
  ku::Rng rng(23);
  std::vector<double> a(3000);
  std::vector<double> b(3000);
  for (auto& x : a) x = rng.lognormal(10.0, 1.0);
  for (auto& x : b) x = rng.lognormal(10.0, 1.0);
  const double d = kst::ks_statistic_two_sample(a, b);
  EXPECT_LT(d, 0.05);
  EXPECT_GT(kst::ks_pvalue_two_sample(d, a.size(), b.size()), 0.01);
}

TEST(KsTest, TwoSampleDifferentSourcesLarge) {
  ku::Rng rng(29);
  std::vector<double> a(2000);
  std::vector<double> b(2000);
  for (auto& x : a) x = rng.lognormal(10.0, 1.0);
  for (auto& x : b) x = rng.lognormal(11.0, 1.0);
  const double d = kst::ks_statistic_two_sample(a, b);
  EXPECT_GT(d, 0.2);
  EXPECT_LT(kst::ks_pvalue_two_sample(d, a.size(), b.size()), 1e-6);
}

TEST(KsTest, EmptyThrows) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(kst::ks_statistic({}, [](double) { return 0.5; }), std::invalid_argument);
  EXPECT_THROW(kst::ks_statistic_two_sample(xs, {}), std::invalid_argument);
  EXPECT_THROW(kst::ks_pvalue(0.1, 0), std::invalid_argument);
}

TEST(KsTest, PValueMonotoneInD) {
  EXPECT_GT(kst::ks_pvalue(0.01, 100), kst::ks_pvalue(0.2, 100));
  EXPECT_GT(kst::ks_pvalue(0.1, 10), kst::ks_pvalue(0.1, 10000));
}

// ---------------------------------------------------------------- regression

TEST(Regression, ExactLine) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {3, 5, 7, 9};  // y = 2x + 1
  const auto fit = kst::fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(10.0), 21.0, 1e-12);
}

TEST(Regression, NoisyLineHighR2) {
  ku::Rng rng(31);
  std::vector<double> xs(200);
  std::vector<double> ys(200);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i);
    ys[i] = 4.0 * xs[i] + 100.0 + rng.normal(0.0, 5.0);
  }
  const auto fit = kst::fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 4.0, 0.05);
  EXPECT_NEAR(fit.intercept, 100.0, 5.0);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(Regression, ThroughOrigin) {
  const std::vector<double> xs = {1, 2, 4};
  const std::vector<double> ys = {3, 6, 12};
  const auto fit = kst::fit_linear_through_origin(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.intercept, 0.0);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Regression, PowerLaw) {
  // y = 5 x^1.5
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 1.0; x <= 64.0; x *= 2.0) {
    xs.push_back(x);
    ys.push_back(5.0 * std::pow(x, 1.5));
  }
  const auto fit = kst::fit_power_law(xs, ys);
  EXPECT_NEAR(fit.slope, 1.5, 1e-10);
  EXPECT_NEAR(kst::predict_power(fit, 100.0), 5.0 * std::pow(100.0, 1.5), 1e-6);
}

TEST(Regression, DegenerateInputsThrow) {
  const std::vector<double> xs = {2.0, 2.0};
  const std::vector<double> ys = {1.0, 3.0};
  EXPECT_THROW(kst::fit_linear(xs, ys), std::invalid_argument);
  const std::vector<double> one = {1.0};
  const std::vector<double> two = {1.0, 2.0};
  const std::vector<double> zero = {0.0};
  const std::vector<double> mixed = {1.0, -1.0};
  const std::vector<double> ones = {1.0, 1.0};
  EXPECT_THROW(kst::fit_linear(one, two), std::invalid_argument);
  EXPECT_THROW(kst::fit_linear_through_origin(zero, one), std::invalid_argument);
  EXPECT_THROW(kst::fit_power_law(mixed, ones), std::invalid_argument);
  EXPECT_THROW(kst::predict_power(kst::LinearFit{}, -1.0), std::invalid_argument);
}

TEST(Regression, JsonRoundTrip) {
  kst::LinearFit fit;
  fit.slope = 1.25;
  fit.intercept = -3.0;
  fit.r2 = 0.87;
  fit.n = 12;
  const auto restored = kst::LinearFit::from_json(fit.to_json());
  EXPECT_DOUBLE_EQ(restored.slope, 1.25);
  EXPECT_DOUBLE_EQ(restored.intercept, -3.0);
  EXPECT_DOUBLE_EQ(restored.r2, 0.87);
  EXPECT_EQ(restored.n, 12u);
}

// ---------------------------------------------------------------- bootstrap

TEST(Bootstrap, CiCoversTrueMean) {
  ku::Rng rng(101);
  std::vector<double> xs(400);
  for (auto& x : xs) x = rng.normal(10.0, 2.0);
  ku::Rng boot_rng(102);
  const auto ci = kst::bootstrap_ci(xs, [](std::span<const double> s) { return kst::mean(s); },
                                    boot_rng, 500);
  EXPECT_LT(ci.lo, 10.0);
  EXPECT_GT(ci.hi, 10.0);
  EXPECT_NEAR(ci.point, 10.0, 0.5);
  // Width ~ 2 * 1.96 * sigma/sqrt(n) = 0.39.
  EXPECT_NEAR(ci.hi - ci.lo, 0.39, 0.15);
}

TEST(Bootstrap, WorksForQuantiles) {
  ku::Rng rng(103);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.exponential(1.0);
  ku::Rng boot_rng(104);
  const auto ci = kst::bootstrap_ci(
      xs, [](std::span<const double> s) { return kst::quantile(s, 0.5); }, boot_rng, 300);
  const double true_median = std::log(2.0);
  EXPECT_LT(ci.lo, true_median + 0.1);
  EXPECT_GT(ci.hi, true_median - 0.1);
}

TEST(Bootstrap, DeterministicGivenRng) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8};
  ku::Rng r1(7);
  ku::Rng r2(7);
  const auto a = kst::bootstrap_ci(xs, [](std::span<const double> s) { return kst::mean(s); },
                                   r1, 100);
  const auto b = kst::bootstrap_ci(xs, [](std::span<const double> s) { return kst::mean(s); },
                                   r2, 100);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, InvalidInputsThrow) {
  ku::Rng rng(1);
  const auto stat = [](std::span<const double> s) { return kst::mean(s); };
  EXPECT_THROW(kst::bootstrap_ci({}, stat, rng), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(kst::bootstrap_ci(xs, stat, rng, 10, 0.0), std::invalid_argument);
  EXPECT_THROW(kst::bootstrap_ci(xs, stat, rng, 10, 1.0), std::invalid_argument);
}
