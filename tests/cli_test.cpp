// Tests for the argument parser and the keddah CLI subcommands (driven
// in-process through keddah::cli::run).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/cli.h"
#include "util/args.h"
#include "util/strings.h"

namespace ku = keddah::util;

namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run_cli(const std::vector<std::string>& tokens) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = keddah::cli::run(tokens, out, err);
  return {code, out.str(), err.str()};
}

std::string temp_path(const std::string& name) { return ::testing::TempDir() + "/" + name; }

}  // namespace

// ---------------------------------------------------------------- args

TEST(Args, PositionalsAndFlags) {
  const auto args = ku::Args::parse({"capture", "--job", "sort", "--reps=3", "--verbose"});
  ASSERT_EQ(args.positionals().size(), 1u);
  EXPECT_EQ(args.positionals()[0], "capture");
  EXPECT_EQ(args.get("job", ""), "sort");
  EXPECT_EQ(args.get_int("reps", 0), 3);
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_FALSE(args.get_bool("quiet"));
}

TEST(Args, EqualsAndSpaceForms) {
  const auto args = ku::Args::parse({"--a=1", "--b", "2"});
  EXPECT_EQ(args.get_int("a", 0), 1);
  EXPECT_EQ(args.get_int("b", 0), 2);
}

TEST(Args, BooleanBeforeAnotherFlag) {
  const auto args = ku::Args::parse({"--flag", "--other", "x"});
  EXPECT_TRUE(args.get_bool("flag"));
  EXPECT_EQ(args.get("other", ""), "x");
}

TEST(Args, ByteSizes) {
  const auto args = ku::Args::parse({"--size", "2GB"});
  EXPECT_EQ(args.get_bytes("size", 0), 2ull << 30);
  EXPECT_EQ(args.get_bytes("missing", 42), 42u);
}

TEST(Args, BadValuesThrow) {
  const auto args = ku::Args::parse({"--n", "abc", "--size", "zz", "--b", "maybe"});
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_bytes("size", 0), std::invalid_argument);
  EXPECT_THROW(args.get_bool("b"), std::invalid_argument);
}

TEST(Args, MalformedFlagThrows) {
  EXPECT_THROW(ku::Args::parse({"---x"}), std::invalid_argument);
  EXPECT_THROW(ku::Args::parse({"--"}), std::invalid_argument);
}

TEST(Args, UnusedKeysTracked) {
  const auto args = ku::Args::parse({"--used", "1", "--typo", "2"});
  EXPECT_EQ(args.get_int("used", 0), 1);
  const auto unused = args.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Args, RejectUnknownSuggestsNearestFlag) {
  const auto args = ku::Args::parse({"--reducer", "4"});
  (void)args.get_int("reducers", 0);
  (void)args.get_int("seed", 0);
  try {
    args.reject_unknown();
    FAIL() << "expected UsageError";
  } catch (const ku::UsageError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--reducer"), std::string::npos);
    EXPECT_NE(what.find("did you mean --reducers?"), std::string::npos) << what;
  }
}

TEST(Args, RejectUnknownOmitsFarfetchedSuggestions) {
  const auto args = ku::Args::parse({"--zzzzzz", "1"});
  (void)args.get_int("seed", 0);
  try {
    args.reject_unknown();
    FAIL() << "expected UsageError";
  } catch (const ku::UsageError& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos) << e.what();
  }
}

TEST(Args, RejectUnknownPassesWhenAllFlagsRead) {
  const auto args = ku::Args::parse({"--seed", "1"});
  (void)args.get_int("seed", 0);
  EXPECT_NO_THROW(args.reject_unknown());
}

TEST(Args, EditDistanceIsLevenshtein) {
  EXPECT_EQ(ku::edit_distance("", ""), 0u);
  EXPECT_EQ(ku::edit_distance("abc", ""), 3u);
  EXPECT_EQ(ku::edit_distance("", "abc"), 3u);
  EXPECT_EQ(ku::edit_distance("reducer", "reducers"), 1u);
  EXPECT_EQ(ku::edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(ku::edit_distance("flaw", "lawn"), 2u);
}

// ---------------------------------------------------------------- cli

TEST(Cli, HelpAndUnknownCommand) {
  const auto help = run_cli({"help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("capture"), std::string::npos);
  const auto nothing = run_cli({});
  EXPECT_EQ(nothing.code, 2);
  const auto unknown = run_cli({"frobnicate"});
  EXPECT_EQ(unknown.code, 2);
  EXPECT_NE(unknown.err.find("unknown subcommand"), std::string::npos);
}

TEST(Cli, RejectsUnknownFlags) {
  const auto result = run_cli({"capture", "--job", "sort", "--bogus-flag", "7"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--bogus-flag"), std::string::npos);
}

TEST(Cli, FullPipeline) {
  const std::string run_base = temp_path("cli_pipe_run");
  const std::string model_path = temp_path("cli_pipe_model.json");
  const std::string schedule_path = temp_path("cli_pipe_schedule.csv");
  const std::string ns3_base = temp_path("cli_pipe_ns3");

  // capture
  auto result = run_cli({"capture", "--job", "grep", "--input", "256MB", "--reps", "2",
                         "--out", run_base, "--seed", "9", "--racks", "2", "--block-size",
                         "64MB"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_TRUE(std::filesystem::exists(run_base + "_0.csv"));
  EXPECT_TRUE(std::filesystem::exists(run_base + "_1.meta.json"));

  // train
  result = run_cli({"train", "--runs", run_base + "_0," + run_base + "_1", "--name", "grep",
                    "--out", model_path, "--racks", "2", "--block-size", "64MB"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_TRUE(std::filesystem::exists(model_path));
  EXPECT_NE(result.out.find("shuffle"), std::string::npos);

  // generate
  result = run_cli({"generate", "--model", model_path, "--input", "512MB", "--hosts", "8",
                    "--out", schedule_path});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_TRUE(std::filesystem::exists(schedule_path));

  // replay
  result = run_cli({"replay", "--schedule", schedule_path, "--racks", "2"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("makespan"), std::string::npos);

  // validate
  result = run_cli({"validate", "--model", model_path, "--run", run_base + "_0", "--racks",
                    "2", "--block-size", "64MB"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("vol_err"), std::string::npos);

  // export-ns3
  result = run_cli({"export-ns3", "--schedule", schedule_path, "--out", ns3_base});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_TRUE(std::filesystem::exists(ns3_base + ".cc"));
  EXPECT_TRUE(std::filesystem::exists(ns3_base + ".csv"));

  for (const auto& p :
       {run_base + "_0.csv", run_base + "_0.meta.json", run_base + "_1.csv",
        run_base + "_1.meta.json", model_path, schedule_path, ns3_base + ".cc",
        ns3_base + ".csv"}) {
    std::filesystem::remove(p);
  }
}

TEST(Cli, TrainWithoutRunsFails) {
  const auto result = run_cli({"train", "--name", "x"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--runs"), std::string::npos);
}

TEST(Cli, MissingFilesReportedAsErrors) {
  const auto result = run_cli({"generate", "--model", "/nonexistent/model.json"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("error"), std::string::npos);
  const auto replay = run_cli({"replay", "--schedule", "/nonexistent/sched.csv"});
  EXPECT_EQ(replay.code, 1);
}

TEST(Cli, BadTopologyRejected) {
  const auto result = run_cli({"capture", "--topology", "torus"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("torus"), std::string::npos);
}

TEST(Cli, CaptureOnFatTreeWorks) {
  const std::string run_base = temp_path("cli_ft_run");
  const auto result = run_cli({"capture", "--job", "sort", "--input", "256MB", "--out",
                               run_base, "--topology", "fattree", "--fat-tree-k", "4",
                               "--block-size", "64MB"});
  ASSERT_EQ(result.code, 0) << result.err;
  std::filesystem::remove(run_base + "_0.csv");
  std::filesystem::remove(run_base + "_0.meta.json");
}

TEST(Cli, ReportSummarizesModel) {
  const std::string run_base = temp_path("cli_report_run");
  const std::string model_path = temp_path("cli_report_model.json");
  auto result = run_cli({"capture", "--job", "sort", "--input", "256MB", "--out", run_base,
                         "--racks", "2", "--block-size", "64MB"});
  ASSERT_EQ(result.code, 0) << result.err;
  result = run_cli({"train", "--runs", run_base + "_0", "--name", "sort", "--out", model_path,
                    "--racks", "2", "--block-size", "64MB"});
  ASSERT_EQ(result.code, 0) << result.err;
  result = run_cli({"report", "--model", model_path});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("Keddah model report: sort"), std::string::npos);
  EXPECT_NE(result.out.find("count law"), std::string::npos);
  EXPECT_NE(result.out.find("Phase windows"), std::string::npos);
  for (const auto& p : {run_base + "_0.csv", run_base + "_0.meta.json", model_path}) {
    std::filesystem::remove(p);
  }
}

TEST(Cli, AnalyzeCharacterizesTrace) {
  const std::string run_base = temp_path("cli_analyze_run");
  auto result = run_cli({"capture", "--job", "sort", "--input", "256MB", "--out", run_base,
                         "--racks", "2", "--block-size", "64MB"});
  ASSERT_EQ(result.code, 0) << result.err;
  result = run_cli({"analyze", "--trace", run_base + "_0.csv"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("hotspot factor"), std::string::npos);
  EXPECT_NE(result.out.find("throughput profile"), std::string::npos);
  EXPECT_NE(result.out.find("shuffle"), std::string::npos);
  // No history given: no attribution section.
  EXPECT_EQ(result.out.find("attribution"), std::string::npos);
  const auto missing = run_cli({"analyze"});
  EXPECT_EQ(missing.code, 2);
  std::filesystem::remove(run_base + "_0.csv");
  std::filesystem::remove(run_base + "_0.meta.json");
}

TEST(Cli, CalibrateEstimatesSelectivities) {
  const std::string run_base = temp_path("cli_cal_run");
  auto result = run_cli({"capture", "--job", "sort", "--input", "512MB", "--out", run_base,
                         "--racks", "2", "--block-size", "64MB"});
  ASSERT_EQ(result.code, 0) << result.err;
  result = run_cli({"calibrate", "--run", run_base + "_0", "--nodes", "8"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("map selectivity"), std::string::npos);
  EXPECT_NE(result.out.find("reduce selectivity"), std::string::npos);
  const auto missing = run_cli({"calibrate"});
  EXPECT_EQ(missing.code, 2);
  std::filesystem::remove(run_base + "_0.csv");
  std::filesystem::remove(run_base + "_0.meta.json");
}
