// Unit tests for topology construction, routing, ECMP, and the builders.
#include <gtest/gtest.h>

#include <set>

#include "net/topology.h"

namespace kn = keddah::net;
namespace ku = keddah::util;

TEST(Topology, AddAndLookupNodes) {
  kn::Topology t;
  const auto h0 = t.add_host("h0", 0);
  const auto sw = t.add_switch("sw");
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.find("h0"), h0);
  EXPECT_EQ(t.find("sw"), sw);
  EXPECT_EQ(t.find("nope"), kn::kInvalidNode);
  EXPECT_FALSE(t.node(h0).is_switch);
  EXPECT_TRUE(t.node(sw).is_switch);
}

TEST(Topology, DuplicateNameThrows) {
  kn::Topology t;
  t.add_host("x", 0);
  EXPECT_THROW(t.add_host("x", 1), std::invalid_argument);
}

TEST(Topology, BadLinksThrow) {
  kn::Topology t;
  const auto a = t.add_host("a", 0);
  EXPECT_THROW(t.add_link(a, a, ku::Rate::bps(1e9), ku::Seconds(0.0)), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, kn::NodeId(99), ku::Rate::bps(1e9), ku::Seconds(0.0)), std::out_of_range);
  const auto b = t.add_host("b", 0);
  EXPECT_THROW(t.add_link(a, b, ku::Rate::bps(0.0), ku::Seconds(0.0)), std::invalid_argument);
}

TEST(Topology, RouteThroughSwitch) {
  kn::Topology t = kn::make_star(4, 1e9, 1e-4);
  const auto h0 = t.find("h0");
  const auto h1 = t.find("h1");
  const auto path = t.route(h0, h1, 1);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(t.arc_from(path[0]), h0);
  EXPECT_EQ(t.arc_to(path[1]), h1);
  EXPECT_DOUBLE_EQ(t.path_latency(h0, h1, 1).value(), 2e-4);
}

TEST(Topology, LoopbackRouteIsEmpty) {
  kn::Topology t = kn::make_star(2, 1e9, 1e-4);
  EXPECT_TRUE(t.route(t.find("h0"), t.find("h0"), 1).empty());
}

TEST(Topology, UnreachableThrows) {
  kn::Topology t;
  const auto a = t.add_host("a", 0);
  const auto b = t.add_host("b", 1);
  EXPECT_THROW(t.route(a, b, 1), std::runtime_error);
  EXPECT_EQ(t.distance(a, b), -1);
}

TEST(Topology, DistanceCounts) {
  kn::Topology t = kn::make_rack_tree(2, 2, 1e9, 1e10, 1e-4);
  const auto h0 = t.find("h0");
  const auto h1 = t.find("h1");  // same rack
  const auto h2 = t.find("h2");  // other rack
  EXPECT_EQ(t.distance(h0, h0), 0);
  EXPECT_EQ(t.distance(h0, h1), 2);   // h0 -> tor -> h1
  EXPECT_EQ(t.distance(h0, h2), 4);   // h0 -> tor0 -> core -> tor1 -> h2
}

TEST(Topology, SameRack) {
  kn::Topology t = kn::make_rack_tree(2, 2, 1e9, 1e10, 1e-4);
  EXPECT_TRUE(t.same_rack(t.find("h0"), t.find("h1")));
  EXPECT_FALSE(t.same_rack(t.find("h0"), t.find("h2")));
  EXPECT_FALSE(t.same_rack(t.find("h0"), t.find("tor0")));
}

TEST(Topology, HostsByRack) {
  kn::Topology t = kn::make_rack_tree(3, 4, 1e9, 1e10, 1e-4);
  const auto racks = t.hosts_by_rack();
  ASSERT_EQ(racks.size(), 3u);
  for (const auto& [rack, hosts] : racks) {
    (void)rack;
    EXPECT_EQ(hosts.size(), 4u);
  }
  EXPECT_EQ(t.hosts().size(), 12u);
}

TEST(Topology, StarShape) {
  kn::Topology t = kn::make_star(8, 1e9, 1e-4);
  EXPECT_EQ(t.hosts().size(), 8u);
  EXPECT_EQ(t.num_links(), 8u);
}

TEST(Topology, RackTreeShape) {
  kn::Topology t = kn::make_rack_tree(4, 4, 1e9, 1e10, 1e-4);
  EXPECT_EQ(t.hosts().size(), 16u);
  // 16 access + 4 uplinks.
  EXPECT_EQ(t.num_links(), 20u);
  // Uplink capacity is the core rate.
  const auto tor0 = t.find("tor0");
  const auto core = t.find("core");
  ASSERT_NE(tor0, kn::kInvalidNode);
  ASSERT_NE(core, kn::kInvalidNode);
}

TEST(Topology, FatTreeShape) {
  const std::size_t k = 4;
  kn::Topology t = kn::make_fat_tree(k, 1e10, 1e-5);
  EXPECT_EQ(t.hosts().size(), k * k * k / 4);            // 16 hosts
  const std::size_t switches = t.num_nodes() - k * k * k / 4;
  EXPECT_EQ(switches, k * k + k * k / 4);                // 20 switches
  // Links: hosts (16) + edge-agg (k pods * (k/2)^2 = 16) + agg-core (16).
  EXPECT_EQ(t.num_links(), 48u);
}

TEST(Topology, FatTreeOddKThrows) {
  EXPECT_THROW(kn::make_fat_tree(3, 1e9, 0.0), std::invalid_argument);
}

TEST(Topology, FatTreeAllHostsReachable) {
  kn::Topology t = kn::make_fat_tree(4, 1e10, 1e-5);
  const auto hosts = t.hosts();
  for (const auto a : hosts) {
    for (const auto b : hosts) {
      if (a == b) continue;
      EXPECT_GE(t.distance(a, b), 2);
      EXPECT_LE(t.distance(a, b), 6);
    }
  }
}

TEST(Topology, FatTreeEcmpSpreadsFlows) {
  kn::Topology t = kn::make_fat_tree(4, 1e10, 1e-5);
  // Pick two hosts in different pods: many equal-cost core paths exist.
  const auto src = t.find("h0");
  const auto dst = t.find("h15");
  std::set<std::uint32_t> first_hops;
  std::set<std::uint32_t> core_arcs;
  for (std::uint64_t key = 0; key < 64; ++key) {
    const auto path = t.route(src, dst, key);
    ASSERT_EQ(path.size(), 6u);  // host-edge-agg-core-agg-edge-host
    first_hops.insert(path[1].index());
    core_arcs.insert(path[2].index());
    // Path is consistent: arcs chain from src to dst.
    EXPECT_EQ(t.arc_from(path[0]), src);
    for (std::size_t i = 1; i < path.size(); ++i) {
      EXPECT_EQ(t.arc_from(path[i]), t.arc_to(path[i - 1]));
    }
    EXPECT_EQ(t.arc_to(path.back()), dst);
  }
  // ECMP should use more than one aggregation and core choice.
  EXPECT_GT(first_hops.size(), 1u);
  EXPECT_GT(core_arcs.size(), 1u);
}

TEST(Topology, EcmpStablePerKey) {
  kn::Topology t = kn::make_fat_tree(4, 1e10, 1e-5);
  const auto src = t.find("h0");
  const auto dst = t.find("h12");
  const auto p1 = t.route(src, dst, 77);
  const auto p2 = t.route(src, dst, 77);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(p1[i].index(), p2[i].index());
}

TEST(Topology, DumbbellBottleneck) {
  kn::Topology t = kn::make_dumbbell(2, 2, 1e9, 5e8, 1e-4);
  EXPECT_EQ(t.hosts().size(), 4u);
  const auto h0 = t.find("h0");
  const auto h2 = t.find("h2");
  const auto path = t.route(h0, h2, 1);
  ASSERT_EQ(path.size(), 3u);
  // Middle arc is the bottleneck link.
  EXPECT_DOUBLE_EQ(t.link(path[1].link).capacity.bps(), 5e8);
}

TEST(Topology, ArcIndexEncoding) {
  kn::Arc a{3, 0};
  kn::Arc b{3, 1};
  EXPECT_EQ(a.index(), 6u);
  EXPECT_EQ(b.index(), 7u);
  EXPECT_NE(a, b);
}
