// Golden-trace regression tests: every shipped example scenario is run
// end-to-end and its capture (every flow's endpoints, ports, bytes and
// %.17g-exact timestamps) plus its fault/ledger summary are diffed against a
// checked-in golden file. The incremental scheduler is the component most
// able to silently shift a completion time, so these pin the entire
// observable output of the toolchain, flow by flow.
//
// When an intentional behaviour change moves the traces, regenerate with:
//   KEDDAH_REGEN_GOLDEN=1 ctest -R GoldenTrace
// and review the golden diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "keddah/scenario.h"
#include "util/strings.h"

namespace kc = keddah::core;
namespace ku = keddah::util;

namespace {

/// Serializes a scenario outcome as one JSON-lines record per flow plus a
/// trailing summary record. %.17g round-trips doubles exactly, so a golden
/// match is a bit-exact match on every timestamp and byte count.
std::string render(const kc::ScenarioOutcome& outcome) {
  std::ostringstream out;
  for (std::size_t i = 0; i < outcome.trace.size(); ++i) {
    const auto& r = outcome.trace[i];
    out << ku::format(
        R"({"src":"%s","dst":"%s","sport":%u,"dport":%u,"bytes":%.17g,"start":%.17g,"end":%.17g,"job":%u})",
        r.src.c_str(), r.dst.c_str(), static_cast<unsigned>(r.src_port),
        static_cast<unsigned>(r.dst_port), r.bytes, r.start, r.end, r.job_id);
    out << "\n";
  }
  const auto& f = outcome.faults;
  out << ku::format(R"({"jobs":%zu,"rereplications":%zu,"aborted_flows":%llu,"aborted_bytes":%.17g})",
                    outcome.results.size(), outcome.rereplications,
                    static_cast<unsigned long long>(f.aborted_flows), f.aborted_bytes.value());
  out << "\n";
  return out.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class GoldenTrace : public ::testing::TestWithParam<const char*> {};

}  // namespace

TEST_P(GoldenTrace, MatchesCheckedInTrace) {
  const std::string name = GetParam();
  const auto spec = kc::load_scenario(std::string(KEDDAH_EXAMPLE_SCENARIOS) + "/" + name + ".json");
  const auto outcome = kc::run_scenario(spec);
  const std::string got = render(outcome);
  const std::string golden_path = std::string(KEDDAH_GOLDEN_DIR) + "/" + name + ".trace.jsonl";

  if (std::getenv("KEDDAH_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    out << got;
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  const std::string want = read_file(golden_path);
  ASSERT_FALSE(want.empty()) << golden_path
                             << " missing — regenerate with KEDDAH_REGEN_GOLDEN=1";
  if (got == want) return;  // fast path: byte-identical
  // Mismatch: report the first differing line with context, not a 1000-line
  // string diff.
  std::istringstream got_s(got), want_s(want);
  std::string got_line, want_line;
  std::size_t line = 0;
  for (;;) {
    const bool got_more = static_cast<bool>(std::getline(got_s, got_line));
    const bool want_more = static_cast<bool>(std::getline(want_s, want_line));
    ++line;
    if (!got_more && !want_more) break;
    if (!got_more || !want_more || got_line != want_line) {
      FAIL() << name << ".trace.jsonl line " << line << " diverged\n  golden: "
             << (want_more ? want_line : "<eof>") << "\n  actual: "
             << (got_more ? got_line : "<eof>")
             << "\nIf intentional, regenerate with KEDDAH_REGEN_GOLDEN=1 and review the diff.";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ExampleScenarios, GoldenTrace,
                         ::testing::Values("clean", "crash", "outage", "degraded_link"),
                         [](const auto& info) { return std::string(info.param); });
