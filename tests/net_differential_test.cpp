// Differential test harness for the fair-share scheduler: the incremental
// hot path (dirty-arc frontier, component-restricted solves) and the
// reference full-recompute scheduler are two dirty-marking policies over the
// same engine, and DESIGN.md §9 argues the resulting allocations are
// bit-identical. This file holds the argument to account: identical
// randomized scenarios — seed-swept arrival processes, rate caps, capacity
// changes, node failures, mid-flight aborts — run through both modes, and
// every completion time, per-class byte ledger, and fault counter must match
// EXACTLY (EXPECT_EQ on doubles, not EXPECT_NEAR). Any divergence means the
// incremental scheduler failed to re-solve a component it should have.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <vector>

#include "keddah/scenario.h"
#include "net/network.h"
#include "util/rng.h"

namespace kc = keddah::core;
namespace kn = keddah::net;
namespace ks = keddah::sim;
namespace ku = keddah::util;

namespace {

kn::Topology make_topology(std::uint64_t seed) {
  switch (seed % 5) {
    case 0:
      return kn::make_star(10, 1e9, 1e-4);
    case 1:
      return kn::make_rack_tree(3, 4, 1e9, 10e9, 1e-4);
    case 2:
      return kn::make_rack_tree(4, 4, 1e9, 1e9, 1e-4);  // oversubscribed core
    case 3:
      return kn::make_fat_tree(4, 1e9, 1e-4);
    default:
      return kn::make_dumbbell(5, 5, 1e9, 2e9, 1e-4);
  }
}

/// What one scheduler mode produced for a scenario: everything downstream
/// code could observe, keyed by flow id where per-flow.
struct RunResult {
  /// (end_time, delivered bytes, aborted) per completed flow.
  std::map<kn::FlowId, std::tuple<double, double, bool>> flows;
  double final_time = 0.0;
  double delivered = 0.0;
  double aborted_bytes = 0.0;
  std::uint64_t aborted_flows = 0;
  kn::ClassTotals totals[kn::kNumFlowKinds];
};

/// Replays seed-derived traffic plus a seed-derived fault plan through one
/// scheduler mode. Both modes must see the byte-for-byte same call sequence,
/// so every decision here draws from the scenario Rng only — never from
/// engine state.
RunResult run_mode_on(const kn::Topology& topology, std::uint64_t seed, bool reference) {
  // The env switch would override NetworkOptions and silently collapse the
  // differential into reference-vs-reference; these tests pin the mode.
  unsetenv("KEDDAH_REFERENCE_SCHEDULER");
  ks::Simulator sim;
  kn::NetworkOptions opts;
  opts.model_latency = (seed % 3 != 0);
  opts.reference_scheduler = reference;
  kn::Network net(sim, topology, opts);
  const auto hosts = net.topology().hosts();

  RunResult result;
  ku::Rng rng(seed);

  // Traffic: a few dozen flows with log-uniform sizes, some rate-capped,
  // spread over a few seconds so arrivals interleave with completions.
  const std::size_t num_flows = 30 + seed % 21;
  std::vector<kn::FlowId> started;
  for (std::size_t i = 0; i < num_flows; ++i) {
    const auto src = hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
    auto dst = hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
    if (dst == src) dst = hosts[(static_cast<std::size_t>(dst) + 1) % hosts.size()];
    const double bytes = std::pow(10.0, rng.uniform(3.5, 7.5));
    const double start = rng.uniform(0.0, 4.0);
    const double cap = rng.chance(0.25) ? rng.uniform(1e7, 5e8) : 0.0;
    kn::FlowMeta meta;
    meta.kind = static_cast<kn::FlowKind>(rng.uniform_int(0, 4));
    sim.schedule_at(start, [&net, &result, src, dst, bytes, cap, meta] {
      net.start_flow(src, dst, ku::Bytes(bytes), meta,
                     [&result](const kn::Flow& f) {
                       result.flows[f.id] = {f.end_time, f.bytes.value(), f.aborted};
                     },
                     ku::Rate::bps(cap));
    });
  }

  // Fault plan: capacity degradations with restores, node-down windows with
  // active-flow aborts, and targeted single-flow aborts.
  const std::size_t num_faults = 3 + seed % 4;
  for (std::size_t i = 0; i < num_faults; ++i) {
    const double at = rng.uniform(0.5, 6.0);
    const int kind = static_cast<int>(rng.uniform_int(0, 2));
    switch (kind) {
      case 0: {  // degrade a random link, restore it later
        const auto link = static_cast<kn::LinkId>(
            rng.uniform_int(0, static_cast<std::int64_t>(net.topology().num_links()) - 1));
        const double factor = rng.uniform(0.05, 0.5);
        const double duration = rng.uniform(0.5, 3.0);
        sim.schedule_at(at, [&net, link, factor] {
          net.set_link_capacity(link, net.topology().link(link).capacity * factor);
        });
        sim.schedule_at(at + duration, [&net, link, factor] {
          net.set_link_capacity(link, net.topology().link(link).capacity * (1.0 / factor));
        });
        break;
      }
      case 1: {  // node goes down, active flows abort, node comes back
        const auto node = hosts[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
        const double duration = rng.uniform(0.5, 2.0);
        sim.schedule_at(at, [&net, node] {
          net.set_node_down(node);
          net.abort_flows_touching(node);
        });
        sim.schedule_at(at + duration, [&net, node] { net.set_node_up(node); });
        break;
      }
      default: {  // abort one specific flow id if it happens to be active
        const auto victim = static_cast<kn::FlowId>(
            rng.uniform_int(1, static_cast<std::int64_t>(num_flows)));
        sim.schedule_at(at, [&net, victim] { net.abort_flow(victim); });
        break;
      }
    }
  }

  sim.run();
  net.audit_scheduler();  // structures must be consistent at quiescence
  result.final_time = sim.now();
  result.delivered = net.delivered_bytes().value();
  result.aborted_bytes = net.aborted_bytes().value();
  result.aborted_flows = net.aborted_flows();
  for (std::size_t k = 0; k < kn::kNumFlowKinds; ++k) {
    result.totals[k] = net.class_totals(static_cast<kn::FlowKind>(k));
  }
  EXPECT_EQ(net.reference_scheduler(), reference);
  return result;
}

RunResult run_scenario_mode(std::uint64_t seed, bool reference) {
  return run_mode_on(make_topology(seed), seed, reference);
}

void expect_identical(const RunResult& inc, const RunResult& ref, std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  // Bit-exact across the board: EXPECT_EQ on doubles, no tolerance.
  EXPECT_EQ(inc.final_time, ref.final_time);
  EXPECT_EQ(inc.delivered, ref.delivered);
  EXPECT_EQ(inc.aborted_bytes, ref.aborted_bytes);
  EXPECT_EQ(inc.aborted_flows, ref.aborted_flows);
  ASSERT_EQ(inc.flows.size(), ref.flows.size());
  for (const auto& [id, got] : inc.flows) {
    const auto it = ref.flows.find(id);
    ASSERT_NE(it, ref.flows.end()) << "flow " << id << " only completed incrementally";
    EXPECT_EQ(std::get<0>(got), std::get<0>(it->second)) << "end_time of flow " << id;
    EXPECT_EQ(std::get<1>(got), std::get<1>(it->second)) << "bytes of flow " << id;
    EXPECT_EQ(std::get<2>(got), std::get<2>(it->second)) << "aborted of flow " << id;
  }
  for (std::size_t k = 0; k < kn::kNumFlowKinds; ++k) {
    SCOPED_TRACE(std::string("class ") + kn::flow_kind_name(static_cast<kn::FlowKind>(k)));
    EXPECT_EQ(inc.totals[k].offered.value(), ref.totals[k].offered.value());
    EXPECT_EQ(inc.totals[k].delivered.value(), ref.totals[k].delivered.value());
    EXPECT_EQ(inc.totals[k].aborted.value(), ref.totals[k].aborted.value());
  }
}

}  // namespace

// 60 seeded scenarios x 5 topologies, every one with faults: the core
// differential sweep the acceptance criteria call for.
TEST(SchedulerDifferential, SeedSweptScenariosMatchBitExactly) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const RunResult inc = run_scenario_mode(seed, /*reference=*/false);
    const RunResult ref = run_scenario_mode(seed, /*reference=*/true);
    expect_identical(inc, ref, seed);
  }
}

// The incremental scheduler must actually BE incremental: on rack-confined
// traffic (disjoint sharing components) it touches far fewer links per
// reshare than the reference full sweeps.
TEST(SchedulerDifferential, IncrementalTouchesFewerLinks) {
  unsetenv("KEDDAH_REFERENCE_SCHEDULER");  // pin the mode via NetworkOptions
  const auto run_mode = [](bool reference) {
    ks::Simulator sim;
    kn::NetworkOptions opts;
    opts.model_latency = false;
    opts.reference_scheduler = reference;
    kn::Network net(sim, kn::make_rack_tree(6, 6, 1e9, 10e9, 1e-4), opts);
    const auto by_rack = net.topology().hosts_by_rack();
    ku::Rng rng(99);
    for (const auto& [rack, members] : by_rack) {
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = 0; j < members.size(); ++j) {
          if (i == j) continue;
          const double start = rng.uniform(0.0, 1.0);
          sim.schedule_at(start, [&net, src = members[i], dst = members[j]] {
            net.start_flow(src, dst, ku::Bytes(2e6), {}, nullptr);
          });
        }
      }
    }
    sim.run();
    return net.scheduler_stats();
  };
  const auto inc = run_mode(false);
  const auto ref = run_mode(true);
  EXPECT_EQ(inc.reshares, ref.reshares);  // same event sequence
  EXPECT_GT(inc.reshares, 0u);
  // Rack-local components: each solve should only visit one rack's arcs.
  EXPECT_LT(inc.links_per_reshare() * 3.0, ref.links_per_reshare());
}

// Oversubscribed fat-tree shapes at differential fidelity: k=4 and k=8
// fabrics with 2:1 and 4:1 thinned uplinks, every seed carrying the full
// seed-derived fault plan (link degradations with restores, node-down
// windows with active-flow aborts, targeted aborts). Thinned uplinks shift
// the bottleneck from access links into the fabric — the regime the scale
// scenarios run in — and both scheduler modes must still agree bit-exactly.
TEST(SchedulerDifferential, OversubscribedFatTreesMatchBitExactly) {
  const struct Shape {
    std::size_t k;
    double oversubscription;
  } shapes[] = {{4, 4.0}, {8, 2.0}, {8, 4.0}};
  for (const auto& shape : shapes) {
    SCOPED_TRACE("fat tree k=" + std::to_string(shape.k) + " oversub " +
                 std::to_string(shape.oversubscription));
    const auto topology = kn::make_fat_tree(shape.k, 1e9, 1e-4, shape.oversubscription);
    // Seeds span both latency modes (seed % 3) and all fault kinds.
    for (const std::uint64_t seed : {101ull, 102ull, 103ull, 110ull, 117ull}) {
      const RunResult inc = run_mode_on(topology, seed, /*reference=*/false);
      const RunResult ref = run_mode_on(topology, seed, /*reference=*/true);
      expect_identical(inc, ref, seed);
    }
  }
}

// Link-visit ratio gate on the oversubscribed fabric: rack-confined traffic
// forms per-edge-switch sharing components, so the incremental scheduler
// must visit a small corner of the fat tree per reshare while the reference
// sweeps all of it. Guards against the columnar arena rewrite silently
// degrading the frontier into full recomputes.
TEST(SchedulerDifferential, OversubscribedFatTreeLinkVisitRatio) {
  unsetenv("KEDDAH_REFERENCE_SCHEDULER");  // pin the mode via NetworkOptions
  const auto run_mode = [](bool reference) {
    ks::Simulator sim;
    kn::NetworkOptions opts;
    opts.model_latency = false;
    opts.reference_scheduler = reference;
    kn::Network net(sim, kn::make_fat_tree(8, 1e9, 1e-4, /*oversubscription=*/4.0), opts);
    const auto by_rack = net.topology().hosts_by_rack();
    ku::Rng rng(7);
    for (const auto& [rack, members] : by_rack) {
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = 0; j < members.size(); ++j) {
          if (i == j) continue;
          const double start = rng.uniform(0.0, 1.0);
          sim.schedule_at(start, [&net, src = members[i], dst = members[j]] {
            net.start_flow(src, dst, ku::Bytes(4e6), {}, nullptr);
          });
        }
      }
    }
    sim.run();
    return net.scheduler_stats();
  };
  const auto inc = run_mode(false);
  const auto ref = run_mode(true);
  EXPECT_EQ(inc.reshares, ref.reshares);  // same event sequence
  EXPECT_GT(inc.reshares, 0u);
  // A k=8 fat tree has 256 fabric arcs; a rack component touches ~8. Demand
  // only a 3x margin so the gate stays robust to routing changes.
  EXPECT_LT(inc.links_per_reshare() * 3.0, ref.links_per_reshare());
}

// Whole-toolchain differential: a faulted Hadoop scenario through
// run_scenario twice, flipping the KEDDAH_REFERENCE_SCHEDULER environment
// switch. Job results, capture, and FaultStats must agree exactly.
TEST(SchedulerDifferential, ScenarioPipelineMatchesUnderEnvSwitch) {
  const auto spec = kc::parse_scenario(ku::Json::parse(R"({
    "seed": 17,
    "cluster": { "racks": 2, "hosts_per_rack": 4, "block_size": "32MB", "replication": 2 },
    "jobs": [
      { "workload": "sort", "input": "96MB", "reducers": 2 },
      { "workload": "grep", "input": "64MB", "submit_at": 2.0 }
    ],
    "faults": [
      { "kind": "outage", "worker": 3, "at": 4.0, "duration": 6.0 },
      { "kind": "degrade_link", "worker": 5, "at": 2.0, "duration": 10.0, "factor": 0.1 }
    ]
  })"));

  const auto run_with_env = [&spec](const char* value) {
    ::setenv("KEDDAH_REFERENCE_SCHEDULER", value, 1);
    auto outcome = kc::run_scenario(spec);
    ::unsetenv("KEDDAH_REFERENCE_SCHEDULER");
    return outcome;
  };
  const auto inc = run_with_env("0");  // "0" keeps the incremental default
  const auto ref = run_with_env("1");

  ASSERT_EQ(inc.results.size(), ref.results.size());
  for (std::size_t i = 0; i < inc.results.size(); ++i) {
    EXPECT_EQ(inc.results[i].job_name, ref.results[i].job_name);
    EXPECT_EQ(inc.results[i].submit_time, ref.results[i].submit_time);
    EXPECT_EQ(inc.results[i].end_time, ref.results[i].end_time);
    EXPECT_EQ(inc.results[i].output_bytes, ref.results[i].output_bytes);
  }
  ASSERT_EQ(inc.trace.size(), ref.trace.size());
  for (std::size_t i = 0; i < inc.trace.size(); ++i) {
    EXPECT_EQ(inc.trace[i].start, ref.trace[i].start);
    EXPECT_EQ(inc.trace[i].end, ref.trace[i].end);
    EXPECT_EQ(inc.trace[i].bytes, ref.trace[i].bytes);
  }
  EXPECT_EQ(inc.faults.crashes, ref.faults.crashes);
  EXPECT_EQ(inc.faults.outages, ref.faults.outages);
  EXPECT_EQ(inc.faults.link_degradations, ref.faults.link_degradations);
  EXPECT_EQ(inc.faults.aborted_flows, ref.faults.aborted_flows);
  EXPECT_EQ(inc.faults.aborted_bytes.value(), ref.faults.aborted_bytes.value());
  EXPECT_EQ(inc.faults.fetch_retries, ref.faults.fetch_retries);
  EXPECT_EQ(inc.faults.map_reruns, ref.faults.map_reruns);
  EXPECT_EQ(inc.rereplications, ref.rereplications);
  // The env var actually flipped the mode: the reference run's full sweeps
  // touch at least as many links per reshare.
  EXPECT_GE(ref.scheduler.links_per_reshare(), inc.scheduler.links_per_reshare());
}
