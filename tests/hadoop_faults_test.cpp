// Fault-model tests: stragglers, speculative execution, node failures
// (scheduler capacity, HDFS re-replication, task reruns, reducer restarts),
// and map-output compression.
#include <gtest/gtest.h>

#include <algorithm>

#include "hadoop/cluster.h"
#include "workloads/profiles.h"

namespace kh = keddah::hadoop;
namespace kn = keddah::net;
namespace kw = keddah::workloads;

namespace {

constexpr std::uint64_t kMiB = 1ull << 20;

kh::ClusterConfig test_config() {
  kh::ClusterConfig cfg;
  cfg.racks = 2;
  cfg.hosts_per_rack = 4;
  cfg.block_size = 64ull << 20;
  cfg.containers_per_node = 4;
  return cfg;
}

double class_bytes(const keddah::capture::Trace& trace, kn::FlowKind kind) {
  return trace.class_stats()[static_cast<std::size_t>(kind)].bytes;
}

}  // namespace

// ---------------------------------------------------------------- stragglers

TEST(Stragglers, SlowTasksStretchTheMapPhase) {
  auto run_with = [](double fraction) {
    kh::ClusterConfig cfg = test_config();
    cfg.straggler_fraction = fraction;
    cfg.straggler_slowdown = 10.0;
    kh::HadoopCluster cluster(cfg, 7);
    const auto input = cluster.ensure_input(512 * kMiB);
    return cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 4));
  };
  const auto clean = run_with(0.0);
  const auto slowed = run_with(0.5);
  EXPECT_GT(slowed.duration(), 1.3 * clean.duration());
}

// ---------------------------------------------------------------- speculation

TEST(Speculation, BackupAttemptsRescueStragglers) {
  auto run_with = [](bool speculative) {
    kh::ClusterConfig cfg = test_config();
    cfg.straggler_fraction = 0.25;
    cfg.straggler_slowdown = 20.0;
    cfg.speculative_execution = speculative;
    kh::HadoopCluster cluster(cfg, 11);
    const auto input = cluster.ensure_input(512 * kMiB);
    const auto result = cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 4));
    return std::pair(result.duration(), cluster.runner().speculative_attempts());
  };
  const auto [slow_duration, no_spec_attempts] = run_with(false);
  const auto [fast_duration, spec_attempts] = run_with(true);
  EXPECT_EQ(no_spec_attempts, 0u);
  EXPECT_GT(spec_attempts, 0u);
  // Backups shortcut the 20x stragglers.
  EXPECT_LT(fast_duration, 0.8 * slow_duration);
}

TEST(Speculation, DuplicateAttemptsAddReadTraffic) {
  kh::ClusterConfig cfg = test_config();
  cfg.straggler_fraction = 0.3;
  cfg.straggler_slowdown = 25.0;
  cfg.speculative_execution = true;
  kh::HadoopCluster cluster(cfg, 13);
  const auto input = cluster.ensure_input(512 * kMiB);
  const auto result = cluster.run_job(kw::make_spec(kw::Workload::kGrep, input, 2));
  EXPECT_GT(cluster.runner().speculative_attempts(), 0u);
  // Job still completes with correct output accounting.
  EXPECT_GT(result.output_bytes, 0u);
  EXPECT_EQ(cluster.scheduler().free_slots(), cluster.scheduler().total_slots());
}

TEST(Speculation, QuietWhenNoStragglers) {
  kh::ClusterConfig cfg = test_config();
  cfg.speculative_execution = true;
  cfg.task_noise_sigma = 0.05;
  kh::HadoopCluster cluster(cfg, 17);
  const auto input = cluster.ensure_input(512 * kMiB);
  cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 4));
  EXPECT_EQ(cluster.runner().speculative_attempts(), 0u);
}

// ---------------------------------------------------------------- node failure

TEST(NodeFailure, SchedulerremovesCapacity) {
  kh::HadoopCluster cluster(test_config(), 19);
  auto& sched = cluster.scheduler();
  const auto victim = cluster.workers()[3];
  EXPECT_TRUE(sched.node_up(victim));
  const auto total_before = sched.total_slots();
  cluster.fail_node(victim);
  EXPECT_FALSE(sched.node_up(victim));
  EXPECT_EQ(sched.total_slots(), total_before - 4);
  EXPECT_EQ(sched.free_slots_on(victim), 0u);
  // Releasing a container that died with the node is a tolerated no-op.
  sched.release_container(victim);
  // Idempotent.
  cluster.fail_node(victim);
  EXPECT_EQ(sched.total_slots(), total_before - 4);
}

TEST(NodeFailure, MasterCannotFail) {
  kh::HadoopCluster cluster(test_config(), 23);
  EXPECT_THROW(cluster.fail_node(cluster.master()), std::invalid_argument);
}

TEST(NodeFailure, HdfsReReplicatesLostBlocks) {
  kh::HadoopCluster cluster(test_config(), 29);
  const auto input = cluster.ensure_input(512 * kMiB);  // 8 blocks x 3 replicas
  const auto& info = cluster.hdfs().file_by_name(input);
  const auto victim = cluster.workers()[5];
  std::size_t blocks_on_victim = 0;
  for (const auto& block : info.blocks) {
    blocks_on_victim += std::count(block.replicas.begin(), block.replicas.end(), victim);
  }
  cluster.fail_node(victim);
  cluster.simulator().run();
  EXPECT_EQ(cluster.hdfs().rereplications(), blocks_on_victim);
  EXPECT_EQ(cluster.hdfs().lost_blocks(), 0u);
  // Every block is back to 3 replicas, none on the dead node.
  for (const auto& block : cluster.hdfs().file_by_name(input).blocks) {
    EXPECT_EQ(block.replicas.size(), 3u);
    EXPECT_EQ(std::count(block.replicas.begin(), block.replicas.end(), victim), 0);
  }
  // Repair traffic shows up as HDFS-write flows with job_id 0.
  const auto& trace = cluster.trace();
  std::size_t repair_flows = 0;
  for (const auto& r : trace.records()) {
    if (r.truth == kn::FlowKind::kHdfsWrite && r.job_id == 0) ++repair_flows;
  }
  EXPECT_EQ(repair_flows, blocks_on_victim);
}

TEST(NodeFailure, ReplicationOneLosesData) {
  kh::ClusterConfig cfg = test_config();
  cfg.replication = 1;
  kh::HadoopCluster cluster(cfg, 31);
  cluster.ensure_input(512 * kMiB);
  // Find a worker holding at least one (sole) replica.
  const auto& info = cluster.hdfs().file_by_name("input_536870912");
  kn::NodeId victim = kn::kInvalidNode;
  for (const auto& block : info.blocks) {
    if (block.replicas[0] != cluster.master()) {
      victim = block.replicas[0];
      break;
    }
  }
  ASSERT_NE(victim, kn::kInvalidNode);
  cluster.fail_node(victim);
  EXPECT_GT(cluster.hdfs().lost_blocks(), 0u);
}

TEST(NodeFailure, JobSurvivesMidMapFailure) {
  kh::ClusterConfig cfg = test_config();
  cfg.containers_per_node = 2;  // two map waves: failure hits running work
  kh::HadoopCluster cluster(cfg, 37);
  const auto input = cluster.ensure_input(1024 * kMiB);  // 16 maps
  const auto victim = cluster.workers()[6];
  cluster.fail_node_at(victim, 3.0);  // during the map phase
  const auto result = cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 4));
  EXPECT_EQ(result.num_maps, 16u);
  // Everything still adds up: all output written despite reruns.
  EXPECT_NEAR(static_cast<double>(result.output_bytes),
              static_cast<double>(result.input_bytes), 1e5);
  EXPECT_GT(cluster.runner().failed_attempts() + cluster.runner().map_reruns(), 0u);
  // No flow touching the dead node carried a single byte past the failure
  // instant: in-flight transfers abort at t=3.0 (partial bytes, end time
  // pinned to the failure), and nothing new starts against the node.
  for (const auto& r : cluster.trace().records()) {
    if (r.src_id == victim || r.dst_id == victim) {
      EXPECT_LE(r.end, 3.0 + 1e-9) << r.src << " -> " << r.dst;
    }
  }
  EXPECT_GT(cluster.network().aborted_flows(), 0u);
}

TEST(NodeFailure, LostMapOutputsAreRerun) {
  kh::ClusterConfig cfg = test_config();
  cfg.slowstart = 1.0;  // reducers start only after every map is done
  kh::HadoopCluster cluster(cfg, 41);
  const auto input = cluster.ensure_input(512 * kMiB);
  const auto victim = cluster.workers()[2];
  // Fail after the map phase likely ended but before the shuffle finishes.
  cluster.fail_node_at(victim, 9.0);
  const auto result = cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 4));
  EXPECT_NEAR(static_cast<double>(result.output_bytes),
              static_cast<double>(result.input_bytes), 1e5);
  EXPECT_EQ(cluster.scheduler().free_slots(), cluster.scheduler().total_slots() );
}

TEST(NodeFailure, ReducerRestartRefetchesShuffle) {
  kh::ClusterConfig cfg = test_config();
  kh::HadoopCluster cluster(cfg, 43);
  const auto input = cluster.ensure_input(1024 * kMiB);
  // Fail a node mid-shuffle; with 4 reducers over 8 nodes odds are good one
  // sits on the victim. Run a few victims until a restart happens.
  bool saw_restart = false;
  for (const auto victim : {cluster.workers()[1], cluster.workers()[4]}) {
    kh::HadoopCluster fresh(cfg, 43 + victim);
    const auto in = fresh.ensure_input(1024 * kMiB);
    fresh.fail_node_at(victim, 14.0);
    const auto result = fresh.run_job(kw::make_spec(kw::Workload::kSort, in, 6));
    EXPECT_NEAR(static_cast<double>(result.output_bytes),
                static_cast<double>(result.input_bytes), 1e5);
    saw_restart |= fresh.runner().reducer_restarts() > 0;
  }
  (void)input;
  (void)saw_restart;  // restarts are stochastic; correctness asserted above
}

TEST(NodeFailure, HeartbeatsStopFromDeadNode) {
  kh::HadoopCluster cluster(test_config(), 47);
  const auto input = cluster.ensure_input(256 * kMiB);
  const auto victim = cluster.workers()[7];
  cluster.fail_node_at(victim, 2.0);
  cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 2));
  for (const auto& r : cluster.trace().records()) {
    if (r.truth == kn::FlowKind::kControl && r.start > 5.0) {
      EXPECT_NE(r.src_id, victim) << "dead node still heartbeating at " << r.start;
    }
  }
}

TEST(NodeFailure, MultipleFailuresStillComplete) {
  kh::ClusterConfig cfg = test_config();
  cfg.racks = 4;
  cfg.hosts_per_rack = 4;
  kh::HadoopCluster cluster(cfg, 53);
  const auto input = cluster.ensure_input(1024 * kMiB);
  cluster.fail_node_at(cluster.workers()[3], 4.0);
  cluster.fail_node_at(cluster.workers()[9], 8.0);
  const auto result = cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 8));
  EXPECT_NEAR(static_cast<double>(result.output_bytes),
              static_cast<double>(result.input_bytes), 1e5);
}

// ----------------------------------------------------- failure edge cases

TEST(NodeFailureEdge, SingleMapJobLosesAllOutputsAndReruns) {
  // One block -> one map: the whole map-output inventory lives on one node.
  // Failing it mid-shuffle must rerun that map (there is nothing left to
  // fetch) and still finish the job.
  kh::ClusterConfig cfg = test_config();
  cfg.slowstart = 1.0;  // shuffle strictly after the map phase
  kh::HadoopCluster cluster(cfg, 61);
  const auto input = cluster.ensure_input(64 * kMiB);  // exactly one block
  // Discover where the only map ran from an identical clean run.
  kn::NodeId map_host = kn::kInvalidNode;
  double map_finish = 0.0;
  {
    kh::HadoopCluster probe(cfg, 61);
    const auto in = probe.ensure_input(64 * kMiB);
    probe.run_job(kw::make_spec(kw::Workload::kSort, in, 2));
    for (const auto& e : probe.history().events()) {
      if (e.kind == kh::TaskEvent::Kind::kMapFinish) {
        map_host = e.node;
        map_finish = e.time;
      }
    }
  }
  ASSERT_NE(map_host, kn::kInvalidNode);
  if (map_host == cluster.master()) GTEST_SKIP() << "map ran on the master";
  // Up to the failure instant both runs are identical, so the map host and
  // finish time carry over.
  cluster.fail_node_at(map_host, map_finish + 0.05);
  const auto result = cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 2));
  EXPECT_GE(cluster.runner().map_reruns(), 1u);
  EXPECT_GE(result.map_reruns, 1u);
  EXPECT_NEAR(static_cast<double>(result.output_bytes),
              static_cast<double>(result.input_bytes), 1e5);
  EXPECT_EQ(cluster.scheduler().free_slots(), cluster.scheduler().total_slots());
}

TEST(NodeFailureEdge, MidWriteFailureRebuildsPipelines) {
  // Fail a pipeline target mid-block: the write pipeline must swap in a
  // replacement DataNode (a rebuild) and the job must still commit every
  // byte. The victim and instant come from an identical clean probe run —
  // runs are deterministic, so the chosen write flow is in flight to the
  // victim at that time in the faulted run too.
  kh::ClusterConfig cfg = test_config();
  kn::NodeId victim = kn::kInvalidNode;
  double fail_at = 0.0;
  {
    kh::HadoopCluster probe(cfg, 67);
    const auto in = probe.ensure_input(512 * kMiB);
    probe.run_job(kw::make_spec(kw::Workload::kSort, in, 4));
    for (const auto& r : probe.trace().records()) {
      if (r.truth == kn::FlowKind::kHdfsWrite && r.job_id != 0 &&
          r.dst_id != probe.master() && r.duration() > 0.05) {
        victim = r.dst_id;
        fail_at = 0.5 * (r.start + r.end);
        break;
      }
    }
  }
  ASSERT_NE(victim, kn::kInvalidNode);

  kh::HadoopCluster cluster(cfg, 67);
  const auto input = cluster.ensure_input(512 * kMiB);
  cluster.fail_node_at(victim, fail_at);
  const auto result = cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 4));
  EXPECT_NEAR(static_cast<double>(result.output_bytes),
              static_cast<double>(result.input_bytes), 1e5);
  EXPECT_GT(cluster.hdfs().pipeline_rebuilds(), 0u);
  EXPECT_EQ(result.pipeline_rebuilds, cluster.hdfs().pipeline_rebuilds(result.job_id));
}

TEST(NodeFailureEdge, DoubleFailureIsIdempotent) {
  kh::ClusterConfig cfg = test_config();
  kh::HadoopCluster cluster(cfg, 71);
  const auto input = cluster.ensure_input(512 * kMiB);
  const auto victim = cluster.workers()[4];
  // Same node failed twice mid-run: the second call must be a no-op, not a
  // second round of reruns/repairs.
  cluster.fail_node_at(victim, 4.0);
  cluster.fail_node_at(victim, 4.5);
  const auto result = cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 4));
  EXPECT_NEAR(static_cast<double>(result.output_bytes),
              static_cast<double>(result.input_bytes), 1e5);
  EXPECT_EQ(cluster.fault_stats().crashes, 1u);
  EXPECT_EQ(cluster.scheduler().free_slots(), cluster.scheduler().total_slots());
}

// ---------------------------------------------------------------- compression

TEST(Compression, ShrinksWireShuffleNotOutput) {
  auto run_with = [](double ratio) {
    kh::ClusterConfig cfg = test_config();
    cfg.map_output_compress_ratio = ratio;
    kh::HadoopCluster cluster(cfg, 59);
    const auto input = cluster.ensure_input(512 * kMiB);
    const auto result = cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 4));
    return std::pair(class_bytes(cluster.trace(), kn::FlowKind::kShuffle), result.output_bytes);
  };
  const auto [raw_shuffle, raw_output] = run_with(1.0);
  const auto [snappy_shuffle, snappy_output] = run_with(0.35);
  EXPECT_NEAR(snappy_shuffle / raw_shuffle, 0.35, 0.05);
  // Logical output is unaffected by wire compression.
  EXPECT_NEAR(static_cast<double>(snappy_output), static_cast<double>(raw_output),
              0.01 * static_cast<double>(raw_output));
}
