// Tests for the KSPL spill path (capture/spill.h): bit-exact round trips
// through the mmap'd writer/reader, precise byte-offset-naming rejection of
// corrupted or abandoned files, and — the property the whole feature rests
// on — a spilled capture being indistinguishable from the in-memory Trace
// the collector would otherwise have accumulated.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "capture/collector.h"
#include "capture/spill.h"
#include "gen/replay.h"
#include "net/topology.h"
#include "util/rng.h"

namespace kc = keddah::capture;
namespace kg = keddah::gen;
namespace kn = keddah::net;
namespace ku = keddah::util;
namespace fs = std::filesystem;

namespace {

/// Unique-ish scratch path under the build's temp dir, removed by each test.
std::string scratch(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "keddah_spill_test";
  fs::create_directories(dir);
  return (dir / name).string();
}

kc::FlowRecord record(const std::string& src, const std::string& dst, double bytes,
                      double start, double end, std::uint32_t job = 7) {
  kc::FlowRecord r;
  r.src = src;
  r.dst = dst;
  r.src_id = kn::NodeId(3);
  r.dst_id = kn::NodeId(9);
  r.src_port = kn::ports::kShuffle;
  r.dst_port = kn::ports::kEphemeralBase;
  r.bytes = bytes;
  r.start = start;
  r.end = end;
  r.job_id = job;
  r.truth = kn::FlowKind::kShuffle;
  return r;
}

/// Patches `n` raw bytes at `offset` in a finalized spill file.
void patch(const std::string& path, std::size_t offset, const void* bytes, std::size_t n) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(static_cast<const char*>(bytes), static_cast<std::streamsize>(n));
}

/// Writes a small valid spill file and returns its path.
std::string write_sample(const std::string& name, std::size_t records = 3) {
  const std::string path = scratch(name);
  fs::remove(path);
  kc::SpillWriter writer(path, /*initial_capacity=*/256);  // forces arena growth
  for (std::size_t i = 0; i < records; ++i) {
    writer.add(record("h" + std::to_string(i % 2), "h" + std::to_string(2 + i % 3),
                      1e6 * static_cast<double>(i + 1), 0.25 * static_cast<double>(i),
                      0.25 * static_cast<double>(i) + 1.5));
  }
  writer.finalize();
  return path;
}

}  // namespace

TEST(SpillRoundTrip, BitExactIncludingAwkwardDoubles) {
  const std::string path = scratch("roundtrip.kspill");
  fs::remove(path);
  // Values chosen to shake out any text formatting on the path: a double
  // with no short decimal form, a denormal, an epsilon-neighbour of 1.0.
  std::vector<kc::FlowRecord> written;
  written.push_back(record("rack0-h1", "rack3-h7", 0.1 + 0.2, 1.0 / 3.0, 2.0 / 3.0));
  written.push_back(record("rack0-h1", "rack1-h0", 5e-324, 0.0,
                           std::nextafter(1.0, 2.0), /*job=*/0));
  written.push_back(record("nn", "rack3-h7", 1.75e9, 1234.56789012345,
                           std::numeric_limits<double>::max() / 1e10));
  {
    kc::SpillWriter writer(path, 128);
    for (const auto& r : written) writer.add(r);
    writer.finalize();
  }
  kc::SpillReader reader(path);
  ASSERT_EQ(reader.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    const auto got = reader.record(i);
    EXPECT_EQ(got.src, written[i].src);
    EXPECT_EQ(got.dst, written[i].dst);
    EXPECT_EQ(got.src_id, written[i].src_id);
    EXPECT_EQ(got.dst_id, written[i].dst_id);
    EXPECT_EQ(got.src_port, written[i].src_port);
    EXPECT_EQ(got.dst_port, written[i].dst_port);
    EXPECT_EQ(got.job_id, written[i].job_id);
    EXPECT_EQ(got.truth, written[i].truth);
    // Bit-exact: EXPECT_EQ on the doubles, no tolerance.
    EXPECT_EQ(got.bytes, written[i].bytes);
    EXPECT_EQ(got.start, written[i].start);
    EXPECT_EQ(got.end, written[i].end);
  }
  // Names intern in insertion order, matching the KDTR string table.
  const std::vector<std::string> expected_names = {"rack0-h1", "rack3-h7", "rack1-h0", "nn"};
  EXPECT_EQ(reader.names(), expected_names);
  EXPECT_THROW((void)reader.record(written.size()), std::out_of_range);
  fs::remove(path);
}

TEST(SpillRoundTrip, ToTraceMatchesRecordOrder) {
  const std::string path = write_sample("totrace.kspill", 5);
  kc::SpillReader reader(path);
  const kc::Trace trace = reader.to_trace();
  ASSERT_EQ(trace.size(), reader.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].start, reader.record(i).start);
    EXPECT_EQ(trace[i].bytes, reader.record(i).bytes);
    EXPECT_EQ(trace[i].src, reader.record(i).src);
  }
  fs::remove(path);
}

TEST(SpillRoundTrip, WriterDestructorFinalizes) {
  const std::string path = scratch("dtor.kspill");
  fs::remove(path);
  {
    kc::SpillWriter writer(path, 128);
    writer.add(record("a", "b", 1.0, 0.0, 1.0));
  }  // no explicit finalize()
  kc::SpillReader reader(path);
  EXPECT_EQ(reader.size(), 1u);
  fs::remove(path);
}

TEST(SpillErrors, TruncatedHeaderNamesByteCounts) {
  const std::string path = scratch("short.kspill");
  { std::ofstream(path, std::ios::binary) << "KSPL"; }
  try {
    kc::SpillReader reader(path);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated header"), std::string::npos) << e.what();
  }
  fs::remove(path);
}

TEST(SpillErrors, BadMagicNamesOffsetZero) {
  const std::string path = write_sample("magic.kspill");
  const char junk[4] = {'N', 'O', 'P', 'E'};
  patch(path, 0, junk, sizeof junk);
  try {
    kc::SpillReader reader(path);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic at offset 0"), std::string::npos)
        << e.what();
  }
  fs::remove(path);
}

TEST(SpillErrors, UnsupportedVersionNamesOffsetFour) {
  const std::string path = write_sample("version.kspill");
  const std::uint32_t future = kc::kSpillVersion + 41;
  patch(path, 4, &future, sizeof future);
  try {
    kc::SpillReader reader(path);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version 42 at offset 4"), std::string::npos) << what;
  }
  fs::remove(path);
}

TEST(SpillErrors, RecordSizeMismatchNamesOffsetEight) {
  const std::string path = write_sample("recsize.kspill");
  const std::uint32_t wrong = 48;
  patch(path, 8, &wrong, sizeof wrong);
  try {
    kc::SpillReader reader(path);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("record size 48 at offset 8"), std::string::npos)
        << e.what();
  }
  fs::remove(path);
}

TEST(SpillErrors, AbandonedUnfinalizedFileIsRejected) {
  const std::string path = write_sample("abandoned.kspill");
  // Re-create the crashed-writer state: finalized flag and name-table offset
  // back to their mid-write zeros.
  const std::uint32_t zero32 = 0;
  const std::uint64_t zero64 = 0;
  patch(path, 12, &zero32, sizeof zero32);
  patch(path, 24, &zero64, sizeof zero64);
  try {
    kc::SpillReader reader(path);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset 24"), std::string::npos) << e.what();
  }
  fs::remove(path);
}

TEST(SpillErrors, TruncatedRecordsNameTheFirstMissingRecord) {
  const std::string path = write_sample("truncated.kspill", 3);
  // Chop mid-record-1: one whole record survives, the second is cut short.
  fs::resize_file(path, kc::kSpillHeaderBytes + sizeof(kc::SpillRecord) + 20);
  try {
    kc::SpillReader reader(path);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated record 1"), std::string::npos) << what;
    EXPECT_NE(what.find("at offset 120"), std::string::npos) << what;  // 64 + 56
  }
  fs::remove(path);
}

TEST(SpillCollector, SpillModeKeepsTraceEmptyAndCountsRecords) {
  const std::string dir = scratch("collector_dir");
  fs::remove_all(dir);
  ku::Rng rng(11);
  kg::SyntheticTrafficSchedule schedule;
  for (std::size_t i = 0; i < 40; ++i) {
    kg::SyntheticFlow f;
    f.src_host = i % 8;
    f.dst_host = (i + 3) % 8;
    f.kind = kn::FlowKind::kShuffle;
    f.bytes = rng.uniform(1e5, 1e7);
    f.start = rng.uniform(0.0, 2.0);
    schedule.flows.push_back(f);
  }
  const auto topology = kn::make_rack_tree(2, 4, 1e9, 10e9, 1e-4);
  const auto result = kg::replay(schedule, topology, 40.0e9, dir);
  EXPECT_TRUE(result.trace.empty());
  EXPECT_EQ(result.spilled_records, schedule.flows.size());
  EXPECT_EQ(result.spill_path, dir + "/capture.kspill");
  EXPECT_TRUE(fs::exists(result.spill_path));
  kc::SpillReader reader(result.spill_path);
  EXPECT_EQ(reader.size(), schedule.flows.size());
  fs::remove_all(dir);
}

// The headline guarantee: replaying the same schedule with capture spilled
// to disk yields byte-for-byte the records an in-memory capture collects —
// same order, same doubles — and identical derived metrics.
TEST(SpillCollector, SpilledCaptureReplaysIdenticallyToInMemory) {
  ku::Rng rng(23);
  kg::SyntheticTrafficSchedule schedule;
  for (std::size_t i = 0; i < 200; ++i) {
    kg::SyntheticFlow f;
    f.src_host = static_cast<std::size_t>(rng.uniform_int(0, 15));
    f.dst_host = static_cast<std::size_t>(rng.uniform_int(0, 15));
    f.kind = static_cast<kn::FlowKind>(rng.uniform_int(0, 4));
    f.bytes = std::pow(10.0, rng.uniform(4.0, 7.5));
    f.start = rng.uniform(0.0, 3.0);
    schedule.flows.push_back(f);
  }
  const auto topology = kn::make_fat_tree(4, 1e9, 1e-4, /*oversubscription=*/4.0);

  const auto in_memory = kg::replay(schedule, topology);
  const std::string dir = scratch("identical_dir");
  fs::remove_all(dir);
  const auto spilled = kg::replay(schedule, topology, 40.0e9, dir);

  EXPECT_EQ(spilled.makespan, in_memory.makespan);
  ASSERT_EQ(spilled.flow_completion_times.size(), in_memory.flow_completion_times.size());
  for (std::size_t i = 0; i < spilled.flow_completion_times.size(); ++i) {
    EXPECT_EQ(spilled.flow_completion_times[i], in_memory.flow_completion_times[i]);
  }
  kc::SpillReader reader(spilled.spill_path);
  const kc::Trace from_spill = reader.to_trace();
  ASSERT_EQ(from_spill.size(), in_memory.trace.size());
  for (std::size_t i = 0; i < from_spill.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(from_spill[i].src, in_memory.trace[i].src);
    EXPECT_EQ(from_spill[i].dst, in_memory.trace[i].dst);
    EXPECT_EQ(from_spill[i].src_id, in_memory.trace[i].src_id);
    EXPECT_EQ(from_spill[i].dst_id, in_memory.trace[i].dst_id);
    EXPECT_EQ(from_spill[i].src_port, in_memory.trace[i].src_port);
    EXPECT_EQ(from_spill[i].dst_port, in_memory.trace[i].dst_port);
    EXPECT_EQ(from_spill[i].job_id, in_memory.trace[i].job_id);
    EXPECT_EQ(from_spill[i].truth, in_memory.trace[i].truth);
    EXPECT_EQ(from_spill[i].bytes, in_memory.trace[i].bytes);
    EXPECT_EQ(from_spill[i].start, in_memory.trace[i].start);
    EXPECT_EQ(from_spill[i].end, in_memory.trace[i].end);
  }
  fs::remove_all(dir);
}
