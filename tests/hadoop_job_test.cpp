// Integration tests for the MapReduce engine and cluster facade: end-to-end
// job runs, traffic decomposition, slow-start behaviour, control plane,
// map-only jobs, and classifier agreement with ground truth.
#include <gtest/gtest.h>

#include <cmath>

#include "hadoop/cluster.h"
#include "workloads/profiles.h"

namespace kh = keddah::hadoop;
namespace kn = keddah::net;
namespace kc = keddah::capture;
namespace kw = keddah::workloads;

namespace {

kh::ClusterConfig test_config() {
  kh::ClusterConfig cfg;
  cfg.racks = 2;
  cfg.hosts_per_rack = 4;
  cfg.block_size = 64ull << 20;
  cfg.containers_per_node = 4;
  return cfg;
}

constexpr std::uint64_t kMiB = 1ull << 20;

double class_bytes(const kc::Trace& trace, kn::FlowKind kind) {
  return trace.class_stats()[static_cast<std::size_t>(kind)].bytes;
}

std::size_t class_flows(const kc::Trace& trace, kn::FlowKind kind) {
  return trace.class_stats()[static_cast<std::size_t>(kind)].flows;
}

}  // namespace

TEST(JobRunner, SortJobCompletesWithSaneResult) {
  kh::HadoopCluster cluster(test_config(), 11);
  const auto input = cluster.ensure_input(256 * kMiB);
  const auto spec = kw::make_spec(kw::Workload::kSort, input, 4);
  const auto result = cluster.run_job(spec);
  EXPECT_EQ(result.num_maps, 4u);       // 256 MiB / 64 MiB blocks
  EXPECT_EQ(result.num_reducers, 4u);
  EXPECT_GT(result.duration(), 0.0);
  EXPECT_GT(result.map_phase_end, result.submit_time);
  EXPECT_GE(result.shuffle_end, result.shuffle_start);
  EXPECT_GT(result.shuffle_start, 0.0);
  EXPECT_EQ(result.input_bytes, 256 * kMiB);
  // Identity map: map output ~ input (float truncation aside).
  EXPECT_NEAR(static_cast<double>(result.map_output_bytes),
              static_cast<double>(result.input_bytes), 1e4);
  EXPECT_NEAR(static_cast<double>(result.output_bytes),
              static_cast<double>(result.input_bytes), 1e4);
  EXPECT_EQ(cluster.runner().running_jobs(), 0u);
  // All containers returned.
  EXPECT_EQ(cluster.scheduler().free_slots(), cluster.scheduler().total_slots());
}

TEST(JobRunner, SortTrafficDecomposition) {
  kh::HadoopCluster cluster(test_config(), 13);
  const auto input = cluster.ensure_input(512 * kMiB);
  cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 8));
  const auto trace = cluster.take_trace();
  ASSERT_GT(trace.size(), 0u);

  const double shuffle = class_bytes(trace, kn::FlowKind::kShuffle);
  const double write = class_bytes(trace, kn::FlowKind::kHdfsWrite);
  const double control = class_bytes(trace, kn::FlowKind::kControl);

  // Sort shuffles ~everything: network shuffle bytes are input minus the
  // host-local partitions (1/8 of hosts), so > half the input.
  EXPECT_GT(shuffle, 0.5 * 512 * kMiB);
  EXPECT_LT(shuffle, 1.1 * 512 * kMiB);
  // Replication 3 writes ~2 off-node copies of the output.
  EXPECT_GT(write, 1.2 * 512 * kMiB);
  EXPECT_LT(write, 2.2 * 512 * kMiB);
  // Control is a rounding error by volume.
  EXPECT_LT(control, 0.01 * shuffle);
  EXPECT_GT(class_flows(trace, kn::FlowKind::kControl), 0u);
}

TEST(JobRunner, GrepIsShuffleLight) {
  kh::HadoopCluster cluster(test_config(), 17);
  const auto input = cluster.ensure_input(512 * kMiB);
  cluster.run_job(kw::make_spec(kw::Workload::kGrep, input, 4));
  const auto trace = cluster.take_trace();
  const double shuffle = class_bytes(trace, kn::FlowKind::kShuffle);
  EXPECT_LT(shuffle, 0.01 * 512 * kMiB);
  // But shuffle flows still exist (header-only fetches of empty partitions).
  EXPECT_GT(class_flows(trace, kn::FlowKind::kShuffle), 0u);
}

TEST(JobRunner, ShuffleFlowCountIsOffHostMxR) {
  kh::HadoopCluster cluster(test_config(), 19);
  const auto input = cluster.ensure_input(512 * kMiB);  // 8 maps
  cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 6));
  const auto trace = cluster.take_trace();
  const auto shuffle_flows = class_flows(trace, kn::FlowKind::kShuffle);
  // M x R = 48 total fetches; host-local ones are invisible, so the network
  // sees somewhat fewer but the same order.
  EXPECT_LE(shuffle_flows, 48u);
  EXPECT_GE(shuffle_flows, 48u / 2);
}

TEST(JobRunner, ClassifierAgreesWithGroundTruth) {
  kh::HadoopCluster cluster(test_config(), 23);
  const auto input = cluster.ensure_input(256 * kMiB);
  cluster.run_job(kw::make_spec(kw::Workload::kNutchIndex, input, 4));
  const auto trace = cluster.take_trace();
  ASSERT_GT(trace.size(), 0u);
  for (const auto& r : trace.records()) {
    EXPECT_EQ(kc::classify_by_ports(r), r.truth)
        << r.src << ":" << r.src_port << " -> " << r.dst << ":" << r.dst_port;
  }
}

TEST(JobRunner, JobIdStampsAllJobFlows) {
  kh::HadoopCluster cluster(test_config(), 29);
  const auto input = cluster.ensure_input(128 * kMiB);
  const auto result = cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 2));
  const auto trace = cluster.take_trace();
  for (const auto& r : trace.records()) {
    if (r.truth == kn::FlowKind::kControl) {
      EXPECT_EQ(r.job_id, 0u);
    } else {
      EXPECT_EQ(r.job_id, result.job_id);
    }
  }
}

TEST(JobRunner, LateSlowstartSerializesShuffleAfterMaps) {
  auto run_with_slowstart = [](double slowstart) {
    kh::ClusterConfig cfg = test_config();
    cfg.slowstart = slowstart;
    kh::HadoopCluster cluster(cfg, 31);
    const auto input = cluster.ensure_input(512 * kMiB);
    return cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 4));
  };
  const auto eager = run_with_slowstart(0.05);
  const auto lazy = run_with_slowstart(1.0);
  // With slowstart=1.0 the shuffle cannot begin before the last map ends.
  EXPECT_GE(lazy.shuffle_start, lazy.map_phase_end - 1e-6);
  // With slowstart=0.05 it overlaps the map phase.
  EXPECT_LT(eager.shuffle_start, eager.map_phase_end);
}

TEST(JobRunner, MapOnlyJobWritesDirectly) {
  kh::HadoopCluster cluster(test_config(), 37);
  const auto input = cluster.ensure_input(256 * kMiB);
  auto spec = kw::make_spec(kw::Workload::kSort, input, 0);
  spec.num_reducers = 0;
  const auto result = cluster.run_job(spec);
  EXPECT_EQ(result.num_reducers, 0u);
  EXPECT_DOUBLE_EQ(result.shuffle_start, 0.0);
  const auto trace = cluster.take_trace();
  EXPECT_EQ(class_flows(trace, kn::FlowKind::kShuffle), 0u);
  EXPECT_GT(class_flows(trace, kn::FlowKind::kHdfsWrite), 0u);
  EXPECT_NEAR(static_cast<double>(result.output_bytes),
              static_cast<double>(result.input_bytes), 1e4);
}

TEST(JobRunner, MostMapsReadLocally) {
  kh::HadoopCluster cluster(test_config(), 41);
  const auto input = cluster.ensure_input(512 * kMiB);
  const auto result = cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 4));
  // 8 maps, 3 replicas, 8 nodes with free slots: locality should be high.
  EXPECT_GE(result.maps_with_local_read, result.num_maps / 2);
}

TEST(JobRunner, LocalityOffIncreasesReadTraffic) {
  auto read_bytes = [](bool locality) {
    kh::ClusterConfig cfg = test_config();
    cfg.locality_scheduling = locality;
    kh::HadoopCluster cluster(cfg, 43);
    const auto input = cluster.ensure_input(512 * kMiB);
    cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 4));
    return class_bytes(cluster.trace(), kn::FlowKind::kHdfsRead);
  };
  const double with_locality = read_bytes(true);
  const double without_locality = read_bytes(false);
  EXPECT_GT(without_locality, with_locality);
}

TEST(JobRunner, ControlPlaneQuietBetweenJobs) {
  kh::HadoopCluster cluster(test_config(), 47);
  const auto input = cluster.ensure_input(128 * kMiB);
  cluster.run_job(kw::make_spec(kw::Workload::kGrep, input, 2));
  const auto emitted_after_first = cluster.control().emitted();
  EXPECT_GT(emitted_after_first, 0u);
  EXPECT_FALSE(cluster.control().enabled());
  // The simulator is fully drained: no stray heartbeat events.
  EXPECT_EQ(cluster.simulator().pending(), 0u);
}

TEST(JobRunner, SequentialJobsProduceIndependentResults) {
  kh::HadoopCluster cluster(test_config(), 53);
  const auto input = cluster.ensure_input(256 * kMiB);
  const auto results = cluster.run_jobs({kw::make_spec(kw::Workload::kSort, input, 4),
                                         kw::make_spec(kw::Workload::kGrep, input, 4)});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].job_id, results[1].job_id);
  EXPECT_GE(results[1].submit_time, results[0].end_time);
  EXPECT_EQ(results[0].job_name, "sort");
  EXPECT_EQ(results[1].job_name, "grep");
}

TEST(JobRunner, EmptyInputThrows) {
  kh::HadoopCluster cluster(test_config(), 59);
  cluster.hdfs().ingest_file("empty", 0);
  auto spec = kw::make_spec(kw::Workload::kSort, "empty", 2);
  EXPECT_THROW(cluster.runner().submit(spec, nullptr), std::invalid_argument);
}

TEST(JobRunner, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    kh::HadoopCluster cluster(test_config(), 61);
    const auto input = cluster.ensure_input(256 * kMiB);
    cluster.run_job(kw::make_spec(kw::Workload::kSort, input, 4));
    return cluster.take_trace();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_DOUBLE_EQ(a[i].bytes, b[i].bytes);
    EXPECT_DOUBLE_EQ(a[i].start, b[i].start);
    EXPECT_DOUBLE_EQ(a[i].end, b[i].end);
  }
}

TEST(Workloads, NamesRoundTrip) {
  for (const auto w : kw::all_workloads()) {
    EXPECT_EQ(kw::workload_from_name(kw::workload_name(w)), w);
  }
  EXPECT_THROW(kw::workload_from_name("hive"), std::invalid_argument);
}

TEST(Workloads, DefaultReducersScaleWithInput) {
  EXPECT_EQ(kw::default_reducers(1ull << 30), 4u);
  EXPECT_EQ(kw::default_reducers(4ull << 30), 16u);
  EXPECT_EQ(kw::default_reducers(100ull << 30), 64u);  // clamped
  EXPECT_EQ(kw::default_reducers(1ull << 20), 4u);     // floor
}

TEST(Workloads, ProfileShapesAreDistinct) {
  EXPECT_DOUBLE_EQ(kw::profile(kw::Workload::kSort).map_selectivity, 1.0);
  EXPECT_LT(kw::profile(kw::Workload::kGrep).map_selectivity, 0.01);
  EXPECT_GT(kw::profile(kw::Workload::kPageRank).map_selectivity, 1.0);
  EXPECT_GT(kw::profile(kw::Workload::kPageRank).partition_skew, 0.5);
}
