// expect: unordered-iter
// Fixture: range-for over a local unordered_set.
#include <iostream>
#include <unordered_set>

int sum_all() {
  std::unordered_set<int> seen{1, 2, 3};
  int total = 0;
  for (const int v : seen) total += v;
  return total;
}
