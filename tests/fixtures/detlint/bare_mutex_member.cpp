// expect: bare-mutex
// Fixture: raw std::mutex instead of the annotated util::Mutex wrapper.
#include <mutex>  // detlint:allow(bare-mutex) keep the finding on the member below

struct Counter {
  std::mutex mu;
  int value = 0;
};
