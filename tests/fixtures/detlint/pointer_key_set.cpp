// expect: pointer-key
// Fixture: std::set of pointers — iteration order is the address order.
#include <set>

struct Task {};

std::set<const Task*> pending;
