// expect: unordered-iter
#include "unordered_member_iter.h"

#include <iostream>

void Registry::dump() const {
  for (const auto& [k, v] : entries) {
    std::cout << k << "=" << v << "\n";
  }
}
