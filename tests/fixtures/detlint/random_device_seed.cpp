// expect: random-device
// Fixture: nondeterministic seeding.
#include <random>

unsigned fresh_seed() {
  std::random_device rd;
  return rd();
}
