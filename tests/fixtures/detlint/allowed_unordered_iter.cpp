// expect: clean
// Fixture: a justified allow comment fully suppresses the finding.
#include <unordered_map>

int count_entries() {
  std::unordered_map<int, int> m{{1, 1}, {2, 2}};
  int n = 0;
  // Order-insensitive count. detlint:allow(unordered-iter)
  for (const auto& [k, v] : m) {
    (void)k;
    n += v;
  }
  return n;
}
