// expect: unordered-iter
// Fixture: explicit begin() iteration instead of a range-for.
#include <unordered_map>

int first_key() {
  std::unordered_map<int, int> m{{1, 2}};
  auto it = m.begin();
  return it == m.end() ? 0 : it->first;
}
