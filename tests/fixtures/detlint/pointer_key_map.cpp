// expect: pointer-key
// Fixture: std::map ordered by pointer value (ASLR-dependent).
#include <map>

struct Node {};

std::map<Node*, int> ranks;
