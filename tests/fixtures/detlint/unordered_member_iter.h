// expect: unordered-iter
// Fixture: a member declared in a header and iterated in the paired .cpp.
#pragma once
#include <string>
#include <unordered_map>

struct Registry {
  void dump() const;
  std::unordered_map<int, std::string> entries;
};
