// expect: unordered-iter
// Fixture: iterating the return value of an unordered-returning function.
#include <string>
#include <unordered_map>

std::unordered_map<std::string, int> load_counts();

int total_counts() {
  int total = 0;
  for (const auto& [name, n] : load_counts()) {
    (void)name;
    total += n;
  }
  return total;
}
