// expect: wall-clock
// Fixture: wall-clock read inside simulation code.
#include <chrono>

long long now_ns() {
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}
