// expect: hot-marker
// Fixture: a keddah:hot marker with no braced region after it.
int tail() { return 7; }

// keddah:hot(nothing-follows)
