// Fixture support header: the higher layer being reached into.
#pragma once

inline int net_socket_fd() { return 3; }
