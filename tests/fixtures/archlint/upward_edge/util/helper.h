// expect: layer-upward
// Fixture: util (the bottom layer) reaching up into net.
#pragma once

#include "net/socket.h"

inline int helper() { return net_socket_fd(); }
