// Fixture support file: the .cpp being wrongly included.
int util_impl() { return 1; }
