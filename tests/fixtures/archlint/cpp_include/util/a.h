// expect: cpp-include
// Fixture: a header that includes a translation unit.
#pragma once

#include "util/impl.cpp"
