// expect: hot-string-concat
// Fixture: building a label by concatenating with a literal per call.
#include <string>

struct Labeler {
  std::string last_;

  // keddah:hot(label)
  void label(const std::string& name) { last_ = name + ":suffix"; }
};
