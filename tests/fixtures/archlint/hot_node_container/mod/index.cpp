// expect: hot-node-container
// Fixture: inserting into a node-based map inside a hot region allocates a
// node per call.
#include <map>

struct Index {
  std::map<int, int> by_key_;

  // keddah:hot(ingest)
  void ingest(int k, int v) { by_key_.emplace(k, v); }
};
