// expect: hot-local-container
// Fixture: a fresh container constructed on every invocation of a hot
// function instead of a reused member scratch buffer.
#include <vector>

struct Summer {
  // keddah:hot(sum)
  int sum(int n) {
    std::vector<int> tmp;
    for (int i = 0; i < n; ++i) tmp.assign(1, i);
    return static_cast<int>(tmp.size());
  }
};
