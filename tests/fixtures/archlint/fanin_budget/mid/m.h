// Fixture support header: first includer of the hub.
#pragma once

#include "base/hub.h"

inline int m() { return hub(); }
