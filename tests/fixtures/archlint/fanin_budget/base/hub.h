// expect: fanin-budget
// Fixture: two includers against a declared max_fanin of 1 (layers.json).
#pragma once

inline int hub() { return 42; }
