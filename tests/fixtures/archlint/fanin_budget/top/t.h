// Fixture support header: second includer of the hub.
#pragma once

#include "base/hub.h"

inline int t() { return hub() + 1; }
