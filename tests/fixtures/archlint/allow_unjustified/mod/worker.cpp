// expect: allow-unjustified
// Fixture: an allow comment with no justification suppresses the hazard but
// is itself a finding.
#include <vector>

struct Worker {
  std::vector<int> out_;

  // keddah:hot(fill)
  void fill(int n) {
    // archlint:allow(hot-push-back)
    for (int i = 0; i < n; ++i) out_.push_back(i);
  }
};
