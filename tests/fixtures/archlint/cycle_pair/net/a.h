// expect: layer-cycle
// expect: layer-upward
// Fixture: net and sim include each other — a module cycle whose sim->net
// half is also an upward edge.
#pragma once

#include "sim/b.h"

inline int net_a() { return sim_b() + 1; }
