// Fixture support header: the lower half of the cycle.
#pragma once

#include "net/a.h"

inline int sim_b() { return 0; }
