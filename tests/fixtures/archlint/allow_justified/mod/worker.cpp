// expect: clean
// Fixture: a justified allow comment fully suppresses the hazard.
#include <vector>

struct Worker {
  std::vector<int> out_;

  // keddah:hot(fill)
  void fill(int n) {
    // archlint:allow(hot-push-back): growth is bounded by n, which the
    // caller caps at a handful; reserving would pessimize the common case.
    for (int i = 0; i < n; ++i) out_.push_back(i);
  }
};
